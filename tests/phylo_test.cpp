#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "phylo/alignment.hpp"
#include "phylo/dna.hpp"
#include "phylo/model.hpp"
#include "phylo/patterns.hpp"
#include "util/error.hpp"

namespace plf::phylo {
namespace {

TEST(DnaTest, BasicCodes) {
  EXPECT_EQ(char_to_mask('A'), kMaskA);
  EXPECT_EQ(char_to_mask('c'), kMaskC);
  EXPECT_EQ(char_to_mask('G'), kMaskG);
  EXPECT_EQ(char_to_mask('t'), kMaskT);
  EXPECT_EQ(char_to_mask('U'), kMaskT);
}

TEST(DnaTest, AmbiguityCodes) {
  EXPECT_EQ(char_to_mask('R'), kMaskA | kMaskG);
  EXPECT_EQ(char_to_mask('Y'), kMaskC | kMaskT);
  EXPECT_EQ(char_to_mask('N'), kGapMask);
  EXPECT_EQ(char_to_mask('-'), kGapMask);
  EXPECT_EQ(char_to_mask('?'), kGapMask);
  EXPECT_EQ(char_to_mask('Z'), 0);  // invalid
}

TEST(DnaTest, MaskToCharRoundTrip) {
  for (std::size_t m = 1; m < kNumMasks; ++m) {
    const char c = mask_to_char(static_cast<StateMask>(m));
    EXPECT_EQ(char_to_mask(c), m) << "mask=" << m << " char=" << c;
  }
}

TEST(DnaTest, UnambiguousHelpers) {
  EXPECT_TRUE(is_unambiguous(kMaskG));
  EXPECT_FALSE(is_unambiguous(kMaskA | kMaskC));
  EXPECT_EQ(mask_to_state(kMaskA), 0u);
  EXPECT_EQ(mask_to_state(kMaskT), 3u);
  EXPECT_EQ(state_to_mask(2), kMaskG);
}

TEST(DnaTest, TipRowsMatchMaskBits) {
  for (std::size_t m = 1; m < kNumMasks; ++m) {
    const auto& row = tip_row(static_cast<StateMask>(m));
    for (std::size_t s = 0; s < kNumStates; ++s) {
      EXPECT_EQ(row[s], ((m >> s) & 1u) ? 1.0f : 0.0f);
    }
  }
}

TEST(AlignmentTest, ConstructAndAccess) {
  Alignment a({"x", "y"}, {"ACGT", "TGCA"});
  EXPECT_EQ(a.n_taxa(), 2u);
  EXPECT_EQ(a.n_columns(), 4u);
  EXPECT_EQ(a.at(0, 0), kMaskA);
  EXPECT_EQ(a.at(1, 0), kMaskT);
  EXPECT_EQ(a.sequence(1), "TGCA");
  EXPECT_EQ(a.taxon_index("y"), 1u);
  EXPECT_THROW(a.taxon_index("z"), Error);
}

TEST(AlignmentTest, RejectsRaggedAndInvalid) {
  EXPECT_THROW(Alignment({"x", "y"}, {"ACGT", "AC"}), Error);
  EXPECT_THROW(Alignment({"x"}, {"AZGT"}), ParseError);
}

TEST(AlignmentTest, FastaRoundTrip) {
  Alignment a({"tax1", "tax2", "tax3"}, {"ACGTN-", "RYKMWS", "acgtac"});
  std::ostringstream os;
  a.write_fasta(os);
  const Alignment b = Alignment::parse_fasta(os.str());
  EXPECT_EQ(b.n_taxa(), 3u);
  EXPECT_EQ(b.n_columns(), 6u);
  for (std::size_t t = 0; t < 3; ++t)
    for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(b.at(t, c), a.at(t, c));
}

TEST(AlignmentTest, FastaMultilineSequences) {
  const std::string text = ">s1 description ignored\nACGT\nACGT\n>s2\nTTTT\nCCCC\n";
  const Alignment a = Alignment::parse_fasta(text);
  EXPECT_EQ(a.n_columns(), 8u);
  EXPECT_EQ(a.sequence(0), "ACGTACGT");
  EXPECT_EQ(a.name(0), "s1");
}

TEST(AlignmentTest, FastaErrors) {
  EXPECT_THROW(Alignment::parse_fasta("ACGT\n"), ParseError);
  EXPECT_THROW(Alignment::parse_fasta(""), ParseError);
}

TEST(AlignmentTest, PhylipRoundTrip) {
  Alignment a({"alpha", "beta"}, {"ACGTACGT", "TGCATGCA"});
  std::ostringstream os;
  a.write_phylip(os);
  const Alignment b = Alignment::parse_phylip(os.str());
  EXPECT_EQ(b.n_taxa(), 2u);
  EXPECT_EQ(b.sequence(0), "ACGTACGT");
  EXPECT_EQ(b.name(1), "beta");
}

TEST(AlignmentTest, PhylipErrors) {
  EXPECT_THROW(Alignment::parse_phylip("junk"), ParseError);
  EXPECT_THROW(Alignment::parse_phylip("2 4\nx ACGT\n"), ParseError);
}

TEST(PatternTest, CompressMergesIdenticalColumns) {
  // Columns: ACGT, ACGT, AAAA, ACGT, AAAA -> 2 patterns, weights 3 and 2.
  Alignment a({"w", "x", "y", "z"}, {"AAAAA", "CCACA", "GGAGA", "TTATA"});
  const PatternMatrix pm = PatternMatrix::compress(a);
  EXPECT_EQ(pm.n_patterns(), 2u);
  EXPECT_EQ(pm.total_weight(), 5u);
  EXPECT_EQ(pm.weights()[0], 3u);  // first-occurrence order
  EXPECT_EQ(pm.weights()[1], 2u);
  EXPECT_EQ(pm.at(1, 0), kMaskC);
  EXPECT_EQ(pm.at(1, 1), kMaskA);
}

TEST(PatternTest, DistinctPrefixTakesFirstN) {
  Alignment a({"x", "y"}, {"AACCGG", "ACACAC"});
  // Columns: AA, AC, AC, CA, GA, GC -> distinct: AA, AC, CA, GA, GC
  const PatternMatrix pm = PatternMatrix::distinct_prefix(a, 3);
  EXPECT_EQ(pm.n_patterns(), 3u);
  for (auto w : pm.weights()) EXPECT_EQ(w, 1u);
  EXPECT_EQ(pm.at(0, 2), kMaskC);
  EXPECT_EQ(pm.at(1, 2), kMaskA);
}

TEST(PatternTest, DistinctPrefixThrowsWhenTooFew) {
  Alignment a({"x", "y"}, {"AAAA", "CCCC"});
  EXPECT_THROW(PatternMatrix::distinct_prefix(a, 2), Error);
}

TEST(PatternTest, AmbiguityDistinguishesPatterns) {
  // 'N' and 'A' in the same row are different patterns.
  Alignment a({"x", "y"}, {"AN", "CC"});
  const PatternMatrix pm = PatternMatrix::compress(a);
  EXPECT_EQ(pm.n_patterns(), 2u);
}

TEST(GtrTest, QRowsSumToZero) {
  const auto p = GtrParams{};
  const auto q = build_gtr_q(p.rates, p.pi);
  for (std::size_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 4; ++j) row += q(i, j);
    EXPECT_NEAR(row, 0.0, 1e-14);
  }
}

TEST(GtrTest, QIsNormalized) {
  GtrParams p;
  p.rates = {1.0, 2.9, 0.6, 0.9, 3.2, 1.0};
  p.pi = {0.3, 0.2, 0.25, 0.25};
  const auto q = build_gtr_q(p.rates, p.pi);
  double mu = 0.0;
  for (std::size_t i = 0; i < 4; ++i) mu -= p.pi[i] * q(i, i);
  EXPECT_NEAR(mu, 1.0, 1e-12);
}

TEST(GtrTest, DetailedBalance) {
  GtrParams p;
  p.rates = {0.5, 2.0, 1.5, 0.7, 3.0, 1.0};
  p.pi = {0.1, 0.4, 0.3, 0.2};
  const auto q = build_gtr_q(p.rates, p.pi);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(p.pi[i] * q(i, j), p.pi[j] * q(j, i), 1e-14);
}

TEST(GtrTest, RejectsBadFrequencies) {
  GtrParams p;
  p.pi = {0.5, 0.5, 0.5, 0.5};  // sums to 2
  EXPECT_THROW(build_gtr_q(p.rates, p.pi), Error);
}

TEST(ModelTest, TransitionMatricesStochastic) {
  SubstitutionModel m(GtrParams::hky85(4.0, {0.3, 0.2, 0.3, 0.2}, 0.5));
  const TransitionMatrices tm = m.transition_matrices(0.2);
  EXPECT_EQ(tm.n_categories(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto p = tm.matrix(k);
    for (std::size_t i = 0; i < 4; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_GE(p(i, j), 0.0);
        row += p(i, j);
      }
      EXPECT_NEAR(row, 1.0, 1e-5);  // single precision storage
    }
  }
}

TEST(ModelTest, ColMajorIsTranspose) {
  SubstitutionModel m(GtrParams::jc69());
  const TransitionMatrices tm = m.transition_matrices(0.1);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        EXPECT_EQ(tm.row_major()[k * 16 + i * 4 + j],
                  tm.col_major()[k * 16 + j * 4 + i]);
}

TEST(ModelTest, CategoryRatesOrderedMeanOne) {
  SubstitutionModel m(GtrParams::jc69(0.5, 4));
  const auto& r = m.category_rates();
  ASSERT_EQ(r.size(), 4u);
  double mean = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i) {
      EXPECT_GT(r[i], r[i - 1]);
    }
    mean += r[i];
  }
  EXPECT_NEAR(mean / 4.0, 1.0, 1e-9);
}

TEST(ModelTest, LongBranchConvergesToStationary) {
  GtrParams params;
  params.pi = {0.4, 0.3, 0.2, 0.1};
  params.rates = {1.0, 2.0, 1.0, 1.0, 2.0, 1.0};
  SubstitutionModel m(params);
  const auto p = m.transition_matrix(50.0, 2);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(p(i, j), params.pi[j], 1e-6);
}

TEST(ModelTest, HkyKappaIncreasesTransitions) {
  const std::array<double, 4> pi{0.25, 0.25, 0.25, 0.25};
  SubstitutionModel m1(GtrParams::hky85(1.0, pi));
  SubstitutionModel m8(GtrParams::hky85(8.0, pi));
  // A->G is a transition; with larger kappa P(A->G) grows at fixed t.
  EXPECT_GT(m8.transition_matrix(0.1, 1)(0, 2), m1.transition_matrix(0.1, 1)(0, 2));
}

}  // namespace
}  // namespace plf::phylo
