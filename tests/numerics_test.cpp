#include <gtest/gtest.h>

#include <cmath>

#include "numerics/discrete_gamma.hpp"
#include "numerics/eigen.hpp"
#include "numerics/matrix4.hpp"
#include "numerics/special.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plf::num {
namespace {

TEST(Matrix4Test, IdentityAndMultiply) {
  Matrix4 a;
  int v = 1;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = v++;
  const Matrix4 i = Matrix4::identity();
  const Matrix4 ai = a * i;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
}

TEST(Matrix4Test, TransposeInvolution) {
  Matrix4 a;
  Rng rng(3);
  for (auto& x : a.m) x = rng.uniform();
  const Matrix4 att = a.transposed().transposed();
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(att.m[i], a.m[i]);
}

TEST(Matrix4Test, MatrixVectorProduct) {
  Matrix4 a = Matrix4::identity();
  a(0, 1) = 2.0;
  const std::array<double, 4> v{1, 10, 100, 1000};
  const auto r = a * v;
  EXPECT_DOUBLE_EQ(r[0], 21.0);
  EXPECT_DOUBLE_EQ(r[1], 10.0);
}

TEST(JacobiTest, DiagonalMatrix) {
  const std::vector<double> a{3, 0, 0, 0, 1, 0, 0, 0, 2};
  const auto e = jacobi_eigen(a, 3);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 3.0, 1e-12);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const std::vector<double> a{2, 1, 1, 2};
  const auto e = jacobi_eigen(a, 2);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(JacobiTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(7);
  const std::size_t n = 6;
  std::vector<double> a(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      a[r * n + c] = a[c * n + r] = rng.uniform(-1.0, 1.0);
    }
  const auto e = jacobi_eigen(a, n);
  // A == V diag(L) V^T
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        s += e.vec(r, k) * e.values[k] * e.vec(c, k);
      }
      EXPECT_NEAR(s, a[r * n + c], 1e-10);
    }
  }
}

TEST(JacobiTest, EigenvectorsOrthonormal) {
  Rng rng(11);
  const std::size_t n = 5;
  std::vector<double> a(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a[r * n + c] = a[c * n + r] = rng.normal();
  const auto e = jacobi_eigen(a, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) dot += e.vec(k, i) * e.vec(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(JacobiTest, RejectsSizeMismatch) {
  EXPECT_THROW(jacobi_eigen(std::vector<double>(5), 2), Error);
}

// A simple reversible Q for spectral tests: JC69-like.
Matrix4 jc_q() {
  Matrix4 q;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) q(i, j) = i == j ? -1.0 : 1.0 / 3.0;
  return q;
}

TEST(SpectralTest, TransitionMatrixRowsSumToOne) {
  const std::array<double, 4> pi{0.25, 0.25, 0.25, 0.25};
  ReversibleSpectral s(jc_q(), pi);
  for (double t : {0.0, 0.01, 0.1, 1.0, 10.0}) {
    const Matrix4 p = s.transition_matrix(t);
    for (std::size_t r = 0; r < 4; ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_GE(p(r, c), 0.0);
        sum += p(r, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(SpectralTest, ZeroTimeIsIdentity) {
  const std::array<double, 4> pi{0.25, 0.25, 0.25, 0.25};
  ReversibleSpectral s(jc_q(), pi);
  const Matrix4 p = s.transition_matrix(0.0);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_NEAR(p(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(SpectralTest, JcClosedForm) {
  // JC69: P(t) diag = 1/4 + 3/4 e^{-4t/3}, off = 1/4 - 1/4 e^{-4t/3}.
  const std::array<double, 4> pi{0.25, 0.25, 0.25, 0.25};
  ReversibleSpectral s(jc_q(), pi);
  for (double t : {0.05, 0.3, 1.2}) {
    const Matrix4 p = s.transition_matrix(t);
    const double e = std::exp(-4.0 * t / 3.0);
    EXPECT_NEAR(p(0, 0), 0.25 + 0.75 * e, 1e-12);
    EXPECT_NEAR(p(1, 2), 0.25 - 0.25 * e, 1e-12);
  }
}

TEST(SpectralTest, ChapmanKolmogorov) {
  // P(s+t) == P(s) P(t)
  const std::array<double, 4> pi{0.25, 0.25, 0.25, 0.25};
  ReversibleSpectral sp(jc_q(), pi);
  const Matrix4 a = sp.transition_matrix(0.3);
  const Matrix4 b = sp.transition_matrix(0.7);
  const Matrix4 ab = a * b;
  const Matrix4 c = sp.transition_matrix(1.0);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(ab.m[i], c.m[i], 1e-12);
}

TEST(SpecialTest, IncompleteGammaKnownValues) {
  // P(1, x) = 1 - e^{-x}
  for (double x : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(incomplete_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(a, 0) = 0; P(a, inf-ish) -> 1
  EXPECT_DOUBLE_EQ(incomplete_gamma_p(2.5, 0.0), 0.0);
  EXPECT_NEAR(incomplete_gamma_p(2.5, 100.0), 1.0, 1e-12);
}

TEST(SpecialTest, IncompleteGammaMonotone) {
  double prev = -1.0;
  for (double x = 0.0; x < 10.0; x += 0.25) {
    const double v = incomplete_gamma_p(2.0, x);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(SpecialTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(SpecialTest, ChiSquareQuantileKnownValues) {
  // chi^2_1 median = 0.454936..., chi^2_2 quantile is -2 ln(1-p).
  EXPECT_NEAR(chi_square_quantile(0.5, 1.0), 0.45493642311957296, 1e-8);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(chi_square_quantile(p, 2.0), -2.0 * std::log(1.0 - p), 1e-8);
  }
}

TEST(SpecialTest, GammaQuantileInvertsCdf) {
  for (double shape : {0.3, 1.0, 2.7}) {
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const double x = gamma_quantile(p, shape, 1.0 / shape);
      EXPECT_NEAR(incomplete_gamma_p(shape, x * shape), p, 1e-7)
          << "shape=" << shape << " p=" << p;
    }
  }
}

TEST(DiscreteGammaTest, MeanIsOne) {
  for (double alpha : {0.1, 0.5, 1.0, 2.0, 10.0, 100.0}) {
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
      const auto rates = discrete_gamma_rates(alpha, k);
      ASSERT_EQ(rates.size(), k);
      double mean = 0.0;
      for (double r : rates) {
        EXPECT_GT(r, 0.0);
        mean += r;
      }
      mean /= static_cast<double>(k);
      EXPECT_NEAR(mean, 1.0, 1e-8) << "alpha=" << alpha << " k=" << k;
    }
  }
}

TEST(DiscreteGammaTest, RatesAscending) {
  const auto rates = discrete_gamma_rates(0.75, 4);
  for (std::size_t i = 1; i < rates.size(); ++i) EXPECT_LT(rates[i - 1], rates[i]);
}

TEST(DiscreteGammaTest, MatchesPamlAlphaHalf) {
  // PAML/Yang (1994) canonical example: alpha = 0.5, K = 4, mean-rate
  // discretization: {0.0334, 0.2519, 0.8203, 2.8944}.
  const auto r = discrete_gamma_rates(0.5, 4, GammaDiscretization::kMean);
  EXPECT_NEAR(r[0], 0.0334, 5e-4);
  EXPECT_NEAR(r[1], 0.2519, 5e-4);
  EXPECT_NEAR(r[2], 0.8203, 5e-4);
  EXPECT_NEAR(r[3], 2.8944, 5e-4);
}

TEST(DiscreteGammaTest, LargeAlphaApproachesUniform) {
  const auto rates = discrete_gamma_rates(1e4, 4);
  for (double r : rates) EXPECT_NEAR(r, 1.0, 0.05);
}

TEST(DiscreteGammaTest, MedianVariantAlsoMeanOne) {
  const auto rates = discrete_gamma_rates(0.6, 4, GammaDiscretization::kMedian);
  double mean = 0.0;
  for (double r : rates) mean += r;
  EXPECT_NEAR(mean / 4.0, 1.0, 1e-12);
}

TEST(DiscreteGammaTest, SingleCategoryIsRateOne) {
  const auto rates = discrete_gamma_rates(0.42, 1);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
}

}  // namespace
}  // namespace plf::num
