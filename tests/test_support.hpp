// Shared helpers for kernel/engine tests: random inputs with realistic
// structure and an independent double-precision reference likelihood.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "phylo/dna.hpp"
#include "phylo/model.hpp"
#include "phylo/patterns.hpp"
#include "phylo/tree.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace plf::test {

inline aligned_vector<float> random_cl(std::size_t m, std::size_t K, Rng& rng,
                                       float lo = 0.05f, float hi = 1.0f) {
  aligned_vector<float> cl(m * K * 4);
  for (auto& v : cl) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return cl;
}

inline std::vector<phylo::StateMask> random_masks(std::size_t m, Rng& rng,
                                                  bool allow_ambiguity = true) {
  std::vector<phylo::StateMask> masks(m);
  for (auto& x : masks) {
    if (allow_ambiguity && rng.uniform() < 0.1) {
      x = static_cast<phylo::StateMask>(1 + rng.below(15));  // any nonzero mask
    } else {
      x = phylo::state_to_mask(rng.below(4));
    }
  }
  return masks;
}

inline phylo::GtrParams random_gtr(Rng& rng, std::size_t K = 4) {
  phylo::GtrParams p;
  for (auto& r : p.rates) r = rng.uniform(0.5, 3.0);
  const auto pi = rng.dirichlet({5.0, 5.0, 5.0, 5.0});
  for (std::size_t i = 0; i < 4; ++i) p.pi[i] = pi[i];
  p.gamma_shape = rng.uniform(0.3, 2.0);
  p.n_rate_categories = K;
  return p;
}

/// Independent double-precision pruning likelihood (no scaling, so only
/// usable for data sets small enough to avoid underflow).
inline double reference_log_likelihood(const phylo::Tree& tree,
                                       const phylo::SubstitutionModel& model,
                                       const phylo::PatternMatrix& data) {
  const std::size_t K = model.n_rate_categories();
  const std::size_t n = tree.n_nodes();

  // Double-precision per-branch transition matrices.
  std::vector<std::vector<num::Matrix4>> tm(n);
  for (std::size_t id = 0; id < n; ++id) {
    if (tree.node(static_cast<int>(id)).parent == phylo::kNoNode) continue;
    tm[id].resize(K);
    for (std::size_t k = 0; k < K; ++k) {
      tm[id][k] =
          model.transition_matrix(tree.node(static_cast<int>(id)).length, k);
    }
  }

  const auto order = tree.postorder_internals();
  double ln_l = 0.0;
  for (std::size_t c = 0; c < data.n_patterns(); ++c) {
    // cl[node][k][i]
    std::vector<std::array<std::array<double, 4>, 8>> cl(n);
    auto child_factor = [&](int child, std::size_t k, std::size_t i) {
      const auto& p = tm[static_cast<std::size_t>(child)][k];
      double s = 0.0;
      if (tree.node(child).is_leaf()) {
        const phylo::StateMask mask =
            data.at(static_cast<std::size_t>(tree.node(child).taxon), c);
        for (std::size_t j = 0; j < 4; ++j) {
          if ((mask >> j) & 1u) s += p(i, j);
        }
      } else {
        for (std::size_t j = 0; j < 4; ++j) {
          s += p(i, j) * cl[static_cast<std::size_t>(child)][k][j];
        }
      }
      return s;
    };

    for (int id : order) {
      const phylo::TreeNode& nd = tree.node(id);
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t i = 0; i < 4; ++i) {
          double v = child_factor(nd.left, k, i) * child_factor(nd.right, k, i);
          if (id == tree.root()) {
            v *= child_factor(tree.outgroup(), k, i);
          }
          cl[static_cast<std::size_t>(id)][k][i] = v;
        }
      }
    }

    double site = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t i = 0; i < 4; ++i) {
        site += model.pi()[i] *
                cl[static_cast<std::size_t>(tree.root())][k][i];
      }
    }
    site /= static_cast<double>(K);
    const double pinv = model.params().p_invariant;
    if (pinv > 0.0) {
      // +I mixture: invariant component over the states every taxon shares.
      phylo::StateMask shared = phylo::kGapMask;
      for (std::size_t t = 0; t < data.n_taxa(); ++t) {
        shared = static_cast<phylo::StateMask>(shared & data.at(t, c));
      }
      double const_lik = 0.0;
      for (std::size_t st = 0; st < 4; ++st) {
        if ((shared >> st) & 1u) const_lik += model.pi()[st];
      }
      site = pinv * const_lik + (1.0 - pinv) * site;
    }
    ln_l += static_cast<double>(data.weights()[c]) * std::log(site);
  }
  return ln_l;
}

}  // namespace plf::test
