#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phylo/tree.hpp"
#include "util/error.hpp"

namespace plf::phylo {
namespace {

const char* kQuartet = "(A:0.1,B:0.2,(C:0.3,D:0.4):0.5);";

TEST(TreeParseTest, UnrootedQuartet) {
  const Tree t = Tree::from_newick(kQuartet);
  EXPECT_EQ(t.n_taxa(), 4u);
  EXPECT_EQ(t.n_nodes(), 6u);
  EXPECT_EQ(t.n_internal(), 2u);
  t.validate();
  EXPECT_EQ(t.taxon_name(0), "A");
  EXPECT_EQ(t.outgroup(), t.leaf_of(0));
}

TEST(TreeParseTest, RootedInputIsUnrooted) {
  // Rooted: top has two children; unrooting merges the two top branches.
  const Tree t = Tree::from_newick("((A:0.1,B:0.2):0.3,(C:0.3,D:0.4):0.2);");
  EXPECT_EQ(t.n_taxa(), 4u);
  EXPECT_EQ(t.n_nodes(), 6u);
  t.validate();
  // Total length: 0.1+0.2+0.3+0.4 + merged(0.3+0.2) = 1.5
  EXPECT_NEAR(t.total_length(), 1.5, 1e-9);
}

TEST(TreeParseTest, NamedTaxonOrder) {
  const std::vector<std::string> names{"D", "C", "B", "A"};
  const Tree t = Tree::from_newick(kQuartet, names);
  EXPECT_EQ(t.taxon_name(0), "D");
  EXPECT_EQ(t.node(t.leaf_of(3)).taxon, 3);  // "A"
  t.validate();
}

TEST(TreeParseTest, UnknownTaxonRejected) {
  EXPECT_THROW(Tree::from_newick(kQuartet, {"A", "B", "C", "X"}), ParseError);
}

TEST(TreeParseTest, MalformedInputs) {
  EXPECT_THROW(Tree::from_newick("(A,B,C"), ParseError);
  EXPECT_THROW(Tree::from_newick("(A,B,(C,D))"), ParseError);   // missing ';'
  EXPECT_THROW(Tree::from_newick("(A:x,B:1,C:1);"), ParseError);  // bad number
  EXPECT_THROW(Tree::from_newick("(A,B);"), Error);  // two taxa only
}

TEST(TreeParseTest, DuplicateTaxonRejected) {
  EXPECT_THROW(Tree::from_newick("(A:1,A:1,B:1);"), Error);
}

TEST(TreeParseTest, WhitespaceTolerated) {
  const Tree t = Tree::from_newick(" ( A:0.1 , B:0.2 , ( C:0.3 , D:0.4 ):0.5 ) ; ");
  EXPECT_EQ(t.n_taxa(), 4u);
}

TEST(TreeNewickTest, RoundTripPreservesTopologyAndLengths) {
  const Tree t = Tree::from_newick(kQuartet);
  const Tree u = Tree::from_newick(t.to_newick(), t.taxon_names());
  EXPECT_TRUE(t.same_topology(u));
  EXPECT_NEAR(t.total_length(), u.total_length(), 1e-9);
}

TEST(TreeNewickTest, LargerRoundTrip) {
  const char* nwk =
      "((A:0.11,(B:0.12,C:0.13):0.14):0.15,(D:0.16,E:0.17):0.18,"
      "((F:0.19,G:0.20):0.21,H:0.22):0.23);";
  const Tree t = Tree::from_newick(nwk);
  const Tree u = Tree::from_newick(t.to_newick(), t.taxon_names());
  EXPECT_TRUE(t.same_topology(u));
  EXPECT_NEAR(t.total_length(), u.total_length(), 1e-9);
}

TEST(TreeStructureTest, PostorderChildrenBeforeParents) {
  const Tree t = Tree::from_newick(
      "((A:1,(B:1,C:1):1):1,(D:1,E:1):1,(F:1,G:1):1);");
  const auto order = t.postorder_internals();
  EXPECT_EQ(order.size(), t.n_internal());
  EXPECT_EQ(order.back(), t.root());
  std::set<int> seen;
  for (int id : order) {
    const TreeNode& n = t.node(id);
    for (int child : {n.left, n.right}) {
      if (!t.node(child).is_leaf()) {
        EXPECT_TRUE(seen.count(child)) << "child " << child << " after parent";
      }
    }
    seen.insert(id);
  }
}

TEST(TreeStructureTest, BranchNodesExcludeRoot) {
  const Tree t = Tree::from_newick(kQuartet);
  const auto branches = t.branch_nodes();
  EXPECT_EQ(branches.size(), t.n_nodes() - 1);
  EXPECT_EQ(std::count(branches.begin(), branches.end(), t.root()), 0);
}

TEST(TreeStructureTest, SetBranchLength) {
  Tree t = Tree::from_newick(kQuartet);
  const int leaf = t.leaf_of(2);
  t.set_branch_length(leaf, 7.5);
  EXPECT_DOUBLE_EQ(t.branch_length(leaf), 7.5);
  EXPECT_THROW(t.set_branch_length(leaf, -1.0), Error);
  EXPECT_THROW(t.set_branch_length(t.root(), 1.0), Error);
}

TEST(TreeNniTest, ProducesValidDifferentTopology) {
  const char* nwk = "((A:1,B:1):1,(C:1,D:1):1,(E:1,F:1):1);";
  Tree t = Tree::from_newick(nwk);
  const Tree original = t;
  const auto edges = t.internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  t.nni(edges[0], /*swap_left=*/true);
  t.validate();
  EXPECT_FALSE(t.same_topology(original));
  EXPECT_NEAR(t.total_length(), original.total_length(), 1e-12);
}

TEST(TreeNniTest, IsInvolution) {
  const char* nwk = "((A:1,(B:1,C:1):1):1,(D:1,E:1):1,(F:1,G:1):1);";
  Tree t = Tree::from_newick(nwk);
  const Tree original = t;
  for (int v : t.internal_edge_nodes()) {
    for (bool left : {true, false}) {
      t.nni(v, left);
      t.validate();
      t.nni(v, left);
      t.validate();
      EXPECT_TRUE(t.same_topology(original));
    }
  }
}

TEST(TreeNniTest, RejectsLeafAndRoot) {
  Tree t = Tree::from_newick(kQuartet);
  EXPECT_THROW(t.nni(t.leaf_of(1), true), Error);
  EXPECT_THROW(t.nni(t.root(), true), Error);
}

TEST(TreeNniTest, BothDirectionsDiffer) {
  const char* nwk = "((A:1,B:1):1,(C:1,D:1):1,(E:1,F:1):1);";
  Tree t1 = Tree::from_newick(nwk);
  Tree t2 = Tree::from_newick(nwk);
  const int v = t1.internal_edge_nodes()[0];
  t1.nni(v, true);
  t2.nni(v, false);
  EXPECT_FALSE(t1.same_topology(t2));
}

TEST(TreeRerootTest, PreservesTopologyAndLength) {
  const char* nwk =
      "((A:0.11,(B:0.12,C:0.13):0.14):0.15,(D:0.16,E:0.17):0.18,"
      "((F:0.19,G:0.2):0.21,H:0.22):0.23);";
  const Tree t = Tree::from_newick(nwk);
  for (int og = 0; og < static_cast<int>(t.n_taxa()); ++og) {
    const Tree r = t.rerooted(og);
    r.validate();
    EXPECT_EQ(r.node(r.outgroup()).taxon, og);
    EXPECT_TRUE(t.same_topology(r));
    EXPECT_NEAR(t.total_length(), r.total_length(), 1e-9);
  }
}

TEST(TreeTopologyTest, DistinguishesDifferentQuartets) {
  const Tree ab = Tree::from_newick("((A:1,B:1):1,C:1,D:1);");
  const Tree ac = Tree::from_newick("((A:1,C:1):1,B:1,D:1);");
  const Tree ab2 = Tree::from_newick("(C:9,D:9,(B:9,A:9):9);");
  EXPECT_FALSE(ab.same_topology(ac));
  EXPECT_TRUE(ab.same_topology(ab2));  // lengths/rotation ignored
}

TEST(TreeTopologyTest, ManyTaxaSplitEquality) {
  // 70 taxa exercises the multi-word bitset path.
  std::string nwk = "(t0:1,t1:1";
  for (int i = 2; i < 70; ++i) nwk += ",t" + std::to_string(i) + ":1";
  nwk += ");";
  // A star tree is not binary; build a caterpillar instead.
  std::string cat = "(t0:1,t1:1,";
  for (int i = 2; i < 69; ++i) cat += "(t" + std::to_string(i) + ":1,";
  cat += "t69:1";
  for (int i = 2; i < 69; ++i) cat += "):1";
  cat += ");";
  const Tree t = Tree::from_newick(cat);
  EXPECT_EQ(t.n_taxa(), 70u);
  t.validate();
  EXPECT_TRUE(t.same_topology(t.rerooted(35)));
}

}  // namespace
}  // namespace plf::phylo
