// Golden tests for plf_lint (docs/STATIC_ANALYSIS.md): each known-bad
// fixture in tests/lint_fixtures/ fires its rule exactly once, no other
// rule fires on it, a suppression entry silences it, and the known-good
// companion stays clean. Plus tokenizer and report-format unit checks.
#include "plf_lint/lint.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace plf::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PLF_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Count findings of `rule`; EXPECT no findings of any other rule.
int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      ++n;
    } else {
      ADD_FAILURE() << "unexpected cross-rule finding " << f.rule << " at "
                    << f.file << ":" << f.line << ": " << f.message;
    }
  }
  return n;
}

struct GoldenCase {
  const char* fixture;   ///< file under tests/lint_fixtures/
  const char* relpath;   ///< path the fixture pretends to live at
  const char* rule;      ///< the one rule expected to fire, exactly once
};

const GoldenCase kGolden[] = {
    {"kernel_contract.cpp", "src/core/kernels_bad.cpp", "kernel-contract"},
    {"prof_name_constant.cpp", "src/obs/prof_bad.cpp", "prof-name-constant"},
    {"metric_name_constant.cpp", "src/mcmc/publish_bad.cpp",
     "prof-name-constant"},
    {"raw_thread.cpp", "src/mcmc/spawn_bad.cpp", "raw-thread"},
    {"float_equality.cpp", "src/numerics/conv_bad.cpp", "float-equality"},
    {"atomic_memory_order.cpp", "src/obs/atomic_bad.cpp",
     "atomic-memory-order"},
    {"arena_contract.cpp", "src/core/clv_arena.cpp", "arena-contract"},
    {"checkpoint_serializer.cpp", "src/mcmc/ckpt_bad.cpp",
     "checkpoint-serializer"},
};

TEST(LintGolden, EachRuleFiresExactlyOnce) {
  for (const GoldenCase& c : kGolden) {
    SCOPED_TRACE(c.fixture);
    const std::string text = read_fixture(c.fixture);
    const std::vector<Finding> findings = lint_source(c.relpath, text);
    EXPECT_EQ(count_rule(findings, c.rule), 1);
  }
}

TEST(LintGolden, SuppressionSilencesTheFinding) {
  for (const GoldenCase& c : kGolden) {
    SCOPED_TRACE(c.fixture);
    std::vector<Finding> findings = lint_source(c.relpath, read_fixture(c.fixture));
    ASSERT_FALSE(findings.empty());
    const std::vector<Suppression> sups = {
        Suppression{c.rule, c.relpath, -1, "golden test"}};
    apply_suppressions(findings, sups);
    for (const Finding& f : findings) {
      EXPECT_TRUE(f.suppressed) << f.rule << " at " << f.file << ":" << f.line;
    }
  }
}

TEST(LintGolden, WrongRuleOrFileDoesNotSuppress) {
  const GoldenCase& c = kGolden[0];
  std::vector<Finding> findings = lint_source(c.relpath, read_fixture(c.fixture));
  ASSERT_FALSE(findings.empty());
  apply_suppressions(findings, {Suppression{"raw-thread", c.relpath, -1, "x"}});
  apply_suppressions(findings,
                     {Suppression{c.rule, "src/core/other.cpp", -1, "x"}});
  apply_suppressions(findings, {Suppression{c.rule, c.relpath, 99999, "x"}});
  for (const Finding& f : findings) EXPECT_FALSE(f.suppressed);
}

TEST(LintGolden, KnownGoodKernelEntryIsClean) {
  const std::vector<Finding> findings = lint_source(
      "src/core/kernels_ok.cpp", read_fixture("kernel_contract_ok.cpp"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintGolden, KnownGoodArenaEntryIsClean) {
  const std::vector<Finding> findings = lint_source(
      "src/core/clv_arena.cpp", read_fixture("arena_contract_ok.cpp"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintGolden, OutOfScopePathsAreExempt) {
  // The same bad text outside the rule's scope must not fire: rules encode
  // project layout, not universal style.
  EXPECT_TRUE(lint_source("tests/foo.cpp", read_fixture("raw_thread.cpp"))
                  .empty());
  EXPECT_TRUE(
      lint_source("src/par/pool_extra.cpp", read_fixture("raw_thread.cpp"))
          .empty());
  EXPECT_TRUE(lint_source("src/obs/conv.cpp", read_fixture("float_equality.cpp"))
                  .empty());
  // The ULP helper header itself is the one numeric file allowed to compare.
  EXPECT_TRUE(
      lint_source("src/numerics/ulp.hpp", read_fixture("float_equality.cpp"))
          .empty());
  // kernels.cpp (dispatch table) is not a kernels_*.cpp kernel file.
  EXPECT_TRUE(
      lint_source("src/core/kernels.cpp", read_fixture("kernel_contract.cpp"))
          .empty());
  // The arena rule binds to the one file that defines ClvArena's methods.
  EXPECT_TRUE(
      lint_source("src/core/engine.cpp", read_fixture("arena_contract.cpp"))
          .empty());
  // The instance scheduler's driver threads are sanctioned, like the pool's.
  EXPECT_TRUE(
      lint_source("src/exec/scheduler.cpp", read_fixture("raw_thread.cpp"))
          .empty());
  // The serializer itself is the one place allowed to touch raw bytes.
  EXPECT_TRUE(lint_source("src/util/serialize.cpp",
                          read_fixture("checkpoint_serializer.cpp"))
                  .empty());
}

TEST(LintGolden, KnownGoodCheckpointSerializerIsClean) {
  const std::vector<Finding> findings = lint_source(
      "src/mcmc/ckpt_ok.cpp", read_fixture("checkpoint_serializer_ok.cpp"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintTokenizer, SkipsCommentsAndFoldsStrings) {
  const std::vector<Token> t = tokenize(
      "int a = 1; // b == 2\n"
      "/* c != 3 */ const char* s = \"x == y\";\n");
  for (const Token& tok : t) {
    EXPECT_NE(tok.text, "b");
    EXPECT_NE(tok.text, "c");
  }
  bool saw_string = false;
  for (const Token& tok : t) {
    if (tok.kind == Token::Kind::kString) {
      saw_string = true;
      EXPECT_EQ(tok.text, "\"x == y\"");
      EXPECT_EQ(tok.line, 2);
    }
  }
  EXPECT_TRUE(saw_string);
}

TEST(LintTokenizer, KeepsScopeAndComparisonOperatorsWhole) {
  const std::vector<Token> t = tokenize("std::thread x; a == b; c != d;");
  int scopes = 0, eq = 0, ne = 0;
  for (const Token& tok : t) {
    if (tok.text == "::") ++scopes;
    if (tok.text == "==") ++eq;
    if (tok.text == "!=") ++ne;
  }
  EXPECT_EQ(scopes, 1);
  EXPECT_EQ(eq, 1);
  EXPECT_EQ(ne, 1);
}

TEST(LintRules, ExplicitMemoryOrderPasses) {
  const char* src =
      "#include <atomic>\n"
      "std::atomic<int> g{0};\n"
      "int f() { return g.fetch_add(1, std::memory_order_relaxed); }\n";
  EXPECT_TRUE(lint_source("src/obs/ok.cpp", src).empty());
}

TEST(LintRules, AtomicDeclaredInHeaderCaughtInCppViaContext) {
  Context ctx;
  scan_context("class P { std::atomic<bool> flag_{false}; };", ctx);
  ASSERT_EQ(ctx.atomic_names.count("flag_"), 1u);
  const std::vector<Finding> findings = lint_source(
      "src/par/p_extra_impl.cpp", "void f(P& p) { p.flag_.store(true); }", &ctx);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "atomic-memory-order");
}

TEST(LintRules, NonAtomicStoreIsNotFlagged) {
  // Vec4-style value types also have .store(); only declared atomics count.
  const char* src = "void f(Vec4f v, float* out) { v.store(out); }\n";
  EXPECT_TRUE(lint_source("src/simd/v.cpp", src).empty());
}

TEST(LintRules, ConstantProfNamePasses) {
  const char* src =
      "#include \"obs/profile.hpp\"\n"
      "void f() { PLF_PROF_SCOPE(obs::kTimerParRegion); }\n";
  EXPECT_TRUE(lint_source("src/core/f.cpp", src).empty());
}

TEST(LintRules, RegistryInternWithConstantOrPrefixPasses) {
  // Interning through a names.hpp constant — or a prefix constant completed
  // with a dynamic suffix — is the sanctioned pattern; only a string literal
  // as the first argument token fires.
  const char* src =
      "#include \"obs/metrics.hpp\"\n"
      "void f(plf::obs::MetricsRegistry& r, const std::string& n) {\n"
      "  r.set_gauge(r.gauge(obs::kGaugeMcmcColdEss), 1.0);\n"
      "  r.set_gauge(r.gauge(std::string(obs::kGaugeMcmcProposedPrefix) + n),\n"
      "              2.0);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/mcmc/f.cpp", src).empty());
}

TEST(LintReport, JsonShapeAndCounts) {
  std::vector<Finding> findings = {
      Finding{"src/a.cpp", 3, "raw-thread", "msg \"quoted\"", false},
      Finding{"src/b.cpp", 7, "float-equality", "msg2", true},
  };
  const std::string json = findings_to_json(findings);
  EXPECT_NE(json.find("\"schema\":\"plf-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":1"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(LintReport, CheckedInSuppressionFileLoads) {
  // The real suppression file must always parse: CI depends on it, and a
  // malformed entry must fail tests before it fails the pipeline.
  const std::vector<Suppression> sups =
      load_suppressions(std::string(PLF_LINT_SUPPRESSIONS_FILE));
  for (const Suppression& s : sups) {
    EXPECT_FALSE(s.reason.empty());
    EXPECT_FALSE(s.file.empty());
  }
  EXPECT_LE(sups.size(), 10u) << "suppression budget exceeded "
                                 "(docs/STATIC_ANALYSIS.md caps it at 10)";
}

}  // namespace
}  // namespace plf::lint
