#include <gtest/gtest.h>

#include <cmath>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace plf::core {
namespace {

using phylo::Alignment;
using phylo::GtrParams;
using phylo::PatternMatrix;
using phylo::SubstitutionModel;
using phylo::Tree;

/// A small but non-trivial test instance: 8 taxa, simulated data.
struct Instance {
  Tree tree;
  GtrParams params;
  PatternMatrix data;

  static Instance make(std::size_t taxa = 8, std::size_t cols = 120,
                       std::uint64_t seed = 77) {
    Rng rng(seed);
    Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
    GtrParams params = seqgen::default_gtr_params();
    SubstitutionModel model(params);
    seqgen::SequenceEvolver evolver(tree, model);
    Alignment aln = evolver.evolve(cols, rng);
    return Instance{std::move(tree), params, PatternMatrix::compress(aln)};
  }
};

TEST(EngineTest, MatchesDoublePrecisionReference) {
  auto inst = Instance::make();
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double got = engine.log_likelihood();
  const double ref = test::reference_log_likelihood(
      inst.tree, SubstitutionModel(inst.params), inst.data);
  EXPECT_NEAR(got, ref, std::abs(ref) * 1e-4);
}

TEST(EngineTest, AllKernelVariantsAgree) {
  auto inst = Instance::make();
  SerialBackend backend;
  PlfEngine ref_engine(inst.data, inst.params, inst.tree, backend,
                       KernelVariant::kScalar);
  const double ref = ref_engine.log_likelihood();
  for (auto v : {KernelVariant::kSimdRow, KernelVariant::kSimdCol,
                 KernelVariant::kSimdCol8}) {
    PlfEngine engine(inst.data, inst.params, inst.tree, backend, v);
    EXPECT_NEAR(engine.log_likelihood(), ref, std::abs(ref) * 1e-5)
        << to_string(v);
  }
}

TEST(EngineTest, ThreadedBackendMatchesSerial) {
  auto inst = Instance::make(10, 200);
  SerialBackend serial;
  PlfEngine se(inst.data, inst.params, inst.tree, serial);
  const double ref = se.log_likelihood();
  for (std::size_t threads : {2u, 3u, 5u}) {
    par::ThreadPool pool(threads);
    ThreadedBackend tb(pool);
    PlfEngine engine(inst.data, inst.params, inst.tree, tb);
    EXPECT_NEAR(engine.log_likelihood(), ref, std::abs(ref) * 1e-6)
        << threads << " threads";
  }
}

TEST(EngineTest, InvariantUnderRerooting) {
  auto inst = Instance::make(7, 90, 123);
  SerialBackend backend;
  PlfEngine base(inst.data, inst.params, inst.tree, backend);
  const double ref = base.log_likelihood();
  for (int og : {1, 3, 6}) {
    PlfEngine engine(inst.data, inst.params, inst.tree.rerooted(og), backend);
    EXPECT_NEAR(engine.log_likelihood(), ref, std::abs(ref) * 1e-5)
        << "outgroup " << og;
  }
}

TEST(EngineTest, PatternCompressionInvariance) {
  // Likelihood of the uncompressed alignment equals that of the compressed
  // pattern matrix (weights account for multiplicity).
  Rng rng(5);
  Tree tree = seqgen::yule_tree(6, rng, 1.0, 0.1);
  GtrParams params = seqgen::default_gtr_params();
  SubstitutionModel model(params);
  seqgen::SequenceEvolver evolver(tree, model);
  Alignment aln = evolver.evolve(80, rng);

  // Uncompressed: every column is its own pattern with weight 1.
  std::vector<std::vector<phylo::StateMask>> cols;
  for (std::size_t c = 0; c < aln.n_columns(); ++c) {
    std::vector<phylo::StateMask> col(aln.n_taxa());
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) col[t] = aln.at(t, c);
    cols.push_back(std::move(col));
  }
  PatternMatrix uncompressed = PatternMatrix::from_patterns(
      aln.names(), cols, std::vector<std::uint32_t>(cols.size(), 1));
  PatternMatrix compressed = PatternMatrix::compress(aln);
  ASSERT_LT(compressed.n_patterns(), uncompressed.n_patterns());

  SerialBackend backend;
  PlfEngine e1(uncompressed, params, tree, backend);
  PlfEngine e2(compressed, params, tree, backend);
  EXPECT_NEAR(e1.log_likelihood(), e2.log_likelihood(),
              std::abs(e1.log_likelihood()) * 1e-6);
}

TEST(EngineTest, DirtyUpdateEqualsFullRecompute) {
  auto inst = Instance::make(9, 150, 321);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  engine.log_likelihood();

  // Mutate a few branches incrementally.
  Rng rng(9);
  for (int step = 0; step < 10; ++step) {
    const auto branches = engine.tree().branch_nodes();
    const int b = branches[rng.below(branches.size())];
    const double len = rng.uniform(0.01, 0.5);
    engine.set_branch_length(b, len);
    const double incremental = engine.log_likelihood();

    // Fresh engine sees the same tree: full recompute.
    PlfEngine fresh(inst.data, inst.params, engine.tree(), backend);
    EXPECT_NEAR(fresh.log_likelihood(), incremental,
                std::abs(incremental) * 1e-6)
        << "step " << step;
  }
}

TEST(EngineTest, NniUpdateEqualsFullRecompute) {
  auto inst = Instance::make(10, 100, 55);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  engine.log_likelihood();

  Rng rng(4);
  for (int step = 0; step < 8; ++step) {
    const auto edges = engine.tree().internal_edge_nodes();
    engine.apply_nni(edges[rng.below(edges.size())], rng.uniform() < 0.5);
    const double incremental = engine.log_likelihood();
    PlfEngine fresh(inst.data, inst.params, engine.tree(), backend);
    EXPECT_NEAR(fresh.log_likelihood(), incremental,
                std::abs(incremental) * 1e-6);
  }
}

TEST(EngineTest, RejectRestoresStateExactly) {
  auto inst = Instance::make(8, 100, 99);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double before = engine.log_likelihood();
  const std::string newick_before = engine.tree().to_newick();

  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    engine.begin_proposal();
    // Mixed mutation: a branch change, an NNI, sometimes a model change.
    const auto branches = engine.tree().branch_nodes();
    engine.set_branch_length(branches[rng.below(branches.size())],
                             rng.uniform(0.01, 1.0));
    const auto edges = engine.tree().internal_edge_nodes();
    engine.apply_nni(edges[rng.below(edges.size())], rng.uniform() < 0.5);
    if (trial % 3 == 0) {
      auto p = engine.model_params();
      p.gamma_shape *= 1.3;
      engine.set_model(p);
    }
    const double proposed = engine.log_likelihood();
    EXPECT_NE(proposed, before);
    engine.reject();
    EXPECT_DOUBLE_EQ(engine.log_likelihood(), before) << "trial " << trial;
    EXPECT_EQ(engine.tree().to_newick(), newick_before);
  }
}

TEST(EngineTest, RejectAfterEvaluatingPreProposalDirtyStateRecomputes) {
  // Regression: state that was dirty BEFORE a proposal opened (here: the
  // whole engine — the very first evaluation happens inside the proposal)
  // has no valid pre-proposal buffer. reject() used to flip such nodes and
  // branches back to never-built buffers and leave them clean, so the next
  // evaluation consumed garbage (empty tip partials, zeroed CLVs). The fix
  // re-marks pre-proposal-dirty entries dirty on reject.
  auto inst = Instance::make(10, 150, 5151);
  SerialBackend backend;
  PlfEngine fresh(inst.data, inst.params, inst.tree, backend);
  const double expect = fresh.log_likelihood();

  // Never-evaluated engine: propose, evaluate inside the proposal, reject.
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const auto edges = engine.tree().internal_edge_nodes();
  engine.begin_proposal();
  engine.apply_nni(edges[0], true);
  (void)engine.log_likelihood();
  engine.reject();
  EXPECT_EQ(engine.log_likelihood(), expect);

  // Same shape mid-run: dirty a path outside a proposal, evaluate it only
  // inside the next proposal, reject — the path must be recomputed, not
  // trusted from the flipped-back buffers.
  const int leaf = engine.tree().leaf_of(3);
  const double old_len = engine.tree().branch_length(leaf);
  engine.set_branch_length(leaf, old_len * 3.0);
  engine.begin_proposal();
  engine.apply_nni(edges[1 % edges.size()], false);
  (void)engine.log_likelihood();
  engine.reject();
  engine.set_branch_length(leaf, old_len);
  EXPECT_EQ(engine.log_likelihood(), expect);
}

TEST(EngineTest, MultiEvaluationProposalRejectRestores) {
  // Regression: a proposal that mutates and evaluates REPEATEDLY (as Brent
  // branch optimization does) must still restore exactly on reject. The
  // original touch/flip scheme flipped a twice-recomputed node back INTO its
  // own proposal buffer, destroying the pre-proposal state.
  auto inst = Instance::make(8, 120, 77);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double before = engine.log_likelihood();

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    engine.begin_proposal();
    // Repeated mutate+evaluate cycles on overlapping branches: every node on
    // the shared root path gets recomputed many times within one proposal.
    for (int step = 0; step < 6; ++step) {
      const auto branches = engine.tree().branch_nodes();
      engine.set_branch_length(branches[rng.below(branches.size())],
                               rng.uniform(0.01, 1.0));
      engine.log_likelihood();
    }
    engine.reject();
    ASSERT_DOUBLE_EQ(engine.log_likelihood(), before) << "trial " << trial;
    // Deep check: state equals a fresh engine on the same tree/model.
    PlfEngine fresh(inst.data, engine.model_params(), engine.tree(), backend);
    ASSERT_NEAR(fresh.log_likelihood(), before, std::abs(before) * 1e-6);
  }
}

TEST(EngineTest, MultiEvaluationProposalAcceptKeepsFinalState) {
  auto inst = Instance::make(8, 100, 78);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  engine.log_likelihood();

  engine.begin_proposal();
  const int b = engine.tree().branch_nodes()[3];
  engine.set_branch_length(b, 0.9);
  engine.log_likelihood();
  engine.set_branch_length(b, 0.2);
  const double last = engine.log_likelihood();
  engine.accept();
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), last);
  PlfEngine fresh(inst.data, inst.params, engine.tree(), backend);
  EXPECT_NEAR(fresh.log_likelihood(), last, std::abs(last) * 1e-6);
}

TEST(EngineTest, RejectWithoutEvaluationRestores) {
  auto inst = Instance::make(8, 60, 31);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double before = engine.log_likelihood();

  engine.begin_proposal();
  engine.set_branch_length(engine.tree().branch_nodes()[0], 2.0);
  engine.reject();  // never evaluated the proposal
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), before);
}

TEST(EngineTest, AcceptKeepsNewState) {
  auto inst = Instance::make(8, 60, 32);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  engine.log_likelihood();

  engine.begin_proposal();
  const int b = engine.tree().branch_nodes()[2];
  engine.set_branch_length(b, 0.77);
  const double proposed = engine.log_likelihood();
  engine.accept();
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), proposed);
  EXPECT_DOUBLE_EQ(engine.tree().branch_length(b), 0.77);
}

TEST(EngineTest, SequentialProposalsAcceptRejectChain) {
  // Simulates an MCMC inner loop and cross-checks against recompute-from-
  // scratch at the end.
  auto inst = Instance::make(9, 80, 44);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  engine.log_likelihood();

  Rng rng(77);
  for (int step = 0; step < 50; ++step) {
    engine.begin_proposal();
    const auto branches = engine.tree().branch_nodes();
    engine.set_branch_length(branches[rng.below(branches.size())],
                             rng.uniform(0.005, 0.8));
    if (rng.uniform() < 0.4) {
      const auto edges = engine.tree().internal_edge_nodes();
      engine.apply_nni(edges[rng.below(edges.size())], rng.uniform() < 0.5);
    }
    engine.log_likelihood();
    if (rng.uniform() < 0.5) {
      engine.accept();
    } else {
      engine.reject();
    }
  }
  const double chained = engine.log_likelihood();
  PlfEngine fresh(inst.data, inst.params, engine.tree(), backend);
  EXPECT_NEAR(fresh.log_likelihood(), chained, std::abs(chained) * 1e-6);
}

TEST(EngineTest, StatsCountCalls) {
  auto inst = Instance::make(8, 50, 3);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  engine.log_likelihood();
  const auto& s = engine.stats();
  // 8 taxa -> 6 internal nodes: 5 down + 1 root, each scaled; one reduce.
  EXPECT_EQ(s.down_calls, 5u);
  EXPECT_EQ(s.root_calls, 1u);
  EXPECT_EQ(s.scale_calls, 6u);
  EXPECT_EQ(s.reduce_calls, 1u);
  EXPECT_EQ(s.tm_builds, engine.tree().n_nodes() - 1);
  EXPECT_GT(s.pattern_iterations, 0u);

  // A clean engine does no further work.
  engine.log_likelihood();
  EXPECT_EQ(engine.stats().down_calls, 5u);

  // One leaf branch change: path to root recomputed only.
  engine.set_branch_length(engine.tree().leaf_of(1), 0.3);
  engine.log_likelihood();
  EXPECT_LT(engine.stats().down_calls, 11u);

  engine.reset_stats();
  EXPECT_EQ(engine.stats().down_calls, 0u);
}

TEST(EngineTest, GapColumnsContributeNoSignal) {
  // A data set where one taxon is all gaps must equal the likelihood where
  // that taxon's row is fully ambiguous — and all-gap columns give lnL
  // contributions equal to log(1 * scalers) ~ 0 influence beyond the prior
  // structure. We check the engine handles gap masks without error and the
  // lnL is finite.
  Alignment aln({"a", "b", "c", "d"},
                {"ACGT----", "ACGTACGT", "ACGAACGT", "ACTTACGT"});
  auto data = PatternMatrix::compress(aln);
  Rng rng(6);
  Tree tree = seqgen::yule_tree(4, rng, 1.0, 0.2);
  SerialBackend backend;
  PlfEngine engine(data, seqgen::default_gtr_params(), tree, backend);
  const double ln = engine.log_likelihood();
  EXPECT_TRUE(std::isfinite(ln));
  EXPECT_LT(ln, 0.0);
}

TEST(EngineTest, DeepTreeScalingPreventsUnderflow) {
  // 40 taxa with appreciable branch lengths: unscaled single-precision
  // likelihoods would underflow; per-node rescaling must keep lnL finite and
  // match the double-precision reference (which itself needs no scaling in
  // doubles for this size).
  Rng rng(8);
  Tree tree = seqgen::yule_tree(40, rng, 1.0, 0.3);
  GtrParams params = seqgen::default_gtr_params();
  SubstitutionModel model(params);
  seqgen::SequenceEvolver evolver(tree, model);
  Alignment aln = evolver.evolve(40, rng);
  auto data = PatternMatrix::compress(aln);

  SerialBackend backend;
  PlfEngine engine(data, params, tree, backend);
  const double got = engine.log_likelihood();
  EXPECT_TRUE(std::isfinite(got));
  const double ref = test::reference_log_likelihood(tree, model, data);
  EXPECT_NEAR(got, ref, std::abs(ref) * 1e-4);
}

TEST(EngineTest, MismatchedTaxaRejected) {
  auto inst = Instance::make(8, 30, 1);
  Rng rng(1);
  Tree small = seqgen::yule_tree(5, rng, 1.0, 0.1);
  SerialBackend backend;
  EXPECT_THROW(PlfEngine(inst.data, inst.params, small, backend), Error);
}

}  // namespace
}  // namespace plf::core
