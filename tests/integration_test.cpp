// End-to-end integration: the full Bayesian pipeline (data -> patterns ->
// engine -> MCMC -> summaries) on EVERY execution backend, plus consistency
// of the measured workload across backends (the property the architecture
// study depends on: the PLF call pattern is a property of the algorithm,
// not of the hardware).
#include <gtest/gtest.h>

#include <cmath>

#include "cell/machine.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "gpu/plf_gpu.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/consensus.hpp"
#include "phylo/nexus.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"

namespace plf {
namespace {

struct Pipeline {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;

  static Pipeline make(std::uint64_t seed) {
    Rng rng(seed);
    phylo::Tree tree = seqgen::yule_tree(8, rng, 1.0, 0.15);
    phylo::GtrParams params = seqgen::default_gtr_params();
    phylo::SubstitutionModel model(params);
    seqgen::SequenceEvolver ev(tree, model);
    auto aln = ev.evolve(200, rng);
    return Pipeline{std::move(tree), params,
                    phylo::PatternMatrix::compress(aln)};
  }
};

mcmc::McmcResult run_chain(Pipeline& p, core::ExecutionBackend& backend,
                           std::uint64_t gens) {
  core::PlfEngine engine(p.data, p.params, p.tree, backend);
  mcmc::McmcOptions opts;
  opts.seed = 99;
  mcmc::McmcChain chain(engine, opts);
  return chain.run(gens);
}

TEST(IntegrationTest, IdenticalMcmcTrajectoryOnEveryBackend) {
  // With the same seed and the same kernel variant, accept/reject decisions
  // — and therefore the whole trajectory — must agree across serial,
  // threaded, Cell-sim and GPU-sim backends (lnL differences are below the
  // MH decision noise for this instance).
  auto p1 = Pipeline::make(7);
  core::SerialBackend serial;
  const auto ref = run_chain(p1, serial, 300);

  {
    auto p = Pipeline::make(7);
    par::ThreadPool pool(2);
    core::ThreadedBackend threads(pool);
    const auto r = run_chain(p, threads, 300);
    EXPECT_EQ(r.total_accepted(), ref.total_accepted());
    EXPECT_EQ(r.final_tree_newick, ref.final_tree_newick);
  }
  {
    auto p = Pipeline::make(7);
    cell::CellConfig cfg;
    cfg.n_spes = 6;
    cell::CellMachine machine(cfg);
    const auto r = run_chain(p, machine, 300);
    EXPECT_EQ(r.total_accepted(), ref.total_accepted());
    EXPECT_EQ(r.final_tree_newick, ref.final_tree_newick);
    EXPECT_GT(machine.simulated_seconds(), 0.0);
  }
  {
    auto p = Pipeline::make(7);
    gpu::GpuPlfConfig cfg;
    gpu::GpuPlf device(cfg);
    const auto r = run_chain(p, device, 300);
    EXPECT_EQ(r.total_accepted(), ref.total_accepted());
    EXPECT_EQ(r.final_tree_newick, ref.final_tree_newick);
    EXPECT_GT(device.stats().pcie_s, 0.0);
  }
}

TEST(IntegrationTest, WorkloadCountsIdenticalAcrossBackends) {
  // The PLF call counts (Fig. 9-12's workload descriptor) are a property of
  // the chain, not of the executing hardware.
  auto p1 = Pipeline::make(8);
  core::SerialBackend serial;
  const auto ref = run_chain(p1, serial, 200);

  auto p2 = Pipeline::make(8);
  cell::CellConfig cfg;
  cfg.n_spes = 4;
  cell::CellMachine machine(cfg);
  const auto cell_r = run_chain(p2, machine, 200);

  EXPECT_EQ(cell_r.engine_stats.down_calls, ref.engine_stats.down_calls);
  EXPECT_EQ(cell_r.engine_stats.root_calls, ref.engine_stats.root_calls);
  EXPECT_EQ(cell_r.engine_stats.scale_calls, ref.engine_stats.scale_calls);
  EXPECT_EQ(cell_r.engine_stats.tm_builds, ref.engine_stats.tm_builds);
}

TEST(IntegrationTest, NexusRoundTripThroughFullAnalysis) {
  // Simulate -> write NEXUS -> parse -> analyze: formats and engine agree.
  auto p = Pipeline::make(9);
  std::ostringstream os;
  // Rebuild the alignment from patterns is lossy (weights); simulate anew.
  Rng rng(9);
  phylo::Tree tree = seqgen::yule_tree(6, rng, 1.0, 0.15);
  phylo::SubstitutionModel model(seqgen::default_gtr_params());
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(120, rng);
  phylo::write_nexus(os, aln, {{"truth", tree.to_newick()}});

  const auto nx = phylo::parse_nexus(os.str());
  ASSERT_TRUE(nx.has_alignment);
  const auto data = phylo::PatternMatrix::compress(nx.alignment);
  const phylo::Tree parsed_tree =
      phylo::Tree::from_newick(nx.trees[0].second, nx.alignment.names());
  EXPECT_TRUE(parsed_tree.same_topology(tree));

  core::SerialBackend backend;
  core::PlfEngine from_nexus(data, seqgen::default_gtr_params(), parsed_tree,
                             backend);
  core::SerialBackend backend2;
  core::PlfEngine direct(phylo::PatternMatrix::compress(aln),
                         seqgen::default_gtr_params(), tree, backend2);
  // Newick serialization carries 6 significant digits of branch length,
  // so the round-tripped likelihood agrees to that precision only.
  EXPECT_NEAR(from_nexus.log_likelihood(), direct.log_likelihood(),
              std::abs(direct.log_likelihood()) * 1e-6);
}

TEST(IntegrationTest, ConsensusFromChainOnSimulatedBackend) {
  // MCMC on the simulated Cell, posterior summary at the end — the whole
  // MrBayes loop on simulated 2009 hardware.
  auto p = Pipeline::make(11);
  cell::CellConfig cfg;
  cfg.n_spes = 6;
  cell::CellMachine machine(cfg);
  core::PlfEngine engine(p.data, p.params, p.tree, machine);
  mcmc::McmcOptions opts;
  opts.seed = 4;
  opts.sample_every = 25;
  opts.collect_trees = true;
  mcmc::McmcChain chain(engine, opts);
  const auto result = chain.run(500);

  mcmc::TreeSampleSummary summary;
  for (const auto& nwk : result.sampled_trees) summary.add_newick(nwk);
  EXPECT_EQ(summary.n_trees(), result.sampled_trees.size());
  EXPECT_FALSE(summary.majority_rule_newick().empty());
  EXPECT_GT(machine.stats().plf_invocations, 500u);
}

}  // namespace
}  // namespace plf
