#include <gtest/gtest.h>

#include <cmath>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/proposals.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/rng.hpp"

namespace plf::mcmc {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed,
                       double scale = 0.15) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, scale);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

TEST(DirichletPdfTest, NormalizedAndKnownValues) {
  // Dirichlet(1,1) is uniform on the 1-simplex: pdf == 1 everywhere.
  EXPECT_NEAR(dirichlet_log_pdf({1.0, 1.0}, {0.3, 0.7}), 0.0, 1e-12);
  // Dirichlet(2,2): pdf(x) = 6 x (1-x); at x=0.5 -> 1.5.
  EXPECT_NEAR(dirichlet_log_pdf({2.0, 2.0}, {0.5, 0.5}), std::log(1.5), 1e-12);
  // Zero coordinate with alpha > 1: -inf.
  EXPECT_EQ(dirichlet_log_pdf({2.0, 2.0}, {0.0, 1.0}),
            -std::numeric_limits<double>::infinity());
}

TEST(McmcTest, DeterministicForFixedSeed) {
  auto inst = make_instance(8, 100, 1);
  core::SerialBackend b1, b2;
  core::PlfEngine e1(inst.data, inst.params, inst.tree, b1);
  core::PlfEngine e2(inst.data, inst.params, inst.tree, b2);
  McmcOptions opts;
  opts.seed = 42;
  McmcChain c1(e1, opts), c2(e2, opts);
  const auto r1 = c1.run(300);
  const auto r2 = c2.run(300);
  EXPECT_EQ(r1.final_ln_likelihood, r2.final_ln_likelihood);
  EXPECT_EQ(r1.final_tree_newick, r2.final_tree_newick);
  EXPECT_EQ(r1.total_accepted(), r2.total_accepted());
}

TEST(McmcTest, DifferentSeedsDiverge) {
  auto inst = make_instance(8, 100, 2);
  core::SerialBackend b1, b2;
  core::PlfEngine e1(inst.data, inst.params, inst.tree, b1);
  core::PlfEngine e2(inst.data, inst.params, inst.tree, b2);
  McmcOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  McmcChain c1(e1, o1), c2(e2, o2);
  EXPECT_NE(c1.run(200).final_ln_likelihood, c2.run(200).final_ln_likelihood);
}

TEST(McmcTest, ImprovesFromPerturbedStart) {
  // Start from the true data-generating tree with badly scaled branches:
  // the chain must climb in likelihood.
  auto inst = make_instance(10, 300, 3);
  phylo::Tree start = inst.tree;
  for (int b : start.branch_nodes()) start.set_branch_length(b, 0.5);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, start, backend);
  const double initial = engine.log_likelihood();
  McmcOptions opts;
  opts.seed = 7;
  McmcChain chain(engine, opts);
  const auto result = chain.run(2000);
  EXPECT_GT(result.final_ln_likelihood, initial + 50.0);
  EXPECT_GE(result.best_ln_likelihood, result.final_ln_likelihood);
}

TEST(McmcTest, AcceptanceRatesReasonable) {
  auto inst = make_instance(10, 200, 4);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 11;
  McmcChain chain(engine, opts);
  const auto result = chain.run(3000);
  // Started at (almost) the true state: branch moves should accept at a
  // healthy intermediate rate, not ~0 or ~1.
  const auto& bl = result.proposals.at("branch-multiplier");
  EXPECT_GT(bl.proposed, 500u);
  EXPECT_GT(bl.acceptance_rate(), 0.1);
  EXPECT_LT(bl.acceptance_rate(), 0.9);
  // Every move type was tried.
  EXPECT_EQ(result.proposals.size(), 5u);
  EXPECT_EQ(result.total_proposed(), 3000u);
}

TEST(McmcTest, ChainStateConsistentWithFreshEngine) {
  // After a long accept/reject sequence the engine's incremental state must
  // equal a from-scratch evaluation of the final tree+model.
  auto inst = make_instance(9, 150, 5);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 13;
  McmcChain chain(engine, opts);
  chain.run(500);

  core::SerialBackend backend2;
  core::PlfEngine fresh(inst.data, engine.model_params(), engine.tree(),
                        backend2);
  EXPECT_NEAR(fresh.log_likelihood(), chain.ln_likelihood(),
              std::abs(chain.ln_likelihood()) * 1e-6);
}

TEST(McmcTest, RecoversTrueTopologyOnCleanData) {
  // Strong signal (long alignment, moderate divergence): the chain should
  // find the generating topology from a random start.
  Rng rng(99);
  phylo::Tree true_tree = seqgen::yule_tree(7, rng, 1.0, 0.12);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(true_tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(2000, rng));

  phylo::Tree start = seqgen::yule_tree(7, rng, 1.0, 0.12);  // random topology
  core::SerialBackend backend;
  core::PlfEngine engine(data, params, start, backend);
  McmcOptions opts;
  opts.seed = 21;
  opts.w_nni = 6.0;  // emphasize topology search
  McmcChain chain(engine, opts);
  chain.run(4000);
  EXPECT_TRUE(engine.tree().same_topology(true_tree))
      << "found: " << engine.tree().to_newick()
      << "\ntrue: " << true_tree.to_newick();
}

TEST(McmcTest, SamplesCollectedAtRequestedCadence) {
  auto inst = make_instance(8, 80, 6);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 3;
  opts.sample_every = 50;
  McmcChain chain(engine, opts);
  const auto result = chain.run(500);
  // initial sample + one per 50 generations.
  EXPECT_EQ(result.samples.size(), 11u);
  EXPECT_EQ(result.samples.front().generation, 0u);
  EXPECT_EQ(result.samples.back().generation, 500u);
}

TEST(McmcTest, WorkloadBridgeCountsMatchEngine) {
  auto inst = make_instance(12, 120, 7);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 17;
  McmcChain chain(engine, opts);
  const auto result = chain.run(400);

  const auto w = workload_from_run(result, inst.data.n_patterns(), 4, 12);
  EXPECT_EQ(w.down_calls, result.engine_stats.down_calls);
  EXPECT_EQ(w.root_calls, result.engine_stats.root_calls);
  EXPECT_EQ(w.reduce_calls, result.engine_stats.reduce_calls);
  EXPECT_GT(w.plf_calls(), 400u);  // at least one node per generation
  EXPECT_GE(w.serial_cycles, 0.0);
}

TEST(McmcTest, AnalyticWorkloadApproximatesMeasured) {
  // The arch module's analytic fallback should land within ~35% of a real
  // chain's measured call counts (it models an average proposal mix).
  auto inst = make_instance(20, 300, 8);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 23;
  McmcChain chain(engine, opts);
  const std::uint64_t gens = 2000;
  const auto result = chain.run(gens);
  const auto measured = workload_from_run(result, inst.data.n_patterns(), 4, 20);
  const auto analytic = arch::analytic_mcmc_workload(20, inst.data.n_patterns(), gens);

  const double ratio = static_cast<double>(analytic.plf_calls()) /
                       static_cast<double>(measured.plf_calls());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 1.6);
}

TEST(McmcTest, TopologyFrozenWhenNniWeightZero) {
  auto inst = make_instance(9, 100, 9);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 29;
  opts.w_nni = 0.0;
  McmcChain chain(engine, opts);
  chain.run(300);
  EXPECT_TRUE(engine.tree().same_topology(inst.tree));
}

}  // namespace
}  // namespace plf::mcmc
