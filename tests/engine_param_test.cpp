// Property-style sweep: the engine must agree with the independent
// double-precision reference for EVERY combination of rate-category count,
// kernel variant, and execution backend — the full cross-product the
// backends' partitioning logic has to survive (odd K breaks alignments,
// K=1 removes the Γ loop, simulated backends chunk the pattern range).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "cell/machine.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "gpu/plf_gpu.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"

namespace plf::core {
namespace {

enum class BackendKind { kSerial, kThreaded, kCell, kGpu };

const char* name_of(BackendKind b) {
  switch (b) {
    case BackendKind::kSerial: return "serial";
    case BackendKind::kThreaded: return "threaded";
    case BackendKind::kCell: return "cell";
    case BackendKind::kGpu: return "gpu";
  }
  return "?";
}

struct BackendHolder {
  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<ExecutionBackend> backend;

  static BackendHolder make(BackendKind kind) {
    BackendHolder h;
    switch (kind) {
      case BackendKind::kSerial:
        h.backend = std::make_unique<SerialBackend>();
        break;
      case BackendKind::kThreaded:
        h.pool = std::make_unique<par::ThreadPool>(3);
        h.backend = std::make_unique<ThreadedBackend>(*h.pool);
        break;
      case BackendKind::kCell: {
        cell::CellConfig cfg;
        cfg.n_spes = 5;
        h.backend = std::make_unique<cell::CellMachine>(cfg);
        break;
      }
      case BackendKind::kGpu:
        h.backend = std::make_unique<gpu::GpuPlf>(gpu::GpuPlfConfig{});
        break;
    }
    return h;
  }
};

using Param = std::tuple<std::size_t /*K*/, KernelVariant, BackendKind>;

class EngineSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(EngineSweepTest, MatchesReferenceLikelihood) {
  const std::size_t K = std::get<0>(GetParam());
  const KernelVariant variant = std::get<1>(GetParam());
  const BackendKind kind = std::get<2>(GetParam());

  Rng rng(1000 + K);
  phylo::Tree tree = seqgen::yule_tree(7, rng, 1.0, 0.2);
  phylo::GtrParams params = seqgen::default_gtr_params();
  params.n_rate_categories = K;
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(123, rng));

  BackendHolder h = BackendHolder::make(kind);
  PlfEngine engine(data, params, tree, *h.backend, variant);
  const double got = engine.log_likelihood();
  const double ref = test::reference_log_likelihood(tree, model, data);
  EXPECT_NEAR(got, ref, std::abs(ref) * 2e-4)
      << "K=" << K << " variant=" << to_string(variant) << " backend="
      << name_of(kind);

  // Incremental consistency after a mutation, on every combination.
  engine.set_branch_length(engine.tree().leaf_of(2), 0.33);
  const double incremental = engine.log_likelihood();
  BackendHolder h2 = BackendHolder::make(BackendKind::kSerial);
  PlfEngine fresh(data, params, engine.tree(), *h2.backend, variant);
  EXPECT_NEAR(fresh.log_likelihood(), incremental,
              std::abs(incremental) * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    FullCross, EngineSweepTest,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 3u, 4u, 6u),
        ::testing::Values(KernelVariant::kScalar, KernelVariant::kSimdCol,
                          KernelVariant::kSimdCol8),
        ::testing::Values(BackendKind::kSerial, BackendKind::kThreaded,
                          BackendKind::kCell, BackendKind::kGpu)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string v = to_string(std::get<1>(info.param));
      for (auto& c : v) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return "K" + std::to_string(std::get<0>(info.param)) + "_" + v + "_" +
             name_of(std::get<2>(info.param));
    });

}  // namespace
}  // namespace plf::core
