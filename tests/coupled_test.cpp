#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/coupled.hpp"
#include "mcmc/diagnostics.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"

namespace plf::mcmc {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

struct CoupledFixture {
  Instance inst;
  core::SerialBackend backends[4];
  std::vector<std::unique_ptr<core::PlfEngine>> engines;

  CoupledFixture(std::size_t n_chains, std::uint64_t seed)
      : inst(make_instance(8, 150, seed)) {
    for (std::size_t i = 0; i < n_chains; ++i) {
      engines.push_back(std::make_unique<core::PlfEngine>(
          inst.data, inst.params, inst.tree, backends[i]));
    }
  }

  /// The coupler takes ownership; the fixture's vector is consumed.
  std::vector<std::unique_ptr<core::PlfEngine>> take() {
    return std::move(engines);
  }
};

TEST(CoupledTest, BetaLadderMatchesMrBayesScheme) {
  CoupledFixture fx(4, 81);
  CoupledOptions opts;
  opts.heat = 0.2;
  CoupledChains mc3(fx.take(), opts);
  EXPECT_DOUBLE_EQ(mc3.beta(0), 1.0);
  EXPECT_DOUBLE_EQ(mc3.beta(1), 1.0 / 1.2);
  EXPECT_DOUBLE_EQ(mc3.beta(2), 1.0 / 1.4);
  EXPECT_DOUBLE_EQ(mc3.beta(3), 1.0 / 1.6);
}

TEST(CoupledTest, RunsAndSwaps) {
  CoupledFixture fx(4, 82);
  CoupledOptions opts;
  opts.chain.seed = 9;
  opts.swap_every = 5;
  opts.chain.sample_every = 50;
  CoupledChains mc3(fx.take(), opts);
  const auto result = mc3.run(1000);

  EXPECT_EQ(result.swaps_proposed, 200u);
  EXPECT_GT(result.swaps_accepted, 0u);
  EXPECT_LE(result.swaps_accepted, result.swaps_proposed);
  // All four chains stepped every generation.
  EXPECT_EQ(result.cold.total_proposed(), 4000u);
  EXPECT_EQ(result.final_ln_likelihoods.size(), 4u);
  // 1000/50 samples + initial.
  EXPECT_EQ(result.cold.samples.size(), 21u);
}

TEST(CoupledTest, DeterministicForFixedSeed) {
  CoupledOptions opts;
  opts.chain.seed = 5;
  opts.swap_every = 10;
  CoupledFixture f1(3, 83), f2(3, 83);
  CoupledChains a(f1.take(), opts), b(f2.take(), opts);
  const auto ra = a.run(400);
  const auto rb = b.run(400);
  EXPECT_EQ(ra.cold.final_ln_likelihood, rb.cold.final_ln_likelihood);
  EXPECT_EQ(ra.swaps_accepted, rb.swaps_accepted);
  EXPECT_EQ(ra.cold.final_tree_newick, rb.cold.final_tree_newick);
}

TEST(CoupledTest, ColdChainTracksPosterior) {
  // The cold chain of a coupled run should reach a likelihood comparable to
  // (or better than) a single-chain run of the same length.
  CoupledFixture fx(4, 84);
  CoupledOptions opts;
  opts.chain.seed = 7;
  CoupledChains mc3(fx.take(), opts);
  const auto coupled = mc3.run(1500);

  core::SerialBackend backend;
  core::PlfEngine engine(fx.inst.data, fx.inst.params, fx.inst.tree, backend);
  McmcOptions single_opts;
  single_opts.seed = 7;
  McmcChain single(engine, single_opts);
  const auto single_result = single.run(1500);

  EXPECT_GT(coupled.cold.best_ln_likelihood,
            single_result.best_ln_likelihood - 30.0);
}

TEST(CoupledTest, HeatedChainsAcceptMoreProposals) {
  // A heated chain's flatter target accepts more moves. Compare a strongly
  // heated single chain (via likelihood_power) against the cold one.
  auto inst = make_instance(8, 300, 85);
  core::SerialBackend b1, b2;
  core::PlfEngine cold_engine(inst.data, inst.params, inst.tree, b1);
  core::PlfEngine hot_engine(inst.data, inst.params, inst.tree, b2);
  McmcOptions cold_opts;
  cold_opts.seed = 10;
  McmcOptions hot_opts;
  hot_opts.seed = 10;
  hot_opts.likelihood_power = 0.2;
  McmcChain cold(cold_engine, cold_opts);
  McmcChain hot(hot_engine, hot_opts);
  const auto rc = cold.run(1500);
  const auto rh = hot.run(1500);
  EXPECT_GT(rh.total_accepted(), rc.total_accepted() + 50);
}

TEST(CoupledTest, SingleChainDegeneratesToPlainMcmc) {
  CoupledFixture fx(1, 86);
  CoupledOptions opts;
  opts.chain.seed = 11;
  CoupledChains mc3(fx.take(), opts);
  const auto result = mc3.run(300);
  EXPECT_EQ(result.swaps_accepted, 0u);  // no partner to swap with
  EXPECT_EQ(result.cold.total_proposed(), 300u);
}

TEST(CoupledTest, RejectsEmptyEngineList) {
  CoupledOptions opts;
  EXPECT_THROW(
      CoupledChains(std::vector<std::unique_ptr<core::PlfEngine>>{}, opts),
      Error);
}

TEST(DiagnosticsTest, AutocorrelationBasics) {
  // White-ish noise: lag-1 autocorrelation near zero.
  Rng rng(1);
  std::vector<double> noise(4000);
  for (auto& x : noise) x = rng.normal();
  EXPECT_NEAR(autocorrelation(noise, 0), 1.0, 1e-12);
  EXPECT_NEAR(autocorrelation(noise, 1), 0.0, 0.05);

  // AR(1) with phi = 0.9: lag-1 near 0.9.
  std::vector<double> ar(8000);
  ar[0] = 0.0;
  for (std::size_t i = 1; i < ar.size(); ++i) {
    ar[i] = 0.9 * ar[i - 1] + rng.normal();
  }
  EXPECT_NEAR(autocorrelation(ar, 1), 0.9, 0.05);
}

TEST(DiagnosticsTest, EssOrdersSeriesByMixing) {
  Rng rng(2);
  std::vector<double> noise(2000), ar(2000);
  for (auto& x : noise) x = rng.normal();
  ar[0] = 0.0;
  for (std::size_t i = 1; i < ar.size(); ++i) {
    ar[i] = 0.95 * ar[i - 1] + rng.normal();
  }
  const auto s_noise = summarize_trace(noise);
  const auto s_ar = summarize_trace(ar);
  EXPECT_GT(s_noise.ess, 1200.0);
  EXPECT_LT(s_ar.ess, 0.3 * s_noise.ess);
  EXPECT_GT(s_ar.autocorrelation_time, 5.0);
  // AR(1) theory: tau = (1+phi)/(1-phi) = 39.
  EXPECT_NEAR(s_ar.autocorrelation_time, 39.0, 25.0);
}

TEST(DiagnosticsTest, ConstantSeriesFullEss) {
  std::vector<double> c(100, 3.5);
  const auto s = summarize_trace(c);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.ess, 100.0);
}

TEST(DiagnosticsTest, RealChainTraceHasReasonableEss) {
  auto inst = make_instance(7, 200, 87);
  core::SerialBackend backend;
  core::PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  McmcOptions opts;
  opts.seed = 13;
  opts.sample_every = 10;
  McmcChain chain(engine, opts);
  const auto result = chain.run(3000);
  std::vector<double> trace;
  for (const auto& s : result.samples) trace.push_back(s.ln_likelihood);
  const auto summary = summarize_trace(trace);
  EXPECT_GT(summary.ess, 5.0);
  EXPECT_LE(summary.ess, static_cast<double>(trace.size()) + 1e-9);
}

}  // namespace
}  // namespace plf::mcmc
