#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <string>

#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/stats.hpp"

namespace plf::seqgen {
namespace {

TEST(RandomTreeTest, YuleProducesValidTrees) {
  Rng rng(1);
  for (std::size_t n : {3u, 5u, 10u, 50u, 100u}) {
    const phylo::Tree t = yule_tree(n, rng);
    EXPECT_EQ(t.n_taxa(), n);
    t.validate();
    EXPECT_GT(t.total_length(), 0.0);
  }
}

TEST(RandomTreeTest, CoalescentProducesValidTrees) {
  Rng rng(2);
  for (std::size_t n : {3u, 8u, 40u}) {
    const phylo::Tree t = coalescent_tree(n, rng);
    EXPECT_EQ(t.n_taxa(), n);
    t.validate();
  }
}

TEST(RandomTreeTest, DeterministicPerSeed) {
  Rng a(7), b(7);
  EXPECT_EQ(yule_tree(20, a).to_newick(), yule_tree(20, b).to_newick());
  Rng c(8);
  EXPECT_NE(yule_tree(20, a).to_newick(), yule_tree(20, c).to_newick());
}

TEST(RandomTreeTest, ScaleMultipliesLengths) {
  Rng a(3), b(3);
  const phylo::Tree t1 = yule_tree(10, a, 1.0, 0.1);
  const phylo::Tree t2 = yule_tree(10, b, 1.0, 0.2);
  EXPECT_NEAR(t2.total_length(), 2.0 * t1.total_length(), 1e-9);
}

TEST(RandomTreeTest, AllBranchLengthsPositive) {
  Rng rng(4);
  const phylo::Tree t = yule_tree(30, rng);
  for (int b : t.branch_nodes()) EXPECT_GT(t.branch_length(b), 0.0);
}

TEST(RandomTreeTest, DefaultNames) {
  const auto names = default_taxon_names(3);
  EXPECT_EQ(names[0], "t1");
  EXPECT_EQ(names[2], "t3");
}

TEST(EvolverTest, ColumnsHaveUnambiguousStates) {
  Rng rng(5);
  const phylo::Tree t = yule_tree(6, rng, 1.0, 0.2);
  const phylo::SubstitutionModel model(default_gtr_params());
  const SequenceEvolver ev(t, model);
  for (int i = 0; i < 50; ++i) {
    const auto col = ev.evolve_column(rng);
    ASSERT_EQ(col.size(), 6u);
    for (auto m : col) EXPECT_TRUE(phylo::is_unambiguous(m));
  }
}

TEST(EvolverTest, StationaryFrequenciesRecovered) {
  // With long branches every tip is an (almost) independent draw from pi.
  Rng rng(6);
  const phylo::Tree t = yule_tree(4, rng, 1.0, 5.0);
  phylo::GtrParams params = default_gtr_params();
  const phylo::SubstitutionModel model(params);
  const SequenceEvolver ev(t, model);

  std::array<double, 4> counts{};
  const int n_cols = 20000;
  for (int i = 0; i < n_cols; ++i) {
    const auto col = ev.evolve_column(rng);
    for (auto m : col) ++counts[phylo::mask_to_state(m)];
  }
  const double total = 4.0 * n_cols;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(counts[s] / total, params.pi[s], 0.01) << "state " << s;
  }
}

TEST(EvolverTest, ZeroishBranchesGiveIdenticalSequences) {
  Rng rng(7);
  phylo::Tree t = yule_tree(5, rng, 1.0, 1e-9);
  const phylo::SubstitutionModel model(default_gtr_params());
  const SequenceEvolver ev(t, model);
  for (int i = 0; i < 20; ++i) {
    const auto col = ev.evolve_column(rng);
    for (std::size_t j = 1; j < col.size(); ++j) EXPECT_EQ(col[j], col[0]);
  }
}

TEST(EvolverTest, AlignmentHasRequestedShape) {
  Rng rng(8);
  const phylo::Tree t = yule_tree(7, rng, 1.0, 0.1);
  const phylo::SubstitutionModel model(default_gtr_params());
  const SequenceEvolver ev(t, model);
  const phylo::Alignment aln = ev.evolve(123, rng);
  EXPECT_EQ(aln.n_taxa(), 7u);
  EXPECT_EQ(aln.n_columns(), 123u);
  EXPECT_EQ(aln.name(0), "t1");
}

TEST(EvolverTest, SiteRateVariationShowsInDiversity) {
  // With strong rate heterogeneity (small alpha) some sites are invariant
  // and some saturated; verify both kinds occur.
  Rng rng(9);
  const phylo::Tree t = yule_tree(12, rng, 1.0, 0.4);
  phylo::GtrParams params = default_gtr_params();
  params.gamma_shape = 0.2;
  const phylo::SubstitutionModel model(params);
  const SequenceEvolver ev(t, model);
  int constant = 0, variable = 0;
  for (int i = 0; i < 400; ++i) {
    const auto col = ev.evolve_column(rng);
    bool all_same = true;
    for (std::size_t j = 1; j < col.size(); ++j) all_same &= (col[j] == col[0]);
    (all_same ? constant : variable) += 1;
  }
  EXPECT_GT(constant, 10);
  EXPECT_GT(variable, 10);
}

TEST(DatasetTest, SpecNamesMatchPaperConvention) {
  EXPECT_EQ((DatasetSpec{10, 1000}).name(), "10_1K");
  EXPECT_EQ((DatasetSpec{100, 50000}).name(), "100_50K");
  EXPECT_EQ((DatasetSpec{20, 8543}).name(), "20_8543");
}

TEST(DatasetTest, PaperGridHasSixteenCells) {
  const auto grid = paper_grid();
  ASSERT_EQ(grid.size(), 16u);
  EXPECT_EQ(grid.front().name(), "10_1K");
  EXPECT_EQ(grid.back().name(), "100_50K");
  // Grouped by column count as in the figures.
  EXPECT_EQ(grid[3].name(), "100_1K");
  EXPECT_EQ(grid[4].name(), "10_5K");
}

TEST(DatasetTest, GridDatasetHasExactDistinctPatterns) {
  const Dataset ds = make_grid_dataset(DatasetSpec{10, 300}, 5);
  EXPECT_EQ(ds.patterns.n_patterns(), 300u);
  EXPECT_EQ(ds.patterns.n_taxa(), 10u);
  EXPECT_EQ(ds.patterns.total_weight(), 300u);  // weight-1 extraction
  ds.tree.validate();
  // All patterns genuinely distinct.
  std::set<std::string> keys;
  for (std::size_t p = 0; p < ds.patterns.n_patterns(); ++p) {
    std::string key;
    for (std::size_t t = 0; t < ds.patterns.n_taxa(); ++t) {
      key += static_cast<char>(ds.patterns.at(t, p));
    }
    keys.insert(key);
  }
  EXPECT_EQ(keys.size(), 300u);
}

TEST(DatasetTest, GridDatasetDeterministic) {
  const Dataset a = make_grid_dataset(DatasetSpec{10, 100}, 9);
  const Dataset b = make_grid_dataset(DatasetSpec{10, 100}, 9);
  EXPECT_EQ(a.tree.to_newick(), b.tree.to_newick());
  for (std::size_t p = 0; p < 100; ++p) {
    EXPECT_EQ(a.patterns.at(3, p), b.patterns.at(3, p));
  }
}

TEST(DatasetTest, RealDatasetShape) {
  // Small-column variant for test speed; full 28,740 columns in the bench.
  const Dataset ds = make_real_dataset(42, 3000);
  EXPECT_EQ(ds.patterns.n_taxa(), 20u);
  EXPECT_EQ(ds.patterns.total_weight(), 3000u);
  EXPECT_LT(ds.patterns.n_patterns(), 3000u);  // compression happened
  EXPECT_GT(ds.patterns.n_patterns(), 300u);
  // Some patterns must carry weight > 1.
  bool heavy = false;
  for (auto w : ds.patterns.weights()) heavy |= (w > 1);
  EXPECT_TRUE(heavy);
}

}  // namespace
}  // namespace plf::seqgen
