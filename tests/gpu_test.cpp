#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "gpu/coalescing.hpp"
#include "gpu/device.hpp"
#include "gpu/device_memory.hpp"
#include "gpu/launch.hpp"
#include "gpu/plf_gpu.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace plf::gpu {
namespace {

TEST(DeviceSpecTest, PresetsMatchTable1) {
  const DeviceSpec g = DeviceSpec::geforce_8800gt();
  EXPECT_EQ(g.total_cores(), 112u);
  EXPECT_DOUBLE_EQ(g.shader_clock_hz, 1.5e9);
  EXPECT_EQ(g.global_memory_bytes, 512ull << 20);

  const DeviceSpec t = DeviceSpec::gtx285();
  EXPECT_EQ(t.total_cores(), 240u);
  EXPECT_NEAR(t.shader_clock_hz, 1.476e9, 1e3);
  EXPECT_EQ(t.global_memory_bytes, 1ull << 30);
  // Paper: GTX285 has 2.1x the cores of the 8800GT.
  EXPECT_NEAR(static_cast<double>(t.total_cores()) / g.total_cores(), 2.1, 0.1);
}

TEST(OccupancyTest, FullAt256Threads) {
  const DeviceSpec g = DeviceSpec::geforce_8800gt();
  EXPECT_DOUBLE_EQ(occupancy(g, LaunchConfig{40, 256}), 1.0);  // 3 blocks x 256 = 768
  EXPECT_LT(occupancy(g, LaunchConfig{40, 512}), 0.7);  // 1 block x 512 / 768
  EXPECT_LT(occupancy(g, LaunchConfig{40, 32}), 0.5);   // 8 blocks x 32 = 256
  EXPECT_EQ(occupancy(g, LaunchConfig{40, 1024}), 0.0); // over block limit
}

TEST(OccupancyTest, WaveBalancePenalizesTailWaves) {
  const DeviceSpec g = DeviceSpec::geforce_8800gt();
  // 14 SMs x 3 resident blocks = 42 slots/wave.
  EXPECT_NEAR(wave_balance(g, LaunchConfig{42, 256}), 1.0, 1e-12);
  EXPECT_NEAR(wave_balance(g, LaunchConfig{43, 256}), 43.0 / 84.0, 1e-12);
  EXPECT_NEAR(wave_balance(g, LaunchConfig{40, 256}), 40.0 / 42.0, 1e-12);
}

TEST(DeviceMemoryTest, AllocTrackingAndOom) {
  DeviceMemory mem(1024, PcieSpec{});
  const DevPtr a = mem.malloc(512);
  EXPECT_EQ(mem.used(), 512u);
  EXPECT_THROW(mem.malloc(513), HardwareViolation);
  mem.free(a);
  EXPECT_EQ(mem.used(), 0u);
  const DevPtr b = mem.malloc(1024);
  mem.free(b);
  EXPECT_THROW(mem.free(b), Error);  // double free
}

TEST(DeviceMemoryTest, TransfersMoveDataAndTakeTime) {
  DeviceMemory mem(4096, PcieSpec{2.0e9, 10e-6});
  const DevPtr p = mem.malloc(1024);
  aligned_vector<std::uint8_t> src(1024, 0x5A), dst(1024, 0);
  const double t1 = mem.h2d(p, 0, src.data(), 1024, 0.0);
  EXPECT_NEAR(t1, 10e-6 + 1024.0 / 2.0e9, 1e-12);
  const double t2 = mem.d2h(dst.data(), p, 0, 1024, t1);
  EXPECT_GT(t2, t1);
  EXPECT_EQ(dst[0], 0x5A);
  EXPECT_EQ(dst[1023], 0x5A);
  EXPECT_EQ(mem.stats().h2d_bytes, 1024u);
  EXPECT_EQ(mem.stats().d2h_bytes, 1024u);
}

TEST(DeviceMemoryTest, BoundsChecked) {
  DeviceMemory mem(4096, PcieSpec{});
  const DevPtr p = mem.malloc(100);
  aligned_vector<std::uint8_t> buf(200);
  EXPECT_THROW(mem.h2d(p, 50, buf.data(), 100, 0.0), Error);
  EXPECT_THROW(mem.d2h(buf.data(), p, 0, 101, 0.0), Error);
}

TEST(CoalescingTest, DenseWarpIsPerfect) {
  CoalescingAnalyzer an(64);
  std::vector<std::uint64_t> addrs(32);
  for (std::size_t l = 0; l < 32; ++l) addrs[l] = l * 4;
  an.record(addrs, 4);
  EXPECT_EQ(an.report().transactions, 2u);  // 128 B = 2 x 64 B segments
  EXPECT_DOUBLE_EQ(an.report().transaction_ratio(), 1.0);
}

TEST(CoalescingTest, StridedWarpIsPenalized) {
  CoalescingAnalyzer an(64);
  std::vector<std::uint64_t> addrs(32);
  for (std::size_t l = 0; l < 32; ++l) addrs[l] = l * 256;  // one segment each
  an.record(addrs, 4);
  EXPECT_EQ(an.report().transactions, 32u);
  EXPECT_GT(an.report().transaction_ratio(), 10.0);
}

TEST(CoalescingTest, InactiveLanesIgnored) {
  CoalescingAnalyzer an(64);
  std::vector<std::uint64_t> addrs(32, std::numeric_limits<std::uint64_t>::max());
  an.record(addrs, 4);
  EXPECT_EQ(an.report().access_steps, 0u);
  addrs[0] = 0;
  an.record(addrs, 4);
  EXPECT_EQ(an.report().access_steps, 1u);
  EXPECT_EQ(an.report().transactions, 1u);
}

TEST(LaunchTest, FunctionalExecutionCoversGrid) {
  KernelLauncher l(DeviceSpec::geforce_8800gt());
  std::vector<int> hits(8 * 64, 0);
  l.execute(LaunchConfig{8, 64}, [&](std::size_t b, std::size_t t) {
    ++hits[b * 64 + t];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(LaunchTest, InvalidConfigRejected) {
  KernelLauncher l(DeviceSpec::geforce_8800gt());
  EXPECT_THROW(l.execute(LaunchConfig{1, 1024}, [](std::size_t, std::size_t) {}),
               Error);
  EXPECT_THROW(l.kernel_time(LaunchConfig{0, 256}, 100, KernelProfile{}), Error);
}

TEST(LaunchTest, KernelTimeScalesWithWork) {
  KernelLauncher l(DeviceSpec::geforce_8800gt());
  KernelProfile prof;
  prof.flops_per_elem = 16;
  prof.bytes_per_elem = 0.1;  // compute-bound
  const LaunchConfig cfg{42, 256};
  const double t1 = l.kernel_time(cfg, 100000, prof);
  const double t2 = l.kernel_time(cfg, 200000, prof);
  EXPECT_GT(t2, t1);
  // Minus the launch overhead, work doubles.
  const double o = DeviceSpec::geforce_8800gt().launch_overhead_s;
  EXPECT_NEAR((t2 - o) / (t1 - o), 2.0, 0.1);
}

TEST(LaunchTest, MemoryRooflineBinds) {
  KernelLauncher l(DeviceSpec::geforce_8800gt());
  KernelProfile compute;
  compute.flops_per_elem = 1000;
  compute.bytes_per_elem = 1;
  KernelProfile memory;
  memory.flops_per_elem = 1;
  memory.bytes_per_elem = 1000;
  const LaunchConfig cfg{42, 256};
  const double tc = l.kernel_time(cfg, 100000, compute);
  const double tm = l.kernel_time(cfg, 100000, memory);
  // 1000 B / 57.6 GB/s > 1000 flops / 168 Gflop/s
  EXPECT_GT(tm, tc);
}

TEST(LaunchTest, CoalescingRatioSlowsMemoryBoundKernels) {
  KernelLauncher l(DeviceSpec::geforce_8800gt());
  KernelProfile a;
  a.bytes_per_elem = 100;
  KernelProfile b = a;
  b.coalescing_ratio = 4.0;
  const LaunchConfig cfg{42, 256};
  EXPECT_GT(l.kernel_time(cfg, 1 << 20, b), 2.0 * l.kernel_time(cfg, 1 << 20, a));
}

// ---------------------------------------------------------------------------
// GpuPlf backend.
// ---------------------------------------------------------------------------

struct EngineInstance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

EngineInstance engine_instance(std::size_t taxa, std::size_t cols,
                               std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return EngineInstance{std::move(tree), params,
                        phylo::PatternMatrix::compress(aln)};
}

TEST(GpuPlfTest, EntryParallelMatchesScalarHost) {
  auto inst = engine_instance(9, 300, 21);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kScalar);
  const double expect = ref.log_likelihood();

  GpuPlfConfig cfg;
  GpuPlf gpu(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, gpu,
                         core::KernelVariant::kScalar);
  const double got = engine.log_likelihood();
  // The arithmetic ORDER matches the scalar reference; bitwise equality is
  // not guaranteed because GCC may contract a*b+c to FMA differently in the
  // two translation units. Single-precision-level agreement is the claim.
  EXPECT_NEAR(got, expect, std::abs(expect) * 1e-5);
  EXPECT_GT(gpu.simulated_seconds(), 0.0);
  EXPECT_GT(gpu.stats().kernel_launches, 0u);
  EXPECT_GT(gpu.stats().pcie_s, 0.0);
  EXPECT_GT(gpu.stats().h2d_bytes, gpu.stats().d2h_bytes / 4);
}

TEST(GpuPlfTest, ReductionParallelMatchesSimdRowHost) {
  auto inst = engine_instance(8, 200, 22);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kSimdRow);
  GpuPlfConfig cfg;
  cfg.scheme = ThreadScheme::kReductionParallel;
  GpuPlf gpu(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, gpu,
                         core::KernelVariant::kSimdRow);
  EXPECT_NEAR(engine.log_likelihood(), ref.log_likelihood(),
              std::abs(ref.log_likelihood()) * 1e-5);
}

TEST(GpuPlfTest, Gtx285AlsoCorrectAndFasterKernels) {
  // Large enough that kernels are bandwidth-bound: the regime where the
  // paper reports the GTX285 2.2-2.4x ahead (20K/50K column sets).
  auto inst = engine_instance(20, 60000, 23);  // ~50K distinct patterns
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kScalar);
  const double expect = ref.log_likelihood();

  GpuPlfConfig c1;  // 8800GT
  GpuPlfConfig c2;
  c2.device = DeviceSpec::gtx285();
  c2.launch = LaunchConfig{85, 256};
  GpuPlf g1(c1), g2(c2);
  {
    core::PlfEngine e1(inst.data, inst.params, inst.tree, g1,
                       core::KernelVariant::kScalar);
    EXPECT_NEAR(e1.log_likelihood(), expect, std::abs(expect) * 1e-5);
  }
  {
    core::PlfEngine e2(inst.data, inst.params, inst.tree, g2,
                       core::KernelVariant::kScalar);
    EXPECT_NEAR(e2.log_likelihood(), expect, std::abs(expect) * 1e-5);
  }
  EXPECT_LT(g2.stats().kernel_s, g1.stats().kernel_s);
  // The paper reports 2.2-2.4x at 20K/50K; our timing model lands slightly
  // lower (~1.8-2.1x) because it charges the GTX285's 85-block launch its
  // full wave-imbalance penalty. Accept a band that brackets both.
  const double ratio = g1.stats().kernel_s / g2.stats().kernel_s;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 3.2);
}

TEST(GpuPlfTest, EntryParallelFasterThanReductionParallel) {
  // The paper's §3.4 ablation: approach (ii) ~2.5x faster at the PLF level.
  auto inst = engine_instance(10, 30000, 24);
  auto kernel_time = [&](ThreadScheme scheme) {
    GpuPlfConfig cfg;
    cfg.scheme = scheme;
    GpuPlf gpu(cfg);
    core::PlfEngine engine(inst.data, inst.params, inst.tree, gpu);
    engine.log_likelihood();
    return gpu.stats().kernel_s;
  };
  const double entry = kernel_time(ThreadScheme::kEntryParallel);
  const double reduction = kernel_time(ThreadScheme::kReductionParallel);
  EXPECT_GT(reduction / entry, 1.7);
  EXPECT_LT(reduction / entry, 3.5);
}

TEST(GpuPlfTest, PcieDominatesKernelTime) {
  // The Fig. 12 phenomenon: per-invocation transfers cost more than the
  // kernels they feed.
  auto inst = engine_instance(10, 3000, 25);
  GpuPlfConfig cfg;
  GpuPlf gpu(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, gpu);
  engine.log_likelihood();
  EXPECT_GT(gpu.stats().pcie_s, gpu.stats().kernel_s);
}

TEST(GpuPlfTest, GlobalPartitioningOnTinyDevice) {
  // Shrink device memory so one PLF invocation cannot fit: the three-level
  // partitioning's global partitions must kick in and still be correct.
  auto inst = engine_instance(8, 2000, 26);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kScalar);
  GpuPlfConfig cfg;
  cfg.device.global_memory_bytes = 96 * 1024;  // absurdly small
  GpuPlf gpu(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, gpu,
                         core::KernelVariant::kScalar);
  EXPECT_NEAR(engine.log_likelihood(), ref.log_likelihood(),
              std::abs(ref.log_likelihood()) * 1e-5);
  EXPECT_GT(gpu.stats().global_partitions, 0u);
}

TEST(GpuPlfTest, McmcProposalsOnGpu) {
  auto inst = engine_instance(8, 150, 27);
  GpuPlfConfig cfg;
  GpuPlf gpu(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, gpu);
  const double before = engine.log_likelihood();
  engine.begin_proposal();
  engine.set_branch_length(engine.tree().branch_nodes()[0], 0.9);
  engine.log_likelihood();
  engine.reject();
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), before);
}

TEST(GpuPlfTest, EntryParallelLayoutCoalesces) {
  GpuPlf gpu(GpuPlfConfig{});
  const auto entry = gpu.analyze_cl_loads(ThreadScheme::kEntryParallel, 512, 4);
  EXPECT_GT(entry.access_steps, 0u);
  EXPECT_DOUBLE_EQ(entry.transaction_ratio(), 1.0);
  // The cooperative layout re-reads each rate array 4x: more transactions
  // per useful byte.
  const auto red = gpu.analyze_cl_loads(ThreadScheme::kReductionParallel, 512, 4);
  EXPECT_GE(red.transaction_ratio(), entry.transaction_ratio());
}

TEST(GpuPlfTest, DesignSpace256ThreadsNearOptimal) {
  // §3.4: exploration found 256 threads x ~3 blocks/SM best. Verify the
  // timing model prefers 256-thread blocks over tiny and oversized ones at
  // a fixed representative workload.
  KernelLauncher l(DeviceSpec::geforce_8800gt());
  KernelProfile prof;
  prof.flops_per_elem = 15;
  prof.bytes_per_elem = 36;
  const std::size_t n = 20000 * 16;
  const double t256 = l.kernel_time(LaunchConfig{42, 256}, n, prof);
  const double t32 = l.kernel_time(LaunchConfig{42, 32}, n, prof);
  const double t512 = l.kernel_time(LaunchConfig{42, 512}, n, prof);
  EXPECT_LT(t256, t32);
  EXPECT_LE(t256, t512);
}

}  // namespace
}  // namespace plf::gpu
