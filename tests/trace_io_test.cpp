#include <gtest/gtest.h>

#include <sstream>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/consensus.hpp"
#include "mcmc/trace_io.hpp"
#include "phylo/nexus.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"

namespace plf::mcmc {
namespace {

McmcResult small_run(bool collect_trees, std::uint64_t seed = 3) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(6, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(100, rng));
  static core::SerialBackend backend;
  core::PlfEngine engine(data, params, tree, backend);
  McmcOptions opts;
  opts.seed = seed;
  opts.sample_every = 40;
  opts.collect_trees = collect_trees;
  McmcChain chain(engine, opts);
  return chain.run(400);
}

TEST(TraceIoTest, ParamsTraceRoundTrip) {
  const auto result = small_run(false);
  std::ostringstream os;
  write_params_trace(os, result, "unit-test");

  const auto rows = read_params_trace(os.str());
  ASSERT_EQ(rows.size(), result.samples.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].generation, result.samples[i].generation);
    EXPECT_NEAR(rows[i].ln_likelihood, result.samples[i].ln_likelihood, 1e-6);
    EXPECT_NEAR(rows[i].tree_length, result.samples[i].tree_length, 1e-6);
    EXPECT_NEAR(rows[i].gamma_shape, result.samples[i].gamma_shape, 1e-6);
  }
  EXPECT_NE(os.str().find("[ID: unit-test]"), std::string::npos);
}

TEST(TraceIoTest, ParamsTraceErrors) {
  EXPECT_THROW(read_params_trace("Gen\tLnL\n"), ParseError);
  EXPECT_THROW(read_params_trace("[ID: x]\nnope\n"), ParseError);
  EXPECT_THROW(read_params_trace("[ID: x]\nGen\tLnL\tTL\talpha\nbad row here\n"),
               ParseError);
}

TEST(TraceIoTest, TreeTraceIsValidNexusWithTranslate) {
  const auto result = small_run(true);
  ASSERT_FALSE(result.sampled_trees.empty());
  std::ostringstream os;
  write_tree_trace(os, result);

  // The trace must parse back through our own NEXUS reader, with the
  // translate table resolving numeric labels to taxon names.
  const auto nx = phylo::parse_nexus(os.str());
  ASSERT_EQ(nx.trees.size(), result.sampled_trees.size());
  const phylo::Tree original =
      phylo::Tree::from_newick(result.sampled_trees.back());
  const phylo::Tree reread =
      phylo::Tree::from_newick(nx.trees.back().second, original.taxon_names());
  EXPECT_TRUE(reread.same_topology(original));
  EXPECT_NEAR(reread.total_length(), original.total_length(), 1e-4);
  // Tree names carry the generation.
  EXPECT_EQ(nx.trees.front().first, "gen.0");
}

TEST(TraceIoTest, TreeTraceFeedsConsensus) {
  // The full sumt loop: run -> .t file -> parse -> consensus.
  const auto result = small_run(true, 9);
  std::ostringstream os;
  write_tree_trace(os, result);
  const auto nx = phylo::parse_nexus(os.str());

  TreeSampleSummary summary;
  for (const auto& [name, newick] : nx.trees) summary.add_newick(newick);
  EXPECT_EQ(summary.n_trees(), result.sampled_trees.size());
  EXPECT_FALSE(summary.majority_rule_newick().empty());
}

TEST(TraceIoTest, TreeTraceRequiresCollectedTrees) {
  const auto result = small_run(false);
  std::ostringstream os;
  EXPECT_THROW(write_tree_trace(os, result), Error);
}

}  // namespace
}  // namespace plf::mcmc
