// Unit tests for site-repeat class identification (core/repeats.hpp): class
// counts on hand-built data sets, tip-vs-inner class composition, and the
// invalidation protocol under the mutations an MCMC run performs.
#include <gtest/gtest.h>

#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/repeats.hpp"
#include "phylo/patterns.hpp"
#include "phylo/tree.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plf::core {
namespace {

// Four taxa rooted at outgroup A: internals are the (C,D) cherry and the
// root joining B with that cherry.
phylo::Tree four_taxon_tree() {
  return phylo::Tree::from_newick("(A:0.1,B:0.1,(C:0.1,D:0.1):0.1);",
                                  {"A", "B", "C", "D"});
}

/// One alignment column: masks for A, B, C, D in taxon order.
phylo::PatternMatrix make_data(
    const std::vector<std::vector<phylo::StateMask>>& columns) {
  return phylo::PatternMatrix::from_patterns(
      {"A", "B", "C", "D"}, columns,
      std::vector<std::uint32_t>(columns.size(), 1));
}

TEST(SiteRepeatsModeTest, StringRoundTrip) {
  for (auto m : {SiteRepeatsMode::kOff, SiteRepeatsMode::kOn,
                 SiteRepeatsMode::kAuto}) {
    EXPECT_EQ(site_repeats_mode_from_string(to_string(m)), m);
  }
  EXPECT_THROW(site_repeats_mode_from_string("maybe"), Error);
  EXPECT_THROW(site_repeats_mode_from_string(""), Error);
}

TEST(SiteRepeatsTest, AllIdenticalColumnsCollapseToOneClass) {
  const phylo::Tree tree = four_taxon_tree();
  const std::vector<phylo::StateMask> col = {1, 2, 4, 8};  // A C G T
  const auto data = make_data(std::vector<std::vector<phylo::StateMask>>(8, col));

  SiteRepeats sr(data, tree);
  ASSERT_TRUE(sr.any_stale());
  sr.refresh(tree);
  ASSERT_FALSE(sr.any_stale());

  for (int id : tree.postorder_internals()) {
    const NodeRepeats& nr = sr.node(id);
    EXPECT_EQ(nr.n_classes, 1u) << "node " << id;
    ASSERT_EQ(nr.unique_sites.size(), 1u);
    EXPECT_EQ(nr.unique_sites[0], 0u);  // representative = first occurrence
    for (std::uint32_t cls : nr.class_of_site) EXPECT_EQ(cls, 0u);
    EXPECT_DOUBLE_EQ(nr.compression(), 8.0);
  }
  EXPECT_DOUBLE_EQ(sr.mean_compression(), 8.0);
}

TEST(SiteRepeatsTest, AllUniqueColumnsStayFullyDense) {
  const phylo::Tree tree = four_taxon_tree();
  // Every site gets a distinct (C,D) mask pair, so the cherry — and
  // everything above it — has one class per site.
  std::vector<std::vector<phylo::StateMask>> cols;
  for (phylo::StateMask c : {1, 2}) {
    for (phylo::StateMask d : {1, 2, 4, 8}) {
      cols.push_back({1, 1, c, d});
    }
  }
  const auto data = make_data(cols);

  SiteRepeats sr(data, tree);
  sr.refresh(tree);
  for (int id : tree.postorder_internals()) {
    const NodeRepeats& nr = sr.node(id);
    EXPECT_EQ(nr.n_classes, cols.size()) << "node " << id;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      EXPECT_EQ(nr.class_of_site[c], c);
      EXPECT_EQ(nr.unique_sites[c], c);
    }
    EXPECT_DOUBLE_EQ(nr.compression(), 1.0);
  }
}

TEST(SiteRepeatsTest, InnerClassesComposeTipClasses) {
  const phylo::Tree tree = four_taxon_tree();
  // Cherry (C,D): pairs (1,4),(1,4),(2,4),(2,4) -> 2 classes.
  // Root (B, cherry) + outgroup A: (1,cls0),(2,cls0),(1,cls1),(2,cls1)
  // with constant A -> 4 classes.
  const auto data = make_data({
      {1, 1, 1, 4},
      {1, 2, 1, 4},
      {1, 1, 2, 4},
      {1, 2, 2, 4},
  });

  SiteRepeats sr(data, tree);
  sr.refresh(tree);

  // Find the cherry: the internal node that is not the root.
  int cherry = phylo::kNoNode;
  for (int id : tree.postorder_internals()) {
    if (id != tree.root()) cherry = id;
  }
  ASSERT_NE(cherry, phylo::kNoNode);

  const NodeRepeats& ch = sr.node(cherry);
  EXPECT_EQ(ch.n_classes, 2u);
  EXPECT_EQ(ch.class_of_site[0], ch.class_of_site[1]);
  EXPECT_EQ(ch.class_of_site[2], ch.class_of_site[3]);
  EXPECT_NE(ch.class_of_site[0], ch.class_of_site[2]);

  const NodeRepeats& rt = sr.node(tree.root());
  EXPECT_EQ(rt.n_classes, 4u);  // B's mask splits each cherry class
}

TEST(SiteRepeatsTest, RootClassFoldsOutgroupMask) {
  const phylo::Tree tree = four_taxon_tree();
  // B, C, D identical on both sites; only the outgroup A differs. The cherry
  // sees one class, but the root's three-way product includes A's tip, so
  // its classes must split.
  const auto data = make_data({
      {1, 1, 1, 1},
      {2, 1, 1, 1},
  });

  SiteRepeats sr(data, tree);
  sr.refresh(tree);

  for (int id : tree.postorder_internals()) {
    const NodeRepeats& nr = sr.node(id);
    if (id == tree.root()) {
      EXPECT_EQ(nr.n_classes, 2u);
    } else {
      EXPECT_EQ(nr.n_classes, 1u);
    }
  }
}

TEST(SiteRepeatsTest, StaleAccessThrowsAndPathInvalidationIsAncestral) {
  const phylo::Tree tree = four_taxon_tree();
  const std::vector<phylo::StateMask> col = {1, 2, 4, 8};
  const auto data = make_data(std::vector<std::vector<phylo::StateMask>>(4, col));

  SiteRepeats sr(data, tree);
  EXPECT_THROW(sr.node(tree.root()), Error);  // refresh() not called yet
  sr.refresh(tree);
  EXPECT_NO_THROW(sr.node(tree.root()));

  // Invalidate from the cherry: the cherry and the root go stale; accessing
  // either throws until the next refresh.
  int cherry = phylo::kNoNode;
  for (int id : tree.postorder_internals()) {
    if (id != tree.root()) cherry = id;
  }
  sr.invalidate_path(tree, cherry);
  EXPECT_TRUE(sr.any_stale());
  EXPECT_THROW(sr.node(cherry), Error);
  EXPECT_THROW(sr.node(tree.root()), Error);
  sr.refresh(tree);
  EXPECT_EQ(sr.node(cherry).n_classes, 1u);
}

// The classes must track every mutation an MCMC chain performs: branch
// lengths (no class change, values change), NNI inside a proposal, and
// rejection (classes re-identified against the restored topology). The
// repeat-compacted engine must match a dense engine bit-for-bit throughout,
// because compaction only skips arithmetic that would produce identical bits.
TEST(SiteRepeatsEngineTest, TracksMutationsMidMcmc) {
  Rng rng(77);
  phylo::Tree tree = seqgen::yule_tree(8, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  const auto data = phylo::PatternMatrix::compress(ev.evolve(400, rng));

  SerialBackend b_on, b_off;
  PlfEngine on(data, params, tree, b_on, KernelVariant::kSimdCol,
               SiteRepeatsMode::kOn);
  PlfEngine off(data, params, tree, b_off, KernelVariant::kSimdCol,
                SiteRepeatsMode::kOff);
  ASSERT_TRUE(on.site_repeats_enabled());
  ASSERT_FALSE(off.site_repeats_enabled());

  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());
  EXPECT_GT(on.stats().repeat_down_hits, 0u);
  EXPECT_GT(on.repeat_mean_compression(), 1.0);

  // Branch-length change: classes are invariant, CLVs are not.
  const int leaf = on.tree().leaf_of(3);
  on.set_branch_length(leaf, 0.91);
  off.set_branch_length(leaf, 0.91);
  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());

  // NNI inside a proposal, then reject: the compacted engine must
  // re-identify classes for the proposal topology AND again for the
  // restored one.
  const auto edges = on.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  const int v = edges[edges.size() / 2];

  on.begin_proposal();
  off.begin_proposal();
  on.apply_nni(v, true);
  off.apply_nni(v, true);
  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());
  on.reject();
  off.reject();
  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());

  // Accepted NNI stays consistent too.
  on.begin_proposal();
  off.begin_proposal();
  on.apply_nni(v, false);
  off.apply_nni(v, false);
  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());
  on.accept();
  off.accept();
  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());
}

}  // namespace
}  // namespace plf::core
