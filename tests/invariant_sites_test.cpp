#include <gtest/gtest.h>

#include <cmath>

#include "cell/machine.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "gpu/plf_gpu.hpp"
#include "mcmc/chain.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace plf::core {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(double pinv, std::size_t taxa = 8,
                       std::size_t cols = 400, std::uint64_t seed = 91) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.2);
  phylo::GtrParams params = seqgen::default_gtr_params();
  params.p_invariant = pinv;
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

TEST(InvariantSitesTest, SiteLogLikelihoodHelper) {
  RootReduceArgs a;
  // Disabled: plain log + scaler.
  EXPECT_DOUBLE_EQ(site_log_likelihood(0.5, -2.0, a, 0),
                   std::log(0.5) - 2.0);
  // Enabled with a variable pattern (const_lik == 0): only the scaled term.
  // Expectations use the float-rounded pinv exactly as the kernel sees it.
  float cl0[1] = {0.0f};
  a.const_lik = cl0;
  a.p_invariant = 0.3f;
  const double pinv = static_cast<double>(a.p_invariant);
  EXPECT_DOUBLE_EQ(site_log_likelihood(0.5, -2.0, a, 0),
                   std::log((1.0 - pinv) * 0.5) - 2.0);
  // Constant-capable pattern: exact two-term mixture.
  float cl1[1] = {0.25f};
  a.const_lik = cl1;
  const double expect =
      std::log(pinv * 0.25 + (1.0 - pinv) * 0.5 * std::exp(-2.0));
  EXPECT_NEAR(site_log_likelihood(0.5, -2.0, a, 0), expect, 1e-12);
  // Deep scaling must not overflow: scaler -500 in the variable part.
  float cl2[1] = {0.2f};
  a.const_lik = cl2;
  const double v = site_log_likelihood(0.5, -500.0, a, 0);
  EXPECT_NEAR(v, std::log(pinv * static_cast<double>(0.2f)), 1e-9);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(InvariantSitesTest, MatchesDoublePrecisionReference) {
  auto inst = make_instance(0.3);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double got = engine.log_likelihood();
  const double ref = test::reference_log_likelihood(
      inst.tree, phylo::SubstitutionModel(inst.params), inst.data);
  EXPECT_NEAR(got, ref, std::abs(ref) * 1e-4);
}

TEST(InvariantSitesTest, ZeroPinvIsExactlyPlainModel) {
  auto inst = make_instance(0.0);
  SerialBackend b1, b2;
  PlfEngine with(inst.data, inst.params, inst.tree, b1);
  auto no_i = inst.params;
  no_i.p_invariant = 0.0;
  PlfEngine without(inst.data, no_i, inst.tree, b2);
  EXPECT_EQ(with.log_likelihood(), without.log_likelihood());
}

TEST(InvariantSitesTest, AllVariantsAndBackendsAgree) {
  auto inst = make_instance(0.4);
  SerialBackend backend;
  PlfEngine ref(inst.data, inst.params, inst.tree, backend,
                KernelVariant::kScalar);
  const double expect = ref.log_likelihood();

  for (auto v : {KernelVariant::kSimdRow, KernelVariant::kSimdCol,
                 KernelVariant::kSimdCol8}) {
    SerialBackend b;
    PlfEngine e(inst.data, inst.params, inst.tree, b, v);
    EXPECT_NEAR(e.log_likelihood(), expect, std::abs(expect) * 1e-5);
  }
  {
    cell::CellConfig cfg;
    cfg.n_spes = 6;
    cell::CellMachine machine(cfg);
    PlfEngine e(inst.data, inst.params, inst.tree, machine,
                KernelVariant::kSimdCol);
    EXPECT_NEAR(e.log_likelihood(), expect, std::abs(expect) * 1e-5);
  }
  {
    gpu::GpuPlfConfig cfg;
    gpu::GpuPlf device(cfg);
    PlfEngine e(inst.data, inst.params, inst.tree, device,
                KernelVariant::kScalar);
    EXPECT_NEAR(e.log_likelihood(), expect, std::abs(expect) * 1e-5);
  }
}

TEST(InvariantSitesTest, PinvLikelihoodCurveHasInteriorMaximum) {
  // Data simulated with pinv = 0.4: the lnL over pinv should peak nearer
  // 0.4 than the extremes.
  auto inst = make_instance(0.4, 10, 2000, 97);
  SerialBackend backend;
  auto lnl_at = [&](double pinv) {
    auto p = inst.params;
    p.p_invariant = pinv;
    PlfEngine engine(inst.data, p, inst.tree, backend);
    return engine.log_likelihood();
  };
  const double at_0 = lnl_at(1e-9);
  const double at_04 = lnl_at(0.4);
  const double at_09 = lnl_at(0.9);
  EXPECT_GT(at_04, at_0);
  EXPECT_GT(at_04, at_09);
}

TEST(InvariantSitesTest, EvolverProducesMoreConstantColumns) {
  Rng rng(5);
  phylo::Tree tree = seqgen::yule_tree(10, rng, 1.0, 0.5);  // long branches
  auto count_constant = [&](double pinv) {
    auto p = seqgen::default_gtr_params();
    p.p_invariant = pinv;
    phylo::SubstitutionModel model(p);
    seqgen::SequenceEvolver ev(tree, model);
    Rng r2(6);
    int constant = 0;
    for (int i = 0; i < 1000; ++i) {
      const auto col = ev.evolve_column(r2);
      bool same = true;
      for (std::size_t j = 1; j < col.size(); ++j) same &= (col[j] == col[0]);
      constant += same;
    }
    return constant;
  };
  const int base = count_constant(0.0);
  const int with_i = count_constant(0.5);
  EXPECT_GT(with_i, base + 300);  // ~half the columns forced invariant
}

TEST(InvariantSitesTest, McmcEstimatesPinv) {
  // Chain with the +I slide enabled should move pinv from a wrong start
  // toward the generating value.
  auto inst = make_instance(0.45, 8, 3000, 99);
  auto start = inst.params;
  start.p_invariant = 0.05;
  SerialBackend backend;
  PlfEngine engine(inst.data, start, inst.tree, backend);
  mcmc::McmcOptions opts;
  opts.seed = 21;
  opts.w_pinv = 2.0;
  mcmc::McmcChain chain(engine, opts);
  chain.run(1500);
  EXPECT_NEAR(engine.model_params().p_invariant, 0.45, 0.2);
  EXPECT_GT(chain.proposal_stats().at("p-invariant").proposed, 100u);
}

TEST(InvariantSitesTest, ProposalRejectRestoresPinv) {
  auto inst = make_instance(0.3);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double before = engine.log_likelihood();
  engine.begin_proposal();
  auto p = engine.model_params();
  p.p_invariant = 0.7;
  engine.set_model(p);
  engine.log_likelihood();
  engine.reject();
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), before);
  EXPECT_DOUBLE_EQ(engine.model_params().p_invariant, 0.3);
}

TEST(InvariantSitesTest, BadPinvRejected) {
  phylo::GtrParams p;
  p.p_invariant = 1.0;
  EXPECT_THROW(phylo::SubstitutionModel{p}, Error);
  p.p_invariant = -0.1;
  EXPECT_THROW(phylo::SubstitutionModel{p}, Error);
}

}  // namespace
}  // namespace plf::core
