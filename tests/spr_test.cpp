#include <gtest/gtest.h>

#include <cmath>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "phylo/tree.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"

namespace plf::phylo {
namespace {

Tree ten_taxon_tree(std::uint64_t seed = 3) {
  Rng rng(seed);
  return seqgen::yule_tree(10, rng, 1.0, 0.2);
}

TEST(SprTest, ValidTargetsExcludeForbiddenNodes) {
  const Tree t = ten_taxon_tree();
  for (std::size_t id = 0; id < t.n_nodes(); ++id) {
    const int s = static_cast<int>(id);
    const auto targets = t.spr_valid_targets(s);
    if (s == t.root() || s == t.outgroup() ||
        t.node(s).parent == kNoNode || t.node(s).parent == t.root()) {
      EXPECT_TRUE(targets.empty()) << "node " << s;
      continue;
    }
    const int u = t.node(s).parent;
    const int w = t.node(u).left == s ? t.node(u).right : t.node(u).left;
    for (int target : targets) {
      EXPECT_NE(target, s);
      EXPECT_NE(target, u);
      EXPECT_NE(target, w);
      EXPECT_NE(target, t.outgroup());
      EXPECT_NE(target, t.root());
      EXPECT_FALSE(t.in_subtree(s, target));
    }
  }
}

TEST(SprTest, MoveProducesValidTreePreservingTotalLength) {
  Tree t = ten_taxon_tree();
  const Tree original = t;
  Rng rng(5);
  int moved = 0;
  for (std::size_t id = 0; id < t.n_nodes() && moved < 6; ++id) {
    const int s = static_cast<int>(id);
    const auto targets = t.spr_valid_targets(s);
    if (targets.empty()) continue;
    const int target = targets[rng.below(targets.size())];
    const double x = 0.5 * t.branch_length(target);
    t.spr(s, target, x);
    t.validate();
    EXPECT_NEAR(t.total_length(), original.total_length(), 1e-9);
    ++moved;
  }
  EXPECT_GE(moved, 4);
  EXPECT_FALSE(t.same_topology(original));
}

TEST(SprTest, UndoRestoresExactly) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = ten_taxon_tree(100 + static_cast<std::uint64_t>(trial));
    const std::string before = t.to_newick();
    // Pick a random prunable node.
    std::vector<int> prunable;
    for (std::size_t id = 0; id < t.n_nodes(); ++id) {
      if (!t.spr_valid_targets(static_cast<int>(id)).empty()) {
        prunable.push_back(static_cast<int>(id));
      }
    }
    ASSERT_FALSE(prunable.empty());
    const int s = prunable[rng.below(prunable.size())];
    const auto targets = t.spr_valid_targets(s);
    const int target = targets[rng.below(targets.size())];
    const double x = t.branch_length(target) * rng.uniform(0.1, 0.9);

    const auto undo = t.spr(s, target, x);
    t.validate();
    t.undo_spr(undo);
    t.validate();
    EXPECT_EQ(t.to_newick(), before) << "trial " << trial;
  }
}

TEST(SprTest, InvalidMovesRejected) {
  Tree t = ten_taxon_tree();
  EXPECT_THROW(t.spr(t.root(), 1, 0.01), Error);
  EXPECT_THROW(t.spr(t.outgroup(), 1, 0.01), Error);
  // Root's children cannot be pruned (u == root).
  EXPECT_THROW(t.spr(t.node(t.root()).left, 1, 0.01), Error);
  // Split outside the target branch.
  std::vector<int> prunable;
  for (std::size_t id = 0; id < t.n_nodes(); ++id) {
    if (!t.spr_valid_targets(static_cast<int>(id)).empty()) {
      prunable.push_back(static_cast<int>(id));
    }
  }
  const int s = prunable.front();
  const int target = t.spr_valid_targets(s).front();
  EXPECT_THROW(t.spr(s, target, 0.0), Error);
  EXPECT_THROW(t.spr(s, target, t.branch_length(target) * 2.0), Error);
  // Target inside the pruned subtree.
  for (std::size_t id = 0; id < t.n_nodes(); ++id) {
    const int bad = static_cast<int>(id);
    if (bad != s && t.in_subtree(s, bad)) {
      EXPECT_THROW(t.spr(s, bad, 0.01), Error);
      break;
    }
  }
}

TEST(SprTest, EngineSprIncrementalMatchesFresh) {
  Rng rng(11);
  Tree tree = seqgen::yule_tree(10, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = PatternMatrix::compress(ev.evolve(200, rng));

  core::SerialBackend backend;
  core::PlfEngine engine(data, params, tree, backend);
  engine.log_likelihood();

  for (int step = 0; step < 8; ++step) {
    std::vector<int> prunable;
    for (std::size_t id = 0; id < engine.tree().n_nodes(); ++id) {
      if (!engine.tree().spr_valid_targets(static_cast<int>(id)).empty()) {
        prunable.push_back(static_cast<int>(id));
      }
    }
    const int s = prunable[rng.below(prunable.size())];
    const auto targets = engine.tree().spr_valid_targets(s);
    const int target = targets[rng.below(targets.size())];
    const double x = engine.tree().branch_length(target) * rng.uniform(0.2, 0.8);
    engine.apply_spr(s, target, x);
    const double incremental = engine.log_likelihood();

    core::SerialBackend b2;
    core::PlfEngine fresh(data, params, engine.tree(), b2);
    ASSERT_NEAR(fresh.log_likelihood(), incremental,
                std::abs(incremental) * 1e-6)
        << "step " << step;
  }
}

TEST(SprTest, EngineProposalRejectRestores) {
  Rng rng(13);
  Tree tree = seqgen::yule_tree(9, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = PatternMatrix::compress(ev.evolve(150, rng));

  core::SerialBackend backend;
  core::PlfEngine engine(data, params, tree, backend);
  const double before = engine.log_likelihood();
  const std::string newick_before = engine.tree().to_newick();

  for (int trial = 0; trial < 15; ++trial) {
    std::vector<int> prunable;
    for (std::size_t id = 0; id < engine.tree().n_nodes(); ++id) {
      if (!engine.tree().spr_valid_targets(static_cast<int>(id)).empty()) {
        prunable.push_back(static_cast<int>(id));
      }
    }
    const int s = prunable[rng.below(prunable.size())];
    const auto targets = engine.tree().spr_valid_targets(s);
    const int target = targets[rng.below(targets.size())];
    const double x = engine.tree().branch_length(target) * rng.uniform(0.2, 0.8);

    engine.begin_proposal();
    engine.apply_spr(s, target, x);
    engine.log_likelihood();
    engine.reject();
    ASSERT_DOUBLE_EQ(engine.log_likelihood(), before) << "trial " << trial;
    ASSERT_EQ(engine.tree().to_newick(), newick_before);
  }
}

TEST(SprTest, ChainWithSprMixesAndStaysConsistent) {
  // Weak data and a random (non-generating) start so that topology moves
  // have somewhere to go — at the ML tree with strong data, eSPR acceptance
  // is legitimately near zero.
  Rng rng(17);
  Tree tree = seqgen::yule_tree(10, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = PatternMatrix::compress(ev.evolve(60, rng));
  Tree start = seqgen::yule_tree(10, rng, 1.0, 0.15);
  start = Tree::from_newick(start.to_newick(), tree.taxon_names());

  core::SerialBackend backend;
  core::PlfEngine engine(data, params, start, backend);
  mcmc::McmcOptions opts;
  opts.seed = 23;
  opts.w_spr = 3.0;
  mcmc::McmcChain chain(engine, opts);
  const auto result = chain.run(800);
  EXPECT_GT(result.proposals.at("espr").proposed, 100u);
  EXPECT_GT(result.proposals.at("espr").accepted, 0u);

  core::SerialBackend b2;
  core::PlfEngine fresh(data, engine.model_params(), engine.tree(), b2);
  EXPECT_NEAR(fresh.log_likelihood(), chain.ln_likelihood(),
              std::abs(chain.ln_likelihood()) * 1e-6);
  engine.tree().validate();
}

}  // namespace
}  // namespace plf::phylo
