// Streaming estimators (mcmc/online_diagnostics.hpp) against their post-hoc
// counterparts, plus the hardened edge cases of mcmc/diagnostics.hpp: the
// online-vs-Geyer agreement goldens the telemetry layer's documented
// tolerance rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "mcmc/diagnostics.hpp"
#include "mcmc/online_diagnostics.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace plf::mcmc {
namespace {

/// AR(1) series with autocorrelation phi: integrated autocorrelation time
/// tau = (1+phi)/(1-phi), the classic known-answer for ESS estimators.
std::vector<double> ar1_series(std::size_t n, double phi, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> s(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + std::sqrt(1.0 - phi * phi) * rng.normal();
    s[i] = x;
  }
  return s;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

TEST(StreamingEssTest, MeanAndVarianceMatchWelfordExactly) {
  StreamingEss ess;
  std::vector<double> series = ar1_series(5000, 0.5, 11);
  for (double x : series) ess.add(x);
  const TraceSummary post = summarize_trace(series);
  EXPECT_EQ(ess.count(), series.size());
  EXPECT_NEAR(ess.mean(), post.mean, 1e-12);
  EXPECT_NEAR(ess.variance(), post.variance, 1e-9);
}

TEST(StreamingEssTest, IidSeriesEssIsNearN) {
  StreamingEss ess;
  for (double x : ar1_series(20000, 0.0, 12)) ess.add(x);
  // Independent samples: ESS should be the sample count up to estimator
  // noise (batch-means variance is chi^2 over ~64 batches).
  EXPECT_GT(ess.ess(), 10000.0);
  EXPECT_LE(ess.ess(), 20000.0);
}

TEST(StreamingEssTest, AgreesWithGeyerWithinDocumentedTolerance) {
  // The documented tolerance (online_diagnostics.hpp): a factor of 2
  // against summarize_trace on AR(1) once both see enough batches.
  for (const double phi : {0.5, 0.9}) {
    const std::vector<double> series = ar1_series(20000, phi, 13);
    StreamingEss ess;
    for (double x : series) ess.add(x);
    const double geyer = summarize_trace(series).ess;
    EXPECT_GT(ess.ess(), geyer / 2.0) << "phi=" << phi;
    EXPECT_LT(ess.ess(), geyer * 2.0) << "phi=" << phi;
    // Both see the true tau = (1+phi)/(1-phi) within a factor of 2 too.
    const double true_ess =
        static_cast<double>(series.size()) * (1.0 - phi) / (1.0 + phi);
    EXPECT_GT(ess.ess(), true_ess / 2.0) << "phi=" << phi;
    EXPECT_LT(ess.ess(), true_ess * 2.0) << "phi=" << phi;
  }
}

TEST(StreamingEssTest, ConstantSeriesEssIsNAndRhatIsOne) {
  StreamingEss ess;
  for (int i = 0; i < 1000; ++i) ess.add(3.25);
  EXPECT_DOUBLE_EQ(ess.ess(), 1000.0);
  EXPECT_DOUBLE_EQ(ess.autocorrelation_time(), 1.0);
  EXPECT_DOUBLE_EQ(ess.split_rhat(), 1.0);
}

TEST(StreamingEssTest, FewSamplesFallBackToN) {
  StreamingEss ess;
  EXPECT_DOUBLE_EQ(ess.ess(), 0.0);  // empty: n = 0
  ess.add(1.0);
  EXPECT_DOUBLE_EQ(ess.ess(), 1.0);
  EXPECT_TRUE(std::isnan(ess.split_rhat()));  // < 4 batches
}

TEST(StreamingEssTest, BatchTableStaysBoundedAndLengthDoubles) {
  StreamingEss ess(8);
  for (double x : ar1_series(10000, 0.3, 14)) ess.add(x);
  EXPECT_LT(ess.batch_means().size(), 8u);
  // 10000 samples over at most 8 batches: batch length doubled past 1024.
  EXPECT_GE(ess.batch_length(), 1024u);
  EXPECT_GT(ess.ess(), 0.0);
}

TEST(StreamingEssTest, SaveRestoreContinuesBitExactly) {
  const std::vector<double> series = ar1_series(5000, 0.7, 15);
  StreamingEss straight;
  StreamingEss first_half;
  for (std::size_t i = 0; i < series.size(); ++i) {
    straight.add(series[i]);
    if (i < series.size() / 2) first_half.add(series[i]);
  }
  std::ostringstream os;
  util::BinaryWriter w(os);
  first_half.save_state(w);

  std::istringstream is(os.str());
  util::BinaryReader r(is);
  StreamingEss resumed;
  resumed.restore_state(r);
  for (std::size_t i = series.size() / 2; i < series.size(); ++i) {
    resumed.add(series[i]);
  }
  EXPECT_TRUE(bits_equal(resumed.mean(), straight.mean()));
  EXPECT_TRUE(bits_equal(resumed.variance(), straight.variance()));
  EXPECT_TRUE(bits_equal(resumed.ess(), straight.ess()));
  EXPECT_EQ(resumed.batch_means().size(), straight.batch_means().size());
  for (std::size_t i = 0; i < resumed.batch_means().size(); ++i) {
    EXPECT_TRUE(bits_equal(resumed.batch_means()[i], straight.batch_means()[i]));
  }
}

TEST(SplitRhatTest, AgreeingChainsNearOneDisagreeingLarge) {
  std::vector<std::vector<double>> agree;
  std::vector<std::vector<double>> disagree;
  for (int c = 0; c < 4; ++c) {
    agree.push_back(ar1_series(2000, 0.2, 100 + static_cast<std::uint64_t>(c)));
    std::vector<double> shifted =
        ar1_series(2000, 0.2, 200 + static_cast<std::uint64_t>(c));
    for (double& x : shifted) x += 5.0 * c;  // chains stuck at different modes
    disagree.push_back(std::move(shifted));
  }
  EXPECT_LT(split_rhat(agree), 1.1);
  EXPECT_GT(split_rhat(disagree), 1.5);
}

TEST(SplitRhatTest, DegenerateInputsHaveDefinedValues) {
  EXPECT_TRUE(std::isnan(split_rhat({})));
  EXPECT_TRUE(std::isnan(split_rhat({{1.0, 2.0}})));  // half-length 1
  // Constant chains at the same value: trivially converged.
  EXPECT_DOUBLE_EQ(split_rhat({{2.0, 2.0, 2.0, 2.0}, {2.0, 2.0, 2.0, 2.0}}),
                   1.0);
  // Frozen chains at different values: never converge.
  EXPECT_TRUE(std::isinf(
      split_rhat({{1.0, 1.0, 1.0, 1.0}, {9.0, 9.0, 9.0, 9.0}})));
}

// --- hardened post-hoc diagnostics (the PR's satellite) ---------------------

TEST(DiagnosticsEdgeTest, AutocorrelationDegenerateInputs) {
  EXPECT_DOUBLE_EQ(autocorrelation({}, 0), 1.0);
  EXPECT_DOUBLE_EQ(autocorrelation({}, 3), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.5}, 1), 0.0);
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(autocorrelation(s, s.size()), 0.0);      // lag == n
  EXPECT_DOUBLE_EQ(autocorrelation(s, s.size() + 10), 0.0); // lag > n
  EXPECT_DOUBLE_EQ(autocorrelation(s, 0), 1.0);
}

TEST(DiagnosticsEdgeTest, SummarizeTraceDegenerateInputs) {
  const TraceSummary empty = summarize_trace({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.variance, 0.0);
  EXPECT_DOUBLE_EQ(empty.autocorrelation_time, 1.0);
  EXPECT_DOUBLE_EQ(empty.ess, 0.0);

  const TraceSummary one = summarize_trace({-42.5});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, -42.5);
  EXPECT_DOUBLE_EQ(one.variance, 0.0);
  EXPECT_DOUBLE_EQ(one.ess, 1.0);

  const TraceSummary constant = summarize_trace({7.0, 7.0, 7.0, 7.0, 7.0});
  EXPECT_EQ(constant.n, 5u);
  EXPECT_DOUBLE_EQ(constant.variance, 0.0);
  EXPECT_DOUBLE_EQ(constant.autocorrelation_time, 1.0);
  EXPECT_DOUBLE_EQ(constant.ess, 5.0);

  // No degenerate input yields NaN anywhere in the summary.
  for (const TraceSummary& s : {empty, one, constant}) {
    EXPECT_FALSE(std::isnan(s.mean));
    EXPECT_FALSE(std::isnan(s.variance));
    EXPECT_FALSE(std::isnan(s.autocorrelation_time));
    EXPECT_FALSE(std::isnan(s.ess));
  }
}

}  // namespace
}  // namespace plf::mcmc
