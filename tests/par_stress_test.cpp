// TSan-targeted stress tests for the parallel runtime.
//
// These tests deliberately create heavy cross-thread traffic through
// ThreadPool::parallel_for and SpinBarrier from 8 threads — more than the
// CI hosts have cores — so the ThreadSanitizer preset checks the
// happens-before edges the PLF backends rely on (the relaxed dynamic-schedule
// cursor, the sense-reversing barrier release) under real oversubscription.
// Under the plain presets they double as functional checks that every index
// is visited exactly once and the barrier never tears a round.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "par/spin_barrier.hpp"
#include "par/thread_pool.hpp"

namespace plf::par {
namespace {

constexpr std::size_t kThreads = 8;

TEST(ParStressTest, StaticScheduleCoversEveryIndexExactlyOnce) {
  ThreadPool pool(kThreads);
  const std::size_t n = 20'000;
  std::vector<std::uint8_t> visits(n, 0);  // disjoint ranges: no atomics needed
  for (int region = 0; region < 25; ++region) {
    pool.parallel_for(0, n, [&](Range r, std::size_t) {
      for (std::size_t i = r.begin; i < r.end; ++i) visits[i]++;
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i], 25) << "index " << i;
  }
}

TEST(ParStressTest, DynamicScheduleCoversEveryIndexExactlyOnce) {
  ThreadPool pool(kThreads);
  const std::size_t n = 10'000;
  // Tiny chunks maximize contention on the shared schedule cursor.
  std::vector<std::atomic<std::uint32_t>> visits(n);
  for (int region = 0; region < 10; ++region) {
    pool.parallel_for(
        0, n,
        [&](Range r, std::size_t) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        Schedule::kDynamic, /*chunk=*/7);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 10u) << "index " << i;
  }
}

TEST(ParStressTest, ParallelForResultVisibleToNonParticipatingReader) {
  // The implicit end-of-region barrier must publish body writes to ANY thread
  // that observes parallel_for's return, not just the workers.
  ThreadPool pool(kThreads);
  std::vector<double> sums(kThreads, 0.0);
  pool.parallel_for(0, 4096, [&](Range r, std::size_t t) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      sums[t] += static_cast<double>(i);
    }
  });
  double total = 0.0;
  std::thread reader([&] {
    for (double s : sums) total += s;
  });
  reader.join();
  EXPECT_DOUBLE_EQ(total, 4095.0 * 4096.0 / 2.0);
}

TEST(ParStressTest, SpinBarrierSynchronizesOversubscribedRounds) {
  constexpr std::size_t kRounds = 200;
  SpinBarrier barrier(kThreads);
  // Plain (non-atomic) slots: each round, thread i writes its own slot, the
  // barrier publishes it, then every thread reads its neighbor's slot. Any
  // missing release/acquire edge in the barrier is a data race TSan reports
  // and a torn round this assertion catches.
  std::vector<std::uint64_t> slot(kThreads, 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t round = 1; round <= kRounds; ++round) {
        slot[t] = round;
        barrier.arrive_and_wait();
        if (slot[(t + 1) % kThreads] != round) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        barrier.arrive_and_wait();  // keep reads of round N before writes of N+1
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParStressTest, BarrierInsideParallelForRegions) {
  // The PLF backends use barrier-style phases inside a region (e.g. scaler
  // after down). Emulate that shape: all pool threads rendezvous mid-region.
  ThreadPool pool(kThreads);
  SpinBarrier barrier(kThreads);
  std::vector<std::uint64_t> phase1(kThreads, 0);
  std::atomic<int> mismatches{0};
  for (int region = 0; region < 20; ++region) {
    pool.parallel_for(0, kThreads, [&](Range r, std::size_t t) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        phase1[t] = static_cast<std::uint64_t>(region) + 1;
      }
      barrier.arrive_and_wait();
      const std::uint64_t expect = static_cast<std::uint64_t>(region) + 1;
      if (phase1[(t + 1) % kThreads] != expect) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ParStressTest, NestedParallelForIsRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](Range, std::size_t) {
                                   pool.parallel_for(
                                       0, 1, [](Range, std::size_t) {});
                                 }),
               Error);
  // Pool remains usable after the rejected nested call.
  std::atomic<int> n{0};
  pool.parallel_for(0, 8, [&](Range r, std::size_t) {
    n.fetch_add(static_cast<int>(r.size()));
  });
  EXPECT_EQ(n.load(), 8);
}

}  // namespace
}  // namespace plf::par
