// TSan-targeted stress tests for the parallel runtime.
//
// These tests deliberately create heavy cross-thread traffic through
// ThreadPool::parallel_for and SpinBarrier from 8 threads — more than the
// CI hosts have cores — so the ThreadSanitizer preset checks the
// happens-before edges the PLF backends rely on (the relaxed dynamic-schedule
// cursor, the sense-reversing barrier release) under real oversubscription.
// Under the plain presets they double as functional checks that every index
// is visited exactly once and the barrier never tears a round.
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "exec/scheduler.hpp"
#include "mcmc/coupled.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "par/spin_barrier.hpp"
#include "par/thread_pool.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace plf::par {
namespace {

constexpr std::size_t kThreads = 8;

TEST(ParStressTest, StaticScheduleCoversEveryIndexExactlyOnce) {
  ThreadPool pool(kThreads);
  const std::size_t n = 20'000;
  std::vector<std::uint8_t> visits(n, 0);  // disjoint ranges: no atomics needed
  for (int region = 0; region < 25; ++region) {
    pool.parallel_for(0, n, [&](Range r, std::size_t) {
      for (std::size_t i = r.begin; i < r.end; ++i) visits[i]++;
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i], 25) << "index " << i;
  }
}

TEST(ParStressTest, DynamicScheduleCoversEveryIndexExactlyOnce) {
  ThreadPool pool(kThreads);
  const std::size_t n = 10'000;
  // Tiny chunks maximize contention on the shared schedule cursor.
  std::vector<std::atomic<std::uint32_t>> visits(n);
  for (int region = 0; region < 10; ++region) {
    pool.parallel_for(
        0, n,
        [&](Range r, std::size_t) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        Schedule::kDynamic, /*chunk=*/7);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 10u) << "index " << i;
  }
}

TEST(ParStressTest, ParallelForResultVisibleToNonParticipatingReader) {
  // The implicit end-of-region barrier must publish body writes to ANY thread
  // that observes parallel_for's return, not just the workers.
  ThreadPool pool(kThreads);
  std::vector<double> sums(kThreads, 0.0);
  pool.parallel_for(0, 4096, [&](Range r, std::size_t t) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      sums[t] += static_cast<double>(i);
    }
  });
  double total = 0.0;
  std::thread reader([&] {
    for (double s : sums) total += s;
  });
  reader.join();
  EXPECT_DOUBLE_EQ(total, 4095.0 * 4096.0 / 2.0);
}

TEST(ParStressTest, SpinBarrierSynchronizesOversubscribedRounds) {
  constexpr std::size_t kRounds = 200;
  SpinBarrier barrier(kThreads);
  // Plain (non-atomic) slots: each round, thread i writes its own slot, the
  // barrier publishes it, then every thread reads its neighbor's slot. Any
  // missing release/acquire edge in the barrier is a data race TSan reports
  // and a torn round this assertion catches.
  std::vector<std::uint64_t> slot(kThreads, 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t round = 1; round <= kRounds; ++round) {
        slot[t] = round;
        barrier.arrive_and_wait();
        if (slot[(t + 1) % kThreads] != round) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        barrier.arrive_and_wait();  // keep reads of round N before writes of N+1
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParStressTest, BarrierInsideParallelForRegions) {
  // The PLF backends use barrier-style phases inside a region (e.g. scaler
  // after down). Emulate that shape: all pool threads rendezvous mid-region.
  ThreadPool pool(kThreads);
  SpinBarrier barrier(kThreads);
  std::vector<std::uint64_t> phase1(kThreads, 0);
  std::atomic<int> mismatches{0};
  for (int region = 0; region < 20; ++region) {
    pool.parallel_for(0, kThreads, [&](Range r, std::size_t t) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        phase1[t] = static_cast<std::uint64_t>(region) + 1;
      }
      barrier.arrive_and_wait();
      const std::uint64_t expect = static_cast<std::uint64_t>(region) + 1;
      if (phase1[(t + 1) % kThreads] != expect) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ParStressTest, RepeatCompactedEngineUnderOversubscription) {
  // Site-repeat compaction hands every worker thread the SAME read-only
  // index vector (NodeRepeats::unique_sites) while they write disjoint CLV
  // ranges; the scatter then runs on the caller thread after the pool's
  // end-of-region barrier. Oversubscribed repeated evaluations give TSan a
  // dense interleaving of those shared reads; under plain presets this
  // doubles as a bitwise on-vs-off equivalence check.
  // Both engines run on the SAME oversubscribed pool: the threaded root
  // reduce fixes its summation order per backend configuration, so the
  // compacted and dense engines stay bit-comparable.
  ThreadPool pool(kThreads);
  core::ThreadedBackend threaded(pool);

  Rng rng(4242);
  // Short branches: sequences stay similar, so repeat classes are plentiful
  // and the compacted path is guaranteed to engage.
  auto tree = seqgen::yule_tree(12, rng, 1.0, 0.05);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(600, rng));

  core::PlfEngine on(data, params, tree, threaded,
                     core::KernelVariant::kSimdCol,
                     core::SiteRepeatsMode::kOn);
  core::PlfEngine off(data, params, tree, threaded,
                      core::KernelVariant::kSimdCol,
                      core::SiteRepeatsMode::kOff);
  ASSERT_TRUE(on.site_repeats_enabled());
  EXPECT_EQ(on.log_likelihood(), off.log_likelihood());

  // Keep the pool busy re-running compacted kernels: branch moves recompute
  // root paths, NNIs additionally force class re-identification.
  const auto edges = on.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  for (int round = 0; round < 12; ++round) {
    const int leaf = on.tree().leaf_of(round % 12);
    const double len = 0.02 + 0.01 * round;
    on.set_branch_length(leaf, len);
    off.set_branch_length(leaf, len);
    if (round % 3 == 0) {
      const int v = edges[static_cast<std::size_t>(round) % edges.size()];
      on.begin_proposal();
      off.begin_proposal();
      on.apply_nni(v, round % 2 == 0);
      off.apply_nni(v, round % 2 == 0);
      EXPECT_EQ(on.log_likelihood(), off.log_likelihood());
      on.reject();
      off.reject();
    }
    EXPECT_EQ(on.log_likelihood(), off.log_likelihood());
  }
  EXPECT_GT(on.stats().repeat_down_hits, 0u);
}

TEST(ParStressTest, PlanDispatchHammeredWhileMetricsFlusherReads) {
  // ThreadedBackend::run_plan opens one fused parallel region per dependency
  // level and records plan.* counters/timers into the GLOBAL registry from
  // the calling thread, while 8 oversubscribed workers execute the fused
  // down+scale chunks. A concurrent flusher thread snapshots that registry
  // the whole time, and the engine publishes its gauge stats between
  // evaluations — the exact writer mix a live profiling run produces. Under
  // TSan this checks the region-boundary and registry-shard edges of the
  // batched path; under plain presets it doubles as a plan-vs-percall
  // bitwise equivalence check on a shared hot pool.
  ThreadPool pool(kThreads);
  core::ThreadedBackend threaded(pool);

  Rng rng(1717);
  auto tree = seqgen::yule_tree(12, rng, 1.0, 0.05);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(600, rng));

  core::PlfEngine plan(data, params, tree, threaded,
                       core::KernelVariant::kSimdCol,
                       core::SiteRepeatsMode::kOn, core::DispatchMode::kPlan);
  core::PlfEngine percall(data, params, tree, threaded,
                          core::KernelVariant::kSimdCol,
                          core::SiteRepeatsMode::kOn,
                          core::DispatchMode::kPerCall);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
      (void)snap.counter_value(obs::kCounterPlanOps);
      (void)snap.gauge_value(obs::kGaugeEnginePlanBuilds);
      (void)snap.timer_total_s(obs::kTimerPlanLevel);
    }
  });

  EXPECT_EQ(plan.log_likelihood(), percall.log_likelihood());
  const auto edges = plan.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  for (int round = 0; round < 12; ++round) {
    const int leaf = plan.tree().leaf_of(round % 12);
    const double len = 0.02 + 0.01 * round;
    plan.set_branch_length(leaf, len);
    percall.set_branch_length(leaf, len);
    if (round % 3 == 0) {
      const int v = edges[static_cast<std::size_t>(round) % edges.size()];
      plan.begin_proposal();
      percall.begin_proposal();
      plan.apply_nni(v, round % 2 == 0);
      percall.apply_nni(v, round % 2 == 0);
      EXPECT_EQ(plan.log_likelihood(), percall.log_likelihood());
      plan.reject();
      percall.reject();
    }
    EXPECT_EQ(plan.log_likelihood(), percall.log_likelihood());
    plan.publish_stats(obs::MetricsRegistry::global());
  }
  stop.store(true, std::memory_order_release);
  flusher.join();

  EXPECT_GT(plan.stats().plan_builds, 0u);
  EXPECT_GT(plan.stats().plan_ops, plan.stats().plan_builds);
}

TEST(ParStressTest, BudgetedArenaHammeredWhileMetricsFlusherReads) {
  // The budgeted CLV arena adds one more cross-thread shape to the plan
  // path: the engine thread mutates arena structural state (acquire/evict/
  // pin) between and during fused regions, its stats mutex publishes the
  // arena.* counters, and a concurrent flusher reads those gauges from the
  // global registry the whole time — the exact mix a live profiling run of
  // a memory-constrained chain produces. Under TSan this checks the
  // stats-mutex edge between the evaluation thread and the flusher; under
  // plain presets it doubles as a budgeted-vs-unbudgeted bitwise
  // equivalence check on a hot oversubscribed pool.
  ThreadPool pool(kThreads);
  core::ThreadedBackend threaded(pool);

  Rng rng(3131);
  auto tree = seqgen::yule_tree(12, rng, 1.0, 0.05);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(600, rng));

  core::PlfEngine budgeted(data, params, tree, threaded,
                           core::KernelVariant::kSimdCol,
                           core::SiteRepeatsMode::kOn,
                           core::DispatchMode::kPlan,
                           core::clv_budget_from_string("0.5"));
  core::PlfEngine full(data, params, tree, threaded,
                       core::KernelVariant::kSimdCol,
                       core::SiteRepeatsMode::kOn, core::DispatchMode::kPlan);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
      // engine.clv_bytes is published at construction, so it is visible
      // from the very first snapshot; the budget gauge never moves.
      (void)snap.gauge_value(obs::kGaugeEngineClvBytes);
      (void)snap.gauge_value(obs::kGaugeArenaBudgetBytes);
      (void)snap.gauge_value(obs::kGaugeArenaEvictions);
      (void)snap.gauge_value(obs::kGaugeArenaRecomputeOps);
      (void)snap.gauge_value(obs::kGaugeArenaHitRate);
    }
  });

  EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
  const auto edges = budgeted.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  for (int round = 0; round < 12; ++round) {
    const int leaf = budgeted.tree().leaf_of(round % 12);
    const double len = 0.02 + 0.01 * round;
    budgeted.set_branch_length(leaf, len);
    full.set_branch_length(leaf, len);
    if (round % 3 == 0) {
      const int v = edges[static_cast<std::size_t>(round) % edges.size()];
      budgeted.begin_proposal();
      full.begin_proposal();
      budgeted.apply_nni(v, round % 2 == 0);
      full.apply_nni(v, round % 2 == 0);
      EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
      budgeted.reject();
      full.reject();
    }
    EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
    // Thread-safe reads of the arena counters race the evaluation thread's
    // updates by design; the gauges they feed are flushed every round.
    EXPECT_LE(budgeted.arena().resident_bytes(),
              budgeted.arena().budget_bytes());
    budgeted.publish_stats(obs::MetricsRegistry::global());
  }
  stop.store(true, std::memory_order_release);
  flusher.join();

  EXPECT_GT(budgeted.arena().counters().evictions, 0u);
  EXPECT_EQ(full.arena().counters().evictions, 0u);
  EXPECT_GT(budgeted.arena().counters().hit_rate(), 0.0);
}

TEST(ParStressTest, TipFusedKernelsHammeredWhileMetricsFlusherReads) {
  // The tip-specialized plan path adds two new cross-thread shapes: every
  // worker gathers from the SAME read-only pair tables (NodeState::pair,
  // rebuilt by the caller thread between evaluations when a tip branch
  // moves) while writing disjoint CLV/scaler chunks through the fused
  // down+scale entries. Hammer exactly that — tip-branch moves force table
  // rebuilds between regions, NNIs re-pair cherries — with a concurrent
  // flusher snapshotting the global registry and the engine publishing its
  // tip gauges each round. Under TSan this checks the rebuild/consume edge
  // across the region boundary; under plain presets it doubles as a
  // plan-vs-percall bitwise equivalence check of the tip kernels on a hot
  // oversubscribed pool.
  ThreadPool pool(kThreads);
  core::ThreadedBackend threaded(pool);

  Rng rng(2929);
  auto tree = seqgen::yule_tree(12, rng, 1.0, 0.05);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(600, rng));

  core::PlfEngine plan(data, params, tree, threaded,
                       core::KernelVariant::kSimdCol,
                       core::SiteRepeatsMode::kOff, core::DispatchMode::kPlan);
  core::PlfEngine percall(data, params, tree, threaded,
                          core::KernelVariant::kSimdCol,
                          core::SiteRepeatsMode::kOff,
                          core::DispatchMode::kPerCall);
  ASSERT_TRUE(plan.tip_kernels_enabled());

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
      (void)snap.gauge_value(obs::kGaugeEngineTipTtOps);
      (void)snap.gauge_value(obs::kGaugeEngineTipTiOps);
      (void)snap.gauge_value(obs::kGaugeEngineTipTablesBuilt);
    }
  });

  EXPECT_EQ(plan.log_likelihood(), percall.log_likelihood());
  const auto edges = plan.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  for (int round = 0; round < 12; ++round) {
    // Leaf-branch moves: each one invalidates a tip-partial buffer and, for
    // cherry parents, forces a pair-table rebuild before the next region.
    const int leaf = plan.tree().leaf_of(round % 12);
    const double len = 0.02 + 0.01 * round;
    plan.set_branch_length(leaf, len);
    percall.set_branch_length(leaf, len);
    if (round % 3 == 0) {
      const int v = edges[static_cast<std::size_t>(round) % edges.size()];
      plan.begin_proposal();
      percall.begin_proposal();
      plan.apply_nni(v, round % 2 == 0);
      percall.apply_nni(v, round % 2 == 0);
      EXPECT_EQ(plan.log_likelihood(), percall.log_likelihood());
      plan.reject();
      percall.reject();
    }
    EXPECT_EQ(plan.log_likelihood(), percall.log_likelihood());
    plan.publish_stats(obs::MetricsRegistry::global());
  }
  stop.store(true, std::memory_order_release);
  flusher.join();

  EXPECT_GT(plan.stats().tip_tt_ops, 0u);
  EXPECT_GT(plan.stats().tip_tables_built, 0u);
  EXPECT_EQ(percall.stats().tip_tt_ops, 0u);
}

TEST(ParStressTest, MultiInstanceSchedulerHammeredWhileMetricsFlusherReads) {
  // The multi-instance runtime (exec/scheduler.hpp) adds the last cross-
  // thread shape: four engines pinned to four driver threads all submit
  // regions to ONE oversubscribed pool concurrently, while a flusher thread
  // snapshots the global registry the engines publish their per-instance
  // gauges into between evaluations. Under TSan this checks the region
  // queue's cross-submitter edges and the driver handoff (ThreadChecker
  // detach/rebind); under plain presets it checks the scheduled engines stay
  // bit-identical to an unscheduled twin stepped inline through the same
  // moves on the same backend (scheduling must not change the arithmetic).
  ThreadPool pool(kThreads);
  core::ThreadedBackend threaded(pool);

  Rng rng(5151);
  auto tree = seqgen::yule_tree(12, rng, 1.0, 0.05);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(600, rng));

  constexpr std::size_t kInstances = 4;
  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (std::size_t i = 0; i < kInstances; ++i) {
    engines.push_back(std::make_unique<core::PlfEngine>(
        data, params, tree, threaded, core::KernelVariant::kSimdCol,
        core::SiteRepeatsMode::kOn, core::DispatchMode::kPlan));
  }
  core::PlfEngine reference(data, params, tree, threaded,
                            core::KernelVariant::kSimdCol,
                            core::SiteRepeatsMode::kOn,
                            core::DispatchMode::kPlan);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
      (void)snap.gauge_value("inst0.engine.down_calls");
      (void)snap.gauge_value("inst3.engine.down_calls");
      (void)snap.counter_value(obs::kCounterPlanOps);
    }
  });

  {
    exec::InstanceScheduler sched(kInstances);
    for (std::size_t i = 0; i < kInstances; ++i) {
      sched.register_instance(*engines[i], "inst" + std::to_string(i));
    }
    const auto edges = reference.tree().internal_edge_nodes();
    ASSERT_FALSE(edges.empty());
    std::vector<double> lnl(kInstances);
    for (int round = 0; round < 12; ++round) {
      const int leaf = reference.tree().leaf_of(round % 12);
      const double len = 0.02 + 0.01 * round;
      const int v = edges[static_cast<std::size_t>(round) % edges.size()];
      const bool nni_round = round % 3 == 0;
      sched.for_each_instance([&](int id, core::PlfEngine& e) {
        e.set_branch_length(leaf, len);
        if (nni_round) {
          e.begin_proposal();
          e.apply_nni(v, round % 2 == 0);
          e.log_likelihood();
          e.reject();
        }
        lnl[static_cast<std::size_t>(id)] = e.log_likelihood();
        e.publish_stats(obs::MetricsRegistry::global());
      });
      reference.set_branch_length(leaf, len);
      if (nni_round) {
        reference.begin_proposal();
        reference.apply_nni(v, round % 2 == 0);
        reference.log_likelihood();
        reference.reject();
      }
      // Scheduled engines match the inline twin bit-for-bit, and
      // each other (all four ran the identical move sequence).
      const double expect = reference.log_likelihood();
      for (std::size_t i = 0; i < kInstances; ++i) {
        EXPECT_EQ(lnl[i], expect) << "instance " << i << " round " << round;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  flusher.join();

  // Per-instance gauge labels kept the four engines' stats distinct.
  const obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(snap.gauge_value("inst0.engine.down_calls"), 0.0);
  EXPECT_GT(snap.gauge_value("inst3.engine.down_calls"), 0.0);
}

TEST(ParStressTest, NestedParallelForIsRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](Range, std::size_t) {
                                   pool.parallel_for(
                                       0, 1, [](Range, std::size_t) {});
                                 }),
               Error);
  // Pool remains usable after the rejected nested call.
  std::atomic<int> n{0};
  pool.parallel_for(0, 8, [&](Range r, std::size_t) {
    n.fetch_add(static_cast<int>(r.size()));
  });
  EXPECT_EQ(n.load(), 8);
}

TEST(ParStressTest, MetricsRegistryHammeredWhileFlusherReads) {
  // 8 pool workers record counters, timer samples, and trace spans into the
  // registry while a dedicated reader thread snapshots and drains the trace
  // buffer in a tight loop. Under TSan this exercises the shard-mutex
  // handoff between writers and the flusher; under the plain presets it
  // checks that concurrent flushes never lose or duplicate a record.
  obs::MetricsRegistry reg;
  const obs::MetricId counter = reg.counter("stress.counter");
  const obs::MetricId timer = reg.timer("stress.timer");
  reg.enable_tracing(true);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = reg.snapshot();
      const std::uint64_t seen = snap.counter_value("stress.counter");
      EXPECT_GE(seen, last);  // totals only grow while writers run
      last = seen;
      const auto* t = snap.find_timer("stress.timer");
      if (t != nullptr && t->stats.count() > 0) {
        EXPECT_DOUBLE_EQ(t->stats.min(), 1e-6);
        EXPECT_DOUBLE_EQ(t->stats.max(), 1e-6);
      }
      (void)reg.trace_events();
    }
  });

  ThreadPool pool(kThreads);
  constexpr std::size_t kN = 20'000;
  constexpr int kRounds = 10;  // kN * kRounds spans stay under the trace cap
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(0, kN, [&](Range r, std::size_t) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        reg.add(counter);
        reg.record_seconds(timer, 1e-6);
        reg.record_span(timer, i, i + 1);
      }
    });
  }
  stop.store(true, std::memory_order_release);
  flusher.join();

  const obs::Snapshot snap = reg.snapshot();
  constexpr std::uint64_t kTotal = static_cast<std::uint64_t>(kN) * kRounds;
  EXPECT_EQ(snap.counter_value("stress.counter"), kTotal);
  const auto* t = snap.find_timer("stress.timer");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.count(), kTotal);
  EXPECT_EQ(reg.trace_events().size(), kTotal);
  EXPECT_EQ(reg.trace_events_dropped(), 0u);
}

TEST(ParStressTest, HistogramAndFlightHammeredWhileFlusherReads) {
  // Pool workers record timer samples (feeding the per-shard latency
  // histograms) and append flight-recorder events, while one reader thread
  // snapshots percentiles and serializes the flight rings in a loop. Under
  // TSan this checks the histogram shard-merge and the lock-free ring's
  // seqlock-style publish/read protocol; under plain presets it checks the
  // merged histogram is exact despite concurrent flushes.
  obs::flight_reset_for_tests();
  obs::MetricsRegistry reg;
  const obs::MetricId timer = reg.timer("stress.hist");

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snap = reg.snapshot();
      const auto* t = snap.find_timer("stress.hist");
      if (t != nullptr && t->hist.count() > 0) {
        // Every sample is exactly 1000 ns -> bucket [512, 1024); the merged
        // view must never show mass elsewhere, even mid-run.
        EXPECT_EQ(t->hist.bucket_count(10), t->hist.count());
        const double p99 = t->hist.percentile_ns(0.99);
        EXPECT_GE(p99, 512.0);
        EXPECT_LE(p99, 1024.0);
      }
      EXPECT_EQ(snap.hist_samples_dropped, 0u);
      std::ostringstream os;
      obs::write_flight_json(os, "stress");
      EXPECT_EQ(os.str().find("nan"), std::string::npos);
    }
  });

  ThreadPool pool(kThreads);
  constexpr std::size_t kN = 20'000;
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(0, kN, [&](Range r, std::size_t) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        reg.record_seconds(timer, 1e-6);  // 1000 ns exactly
        obs::flight_record_span("stress.flight", i, 1);
        if (i % 64 == 0) obs::flight_record_count("stress.flight.count", 1);
      }
    });
  }
  stop.store(true, std::memory_order_release);
  flusher.join();

  const obs::Snapshot snap = reg.snapshot();
  const auto* t = snap.find_timer("stress.hist");
  ASSERT_NE(t, nullptr);
  constexpr std::uint64_t kTotal = static_cast<std::uint64_t>(kN) * kRounds;
  EXPECT_EQ(t->hist.count(), kTotal);
  EXPECT_EQ(t->hist.bucket_count(10), kTotal);
  EXPECT_EQ(snap.hist_samples_dropped, 0u);

  // Quiescent rings serialize consistently: the last writers' events are
  // visible and well-formed.
  std::ostringstream os;
  obs::write_flight_json(os, "stress-final");
  EXPECT_NE(os.str().find("\"name\":\"stress.flight\""), std::string::npos);
}

TEST(ParStressTest, RegionExceptionRethrownWhileStatsReadersRace) {
  // Regression for the TSA lock-discipline finding in parallel_for
  // (docs/STATIC_ANALYSIS.md): the caller used to read Region::error bare
  // after the cv_done_ wait — safe only via the wait's happens-before edge,
  // invisible to the analysis and fragile under refactoring. It now goes
  // through Region::take_error() under error_m. This hammers that path with
  // throwing bodies from every worker while a dedicated thread polls
  // stats() (the stats_m_ discipline) the whole time; TSan checks both
  // locks, the plain presets check no exception is ever lost or doubled.
  ThreadPool pool(kThreads);
  std::atomic<bool> stop{false};
  std::thread stats_reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const PoolStats s = pool.stats();
      EXPECT_GE(s.regions, last);  // counters only grow
      last = s.regions;
    }
  });

  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    int caught = 0;
    try {
      pool.parallel_for(0, kThreads * 8, [&](Range r, std::size_t) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          if (i % 8 == 3) throw Error("stress: region body failure");
        }
      });
    } catch (const Error& e) {
      caught = 1;
      EXPECT_NE(std::string(e.what()).find("region body failure"),
                std::string::npos);
    }
    EXPECT_EQ(caught, 1) << "region exception swallowed in round " << round;
  }

  // The pool survives every failed region.
  std::atomic<int> n{0};
  pool.parallel_for(0, 128, [&](Range r, std::size_t) {
    n.fetch_add(static_cast<int>(r.size()), std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 128);

  stop.store(true, std::memory_order_release);
  stats_reader.join();
}

TEST(ParStressTest, FreshThreadFirstRecordRacesSnapshotLoop) {
  // Regression for the metrics flush-ordering finding
  // (docs/STATIC_ANALYSIS.md): snapshot() used to copy the shard-pointer
  // list under the registry lock, release it, then merge each shard — so a
  // fresh thread's first record could register its shard mid-flush and the
  // "snapshot" was not a consistent cut. snapshot() now holds the registry
  // lock across the whole merge. The invariant checked here: a sample fully
  // recorded (thread joined) before a snapshot starts can never be missing
  // from it. Each recording thread is brand new, so every add() exercises
  // the make_shard registration path against the flush loop.
  obs::MetricsRegistry reg;
  const obs::MetricId counter = reg.counter("stress.fresh");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t floor = committed.load(std::memory_order_acquire);
      const obs::Snapshot snap = reg.snapshot();
      EXPECT_GE(snap.counter_value("stress.fresh"), floor);
    }
  });

  constexpr int kFreshThreads = 64;
  for (int i = 0; i < kFreshThreads; ++i) {
    std::thread recorder([&] { reg.add(counter); });
    recorder.join();
    committed.fetch_add(1, std::memory_order_release);
  }

  stop.store(true, std::memory_order_release);
  flusher.join();
  EXPECT_EQ(reg.snapshot().counter_value("stress.fresh"),
            static_cast<std::uint64_t>(kFreshThreads));
}

TEST(ParStressTest, TelemetryExporterHammeredWhileChainsRun) {
  // Live telemetry's cross-thread contract (obs/exporter.hpp): the run
  // thread exports records at its cadence while monitor threads poll
  // records_written()/last_generation()/due() and re-parse the atomically
  // renamed status file in a tight loop — exactly what `plf_status --follow`
  // does against a live run. Under TSan this checks the exporter's mutex
  // covers every counter the monitors read; under the plain presets it
  // checks the status file is always a complete parseable document and the
  // JSONL history never tears a line.
  Rng rng(6161);
  auto tree = seqgen::yule_tree(6, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(80, rng));

  core::SerialBackend backend;
  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (int i = 0; i < 3; ++i) {
    engines.push_back(
        std::make_unique<core::PlfEngine>(data, params, tree, backend));
  }

  // Pid-qualified names: concurrent ctest invocations sharing one TMPDIR
  // must not append to each other's telemetry history.
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string jsonl =
      ::testing::TempDir() + "plf" + tag + "_stress_telemetry.jsonl";
  const std::string status =
      ::testing::TempDir() + "plf" + tag + "_stress_status.json";
  std::remove(jsonl.c_str());
  std::remove(status.c_str());
  obs::MetricsRegistry registry;
  obs::TelemetryOptions topts;
  topts.jsonl_path = jsonl;
  topts.status_path = status;
  topts.every_generations = 5;  // export aggressively: contention, not cadence
  obs::TelemetryExporter exporter(topts, &registry);

  std::atomic<bool> stop{false};
  std::vector<std::thread> monitors;
  for (int m = 0; m < 3; ++m) {
    monitors.emplace_back([&, m] {
      std::uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t written = exporter.records_written();
        const std::uint64_t gen = exporter.last_generation();
        EXPECT_GE(written, last_seen) << "records_written went backwards";
        last_seen = written;
        (void)exporter.due(gen + static_cast<std::uint64_t>(m));
        if (written > 0) {
          // The tmp+rename protocol guarantees a complete document even
          // while export_record is mid-rewrite on the run thread.
          const json::Value rec = json::parse_file(status);
          EXPECT_EQ(rec.at("schema").as_string(),
                    obs::TelemetryExporter::kSchema);
        }
      }
    });
  }

  mcmc::CoupledOptions opts;
  opts.chain.seed = 59;
  opts.chain.sample_every = 10;
  opts.swap_every = 5;
  opts.telemetry = &exporter;
  mcmc::CoupledChains mc3(std::move(engines), opts);
  mc3.run(300);

  stop.store(true, std::memory_order_release);
  for (std::thread& t : monitors) t.join();

  EXPECT_EQ(exporter.records_written(), 60u);
  std::ifstream in(jsonl, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(json::parse(line).at("schema").as_string(),
              obs::TelemetryExporter::kSchema);
  }
  EXPECT_EQ(lines, 60u);
}

}  // namespace
}  // namespace plf::par
