#include <gtest/gtest.h>

#include <cmath>

#include "arch/models.hpp"
#include "arch/systems.hpp"
#include "arch/workload.hpp"
#include "util/error.hpp"

namespace plf::arch {
namespace {

TEST(SystemsTest, TableHasEightSystemsBaselineFirst) {
  const auto systems = table1_systems();
  ASSERT_EQ(systems.size(), 8u);
  EXPECT_EQ(systems[0].name, "Baseline");
  EXPECT_EQ(systems[0].family, SystemFamily::kBaseline);
  EXPECT_EQ(systems[0].cores, 1u);
}

TEST(SystemsTest, Table1FactsMatchPaper) {
  const auto& xeon = system_by_name("2xXeon(4)");
  EXPECT_EQ(xeon.cores, 8u);
  EXPECT_DOUBLE_EQ(xeon.freq_hz, 1.8e9);
  EXPECT_EQ(xeon.topology.total_cores(), 8u);
  EXPECT_EQ(xeon.topology.dies_per_package, 2u);  // two dual-core dies

  const auto& opt4 = system_by_name("4xOpteron(4)");
  EXPECT_EQ(opt4.cores, 16u);
  EXPECT_EQ(opt4.topology.cores_per_die, 4u);  // monolithic quad die
  EXPECT_TRUE(opt4.topology.die_cache_shared);

  const auto& opt2 = system_by_name("8xOpteron(2)");
  EXPECT_EQ(opt2.cores, 16u);
  EXPECT_FALSE(opt2.topology.die_cache_shared);  // private L2s

  EXPECT_EQ(system_by_name("PS3").cell.n_spes, 6u);
  EXPECT_EQ(system_by_name("QS20").cell.n_spes, 16u);
  EXPECT_EQ(system_by_name("8800GT").gpu.device.total_cores(), 112u);
  EXPECT_EQ(system_by_name("GTX285").gpu.device.total_cores(), 240u);
  EXPECT_EQ(system_by_name("8800GT").gpu.launch.blocks, 40u);
  EXPECT_EQ(system_by_name("GTX285").gpu.launch.blocks, 85u);
  EXPECT_THROW(system_by_name("nonexistent"), Error);
}

TEST(WorkloadTest, AnalyticCountsScaleSensibly) {
  const auto w10 = analytic_mcmc_workload(10, 1000, 1000);
  const auto w100 = analytic_mcmc_workload(100, 1000, 1000);
  EXPECT_GT(w100.down_calls, w10.down_calls);  // deeper dirty paths
  EXPECT_EQ(w10.root_calls, 1000u);
  EXPECT_EQ(w10.reduce_calls, 1000u);
  EXPECT_EQ(w10.scale_calls, w10.down_calls + w10.root_calls);
  EXPECT_GT(w10.serial_cycles, 0.0);

  const auto wlong = analytic_mcmc_workload(10, 1000, 2000);
  EXPECT_NEAR(static_cast<double>(wlong.down_calls) / w10.down_calls, 2.0, 0.01);
}

TEST(MultiCoreModelTest, RegionOverheadGrowsWithTopologyDistance) {
  MultiCoreModel xeon(system_by_name("2xXeon(4)"));
  MultiCoreModel opt4(system_by_name("4xOpteron(4)"));
  MultiCoreModel opt2(system_by_name("8xOpteron(2)"));

  EXPECT_EQ(xeon.region_overhead_s(1), 0.0);
  // Within one shared-cache die: cheapest.
  EXPECT_LT(opt4.region_overhead_s(4), xeon.region_overhead_s(4));
  // All 16 cores: the 8-package Opteron pays the most cross-package cost.
  EXPECT_GT(opt2.region_overhead_s(16), opt4.region_overhead_s(16));
  // Monotone in core count.
  double prev = 0.0;
  for (std::size_t n = 1; n <= 16; ++n) {
    const double o = opt4.region_overhead_s(n);
    EXPECT_GE(o, prev);
    prev = o;
  }
}

TEST(MultiCoreModelTest, SpeedupMatchesPaperShape) {
  // Fig. 9's qualitative claims.
  MultiCoreModel xeon(system_by_name("2xXeon(4)"));
  MultiCoreModel opt4(system_by_name("4xOpteron(4)"));

  // (a) Larger data sets scale better (1K is the worst case; lowest ~6 on
  //     the Xeon).
  const auto w1k = analytic_mcmc_workload(50, 1000, 2000);
  const auto w50k = analytic_mcmc_workload(50, 50000, 2000);
  const double s1k = xeon.relative_speedup(w1k, 8);
  const double s50k = xeon.relative_speedup(w50k, 8);
  EXPECT_LT(s1k, s50k);
  EXPECT_GT(s1k, 4.5);   // paper: lowest ~6 for the 1K sets
  EXPECT_LT(s50k, 8.0);

  // (b) More computation intensity (leaves -> more calls) hurts.
  const auto w10 = analytic_mcmc_workload(10, 5000, 2000);
  const auto w100 = analytic_mcmc_workload(100, 5000, 2000);
  EXPECT_GT(xeon.relative_speedup(w10, 8), xeon.relative_speedup(w100, 8));

  // (c) The 16-core systems peak around ~12-13x for big data.
  const double s16 = opt4.relative_speedup(w50k, 16);
  EXPECT_GT(s16, 9.5);
  EXPECT_LT(s16, 14.5);
}

TEST(MultiCoreModelTest, SharedCacheDieScalesBestAtLowCounts) {
  // §4.1.1: the Opteron 8354's 4-core shared die communicates cheapest, so
  // at 4 threads it beats the Xeon arrangement for small data.
  MultiCoreModel xeon(system_by_name("2xXeon(4)"));
  MultiCoreModel opt4(system_by_name("4xOpteron(4)"));
  const auto w = analytic_mcmc_workload(50, 1000, 2000);
  // Compare parallel-section efficiency (absolute times differ by clock).
  const double eff_xeon =
      xeon.plf_section_s(w, 1) / (4.0 * xeon.plf_section_s(w, 4));
  const double eff_opt =
      opt4.plf_section_s(w, 1) / (4.0 * opt4.plf_section_s(w, 4));
  EXPECT_GT(eff_opt, eff_xeon);
}

TEST(MultiCoreModelTest, BaselinePlfFractionMatchesPaper) {
  // ">90%" of baseline runtime in the PLF; 57s of 62s (~92%) on the real
  // data set.
  MultiCoreModel base(system_by_name("Baseline"));
  const auto w = analytic_mcmc_workload(20, 8543, 2000);
  const double plf = base.plf_section_s(w, 1);
  const double serial = base.serial_s(w);
  const double fraction = plf / (plf + serial);
  EXPECT_GT(fraction, 0.85);
  EXPECT_LT(fraction, 0.97);
}

TEST(MultiCoreModelTest, RejectsWrongFamilyAndBadCounts) {
  EXPECT_THROW(MultiCoreModel{system_by_name("PS3")}, Error);
  MultiCoreModel xeon(system_by_name("2xXeon(4)"));
  EXPECT_THROW(xeon.region_overhead_s(9), Error);
  const auto w = analytic_mcmc_workload(10, 1000, 10);
  EXPECT_THROW(xeon.plf_section_s(w, 0), Error);
}

TEST(CellModelTest, SpeedupShapeMatchesFig10) {
  CellModel ps3(system_by_name("PS3"));
  CellModel qs20(system_by_name("QS20"));

  const auto w20k = analytic_mcmc_workload(50, 20000, 200);
  // Large data: near-ideal scaling at 6 SPEs, ~12x at 16 (paper Fig. 10).
  const double s6 = ps3.speedup_vs_one_spe(w20k, 6);
  EXPECT_GT(s6, 5.0);
  EXPECT_LE(s6, 6.05);
  const double s16 = qs20.speedup_vs_one_spe(w20k, 16);
  EXPECT_GT(s16, 10.5);
  EXPECT_LE(s16, 16.05);

  // Small data scales visibly worse.
  const auto w1k = analytic_mcmc_workload(50, 1000, 200);
  EXPECT_LT(qs20.speedup_vs_one_spe(w1k, 16), s16);
}

TEST(CellModelTest, StableAcrossComputationIntensity) {
  // "the performance is stable across the different computation
  // intensities" — speedup varies little from 10 to 100 leaves.
  CellModel qs20(system_by_name("QS20"));
  const auto w10 = analytic_mcmc_workload(10, 20000, 100);
  const auto w100 = analytic_mcmc_workload(100, 20000, 100);
  const double s10 = qs20.speedup_vs_one_spe(w10, 16);
  const double s100 = qs20.speedup_vs_one_spe(w100, 16);
  EXPECT_NEAR(s10, s100, 0.15 * s10);
}

TEST(CellModelTest, PpeSerialPenaltyIsLarge) {
  // §4.2: the Remaining time explodes on the in-order PPE.
  CellModel ps3(system_by_name("PS3"));
  MultiCoreModel base(system_by_name("Baseline"));
  const auto w = analytic_mcmc_workload(20, 8543, 500);
  EXPECT_GT(ps3.serial_s(w), 4.0 * base.serial_s(w));
}

TEST(GpuModelTest, PcieDominatesAndGtxKernelsFaster) {
  GpuModel gt(system_by_name("8800GT"));
  GpuModel gtx(system_by_name("GTX285"));
  const auto w = analytic_mcmc_workload(50, 20000, 100);

  const auto t_gt = gt.plf_section(w);
  const auto t_gtx = gtx.plf_section(w);
  // Fig. 12: transfers dwarf kernel time.
  EXPECT_GT(t_gt.pcie_s, 2.0 * t_gt.kernel_s);
  // Fig. 11: GTX kernels ~2x the 8800GT at 20K columns.
  EXPECT_GT(t_gt.kernel_s / t_gtx.kernel_s, 1.6);
  // The GTX285 testbed's PCIe 2.0 link moves the same bytes ~3x faster —
  // the Fig. 12 reason it reaches ~1.5x overall while the 8800GT does not.
  EXPECT_GT(t_gt.pcie_s / t_gtx.pcie_s, 2.0);
  EXPECT_LT(t_gt.pcie_s / t_gtx.pcie_s, 4.0);
}

TEST(GpuModelTest, ThroughputGrowsWithDataSize) {
  // Fig. 11: per-pattern PLF throughput improves with column count.
  GpuModel gt(system_by_name("8800GT"));
  const auto w1k = analytic_mcmc_workload(10, 1000, 100);
  const auto w50k = analytic_mcmc_workload(10, 50000, 100);
  const double thr_1k =
      static_cast<double>(w1k.m) * static_cast<double>(w1k.plf_calls()) /
      gt.plf_section(w1k).kernel_s;
  const double thr_50k =
      static_cast<double>(w50k.m) * static_cast<double>(w50k.plf_calls()) /
      gt.plf_section(w50k).kernel_s;
  EXPECT_GT(thr_50k, 1.5 * thr_1k);
}

TEST(TotalTimeTest, Figure12Ordering) {
  // The headline §4.2 results, frequency-scaled:
  //  * 8-core multi-core ~4x overall, 16-core ~7x;
  //  * Cell and best GPU only ~1.5x;
  //  * 8800GT can end up SLOWER than the baseline.
  const auto& base_sys = system_by_name("Baseline");
  MultiCoreModel base(base_sys);
  const auto w = analytic_mcmc_workload(20, 8543, 1000);
  const double t_base = base.total_s(w, 1);  // frequency scale = 1

  MultiCoreModel xeon(system_by_name("2xXeon(4)"));
  const double t_xeon =
      frequency_scaled(xeon.total_s(w, 8), xeon.system(), base_sys);
  const double speedup_8 = t_base / t_xeon;
  EXPECT_GT(speedup_8, 3.0);
  EXPECT_LT(speedup_8, 5.5);

  MultiCoreModel opt4(system_by_name("4xOpteron(4)"));
  const double t_opt =
      frequency_scaled(opt4.total_s(w, 16), opt4.system(), base_sys);
  const double speedup_16 = t_base / t_opt;
  EXPECT_GT(speedup_16, 5.5);
  EXPECT_LT(speedup_16, 9.0);

  CellModel ps3(system_by_name("PS3"));
  const double t_ps3 =
      frequency_scaled(ps3.total_s(w, 6), ps3.system(), base_sys);
  const double speedup_cell = t_base / t_ps3;
  EXPECT_GT(speedup_cell, 1.0);
  EXPECT_LT(speedup_cell, 2.5);

  GpuModel gt(system_by_name("8800GT"));
  const double t_gt = frequency_scaled(gt.total_s(w), gt.system(), base_sys);
  EXPECT_GT(t_gt, 0.8 * t_base);  // at or above baseline cost

  GpuModel gtx(system_by_name("GTX285"));
  const double t_gtx =
      frequency_scaled(gtx.total_s(w), gtx.system(), base_sys);
  EXPECT_LT(t_gtx, t_gt);
}

TEST(FrequencyScalingTest, ScalesByClockRatio) {
  const auto& base = system_by_name("Baseline");
  const auto& xeon = system_by_name("2xXeon(4)");
  EXPECT_DOUBLE_EQ(frequency_scaled(10.0, xeon, base), 10.0 * 1.8 / 3.0);
  EXPECT_DOUBLE_EQ(frequency_scaled(10.0, base, base), 10.0);
}

}  // namespace
}  // namespace plf::arch
