#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "simd/simd.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace plf::simd {
namespace {

TEST(Vec4fTest, LoadStoreRoundTrip) {
  aligned_vector<float> in{1.5f, -2.0f, 3.25f, 0.0f};
  aligned_vector<float> out(4);
  Vec4f::load(in.data()).store(out.data());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], in[static_cast<std::size_t>(i)]);
}

TEST(Vec4fTest, Arithmetic) {
  const Vec4f a(1, 2, 3, 4);
  const Vec4f b(10, 20, 30, 40);
  float r[4];
  (a + b).storeu(r);
  EXPECT_EQ(r[0], 11);
  EXPECT_EQ(r[3], 44);
  (a * b).storeu(r);
  EXPECT_EQ(r[1], 40);
  (b - a).storeu(r);
  EXPECT_EQ(r[2], 27);
}

TEST(Vec4fTest, Broadcast) {
  float r[4];
  Vec4f(7.0f).storeu(r);
  for (float v : r) EXPECT_EQ(v, 7.0f);
}

TEST(Vec4fTest, FmaMatchesMulAdd) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    float a[4], b[4], c[4], r[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = static_cast<float>(rng.uniform(-2, 2));
      b[i] = static_cast<float>(rng.uniform(-2, 2));
      c[i] = static_cast<float>(rng.uniform(-2, 2));
    }
    Vec4f::fma(Vec4f::loadu(a), Vec4f::loadu(b), Vec4f::loadu(c)).storeu(r);
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(r[i], a[i] * b[i] + c[i], 1e-5f);
    }
  }
}

TEST(Vec4fTest, HorizontalSum) {
  EXPECT_FLOAT_EQ(Vec4f(1, 2, 3, 4).hsum(), 10.0f);
  EXPECT_FLOAT_EQ(Vec4f(-1, 1, -1, 1).hsum(), 0.0f);
}

TEST(Vec4fTest, HorizontalMax) {
  EXPECT_FLOAT_EQ(Vec4f(1, 9, 3, 4).hmax(), 9.0f);
  EXPECT_FLOAT_EQ(Vec4f(-5, -2, -9, -3).hmax(), -2.0f);
}

TEST(Vec4fTest, ElementwiseMax) {
  float r[4];
  Vec4f::max(Vec4f(1, 5, 2, 8), Vec4f(4, 3, 7, 6)).storeu(r);
  EXPECT_EQ(r[0], 4);
  EXPECT_EQ(r[1], 5);
  EXPECT_EQ(r[2], 7);
  EXPECT_EQ(r[3], 8);
}

TEST(Vec4fTest, Lane) {
  const Vec4f v(10, 20, 30, 40);
  EXPECT_EQ(v.lane(0), 10);
  EXPECT_EQ(v.lane(3), 40);
}

TEST(Vec4fTest, Transpose4) {
  Vec4f r0(0, 1, 2, 3), r1(4, 5, 6, 7), r2(8, 9, 10, 11), r3(12, 13, 14, 15);
  transpose4(r0, r1, r2, r3);
  EXPECT_EQ(r0.lane(0), 0);
  EXPECT_EQ(r0.lane(1), 4);
  EXPECT_EQ(r0.lane(2), 8);
  EXPECT_EQ(r0.lane(3), 12);
  EXPECT_EQ(r3.lane(0), 3);
  EXPECT_EQ(r3.lane(3), 15);
}

TEST(Vec8fTest, LoadStoreRoundTrip) {
  aligned_vector<float> in{1, 2, 3, 4, 5, 6, 7, 8};
  aligned_vector<float> out(8);
  Vec8f::load(in.data()).store(out.data());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Vec8fTest, ArithmeticAndReductions) {
  aligned_vector<float> a{1, 2, 3, 4, 5, 6, 7, 8};
  aligned_vector<float> b{8, 7, 6, 5, 4, 3, 2, 1};
  const Vec8f va = Vec8f::load(a.data());
  const Vec8f vb = Vec8f::load(b.data());
  float r[8];
  (va + vb).storeu(r);
  for (float v : r) EXPECT_EQ(v, 9.0f);
  (va * vb).storeu(r);
  EXPECT_EQ(r[0], 8.0f);
  EXPECT_EQ(r[7], 8.0f);
  EXPECT_FLOAT_EQ(va.hsum(), 36.0f);
  EXPECT_FLOAT_EQ(va.hmax(), 8.0f);
  EXPECT_FLOAT_EQ(Vec8f::max(va, vb).hsum(), 8 + 7 + 6 + 5 + 5 + 6 + 7 + 8);
}

TEST(Vec8fTest, CombineConcatenates) {
  float r[8];
  Vec8f::combine(Vec4f(1, 2, 3, 4), Vec4f(5, 6, 7, 8)).storeu(r);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r[i], static_cast<float>(i + 1));
}

TEST(Vec8fTest, FmaMatchesMulAdd) {
  Rng rng(2);
  float a[8], b[8], c[8], r[8];
  for (int i = 0; i < 8; ++i) {
    a[i] = static_cast<float>(rng.uniform(-1, 1));
    b[i] = static_cast<float>(rng.uniform(-1, 1));
    c[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  Vec8f::fma(Vec8f::loadu(a), Vec8f::loadu(b), Vec8f::loadu(c)).storeu(r);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(r[i], a[i] * b[i] + c[i], 1e-5f);
}

TEST(BackendTest, NameIsNonEmpty) {
  EXPECT_FALSE(backend_name().empty());
}

}  // namespace
}  // namespace plf::simd
