// Live telemetry end-to-end (docs/OBSERVABILITY.md): the exporter's JSONL
// schema round-trips through plf::json, the status file is always a complete
// document, checkpoint/resume appends a bit-consistent continuation, running
// with telemetry on does not perturb the chains (0-ULP), and the plf_status
// renderer turns records into the live table.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/coupled.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "phylo/patterns.hpp"
#include "plf_status/status.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace plf::mcmc {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

std::vector<std::unique_ptr<core::PlfEngine>> make_engines(
    const Instance& inst, core::ExecutionBackend& backend, std::size_t n) {
  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (std::size_t i = 0; i < n; ++i) {
    engines.push_back(std::make_unique<core::PlfEngine>(
        inst.data, inst.params, inst.tree, backend));
  }
  return engines;
}

// Names embed the pid so concurrent ctest invocations (e.g. two checkouts
// sharing one TMPDIR) never append to each other's telemetry files.
std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "plf" +
                           std::to_string(static_cast<long>(::getpid())) +
                           "_" + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

/// Compare the deterministic (generation-indexed) fields of two records;
/// wall_s / ess_per_sec / metrics / extra are allowed to differ.
void expect_deterministic_fields_equal(const json::Value& a,
                                       const json::Value& b) {
  EXPECT_EQ(a.at("generation").as_number(), b.at("generation").as_number());
  const json::Value& ca = a.at("cold");
  const json::Value& cb = b.at("cold");
  EXPECT_EQ(ca.at("n_samples").as_number(), cb.at("n_samples").as_number());
  for (const char* key : {"ln_likelihood", "mean_ln_likelihood", "ess"}) {
    SCOPED_TRACE(key);
    EXPECT_TRUE(
        bits_equal(ca.at(key).as_number(), cb.at(key).as_number()));
  }
  // R-hat may be NaN (-> null) while the estimator has too few batches; the
  // two runs must agree on that too.
  ASSERT_EQ(ca.at("rhat").is_null(), cb.at("rhat").is_null());
  if (!ca.at("rhat").is_null()) {
    EXPECT_TRUE(
        bits_equal(ca.at("rhat").as_number(), cb.at("rhat").as_number()));
  }
  for (const char* section : {"acceptance"}) {
    const json::Value& ra = a.at(section);
    const json::Value& rb = b.at(section);
    ASSERT_EQ(ra.as_object().size(), rb.as_object().size()) << section;
    for (const auto& [name, rate] : ra.as_object()) {
      SCOPED_TRACE(name);
      const json::Value* other = rb.find(name);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(rate.at("proposed").as_number(),
                other->at("proposed").as_number());
      EXPECT_EQ(rate.at("accepted").as_number(),
                other->at("accepted").as_number());
    }
  }
  EXPECT_EQ(a.at("swaps").at("proposed").as_number(),
            b.at("swaps").at("proposed").as_number());
  EXPECT_EQ(a.at("swaps").at("accepted").as_number(),
            b.at("swaps").at("accepted").as_number());
}

TEST(TelemetryTest, JsonlRecordsRoundTripThroughPlfJson) {
  const std::string jsonl = temp_path("plf_telemetry_roundtrip.jsonl");
  const std::string status = temp_path("plf_telemetry_roundtrip_status.json");
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 150, 301);

  obs::MetricsRegistry registry;
  obs::TelemetryOptions topts;
  topts.jsonl_path = jsonl;
  topts.status_path = status;
  topts.every_generations = 50;
  obs::TelemetryExporter exporter(topts, &registry);

  CoupledOptions opts;
  opts.chain.seed = 31;
  opts.chain.sample_every = 10;
  opts.swap_every = 5;
  opts.telemetry = &exporter;
  CoupledChains mc3(make_engines(inst, backend, 3), opts);
  mc3.run(300);

  const std::vector<std::string> lines = read_lines(jsonl);
  ASSERT_EQ(lines.size(), 6u);  // generations 50, 100, ..., 300
  EXPECT_EQ(exporter.records_written(), 6u);
  EXPECT_EQ(exporter.last_generation(), 300u);

  std::uint64_t prev_gen = 0;
  for (const std::string& line : lines) {
    const json::Value rec = json::parse(line);
    EXPECT_EQ(rec.at("schema").as_string(), obs::TelemetryExporter::kSchema);
    const auto gen = static_cast<std::uint64_t>(
        rec.at("generation").as_number());
    EXPECT_GT(gen, prev_gen) << "generations must be strictly monotone";
    prev_gen = gen;
    EXPECT_GE(rec.at("wall_s").as_number(), 0.0);
    const json::Value& cold = rec.at("cold");
    EXPECT_GT(cold.at("n_samples").as_number(), 0.0);
    EXPECT_LT(cold.at("ln_likelihood").as_number(), 0.0);
    EXPECT_GE(cold.at("ess").as_number(), 1.0);
    EXPECT_FALSE(rec.at("acceptance").as_object().empty());
    EXPECT_GT(rec.at("swaps").at("proposed").as_number(), 0.0);
    EXPECT_FALSE(rec.at("swaps").at("pairs").as_object().empty());
    // The cold engine's arena hit rate rides along under "extra".
    EXPECT_NE(rec.at("extra").find("arena.hit_rate"), nullptr);
    // include_metrics: the full registry snapshot is embedded, with the
    // exporter's own self-metrics interned.
    const json::Value& metrics = rec.at("metrics");
    EXPECT_NE(metrics.at("gauges").find("mcmc.cold_ln_likelihood"), nullptr);
  }

  // The status file is one complete record equal in generation to the tail.
  const json::Value last = json::parse_file(status);
  EXPECT_EQ(last.at("schema").as_string(), status::kSchema);
  EXPECT_EQ(last.at("generation").as_number(), 300.0);
}

TEST(TelemetryTest, DueFollowsGenerationCadenceWithoutDuplicates) {
  obs::TelemetryOptions topts;  // no paths: cadence only, no files
  topts.every_generations = 100;
  obs::TelemetryExporter exporter(topts);
  EXPECT_TRUE(exporter.due(100));
  EXPECT_FALSE(exporter.due(101));
  obs::TelemetryRecord rec;
  rec.generation = 100;
  exporter.export_record(rec);
  EXPECT_FALSE(exporter.due(100)) << "a generation is exported at most once";
  EXPECT_FALSE(exporter.due(99)) << "never re-export behind the tail";
  EXPECT_TRUE(exporter.due(200));
  EXPECT_EQ(exporter.records_written(), 1u);
}

TEST(TelemetryTest, WallClockCadenceTriggersBetweenGenerationMarks) {
  obs::TelemetryOptions topts;
  topts.every_generations = 0;
  topts.every_wall_s = 1e-6;
  obs::TelemetryExporter exporter(topts);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(exporter.due(7));  // not on any generation cadence
  obs::TelemetryRecord rec;
  rec.generation = 7;
  exporter.export_record(rec);
  EXPECT_FALSE(exporter.due(7));
  EXPECT_FALSE(exporter.due(3)) << "wall cadence never goes backwards";
}

TEST(TelemetryTest, PrepareResumeTruncatesTailAndTornLine) {
  const std::string jsonl = temp_path("plf_telemetry_truncate.jsonl");
  {
    std::ofstream os(jsonl, std::ios::binary);
    os << R"({"schema":"plf-telemetry-v1","generation":50,"x":1})" << "\n";
    os << R"({"schema":"plf-telemetry-v1","generation":100,"x":2})" << "\n";
    os << R"({"schema":"plf-telemetry-v1","generation":150,"x":3})" << "\n";
    os << R"({"schema":"plf-telemetry-v1","gener)";  // torn mid-append
  }
  obs::TelemetryOptions topts;
  topts.jsonl_path = jsonl;
  topts.every_generations = 50;
  topts.include_metrics = false;
  obs::TelemetryExporter exporter(topts, nullptr);
  exporter.prepare_resume(100);

  const std::vector<std::string> lines = read_lines(jsonl);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json::parse(lines.back()).at("generation").as_number(), 100.0);
  EXPECT_EQ(exporter.records_written(), 2u);
  EXPECT_EQ(exporter.last_generation(), 100u);
  // The cadence is primed: the next due generation is 150, nothing earlier.
  EXPECT_FALSE(exporter.due(100));
  EXPECT_TRUE(exporter.due(150));
}

TEST(TelemetryTest, PrepareResumeOnFreshFileIsANoOp) {
  obs::TelemetryOptions topts;
  topts.jsonl_path = temp_path("plf_telemetry_fresh.jsonl");
  topts.include_metrics = false;
  obs::TelemetryExporter exporter(topts, nullptr);
  exporter.prepare_resume(500);
  EXPECT_EQ(exporter.records_written(), 0u);
  EXPECT_FALSE(std::filesystem::exists(topts.jsonl_path));
}

TEST(TelemetryTest, ResumedRunAppendsBitConsistentContinuation) {
  // Crash simulation: checkpoint at generation 150, keep running to 200 (the
  // "lost" tail past the checkpoint), then restore and resume to 300 with
  // prepare_resume truncating that tail. The resumed JSONL must equal the
  // uninterrupted run's in every deterministic field, generations strictly
  // monotone across the boundary.
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 150, 302);
  const std::string full_jsonl = temp_path("plf_telemetry_full.jsonl");
  const std::string resumed_jsonl = temp_path("plf_telemetry_resumed.jsonl");

  CoupledOptions opts;
  opts.chain.seed = 37;
  opts.chain.sample_every = 10;
  opts.swap_every = 5;

  obs::MetricsRegistry reg_full;
  obs::TelemetryOptions topts;
  topts.every_generations = 50;
  topts.jsonl_path = full_jsonl;
  obs::TelemetryExporter full_exporter(topts, &reg_full);
  opts.telemetry = &full_exporter;
  CoupledChains full(make_engines(inst, backend, 4), opts);
  full.run(300);

  obs::MetricsRegistry reg_a;
  topts.jsonl_path = resumed_jsonl;
  obs::TelemetryExporter exporter_a(topts, &reg_a);
  opts.telemetry = &exporter_a;
  CoupledChains a(make_engines(inst, backend, 4), opts);
  a.run(150);
  std::ostringstream checkpoint;
  a.save_checkpoint(checkpoint);
  a.run(200);  // writes the generation-200 record the checkpoint never saw

  obs::MetricsRegistry reg_b;
  obs::TelemetryExporter exporter_b(topts, &reg_b);
  opts.telemetry = &exporter_b;
  CoupledChains b(make_engines(inst, backend, 4), opts);
  std::istringstream is(checkpoint.str());
  b.restore_checkpoint(is);
  ASSERT_EQ(b.generation(), 150u);
  exporter_b.prepare_resume(b.generation());
  EXPECT_EQ(exporter_b.last_generation(), 150u);
  b.run(300);

  const std::vector<std::string> full_lines = read_lines(full_jsonl);
  const std::vector<std::string> resumed_lines = read_lines(resumed_jsonl);
  ASSERT_EQ(full_lines.size(), 6u);
  ASSERT_EQ(resumed_lines.size(), full_lines.size());
  std::uint64_t prev_gen = 0;
  for (std::size_t i = 0; i < full_lines.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    const json::Value fa = json::parse(full_lines[i]);
    const json::Value fb = json::parse(resumed_lines[i]);
    expect_deterministic_fields_equal(fa, fb);
    const auto gen =
        static_cast<std::uint64_t>(fb.at("generation").as_number());
    EXPECT_GT(gen, prev_gen);
    prev_gen = gen;
  }
}

TEST(TelemetryTest, TelemetryOnDoesNotPerturbTheChains) {
  // The 0-ULP gate: identical seeds with and without an exporter attached
  // must produce bit-identical sampled lnL trajectories and final state.
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 150, 303);
  CoupledOptions opts;
  opts.chain.seed = 41;
  opts.chain.sample_every = 20;
  opts.swap_every = 5;

  CoupledChains off(make_engines(inst, backend, 3), opts);
  const CoupledResult r_off = off.run(400);

  obs::TelemetryOptions topts;
  topts.jsonl_path = temp_path("plf_telemetry_perturb.jsonl");
  topts.status_path = temp_path("plf_telemetry_perturb_status.json");
  topts.every_generations = 10;  // export aggressively: 40 records
  topts.include_metrics = false;
  obs::TelemetryExporter exporter(topts, nullptr);
  opts.telemetry = &exporter;
  CoupledChains on(make_engines(inst, backend, 3), opts);
  const CoupledResult r_on = on.run(400);

  EXPECT_EQ(exporter.records_written(), 40u);
  EXPECT_TRUE(bits_equal(r_on.cold.final_ln_likelihood,
                         r_off.cold.final_ln_likelihood));
  EXPECT_EQ(r_on.cold.final_tree_newick, r_off.cold.final_tree_newick);
  EXPECT_EQ(r_on.swaps_accepted, r_off.swaps_accepted);
  ASSERT_EQ(r_on.cold.samples.size(), r_off.cold.samples.size());
  for (std::size_t i = 0; i < r_on.cold.samples.size(); ++i) {
    EXPECT_TRUE(bits_equal(r_on.cold.samples[i].ln_likelihood,
                           r_off.cold.samples[i].ln_likelihood))
        << "sample " << i;
  }
}

TEST(TelemetryTest, StopAtEssEndsRunEarlyAndFlushesFinalRecord) {
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 150, 304);
  obs::TelemetryOptions topts;
  topts.jsonl_path = temp_path("plf_telemetry_stop.jsonl");
  topts.every_generations = 1000;  // cadence alone would never fire early
  topts.include_metrics = false;
  obs::TelemetryExporter exporter(topts, nullptr);

  CoupledOptions opts;
  opts.chain.seed = 43;
  opts.chain.sample_every = 10;
  opts.stop_at_ess = 10.0;
  opts.telemetry = &exporter;
  CoupledChains mc3(make_engines(inst, backend, 2), opts);
  const CoupledResult result = mc3.run(100000);

  EXPECT_TRUE(result.stopped_at_ess);
  EXPECT_LT(mc3.generation(), 100000u);
  EXPECT_GE(mc3.cold_ess().ess(), 10.0);
  // The stop flushes a final record at the stopping generation even though
  // the cadence was not due.
  const std::vector<std::string> lines =
      read_lines(topts.jsonl_path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(json::parse(lines.back()).at("generation").as_number(),
            static_cast<double>(mc3.generation()));
}

// --- plf_status rendering ---------------------------------------------------

const char* kCannedRecord =
    R"({"schema":"plf-telemetry-v1","generation":300,"wall_s":1.5,)"
    R"("cold":{"n_samples":7,"ln_likelihood":-1234.5,)"
    R"("mean_ln_likelihood":-1240.25,"ess":42.5,"ess_per_sec":28.3,)"
    R"("rhat":null},)"
    R"("acceptance":{"branch_length":{"proposed":100,"accepted":25,)"
    R"("rate":0.25}},)"
    R"("swaps":{"proposed":30,"accepted":10,"rate":0.333,)"
    R"("pairs":{"0-1":{"proposed":15,"accepted":7,"rate":0.466}}},)"
    R"("extra":{"arena.hit_rate":0.75}})";

TEST(StatusToolTest, RendersEveryDiagnosticSection) {
  const std::string out = status::render_record(json::parse(kCannedRecord));
  for (const char* expected :
       {"300", "-1234.5", "42.5", "branch_length", "0-1", "arena.hit_rate",
        "n/a" /* null rhat */}) {
    EXPECT_NE(out.find(expected), std::string::npos)
        << "missing \"" << expected << "\" in:\n"
        << out;
  }
}

TEST(StatusToolTest, RejectsForeignSchema) {
  EXPECT_THROW(
      status::render_record(json::parse(R"({"schema":"other","x":1})")),
      Error);
  EXPECT_THROW(status::render_record(json::parse("[1,2,3]")), Error);
}

TEST(StatusToolTest, LoadLatestSkipsTornTailLine) {
  const std::string path = temp_path("plf_status_torn.jsonl");
  {
    std::ofstream os(path, std::ios::binary);
    std::string second(kCannedRecord);
    const std::string from = "\"generation\":300";
    second.replace(second.find(from), from.size(), "\"generation\":350");
    os << kCannedRecord << "\n" << second << "\n";
    os << R"({"schema":"plf-telemetry-v1","gen)";  // torn mid-append
  }
  const json::Value latest = status::load_latest(path);
  EXPECT_EQ(latest.at("generation").as_number(), 350.0);
  EXPECT_FALSE(status::render_record(latest).empty());
}

TEST(StatusToolTest, LoadLatestThrowsOnMissingOrEmptyFile) {
  EXPECT_THROW(status::load_latest(temp_path("plf_status_missing.jsonl")),
               Error);
  const std::string path = temp_path("plf_status_empty.jsonl");
  std::ofstream(path, std::ios::binary).close();
  EXPECT_THROW(status::load_latest(path), Error);
}

}  // namespace
}  // namespace plf::mcmc
