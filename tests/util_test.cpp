#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/aligned.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace plf {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a();
  const auto x1 = a();
  a.reseed(7);
  EXPECT_EQ(a(), x0);
  EXPECT_EQ(a(), x1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(5);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowCoversRangeUniformly) {
  Rng r(11);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) ++counts[r.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, BelowRejectsZero) {
  Rng r(1);
  EXPECT_THROW(r.below(0), Error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(13);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r(17);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, GammaMomentsMatch) {
  Rng r(19);
  OnlineStats s;
  const double shape = 2.5, scale = 1.5;
  for (int i = 0; i < 200000; ++i) s.add(r.gamma(shape, scale));
  EXPECT_NEAR(s.mean(), shape * scale, 0.05);
  EXPECT_NEAR(s.variance(), shape * scale * scale, 0.2);
}

TEST(Rng, GammaSmallShape) {
  Rng r(23);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.gamma(0.4, 2.0));
  EXPECT_NEAR(s.mean(), 0.8, 0.03);
}

TEST(Rng, DirichletSumsToOne) {
  Rng r(29);
  const auto v = r.dirichlet({1.0, 2.0, 3.0, 4.0});
  double sum = 0.0;
  for (double x : v) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Rng, DirichletMeanProportionalToAlpha) {
  Rng r(31);
  std::array<double, 3> mean{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto v = r.dirichlet({2.0, 3.0, 5.0});
    for (int j = 0; j < 3; ++j) mean[static_cast<std::size_t>(j)] += v[static_cast<std::size_t>(j)];
  }
  EXPECT_NEAR(mean[0] / n, 0.2, 0.005);
  EXPECT_NEAR(mean[1] / n, 0.3, 0.005);
  EXPECT_NEAR(mean[2] / n, 0.5, 0.005);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng r(37);
  std::array<int, 3> counts{};
  for (int i = 0; i < 60000; ++i) ++counts[r.categorical({1.0, 2.0, 3.0})];
  EXPECT_NEAR(counts[0], 10000, 500);
  EXPECT_NEAR(counts[1], 20000, 700);
  EXPECT_NEAR(counts[2], 30000, 800);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng r(1);
  EXPECT_THROW(r.categorical({0.0, 0.0}), Error);
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(99), b(99);
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.count(b()));
}

TEST(Aligned, VectorIsDmaAligned) {
  aligned_vector<float> v(100);
  EXPECT_TRUE(is_aligned(v.data(), kDmaAlignBytes));
}

TEST(Aligned, RoundUp) {
  EXPECT_EQ(round_up(0, 16), 0u);
  EXPECT_EQ(round_up(1, 16), 16u);
  EXPECT_EQ(round_up(16, 16), 16u);
  EXPECT_EQ(round_up(17, 16), 32u);
}

TEST(OnlineStatsTest, MatchesDirectComputation) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, EmptyExtremesAreNaNNotInfinity) {
  // min()/max() of an empty accumulator used to return +/-infinity (the
  // fold identities), which poisoned downstream reports and is not even
  // representable in JSON. NaN says "no samples" unambiguously.
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
}

TEST(OnlineStatsTest, TotalIsSumOfSamples) {
  OnlineStats s;
  for (double x : {0.5, 1.5, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.total(), 4.0);
}

TEST(OnlineStatsTest, MergeMatchesSingleAccumulator) {
  Rng r(101);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal();
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStatsTest, MergeWithEmptyIsIdentityEitherWay) {
  OnlineStats a;
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  OnlineStats empty;
  OnlineStats a_copy = a;
  a_copy.merge(empty);
  EXPECT_EQ(a_copy.count(), 3u);
  EXPECT_DOUBLE_EQ(a_copy.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(ClockTest, NowNsSourceIsInjectable) {
  // The default source is the steady clock; tests may swap in a fake.
  static std::uint64_t fake = 12345;
  struct Restore {
    NowNsFn prev = nullptr;
    ~Restore() { set_now_ns_source(prev); }
  } restore;
  restore.prev = set_now_ns_source([] { return fake; });
  EXPECT_EQ(now_ns(), 12345u);
  fake = 99999;
  EXPECT_EQ(now_ns(), 99999u);
  set_now_ns_source(restore.prev);
  restore.prev = nullptr;
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);  // steady clock is monotone
}

TEST(VirtualClockTest, MonotoneAdvance) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(1.0);  // cannot go backwards
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, RejectsRaggedRows) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    PLF_CHECK(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}


// --- minimal JSON parser --------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  const json::Value v = json::parse(
      R"({"n": 1.5, "neg": -2e3, "b": true, "f": false, "z": null,
          "s": "hi\nthere", "a": [1, 2, 3], "o": {"k": "v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("neg").as_number(), -2000.0);
  EXPECT_TRUE(v.at("b").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("z").is_null());
  EXPECT_EQ(v.at("s").as_string(), "hi\nthere");
  ASSERT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), 3.0);
  EXPECT_EQ(v.at("o").at("k").as_string(), "v");
}

TEST(Json, PreservesObjectMemberOrder) {
  const json::Value v = json::parse(R"({"zz": 1, "aa": 2, "mm": 3})");
  const auto& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "zz");
  EXPECT_EQ(o[1].first, "aa");
  EXPECT_EQ(o[2].first, "mm");
}

TEST(Json, FindAndHelpers) {
  const json::Value v = json::parse(R"({"t": 0.25})");
  EXPECT_NE(v.find("t"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_DOUBLE_EQ(v.number_or("t", 9.0), 0.25);
  EXPECT_DOUBLE_EQ(v.number_or("absent", 9.0), 9.0);
  EXPECT_THROW(v.at("absent"), Error);
  EXPECT_THROW(v.at("t").as_string(), Error);  // type mismatch
}

TEST(Json, StringEscapes) {
  const json::Value v =
      json::parse(R"(["\"", "\\", "\u0041", "\t", "tab\there"])");
  const auto& a = v.as_array();
  EXPECT_EQ(a[0].as_string(), "\"");
  EXPECT_EQ(a[1].as_string(), "\\");
  EXPECT_EQ(a[2].as_string(), "A");
  EXPECT_EQ(a[3].as_string(), "\t");
  EXPECT_EQ(a[4].as_string(), "tab\there");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), ParseError);
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("[1,]"), ParseError);
  EXPECT_THROW(json::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), ParseError);
  EXPECT_THROW(json::parse("01x"), ParseError);
  EXPECT_THROW(json::parse("truthy"), ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(json::parse("1."), ParseError);
  EXPECT_THROW(json::parse("-"), ParseError);
}

TEST(Json, ErrorsCarryPosition) {
  try {
    json::parse("{\"a\": 1,\n  \"b\": }");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);
  }
}

TEST(Json, DepthCapStopsHostileNesting) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_THROW(json::parse(deep), ParseError);
}

TEST(Json, RoundTripsOurMetricsShape) {
  // The exact shape write_metrics_json emits, incl. null for empty extremes.
  const json::Value v = json::parse(
      R"({"counters":{"c":5},"gauges":{"g":0.5},
          "timers":{"t":{"count":0,"min_s":null,"p50_s":null}},
          "meta":{"trace_events_dropped":0,"hist_samples_dropped":0}})");
  EXPECT_TRUE(v.at("timers").at("t").at("min_s").is_null());
  EXPECT_DOUBLE_EQ(v.at("meta").at("trace_events_dropped").as_number(), 0.0);
}

}  // namespace
}  // namespace plf
