// Property-based tests for the subtree-pattern keys and their hash
// (src/phylo/patterns.hpp). The repeat-identification pass (core/repeats)
// depends on two properties checked here: the key packings are injective
// over their documented domains (class ids < 2^32, masks < 16), and the
// splitmix64-finalizer hash is a bijection with well-spread low bits (the
// bits hash tables actually index with).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "phylo/dna.hpp"
#include "phylo/patterns.hpp"
#include "util/rng.hpp"

namespace plf::phylo {
namespace {

constexpr int kRandomTrials = 100000;

TEST(SubtreePatternKey, RoundTripsBothFields) {
  Rng rng(42);
  for (int i = 0; i < kRandomTrials; ++i) {
    const auto left = static_cast<std::uint32_t>(rng());
    const auto right = static_cast<std::uint32_t>(rng());
    const std::uint64_t key = subtree_pattern_key(left, right);
    EXPECT_EQ(static_cast<std::uint32_t>(key >> 32), left);
    EXPECT_EQ(static_cast<std::uint32_t>(key & 0xffffffffull), right);
  }
}

TEST(SubtreePatternKey, InjectiveOnRandomClassPairs) {
  // Injectivity follows from the round-trip, but check the set-level
  // property directly on random draws: distinct (left, right) pairs never
  // produce the same key.
  Rng rng(7);
  std::unordered_set<std::uint64_t> keys;
  std::unordered_set<std::uint64_t> pairs_seen;
  for (int i = 0; i < kRandomTrials; ++i) {
    const auto left = static_cast<std::uint32_t>(rng());
    const auto right = static_cast<std::uint32_t>(rng());
    const std::uint64_t pair =
        (static_cast<std::uint64_t>(left) << 32) | right;
    if (!pairs_seen.insert(pair).second) continue;  // duplicate draw
    EXPECT_TRUE(keys.insert(subtree_pattern_key(left, right)).second)
        << "collision for (" << left << ", " << right << ")";
  }
}

TEST(SubtreePatternKeyWithMask, InjectiveOverClassesAndAllTipMasks) {
  // Exhaustive over all 16 masks for a sample of class ids, including the
  // extremes of the documented domain.
  Rng rng(11);
  std::vector<std::uint32_t> classes = {0, 1, 0xffffffffu};
  for (int i = 0; i < 1000; ++i) {
    classes.push_back(static_cast<std::uint32_t>(rng()));
  }
  std::unordered_set<std::uint64_t> keys;
  std::unordered_set<std::uint64_t> inputs;
  for (const std::uint32_t cls : classes) {
    if (!inputs.insert(cls).second) continue;  // duplicate class draw
    for (std::uint32_t m = 0; m < 16; ++m) {
      const auto mask = static_cast<StateMask>(m);
      EXPECT_TRUE(keys.insert(subtree_pattern_key_with_mask(cls, mask)).second)
          << "collision for (" << cls << ", mask " << m << ")";
    }
  }
  EXPECT_EQ(keys.size(), inputs.size() * 16);
}

TEST(SubtreePatternKeyWithMask, MaskOccupiesLowBitsOnly) {
  // The packing shifts the class by exactly the mask width: masks from
  // kGapMask down to 0 must never bleed into the class field.
  for (std::uint32_t m = 0; m < 16; ++m) {
    const std::uint64_t key =
        subtree_pattern_key_with_mask(0x12345678u, static_cast<StateMask>(m));
    EXPECT_EQ(key >> 4, 0x12345678ull);
    EXPECT_EQ(key & 0xfull, m);
  }
}

TEST(SubtreePatternHash, BijectiveOnSequentialAndRandomKeys) {
  // The splitmix64 finalizer is invertible, so any input set hashes with
  // ZERO collisions — stronger than "few collisions", and exactly why the
  // repeat identification can use it without a fallback comparison.
  const SubtreePatternHash h;
  std::unordered_set<std::uint64_t> inputs;
  for (std::uint64_t k = 0; k < 100000; ++k) inputs.insert(k);
  Rng rng(23);
  for (int i = 0; i < kRandomTrials; ++i) inputs.insert(rng());

  std::unordered_set<std::uint64_t> hashes;
  for (const std::uint64_t k : inputs) hashes.insert(h(k));
  EXPECT_EQ(hashes.size(), inputs.size());
}

TEST(SubtreePatternHash, LowBitsSpreadSequentialKeys) {
  // Dense sequential keys (the worst case for the identity hash) must land
  // uniformly in 256 buckets keyed by the hash's low byte. With n = 2^16
  // draws the expected bucket load is 256; a fair hash stays within ±6
  // sigma (sigma = sqrt(n * p * (1-p)) ~ 16).
  const SubtreePatternHash h;
  constexpr std::uint64_t kN = 65536;
  std::vector<int> buckets(256, 0);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ++buckets[h(k) & 0xff];
  }
  const double expected = static_cast<double>(kN) / 256.0;
  const double sigma = 15.97;  // sqrt(65536 * (1/256) * (255/256))
  for (int b = 0; b < 256; ++b) {
    EXPECT_NEAR(buckets[b], expected, 6.0 * sigma) << "bucket " << b;
  }
}

TEST(SubtreePatternHash, AvalancheOnSingleBitFlips) {
  // Flipping any single input bit should flip about half of the 64 output
  // bits. Averaged over random bases, every bit position must stay within
  // [24, 40] flipped bits — a coarse avalanche criterion that the identity
  // hash (1 flipped bit) and shift-only mixers fail decisively.
  const SubtreePatternHash h;
  Rng rng(31);
  constexpr int kBases = 256;
  for (int bit = 0; bit < 64; ++bit) {
    double flipped = 0.0;
    for (int i = 0; i < kBases; ++i) {
      const std::uint64_t x = rng();
      const std::uint64_t d = h(x) ^ h(x ^ (1ull << bit));
      flipped += static_cast<double>(__builtin_popcountll(d));
    }
    const double mean = flipped / kBases;
    EXPECT_GT(mean, 24.0) << "weak diffusion from input bit " << bit;
    EXPECT_LT(mean, 40.0) << "biased diffusion from input bit " << bit;
  }
}

}  // namespace
}  // namespace plf::phylo
