// Tests for the bench_compare regression gate (tools/bench_compare_lib).
// Synthetic documents cover the four verdict paths — regression, improvement,
// new case, missing case — plus per-case threshold overrides and schema
// validation, all without spawning processes or timing anything.
#include <gtest/gtest.h>

#include <string>

#include "bench_compare_lib.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace plf::tools {
namespace {

json::Value doc(const std::string& cases) {
  return json::parse(R"({"schema": "plf-bench-v1", "cases": {)" + cases + "}}");
}

std::string one_case(const std::string& name, double min_s,
                     const std::string& extra = "") {
  return "\"" + name + "\": {\"unit\": \"s/call\", \"min\": " +
         std::to_string(min_s) + extra + "}";
}

const CaseResult* find_case(const CompareReport& r, const std::string& name) {
  for (const CaseResult& c : r.cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(BenchCompare, WithinThresholdIsOk) {
  const auto base = doc(one_case("kernel.down", 1.0e-4));
  const auto cur = doc(one_case("kernel.down", 1.10e-4));  // +10% < 15%
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.ok, 1);
  ASSERT_NE(find_case(r, "kernel.down"), nullptr);
  EXPECT_EQ(find_case(r, "kernel.down")->status, CaseStatus::kOk);
  EXPECT_NEAR(find_case(r, "kernel.down")->ratio, 1.10, 1e-9);
}

TEST(BenchCompare, SlowdownPastThresholdRegresses) {
  const auto base = doc(one_case("kernel.down", 1.0e-4));
  const auto cur = doc(one_case("kernel.down", 1.2e-4));  // +20% > 15%
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.regressed, 1);
  EXPECT_EQ(find_case(r, "kernel.down")->status, CaseStatus::kRegressed);
}

TEST(BenchCompare, SpeedupPastThresholdIsImprovedNotFailure) {
  const auto base = doc(one_case("kernel.down", 1.0e-4));
  const auto cur = doc(one_case("kernel.down", 0.5e-4));
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.improved, 1);
  EXPECT_EQ(find_case(r, "kernel.down")->status, CaseStatus::kImproved);
}

TEST(BenchCompare, NewCaseIsInformational) {
  const auto base = doc(one_case("kernel.down", 1.0e-4));
  const auto cur = doc(one_case("kernel.down", 1.0e-4) + "," +
                       one_case("kernel.shiny", 2.0e-4));
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.new_cases, 1);
  EXPECT_EQ(find_case(r, "kernel.shiny")->status, CaseStatus::kNew);
}

TEST(BenchCompare, MissingCaseFailsTheGate) {
  // A case silently vanishing from the suite must fail: otherwise deleting
  // a slow bench "fixes" a regression.
  const auto base = doc(one_case("kernel.down", 1.0e-4) + "," +
                        one_case("kernel.gone", 1.0e-4));
  const auto cur = doc(one_case("kernel.down", 1.0e-4));
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.missing, 1);
  EXPECT_EQ(find_case(r, "kernel.gone")->status, CaseStatus::kMissing);
}

TEST(BenchCompare, PerCaseThresholdOverridesDefault) {
  // +20% regresses under the 0.15 default but passes a 0.40 per-case
  // threshold (the noisy threaded-engine cases carry one).
  const auto base = doc(one_case("engine.noisy", 1.0e-3,
                                 ", \"threshold\": 0.40"));
  const auto cur = doc(one_case("engine.noisy", 1.2e-3));
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  EXPECT_FALSE(r.failed());
  EXPECT_DOUBLE_EQ(find_case(r, "engine.noisy")->threshold, 0.40);
}

TEST(BenchCompare, DefaultThresholdIsConfigurable) {
  const auto base = doc(one_case("kernel.down", 1.0e-4));
  const auto cur = doc(one_case("kernel.down", 1.2e-4));
  CompareOptions opts;
  opts.default_threshold = 0.30;  // +20% now tolerated
  EXPECT_FALSE(compare_benches(base, cur, opts).failed());
  opts.default_threshold = 0.10;
  EXPECT_TRUE(compare_benches(base, cur, opts).failed());
}

TEST(BenchCompare, RejectsWrongSchema) {
  const auto bad = json::parse(R"({"schema": "other-v9", "cases": {}})");
  const auto good = doc("");
  EXPECT_THROW(compare_benches(bad, good, CompareOptions{}), Error);
  EXPECT_THROW(compare_benches(good, bad, CompareOptions{}), Error);
  const auto no_cases = json::parse(R"({"schema": "plf-bench-v1"})");
  EXPECT_THROW(compare_benches(no_cases, good, CompareOptions{}), Error);
}

TEST(BenchCompare, FormatReportListsVerdicts) {
  const auto base = doc(one_case("a.regressed", 1.0) + "," +
                        one_case("b.missing", 1.0));
  const auto cur = doc(one_case("a.regressed", 2.0) + "," +
                       one_case("c.new", 1.0));
  const CompareReport r = compare_benches(base, cur, CompareOptions{});
  const std::string out = format_report(r);
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.find("MISSING"), std::string::npos);
  EXPECT_NE(out.find("new"), std::string::npos);
  EXPECT_NE(out.find("verdict: FAIL"), std::string::npos);
  EXPECT_NE(out.find("1 regressed"), std::string::npos);
  EXPECT_NE(out.find("1 missing"), std::string::npos);

  const auto clean = compare_benches(base, base, CompareOptions{});
  EXPECT_NE(format_report(clean).find("verdict: PASS"), std::string::npos);
}

}  // namespace
}  // namespace plf::tools
