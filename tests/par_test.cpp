#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "par/spin_barrier.hpp"
#include "par/thread_pool.hpp"
#include "util/error.hpp"

namespace plf::par {
namespace {

TEST(ThreadPoolTest, SizeIncludesCaller) {
  ThreadPool p(4);
  EXPECT_EQ(p.size(), 4u);
  ThreadPool p1(1);
  EXPECT_EQ(p1.size(), 1u);
}

TEST(ThreadPoolTest, CoversAllIndicesExactlyOnceStatic) {
  ThreadPool p(4);
  std::vector<std::atomic<int>> hits(1000);
  p.parallel_for(0, hits.size(), [&](Range r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, CoversAllIndicesExactlyOnceDynamic) {
  ThreadPool p(3);
  std::vector<std::atomic<int>> hits(777);
  p.parallel_for(
      0, hits.size(),
      [&](Range r, std::size_t) {
        for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
      },
      Schedule::kDynamic, 10);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NonZeroBegin) {
  ThreadPool p(2);
  std::atomic<std::size_t> sum{0};
  p.parallel_for(100, 200, [&](Range r, std::size_t) {
    std::size_t local = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) local += i;
    sum += local;
  });
  std::size_t expect = 0;
  for (std::size_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool p(2);
  bool ran = false;
  p.parallel_for(5, 5, [&](Range, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, RejectsInvertedRange) {
  ThreadPool p(2);
  EXPECT_THROW(p.parallel_for(3, 1, [](Range, std::size_t) {}), Error);
}

TEST(ThreadPoolTest, StaticPartitionIsContiguousPerThread) {
  ThreadPool p(4);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4, {~0ull, 0});
  std::mutex m;
  p.parallel_for(0, 103, [&](Range r, std::size_t tid) {
    std::lock_guard<std::mutex> l(m);
    ranges[tid] = {r.begin, r.end};
  });
  // Ranges must tile [0, 103) in thread order.
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    if (ranges[t].first == ~0ull) continue;  // thread got no work
    EXPECT_EQ(ranges[t].first, cursor);
    cursor = ranges[t].second;
  }
  EXPECT_EQ(cursor, 103u);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool p(8);
  std::vector<std::atomic<int>> hits(3);
  p.parallel_for(0, hits.size(), [&](Range r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManySmallRegionsDoNotDeadlock) {
  ThreadPool p(4);
  std::atomic<std::size_t> total{0};
  for (int rep = 0; rep < 2000; ++rep) {
    p.parallel_for(0, 4, [&](Range r, std::size_t) {
      total += r.size();
    });
  }
  EXPECT_EQ(total.load(), 8000u);
}

TEST(ThreadPoolTest, ParallelForEach) {
  ThreadPool p(3);
  std::vector<std::atomic<int>> hits(50);
  p.parallel_for_each(0, 50, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, StatsCountRegions) {
  ThreadPool p(2);
  p.reset_stats();
  for (int i = 0; i < 5; ++i) {
    p.parallel_for(0, 10, [](Range, std::size_t) {});
  }
  EXPECT_EQ(p.stats().regions, 5u);
  EXPECT_GE(p.stats().region_overhead_s, 0.0);
  p.reset_stats();
  EXPECT_EQ(p.stats().regions, 0u);
}

TEST(ThreadPoolTest, ExceptionsInBodyDoNotCorruptPool) {
  // Exceptions must not escape worker threads; we only guarantee behavior
  // for the calling thread's share here.
  ThreadPool p(1);
  EXPECT_THROW(
      p.parallel_for(0, 4, [](Range, std::size_t) { throw Error("boom"); }),
      Error);
  // Pool still usable.
  std::atomic<int> n{0};
  p.parallel_for(0, 4, [&](Range r, std::size_t) {
    n += static_cast<int>(r.size());
  });
  EXPECT_EQ(n.load(), 4);
}

TEST(DefaultPoolTest, IsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().size(), 1u);
}

TEST(SpinBarrierTest, SynchronizesPhases) {
  const std::size_t n = 4;
  SpinBarrier barrier(n);
  std::atomic<int> phase0{0};
  std::atomic<int> phase1{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      phase0.fetch_add(1);
      barrier.arrive_and_wait();
      // Everyone must have finished phase 0 before any thread reads here.
      EXPECT_EQ(phase0.load(), static_cast<int>(n));
      phase1.fetch_add(1);
      barrier.arrive_and_wait();
      EXPECT_EQ(phase1.load(), static_cast<int>(n));
    });
  }
  for (auto& t : threads) t.join();
}

TEST(SpinBarrierTest, ReusableManyTimes) {
  const std::size_t n = 3;
  SpinBarrier barrier(n);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        EXPECT_EQ(counter.load() % static_cast<int>(n), 0);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), 1500);
}

}  // namespace
}  // namespace plf::par
