// Property and differential tests for batched plan dispatch (core/plan.hpp).
//
// Three layers:
//   1. compute_levels as a pure function: for random trees and random
//      recompute sets, the levels must form a valid topological partition
//      (children strictly earlier; every level populated; exact recurrence).
//   2. PlfPlan as a container: finalize() groups ops by level, stably, and
//      the level ranges tile the op array exactly.
//   3. The engine property the refactor promises: a plan-dispatch engine is
//      BIT-IDENTICAL to its per-call twin on every backend, repeats on and
//      off, through a randomized proposal/accept/reject storm that also
//      exercises the incremental scaler-total path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "cell/machine.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/plan.hpp"
#include "gpu/plf_gpu.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace plf::core {
namespace {

// --- layer 1: compute_levels ------------------------------------------------

/// Exhaustive check of the level recurrence and partition properties for one
/// (tree, recompute) instance.
void check_levels(const phylo::Tree& tree, const std::vector<char>& recompute) {
  const std::vector<int> levels = compute_levels(tree, recompute);
  ASSERT_EQ(levels.size(), tree.n_nodes());

  int max_level = -1;
  for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
    const phylo::TreeNode& nd = tree.node(static_cast<int>(id));
    if (nd.is_leaf() || !recompute[id]) {
      EXPECT_EQ(levels[id], -1) << "node " << id;
      continue;
    }
    // Exact recurrence: 1 + max over in-set internal children, floor 0.
    int expect = 0;
    for (int child : {nd.left, nd.right}) {
      if (child == phylo::kNoNode) continue;
      const auto c = static_cast<std::size_t>(child);
      if (!tree.node(child).is_leaf() && recompute[c]) {
        EXPECT_GE(levels[c], 0);
        expect = std::max(expect, levels[c] + 1);
        // The scheduling property: children strictly earlier.
        EXPECT_LT(levels[c], levels[id]) << "node " << id;
      }
    }
    EXPECT_EQ(levels[id], expect) << "node " << id;
    max_level = std::max(max_level, levels[id]);
  }

  // Every level in [0, max] is populated (a level-L node forces a level-L-1
  // child, so the histogram can have no holes).
  if (max_level >= 0) {
    std::vector<int> width(static_cast<std::size_t>(max_level) + 1, 0);
    for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
      if (levels[id] >= 0) ++width[static_cast<std::size_t>(levels[id])];
    }
    for (int l = 0; l <= max_level; ++l) {
      EXPECT_GT(width[static_cast<std::size_t>(l)], 0) << "empty level " << l;
    }
  }
}

TEST(ComputeLevelsTest, RandomTreesAndDirtySetsFormTopologicalPartition) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n_taxa = 4 + rng.below(17);
    const phylo::Tree tree = seqgen::yule_tree(n_taxa, rng, 1.0, 0.1);
    // Sweep set density from sparse to full; sets need not be upward-closed
    // (the recurrence is defined for any subset of the internals).
    const double p = rng.uniform(0.1, 1.0);
    std::vector<char> recompute(tree.n_nodes(), 0);
    for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
      if (!tree.node(static_cast<int>(id)).is_leaf() && rng.uniform() < p) {
        recompute[id] = 1;
      }
    }
    check_levels(tree, recompute);
  }
}

TEST(ComputeLevelsTest, EmptyAndFullSets) {
  Rng rng(7);
  const phylo::Tree tree = seqgen::yule_tree(12, rng, 1.0, 0.1);

  const std::vector<char> none(tree.n_nodes(), 0);
  for (int l : compute_levels(tree, none)) EXPECT_EQ(l, -1);

  std::vector<char> all(tree.n_nodes(), 0);
  for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
    if (!tree.node(static_cast<int>(id)).is_leaf()) all[id] = 1;
  }
  check_levels(tree, all);
  // With everything dirty, the root is the deepest op and sits alone on the
  // last level of a postorder-consistent schedule.
  const std::vector<int> levels = compute_levels(tree, all);
  const int root_level = levels[static_cast<std::size_t>(tree.root())];
  EXPECT_EQ(*std::max_element(levels.begin(), levels.end()), root_level);
}

// --- layer 2: PlfPlan grouping ----------------------------------------------

TEST(PlfPlanTest, FinalizeGroupsByLevelStably) {
  // Ops inserted in "postorder" (node id order here) with interleaved levels;
  // finalize must produce contiguous level ranges that tile the op array and
  // preserve insertion order within each level.
  PlfPlan plan;
  plan.reset(32, 100);
  const std::size_t levels[] = {0, 2, 0, 1, 2, 0, 1};
  for (int i = 0; i < 7; ++i) {
    PlfOp op;
    op.node = i;
    op.run_m = 100;
    plan.add(op, levels[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(plan.finalized());
  plan.finalize();
  ASSERT_TRUE(plan.finalized());
  EXPECT_EQ(plan.n_ops(), 7u);
  EXPECT_EQ(plan.n_levels(), 3u);
  EXPECT_EQ(plan.m(), 100u);

  // Level ranges tile [0, n_ops) in order.
  EXPECT_EQ(plan.level_begin(0), 0u);
  for (std::size_t l = 0; l + 1 < plan.n_levels(); ++l) {
    EXPECT_EQ(plan.level_end(l), plan.level_begin(l + 1));
  }
  EXPECT_EQ(plan.level_end(plan.n_levels() - 1), plan.n_ops());

  // Stable within level: node ids appear in insertion order.
  const std::vector<int> expect_order = {0, 2, 5, 3, 6, 1, 4};
  for (std::size_t i = 0; i < plan.ops().size(); ++i) {
    EXPECT_EQ(plan.ops()[i].node, expect_order[i]) << "slot " << i;
  }
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(plan.level_of_node(i),
              static_cast<int>(levels[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(plan.level_of_node(20), -1);
}

TEST(PlfPlanTest, DuplicateOpForNodeIsRejected) {
  PlfPlan plan;
  plan.reset(8, 10);
  PlfOp op;
  op.node = 3;
  plan.add(op, 0);
  EXPECT_THROW(plan.add(op, 1), Error);
}

TEST(DispatchModeTest, StringRoundTrip) {
  EXPECT_EQ(dispatch_mode_from_string("percall"), DispatchMode::kPerCall);
  EXPECT_EQ(dispatch_mode_from_string("plan"), DispatchMode::kPlan);
  EXPECT_EQ(to_string(DispatchMode::kPerCall), "percall");
  EXPECT_EQ(to_string(DispatchMode::kPlan), "plan");
  EXPECT_THROW(dispatch_mode_from_string("batched"), Error);
}

// --- layer 3: engine differential -------------------------------------------

struct Dataset {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Dataset make_dataset(std::uint64_t seed, std::size_t n_taxa) {
  Rng rng(seed);
  Dataset d{seqgen::yule_tree(n_taxa, rng, 1.0, 0.1),
            seqgen::default_gtr_params(), {}};
  phylo::SubstitutionModel model(d.params);
  seqgen::SequenceEvolver ev(d.tree, model);
  const phylo::Alignment aln = ev.evolve(180, rng);
  std::vector<std::vector<phylo::StateMask>> cols(aln.n_columns());
  for (std::size_t c = 0; c < aln.n_columns(); ++c) {
    cols[c].resize(aln.n_taxa());
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) cols[c][t] = aln.at(t, c);
  }
  d.data = phylo::PatternMatrix::from_patterns(
      aln.names(), cols, std::vector<std::uint32_t>(cols.size(), 1));
  return d;
}

enum class BackendKind { kSerial, kThreaded, kCell, kGpu };

struct BackendHolder {
  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<ExecutionBackend> backend;

  static BackendHolder make(BackendKind kind) {
    BackendHolder h;
    switch (kind) {
      case BackendKind::kSerial:
        h.backend = std::make_unique<SerialBackend>();
        break;
      case BackendKind::kThreaded:
        h.pool = std::make_unique<par::ThreadPool>(4);
        h.backend = std::make_unique<ThreadedBackend>(*h.pool);
        break;
      case BackendKind::kCell: {
        cell::CellConfig cfg;
        cfg.n_spes = 4;
        h.backend = std::make_unique<cell::CellMachine>(cfg);
        break;
      }
      case BackendKind::kGpu:
        h.backend = std::make_unique<gpu::GpuPlf>(gpu::GpuPlfConfig{});
        break;
    }
    return h;
  }
};

/// Drive a per-call engine and a plan engine through the same randomized
/// move/accept/reject sequence and require bit-identical lnL at every
/// evaluation. Branch-length moves leave the incremental scaler-total path
/// live; NNIs and rejects force the full-resum fallback — both engines pass
/// through the identical sequence of states, so every comparison is exact.
void lockstep_storm(BackendKind kind, SiteRepeatsMode mode,
                    std::uint64_t seed) {
  const Dataset d = make_dataset(seed, 10);
  BackendHolder h_pc = BackendHolder::make(kind);
  BackendHolder h_plan = BackendHolder::make(kind);
  PlfEngine percall(d.data, d.params, d.tree, *h_pc.backend,
                    KernelVariant::kSimdCol, mode, DispatchMode::kPerCall);
  PlfEngine plan(d.data, d.params, d.tree, *h_plan.backend,
                 KernelVariant::kSimdCol, mode, DispatchMode::kPlan);
  ASSERT_EQ(percall.dispatch_mode(), DispatchMode::kPerCall);
  ASSERT_EQ(plan.dispatch_mode(), DispatchMode::kPlan);

  EXPECT_EQ(percall.log_likelihood(), plan.log_likelihood());

  Rng rng(seed * 977 + 13);
  for (int step = 0; step < 30; ++step) {
    SCOPED_TRACE(::testing::Message() << "step " << step);
    for (PlfEngine* e : {&percall, &plan}) e->begin_proposal();

    const double u = rng.uniform();
    if (u < 0.55) {
      // Branch-length move on a random non-root branch.
      int node;
      do {
        node = static_cast<int>(rng.below(percall.tree().n_nodes()));
      } while (node == percall.tree().root());
      const double len = rng.uniform(0.01, 1.2);
      for (PlfEngine* e : {&percall, &plan}) e->set_branch_length(node, len);
    } else if (u < 0.85) {
      const auto edges = percall.tree().internal_edge_nodes();
      ASSERT_FALSE(edges.empty());
      const int v = edges[rng.below(edges.size())];
      const bool swap_left = rng.uniform() < 0.5;
      for (PlfEngine* e : {&percall, &plan}) e->apply_nni(v, swap_left);
    } else {
      // Two evaluated moves in the same proposal on the same branch: the
      // second recompute must overwrite the ACTIVE buffers (flip-epoch
      // path), in both dispatch modes identically.
      const int leaf = percall.tree().leaf_of(
          static_cast<int>(rng.below(percall.data().n_taxa())));
      const double len = rng.uniform(0.01, 1.2);
      for (PlfEngine* e : {&percall, &plan}) e->set_branch_length(leaf, len);
      EXPECT_EQ(percall.log_likelihood(), plan.log_likelihood());
      for (PlfEngine* e : {&percall, &plan}) {
        e->set_branch_length(leaf, len * 0.5);
      }
    }

    EXPECT_EQ(percall.log_likelihood(), plan.log_likelihood());

    if (rng.uniform() < 0.5) {
      for (PlfEngine* e : {&percall, &plan}) e->accept();
    } else {
      for (PlfEngine* e : {&percall, &plan}) e->reject();
    }
    EXPECT_EQ(percall.log_likelihood(), plan.log_likelihood());
  }

  // The root CLVs must have stayed locked too, not just the reduction.
  EXPECT_EQ(std::memcmp(percall.node_cl(percall.tree().root()),
                        plan.node_cl(plan.tree().root()),
                        d.data.n_patterns() * 4 * 4 * sizeof(float)),
            0);
}

using StormParam = std::tuple<BackendKind, SiteRepeatsMode>;

class PlanLockstepTest : public ::testing::TestWithParam<StormParam> {};

TEST_P(PlanLockstepTest, PerCallAndPlanBitIdenticalThroughProposalStorm) {
  lockstep_storm(std::get<0>(GetParam()), std::get<1>(GetParam()), 41);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PlanLockstepTest,
    ::testing::Combine(
        ::testing::Values(BackendKind::kSerial, BackendKind::kThreaded,
                          BackendKind::kCell, BackendKind::kGpu),
        ::testing::Values(SiteRepeatsMode::kOff, SiteRepeatsMode::kOn)),
    [](const ::testing::TestParamInfo<StormParam>& info) {
      const char* b = "";
      switch (std::get<0>(info.param)) {
        case BackendKind::kSerial: b = "serial"; break;
        case BackendKind::kThreaded: b = "threaded"; break;
        case BackendKind::kCell: b = "cell"; break;
        case BackendKind::kGpu: b = "gpu"; break;
      }
      return std::string(b) + "_repeats_" +
             (std::get<1>(info.param) == SiteRepeatsMode::kOn ? "on" : "off");
    });

TEST(PlanEngineTest, PlanShapeMatchesTreeOnFirstEvaluation) {
  const Dataset d = make_dataset(5, 12);
  SerialBackend backend;
  PlfEngine e(d.data, d.params, d.tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan);
  e.log_likelihood();

  const std::size_t n_internals = d.tree.postorder_internals().size();
  EXPECT_EQ(e.stats().plan_builds, 1u);
  EXPECT_EQ(e.stats().plan_ops, n_internals);  // everything dirty at start
  EXPECT_GE(e.stats().plan_levels, 1u);
  EXPECT_LE(e.stats().plan_levels, e.stats().plan_ops);
  // A leaf-rooted binary tree always has some same-level parallelism unless
  // it degenerated to a caterpillar; at minimum the level count equals the
  // longest root path, which is < n_internals for 12 taxa with this seed.
  EXPECT_LT(e.stats().plan_levels, n_internals);
}

TEST(PlanEngineTest, TipOpKindsMatchTreeShape) {
  // A caterpillar tree maximizes tip×inner coverage: every non-root internal
  // node has exactly one tip child except the single deepest cherry. The
  // engine's tip-op accounting must reproduce the tree shape exactly.
  phylo::Tree tree = phylo::Tree::from_newick(
      "(((((((A:0.2,B:0.2):0.2,C:0.2):0.2,D:0.2):0.2,E:0.2):0.2,F:0.2):0.2,"
      "G:0.2):0.2,H:0.2);");
  Rng rng(71);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  const phylo::Alignment aln = ev.evolve(150, rng);
  std::vector<std::vector<phylo::StateMask>> cols(aln.n_columns());
  for (std::size_t c = 0; c < aln.n_columns(); ++c) {
    cols[c].resize(aln.n_taxa());
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) cols[c][t] = aln.at(t, c);
  }
  const phylo::PatternMatrix data = phylo::PatternMatrix::from_patterns(
      aln.names(), cols, std::vector<std::uint32_t>(cols.size(), 1));

  SerialBackend backend;
  PlfEngine e(data, params, tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan);
  ASSERT_TRUE(e.tip_kernels_enabled());
  e.log_likelihood();

  std::size_t cherries = 0;
  std::size_t tip_inner = 0;
  for (int id : e.tree().postorder_internals()) {
    if (id == e.tree().root()) continue;  // root keeps the generic kernel
    const phylo::TreeNode& n = e.tree().node(id);
    const bool lt = e.tree().node(n.left).is_leaf();
    const bool rt = e.tree().node(n.right).is_leaf();
    if (lt && rt) ++cherries;
    if (lt != rt) ++tip_inner;
  }
  EXPECT_GT(cherries, 0u);
  EXPECT_GT(tip_inner, 0u);
  EXPECT_EQ(e.stats().tip_tt_ops, cherries);
  EXPECT_EQ(e.stats().tip_ti_ops, tip_inner);
  EXPECT_EQ(e.stats().tip_tables_built, cherries);
}

TEST(PlanEngineTest, PairTablesRebuildOnlyWhenCherryBranchesChange) {
  const Dataset d = make_dataset(29, 10);
  SerialBackend backend;
  PlfEngine e(d.data, d.params, d.tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan);
  e.log_likelihood();
  const std::uint64_t built0 = e.stats().tip_tables_built;
  const std::uint64_t tt0 = e.stats().tip_tt_ops;
  EXPECT_GT(built0, 0u);

  // Find one cherry and remember a leaf child of it.
  int cherry_leaf = phylo::kNoNode;
  for (int id : e.tree().postorder_internals()) {
    if (id == e.tree().root()) continue;
    const phylo::TreeNode& n = e.tree().node(id);
    if (e.tree().node(n.left).is_leaf() && e.tree().node(n.right).is_leaf()) {
      cherry_leaf = n.left;
      break;
    }
  }
  ASSERT_NE(cherry_leaf, phylo::kNoNode);

  // Moving an inner branch dirties the path above it, never a cherry's tip
  // branches: the stamp cache must keep every table.
  const auto edges = e.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  e.set_branch_length(edges.front(), 0.33);
  e.log_likelihood();
  EXPECT_EQ(e.stats().tip_tables_built, built0);

  // Moving a leaf branch under a cherry rebuilds exactly that cherry's
  // table — its ancestors re-plan too, but they are not cherries.
  e.set_branch_length(cherry_leaf, 0.44);
  e.log_likelihood();
  EXPECT_EQ(e.stats().tip_tables_built, built0 + 1);
  EXPECT_EQ(e.stats().tip_tt_ops, tt0 + 1);
}

TEST(IncrementalScalerTest, ResumsOnlyOnTopologyChangesAndRejects) {
  const Dataset d = make_dataset(17, 9);
  SerialBackend backend;
  PlfEngine e(d.data, d.params, d.tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan);

  e.log_likelihood();  // first evaluation: full resum, no deltas possible
  EXPECT_EQ(e.stats().scaler_resums, 1u);
  EXPECT_EQ(e.stats().scaler_delta_updates, 0u);

  // Branch-length move: delta path (subtract stale rows, add fresh rows).
  e.set_branch_length(e.tree().leaf_of(2), 0.42);
  e.log_likelihood();
  EXPECT_EQ(e.stats().scaler_resums, 1u);
  EXPECT_GT(e.stats().scaler_delta_updates, 0u);
  const std::uint64_t deltas_after_bl = e.stats().scaler_delta_updates;

  // Accepted proposal with a length move: still the delta path.
  e.begin_proposal();
  e.set_branch_length(e.tree().leaf_of(4), 0.13);
  e.log_likelihood();
  e.accept();
  EXPECT_EQ(e.stats().scaler_resums, 1u);
  EXPECT_GT(e.stats().scaler_delta_updates, deltas_after_bl);

  // Rejected proposal: the wholesale flip-back invalidates the per-node
  // deltas. The reject itself restores the cached lnL (no evaluation), but
  // the NEXT dirty evaluation must resum even though only one path is dirty.
  e.begin_proposal();
  e.set_branch_length(e.tree().leaf_of(1), 0.9);
  e.log_likelihood();
  e.reject();
  e.log_likelihood();  // cached: reject restored lnL, nothing recomputes
  EXPECT_EQ(e.stats().scaler_resums, 1u);
  e.set_branch_length(e.tree().leaf_of(3), 0.21);
  e.log_likelihood();
  EXPECT_EQ(e.stats().scaler_resums, 2u);

  // Topology move: ancestry changed, resum again.
  const auto edges = e.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  e.apply_nni(edges.front(), true);
  e.log_likelihood();
  EXPECT_EQ(e.stats().scaler_resums, 3u);

  // The incremental path must agree with a from-scratch engine over the
  // final state (double-rounding headroom only: the CLVs are bitwise equal,
  // scaler_total differs by accumulated subtract/add rounding at most).
  SerialBackend backend2;
  PlfEngine fresh(d.data, e.model_params(), e.tree(), backend2,
                  KernelVariant::kSimdCol, SiteRepeatsMode::kOff,
                  DispatchMode::kPlan);
  const double lnl = e.log_likelihood();
  EXPECT_NEAR(lnl, fresh.log_likelihood(), std::abs(lnl) * 1e-12);
}

// --- budgeted arena x plan: eviction-driven recompute scheduling ------------

/// Find an internal node OFF the leaf->root dirty path whose parent is ON it:
/// evicting that node forces the next plan to grow its recompute set with an
/// ancestor the dirty path depends on.
int off_path_internal_child(const phylo::Tree& tree, int leaf) {
  std::vector<char> on_path(tree.n_nodes(), 0);
  for (int id = tree.node(leaf).parent; id != phylo::kNoNode;
       id = tree.node(id).parent) {
    on_path[static_cast<std::size_t>(id)] = 1;
  }
  for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
    const phylo::TreeNode& n = tree.node(static_cast<int>(id));
    if (n.is_leaf() || on_path[id] != 0) continue;
    const int parent = n.parent;
    if (parent != phylo::kNoNode &&
        on_path[static_cast<std::size_t>(parent)] != 0) {
      return static_cast<int>(id);
    }
  }
  return phylo::kNoNode;
}

TEST(PlanArenaTest, EvictedAncestorIsLeveledBeforeItsDependents) {
  const Dataset d = make_dataset(83, 10);
  SerialBackend backend;
  ClvBudget half;
  half.kind = ClvBudget::Kind::kFraction;
  half.fraction = 0.5;
  PlfEngine e(d.data, d.params, d.tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan, half);
  e.log_likelihood();

  const int leaf = e.tree().leaf_of(0);
  const int evicted = off_path_internal_child(e.tree(), leaf);
  ASSERT_NE(evicted, phylo::kNoNode) << "degenerate tree for this test";
  const int dependent = e.tree().node(evicted).parent;

  if (e.node_resident(evicted)) e.evict_node_for_test(evicted);
  ASSERT_FALSE(e.node_resident(evicted));
  const std::uint64_t remats_before = e.arena().counters().recompute_ops;
  const std::uint64_t builds_before = e.stats().plan_builds;

  // Dirty only the leaf->root path. The plan must still schedule the evicted
  // off-path ancestor — and STRICTLY before the path node that reads it, so
  // a level-parallel backend never races a rematerialization against its
  // consumer.
  e.set_branch_length(leaf, 0.37);
  e.log_likelihood();

  const PlfPlan& plan = e.last_plan();
  ASSERT_TRUE(plan.finalized());
  ASSERT_GE(plan.level_of_node(evicted), 0)
      << "evicted ancestor missing from the recompute plan";
  ASSERT_GE(plan.level_of_node(dependent), 0);
  EXPECT_LT(plan.level_of_node(evicted), plan.level_of_node(dependent));

  // One fused plan build covered dirty work and rematerialization alike.
  EXPECT_EQ(e.stats().plan_builds, builds_before + 1);
  EXPECT_GT(e.arena().counters().recompute_ops, remats_before);
  EXPECT_TRUE(e.node_resident(evicted));
}

TEST(PlanArenaTest, RematerializationRidesTheDirtyPlanNotASecondPass) {
  const Dataset d = make_dataset(89, 10);
  SerialBackend backend;
  PlfEngine e(d.data, d.params, d.tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan,
              clv_budget_from_string("0.5"));
  e.log_likelihood();
  const std::uint64_t ops_baseline = e.stats().plan_ops;

  // Twin move WITHOUT eviction first, to measure the dirty-path op count.
  e.set_branch_length(e.tree().leaf_of(1), 0.21);
  e.log_likelihood();
  const std::uint64_t path_ops = e.stats().plan_ops - ops_baseline;
  ASSERT_GT(path_ops, 0u);

  // Same move shape again, now with an off-path ancestor evicted: the single
  // plan build must carry MORE ops (path + rematerializations), and the
  // evaluation still completes without a second build.
  const int leaf = e.tree().leaf_of(1);
  const int evicted = off_path_internal_child(e.tree(), leaf);
  ASSERT_NE(evicted, phylo::kNoNode);
  if (e.node_resident(evicted)) e.evict_node_for_test(evicted);
  const std::uint64_t builds_before = e.stats().plan_builds;
  const std::uint64_t ops_before = e.stats().plan_ops;
  e.set_branch_length(leaf, 0.52);
  e.log_likelihood();
  EXPECT_EQ(e.stats().plan_builds, builds_before + 1);
  EXPECT_GT(e.stats().plan_ops - ops_before, path_ops);
}

}  // namespace
}  // namespace plf::core
