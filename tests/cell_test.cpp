#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "cell/dma.hpp"
#include "cell/local_store.hpp"
#include "cell/machine.hpp"
#include "cell/mailbox.hpp"
#include "cell/spu.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/tip_partial.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace plf::cell {
namespace {

TEST(LocalStoreTest, CapacityMatchesHardware) {
  LocalStore ls;
  EXPECT_EQ(ls.capacity(), 256u * 1024u);
  EXPECT_EQ(ls.allocated(), 0u);
}

TEST(LocalStoreTest, AllocReturnsAlignedRegions) {
  LocalStore ls;
  const LsRegion a = ls.alloc(100);
  const LsRegion b = ls.alloc(100);
  EXPECT_EQ(a.offset % kLsAlign, 0u);
  EXPECT_EQ(b.offset % kLsAlign, 0u);
  EXPECT_GE(b.offset, a.offset + a.bytes);
}

TEST(LocalStoreTest, OverflowThrowsHardwareViolation) {
  LocalStore ls;
  ls.alloc(200 * 1024);
  EXPECT_THROW(ls.alloc(100 * 1024), HardwareViolation);
}

TEST(LocalStoreTest, ReleaseToRestoresStack) {
  LocalStore ls;
  ls.alloc(1024);
  const std::size_t mark = ls.mark();
  ls.alloc(4096);
  EXPECT_GT(ls.allocated(), mark);
  ls.release_to(mark);
  EXPECT_EQ(ls.allocated(), mark);
  EXPECT_THROW(ls.release_to(mark + 1), Error);
}

TEST(LocalStoreTest, RegionBoundsChecked) {
  LocalStore ls;
  EXPECT_THROW(ls.at(LsRegion{256 * 1024 - 16, 32}), Error);
}

TEST(DmaTest, FunctionalCopyBothDirections) {
  LocalStore ls;
  DmaEngine dma;
  const LsRegion r = ls.alloc(1024);
  aligned_vector<float> src(256), dst(256);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<float>(i);
  const double t1 = dma.get(ls, r, src.data(), 1024, 0.0);
  EXPECT_GT(t1, 0.0);
  EXPECT_EQ(std::memcmp(ls.at(LsRegion{r.offset, 1024}), src.data(), 1024), 0);
  const double t2 = dma.put(ls, r, dst.data(), 1024, t1);
  EXPECT_GT(t2, t1);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 1024), 0);
}

TEST(DmaTest, LargeRequestSplitsInto16KTransfers) {
  LocalStore ls;
  DmaEngine dma;
  const std::size_t bytes = 40 * 1024;  // 16 + 16 + 8
  const LsRegion r = ls.alloc(bytes);
  aligned_vector<std::uint8_t> src(bytes, 0xAB);
  dma.get(ls, r, src.data(), bytes, 0.0);
  EXPECT_EQ(dma.stats().requests, 1u);
  EXPECT_EQ(dma.stats().transfers, 3u);
  EXPECT_EQ(dma.stats().bytes, bytes);
}

TEST(DmaTest, AlignmentViolationsRejected) {
  LocalStore ls;
  DmaEngine dma;
  const LsRegion r = ls.alloc(1024);
  aligned_vector<std::uint8_t> buf(2048);
  // Misaligned effective address.
  EXPECT_THROW(dma.get(ls, r, buf.data() + 3, 64, 0.0), HardwareViolation);
  // Size not a multiple of 16.
  EXPECT_THROW(dma.get(ls, r, buf.data(), 30, 0.0), HardwareViolation);
  // Misaligned LS offset.
  EXPECT_THROW(dma.get(ls, LsRegion{r.offset + 4, 64}, buf.data(), 64, 0.0),
               HardwareViolation);
}

TEST(DmaTest, TimingScalesWithSize) {
  LocalStore ls;
  DmaEngine dma;
  const LsRegion r = ls.alloc(16 * 1024);
  aligned_vector<std::uint8_t> buf(16 * 1024);
  const double small = dma.get(ls, LsRegion{r.offset, 256}, buf.data(), 256, 0.0);
  DmaEngine dma2;
  const double large = dma2.get(ls, r, buf.data(), 16 * 1024, 0.0);
  EXPECT_GT(large, small);
  // Bandwidth model: 16KB at 25.6 GB/s ~ 0.64us + latency.
  EXPECT_NEAR(large, 0.25e-6 + 16384.0 / 25.6e9, 1e-9);
}

TEST(DmaTest, EngineSerializesTransfers) {
  LocalStore ls;
  DmaEngine dma;
  const LsRegion a = ls.alloc(4096);
  const LsRegion b = ls.alloc(4096);
  aligned_vector<std::uint8_t> buf(4096);
  const double t1 = dma.get(ls, a, buf.data(), 4096, 0.0);
  // Issued "at time 0" again, but the engine is busy until t1.
  const double t2 = dma.get(ls, b, buf.data(), 4096, 0.0);
  EXPECT_GE(t2, t1 + 4096.0 / 25.6e9);
}

TEST(MailboxTest, FifoOrderAndLatency) {
  Mailbox mb;
  mb.write(7, 0.0);
  mb.write(9, 1e-6);
  ASSERT_TRUE(mb.has_message());
  const auto r1 = mb.read(0.0);
  EXPECT_EQ(r1.value, 7u);
  EXPECT_GT(r1.time, 0.0);
  const auto r2 = mb.read(r1.time);
  EXPECT_EQ(r2.value, 9u);
  EXPECT_GT(r2.time, 1e-6);
  EXPECT_FALSE(mb.has_message());
}

TEST(MailboxTest, OverflowAtHardwareDepth) {
  Mailbox mb;  // depth 4
  for (int i = 0; i < 4; ++i) mb.write(static_cast<std::uint32_t>(i), 0.0);
  EXPECT_THROW(mb.write(4, 0.0), HardwareViolation);
}

TEST(MailboxTest, ReadWithoutMessageIsError) {
  Mailbox mb;
  EXPECT_THROW(mb.read(0.0), Error);
}

// ---------------------------------------------------------------------------
// SPU-level: functional equivalence with the host kernels.
// ---------------------------------------------------------------------------

struct SpuFixture {
  std::size_t m, K = 4;
  Rng rng{4242};
  phylo::SubstitutionModel model;
  phylo::TransitionMatrices tm_l, tm_r;
  core::TipPartial tp_l;
  aligned_vector<float> cl_l, cl_r, out_host, out_spu;
  phylo::PatternMatrix patterns;

  explicit SpuFixture(std::size_t m_)
      : m(m_),
        model(seqgen::default_gtr_params()),
        patterns(make_patterns(m_)) {
    tm_l = model.transition_matrices(0.1);
    tm_r = model.transition_matrices(0.25);
    tp_l = core::TipPartial(tm_l);
    cl_l = test::random_cl(m, K, rng);
    cl_r = test::random_cl(m, K, rng);
    out_host.assign(m * K * 4, 0.0f);
    out_spu.assign(m * K * 4, 0.0f);
  }

  static phylo::PatternMatrix make_patterns(std::size_t m) {
    Rng r(7);
    std::vector<std::vector<phylo::StateMask>> cols(
        m, std::vector<phylo::StateMask>(3));
    for (auto& col : cols)
      for (auto& x : col) x = phylo::state_to_mask(r.below(4));
    return phylo::PatternMatrix::from_patterns(
        {"a", "b", "c"}, cols, std::vector<std::uint32_t>(m, 1));
  }

  core::DownArgs down_args(bool left_tip, float* out) {
    core::DownArgs a;
    a.K = K;
    if (left_tip) {
      a.left.mask = patterns.row(0);
      a.left.tp = tp_l.data();
    } else {
      a.left.cl = cl_l.data();
    }
    a.left.p = tm_l.row_major();
    a.left.pt = tm_l.col_major();
    a.right.cl = cl_r.data();
    a.right.p = tm_r.row_major();
    a.right.pt = tm_r.col_major();
    a.out = out;
    return a;
  }
};

TEST(SpuTest, DownJobMatchesHostKernelAcrossChunks) {
  // 9000 patterns * 4 rates * 16 B * 3 buffers ~ far beyond one chunk:
  // exercises the two-level partitioning and double buffering.
  SpuFixture fx(9000);
  const auto& ks = core::kernels(core::KernelVariant::kSimdCol);
  ks.down(fx.down_args(false, fx.out_host.data()), 0, fx.m);

  Spu spu(0, SpuSimd::kColumnWise);
  SpuJob job;
  job.cmd = SpuCommand::kCondLikeDown;
  job.K = fx.K;
  job.begin = 0;
  job.end = fx.m;
  job.down = fx.down_args(false, fx.out_spu.data());
  spu.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  const SpuRunResult r = spu.service(job, 0.0);

  EXPECT_GT(r.chunks, 1u);
  EXPECT_GT(r.finish_time, 0.0);
  for (std::size_t i = 0; i < fx.out_host.size(); ++i) {
    ASSERT_EQ(fx.out_spu[i], fx.out_host[i]) << "at " << i;
  }
}

TEST(SpuTest, TipChildJobMatchesHost) {
  SpuFixture fx(500);
  const auto& ks = core::kernels(core::KernelVariant::kSimdCol);
  ks.down(fx.down_args(true, fx.out_host.data()), 0, fx.m);

  Spu spu(0, SpuSimd::kColumnWise);
  SpuJob job;
  job.cmd = SpuCommand::kCondLikeDown;
  job.K = fx.K;
  job.begin = 0;
  job.end = fx.m;
  job.down = fx.down_args(true, fx.out_spu.data());
  spu.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  spu.service(job, 0.0);
  for (std::size_t i = 0; i < fx.out_host.size(); ++i) {
    ASSERT_EQ(fx.out_spu[i], fx.out_host[i]);
  }
}

TEST(SpuTest, RowWiseProgramUsesRowKernel) {
  SpuFixture fx(300);
  const auto& ks = core::kernels(core::KernelVariant::kSimdRow);
  ks.down(fx.down_args(false, fx.out_host.data()), 0, fx.m);

  Spu spu(0, SpuSimd::kRowWise);
  SpuJob job;
  job.cmd = SpuCommand::kCondLikeDown;
  job.K = fx.K;
  job.begin = 0;
  job.end = fx.m;
  job.down = fx.down_args(false, fx.out_spu.data());
  spu.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  spu.service(job, 0.0);
  for (std::size_t i = 0; i < fx.out_host.size(); ++i) {
    ASSERT_EQ(fx.out_spu[i], fx.out_host[i]);
  }
}

TEST(SpuTest, ColumnWiseFasterThanRowWise) {
  // The paper's ablation direction: approach (ii) must beat approach (i).
  SpuFixture fx_col(4000), fx_row(4000);
  SpuJob job;
  job.cmd = SpuCommand::kCondLikeDown;
  job.K = 4;
  job.begin = 0;
  job.end = 4000;

  Spu col(0, SpuSimd::kColumnWise), row(1, SpuSimd::kRowWise);
  job.down = fx_col.down_args(false, fx_col.out_spu.data());
  col.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  const double t_col = col.service(job, 0.0).finish_time;
  job.down = fx_row.down_args(false, fx_row.out_spu.data());
  row.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  const double t_row = row.service(job, 0.0).finish_time;
  EXPECT_LT(t_col, t_row);
  EXPECT_NEAR(t_row / t_col, 2.0, 0.5);  // paper: ~2x at the PLF level
}

TEST(SpuTest, ScaleJobMatchesHost) {
  const std::size_t m = 3000, K = 4;
  Rng rng(1);
  aligned_vector<float> cl_host = test::random_cl(m, K, rng, 1e-5f, 0.4f);
  aligned_vector<float> cl_spu = cl_host;
  aligned_vector<float> sc_host(m, 0.0f), sc_spu(m, 0.0f);

  const auto& ks = core::kernels(core::KernelVariant::kSimdCol);
  core::ScaleArgs host_args{cl_host.data(), sc_host.data(), K};
  ks.scale(host_args, 0, m);

  Spu spu(0, SpuSimd::kColumnWise);
  SpuJob job;
  job.cmd = SpuCommand::kCondLikeScaler;
  job.K = K;
  job.begin = 0;
  job.end = m;
  job.scale = core::ScaleArgs{cl_spu.data(), sc_spu.data(), K};
  spu.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  spu.service(job, 0.0);

  for (std::size_t i = 0; i < cl_host.size(); ++i) {
    ASSERT_EQ(cl_spu[i], cl_host[i]);
  }
  for (std::size_t c = 0; c < m; ++c) ASSERT_EQ(sc_spu[c], sc_host[c]);
}

TEST(SpuTest, ReduceJobMatchesHost) {
  const std::size_t m = 2500, K = 4;
  Rng rng(2);
  aligned_vector<float> cl = test::random_cl(m, K, rng);
  aligned_vector<double> scaler(m);
  aligned_vector<std::uint32_t> weights(m);
  for (std::size_t c = 0; c < m; ++c) {
    scaler[c] = rng.uniform(-2.0, 0.0);
    weights[c] = static_cast<std::uint32_t>(1 + rng.below(5));
  }
  core::RootReduceArgs args;
  args.cl = cl.data();
  args.ln_scaler_total = scaler.data();
  args.weights = weights.data();
  args.K = K;

  const auto& ks = core::kernels(core::KernelVariant::kSimdCol);
  const double host = ks.root_reduce(args, 0, m);

  Spu spu(0, SpuSimd::kColumnWise);
  SpuJob job;
  job.cmd = SpuCommand::kRootReduce;
  job.K = K;
  job.begin = 0;
  job.end = m;
  job.reduce = args;
  spu.inbound().write(static_cast<std::uint32_t>(job.cmd), 0.0);
  const SpuRunResult r = spu.service(job, 0.0);
  EXPECT_NEAR(r.reduce_partial, host, std::abs(host) * 1e-9);
}

TEST(SpuTest, ChunkRespectsLocalStoreCapacity) {
  Spu spu(0, SpuSimd::kColumnWise);
  // Down job with two internal children, K=4: 3*64 B per pattern.
  const std::size_t chunk = spu.chunk_patterns(3 * 64, 2 * 2 * 4 * 16 * 4);
  EXPECT_GT(chunk, 0u);
  EXPECT_EQ(chunk % 16, 0u);
  // 2 * chunk * bytes_per_pattern must fit in the free LS.
  EXPECT_LE(2 * chunk * 3 * 64, kLocalStoreBytes - kPlfCodeBytes);
  // Absurd footprint cannot fit.
  EXPECT_THROW(spu.chunk_patterns(1 << 20, 0), HardwareViolation);
}

TEST(SpuTest, MismatchedMailboxCommandRejected) {
  SpuFixture fx(100);
  Spu spu(0, SpuSimd::kColumnWise);
  SpuJob job;
  job.cmd = SpuCommand::kCondLikeDown;
  job.K = 4;
  job.end = 100;
  job.down = fx.down_args(false, fx.out_spu.data());
  spu.inbound().write(static_cast<std::uint32_t>(SpuCommand::kTerminate), 0.0);
  EXPECT_THROW(spu.service(job, 0.0), Error);
}

// ---------------------------------------------------------------------------
// Machine-level: a full PlfEngine running on the simulated Cell.
// ---------------------------------------------------------------------------

struct EngineInstance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

EngineInstance engine_instance(std::size_t taxa, std::size_t cols,
                               std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return EngineInstance{std::move(tree), params,
                        phylo::PatternMatrix::compress(aln)};
}

TEST(CellMachineTest, EngineLikelihoodMatchesSerialHost) {
  auto inst = engine_instance(9, 400, 11);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kSimdCol);
  const double expect = ref.log_likelihood();

  CellConfig cfg;
  cfg.n_spes = 6;  // PS3
  CellMachine cell(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, cell,
                         core::KernelVariant::kSimdCol);
  const double got = engine.log_likelihood();
  // cl arrays are bit-equal; the root reduction's partial-sum order differs,
  // so lnL agrees to double rounding.
  EXPECT_NEAR(got, expect, std::abs(expect) * 1e-12);
  EXPECT_GT(cell.simulated_seconds(), 0.0);
  EXPECT_GT(cell.stats().plf_invocations, 0u);
  EXPECT_GT(cell.stats().dma_bytes, 0u);
  EXPECT_GT(cell.stats().mailbox_messages, 0u);
}

TEST(CellMachineTest, SixteenSpesQs20AlsoCorrect) {
  auto inst = engine_instance(8, 300, 12);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kSimdCol);
  CellConfig cfg;
  cfg.n_spes = 16;  // QS20
  cfg.name = "QS20";
  CellMachine cell(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, cell,
                         core::KernelVariant::kSimdCol);
  EXPECT_NEAR(engine.log_likelihood(), ref.log_likelihood(),
              std::abs(ref.log_likelihood()) * 1e-12);
}

TEST(CellMachineTest, MoreSpesRunFaster) {
  auto inst = engine_instance(10, 2000, 13);
  auto run = [&](std::size_t spes) {
    CellConfig cfg;
    cfg.n_spes = spes;
    CellMachine cell(cfg);
    core::PlfEngine engine(inst.data, inst.params, inst.tree, cell);
    engine.log_likelihood();
    return cell.simulated_seconds();
  };
  const double t1 = run(1);
  const double t4 = run(4);
  const double t16 = run(16);
  EXPECT_GT(t1, t4);
  EXPECT_GT(t4, t16);
  // ~1-2K patterns is the paper's WORST case (its 1K sets also scale poorly);
  // only modest scaling is expected here. Near-ideal scaling on large data is
  // asserted in LargeOffloadScalesNearIdeal below.
  EXPECT_GT(t1 / t4, 2.5);
  EXPECT_GT(t1 / t16, 4.0);
}

TEST(CellMachineTest, LargeOffloadScalesNearIdeal) {
  // Kernel-level offload over 50K patterns: the regime where the paper
  // reports up to 92% PLF efficiency and stable ~12x at 16 SPEs.
  const std::size_t m = 50000, K = 4;
  Rng rng(77);
  phylo::SubstitutionModel model(seqgen::default_gtr_params());
  auto tm_l = model.transition_matrices(0.1);
  auto tm_r = model.transition_matrices(0.2);
  aligned_vector<float> cl_l = test::random_cl(m, K, rng);
  aligned_vector<float> cl_r = test::random_cl(m, K, rng);
  aligned_vector<float> out(m * K * 4);

  core::DownArgs args;
  args.K = K;
  args.left.cl = cl_l.data();
  args.left.p = tm_l.row_major();
  args.left.pt = tm_l.col_major();
  args.right.cl = cl_r.data();
  args.right.p = tm_r.row_major();
  args.right.pt = tm_r.col_major();
  args.out = out.data();

  CellConfig cfg;
  cfg.n_spes = 16;
  CellMachine cell(cfg);
  SpuJob proto;
  proto.K = K;
  proto.down = args;
  const double t1 = cell.offload(SpuCommand::kCondLikeDown, proto, m, 1);
  const double t16 = cell.offload(SpuCommand::kCondLikeDown, proto, m, 16);
  const double speedup = t1 / t16;
  EXPECT_GT(speedup, 11.0);
  EXPECT_LE(speedup, 16.05);
}

TEST(CellMachineTest, OffloadPartitionCoversAllPatternsOddSizes) {
  // m not a multiple of the 16-pattern quantum or the SPE count.
  auto inst = engine_instance(6, 237, 14);
  ASSERT_NE(inst.data.n_patterns() % 16, 0u);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kSimdCol);
  CellConfig cfg;
  cfg.n_spes = 7;
  CellMachine cell(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, cell,
                         core::KernelVariant::kSimdCol);
  EXPECT_NEAR(engine.log_likelihood(), ref.log_likelihood(),
              std::abs(ref.log_likelihood()) * 1e-12);
}

TEST(CellMachineTest, McmcStyleProposalsOnCell) {
  auto inst = engine_instance(8, 150, 15);
  CellConfig cfg;
  cfg.n_spes = 6;
  CellMachine cell(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, cell,
                         core::KernelVariant::kSimdCol);
  const double before = engine.log_likelihood();
  engine.begin_proposal();
  engine.set_branch_length(engine.tree().branch_nodes()[1], 0.5);
  engine.log_likelihood();
  engine.reject();
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), before);
}

TEST(CellMachineTest, RowSimdMachineMatchesRowHost) {
  auto inst = engine_instance(7, 120, 16);
  core::SerialBackend serial;
  core::PlfEngine ref(inst.data, inst.params, inst.tree, serial,
                      core::KernelVariant::kSimdRow);
  CellConfig cfg;
  cfg.simd = SpuSimd::kRowWise;
  CellMachine cell(cfg);
  core::PlfEngine engine(inst.data, inst.params, inst.tree, cell,
                         core::KernelVariant::kSimdRow);
  EXPECT_NEAR(engine.log_likelihood(), ref.log_likelihood(),
              std::abs(ref.log_likelihood()) * 1e-12);
}

TEST(CellMachineTest, InvalidSpeCountRejected) {
  CellConfig cfg;
  cfg.n_spes = 4;
  CellMachine cell(cfg);
  SpuJob job;
  EXPECT_THROW(cell.offload(SpuCommand::kNop, job, 100, 5), Error);
  CellConfig zero;
  zero.n_spes = 0;
  EXPECT_THROW(CellMachine{zero}, Error);
}

}  // namespace
}  // namespace plf::cell
