// Conformance suite for the tip-specialized and fused PLF kernels
// (docs/KERNELS.md): the pair-table gather (down_tt), the tip×inner entry
// (down_ti), and every fused down/root+scale twin must reproduce the generic
// unfused path to the last ULP — across all kernel variants, all 15×15 valid
// ambiguity-mask pairs, K ∈ {1, 4}, with and without site-repeat compaction,
// and at branch-length extremes. Comparisons are memcmp (0 ULP), because the
// backends substitute these entries freely and the engine's A/B guarantees
// (per-call vs plan dispatch) demand bit identity, not tolerance.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/kernels.hpp"
#include "core/tip_partial.hpp"
#include "phylo/dna.hpp"
#include "phylo/model.hpp"
#include "test_support.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plf::core {
namespace {

using phylo::GtrParams;
using phylo::StateMask;
using phylo::SubstitutionModel;
using phylo::TransitionMatrices;

// All valid (nonzero) mask pairs, exhaustively: site c carries the pair
// (1 + c / 15, 1 + c % 15). Mask 0 never occurs in data (patterns always
// intersect at least one state), so 15×15 = 225 sites cover every reachable
// table entry.
constexpr std::size_t kValidMasks = phylo::kNumMasks - 1;
constexpr std::size_t kPairSites = kValidMasks * kValidMasks;

struct TipFixture {
  std::size_t m = kPairSites;
  std::size_t K;
  Rng rng{777};

  TransitionMatrices tm_l, tm_r, tm_o;
  TipPartial tp_l, tp_r, tp_o;
  TipPairTable pair;
  std::vector<StateMask> mask_l, mask_r, mask_o;
  aligned_vector<float> cl_r;          // internal right child (tip×inner)
  std::vector<std::uint32_t> repeats;  // strictly increasing site subset

  TipFixture(std::size_t K_, double branch_scale) : K(K_) {
    GtrParams p = test::random_gtr(rng, K);
    SubstitutionModel model(p);
    tm_l = model.transition_matrices(0.12 * branch_scale);
    tm_r = model.transition_matrices(0.31 * branch_scale);
    tm_o = model.transition_matrices(0.07 * branch_scale);
    tp_l = TipPartial(tm_l);
    tp_r = TipPartial(tm_r);
    tp_o = TipPartial(tm_o);
    pair = TipPairTable(tp_l, tp_r);
    mask_l.resize(m);
    mask_r.resize(m);
    for (std::size_t c = 0; c < m; ++c) {
      mask_l[c] = static_cast<StateMask>(1 + c / kValidMasks);
      mask_r[c] = static_cast<StateMask>(1 + c % kValidMasks);
    }
    mask_o = test::random_masks(m, rng);
    cl_r = test::random_cl(m, K, rng);
    for (std::uint32_t c = 0; c < m; c += 3) repeats.push_back(c);
  }

  ChildArgs tip_left() const {
    ChildArgs ch;
    ch.mask = mask_l.data();
    ch.tp = tp_l.data();
    ch.p = tm_l.row_major();
    ch.pt = tm_l.col_major();
    return ch;
  }
  ChildArgs tip_right() const {
    ChildArgs ch;
    ch.mask = mask_r.data();
    ch.tp = tp_r.data();
    ch.p = tm_r.row_major();
    ch.pt = tm_r.col_major();
    return ch;
  }
  ChildArgs inner_right() const {
    ChildArgs ch;
    ch.cl = cl_r.data();
    ch.p = tm_r.row_major();
    ch.pt = tm_r.col_major();
    return ch;
  }

  TipTipArgs tt_args(float* out, bool use_repeats) const {
    TipTipArgs a;
    a.left_mask = mask_l.data();
    a.right_mask = mask_r.data();
    a.pair = pair.raw();
    a.pair_scaled = pair.scaled();
    a.pair_ln = pair.ln_factors();
    a.out = out;
    a.K = K;
    a.table_categories = pair.n_categories();
    a.site_index = use_repeats ? repeats.data() : nullptr;
    a.n_sites = m;
    return a;
  }

  std::size_t run_m(bool use_repeats) const {
    return use_repeats ? repeats.size() : m;
  }
};

void expect_bitwise_equal(const aligned_vector<float>& got,
                          const aligned_vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// TipPairTable construction conformance.

TEST(TipPairTableTest, RawRowsAreExactTipPartialProducts) {
  TipFixture fx(4, 1.0);
  for (std::size_t lm = 0; lm < phylo::kNumMasks; ++lm) {
    for (std::size_t rm = 0; rm < phylo::kNumMasks; ++rm) {
      const std::size_t pair = lm * phylo::kNumMasks + rm;
      for (std::size_t v = 0; v < fx.K * 4; ++v) {
        const float want =
            fx.tp_l.data()[lm * fx.K * 4 + v] *
            fx.tp_r.data()[rm * fx.K * 4 + v];
        EXPECT_EQ(fx.pair.raw()[pair * fx.K * 4 + v], want)
            << "pair (" << lm << ", " << rm << ") entry " << v;
      }
    }
  }
}

TEST(TipPairTableTest, ScaledRowsMatchScaleKernelAppliedToRaw) {
  // The prescale must be the scale-kernel body verbatim: running the real
  // scale kernel over a copy of each raw row must reproduce scaled() and
  // ln_factors() bit for bit. This is what makes the fused tip×tip gather
  // exact.
  TipFixture fx(4, 1.0);
  const std::size_t row = fx.K * 4;
  aligned_vector<float> buf(row);
  aligned_vector<float> ln(1);
  for (std::size_t pair = 0; pair < phylo::kNumMasks * phylo::kNumMasks;
       ++pair) {
    std::memcpy(buf.data(), fx.pair.raw() + pair * row, row * sizeof(float));
    ln[0] = -1.0f;
    ScaleArgs s;
    s.cl = buf.data();
    s.ln_scaler = ln.data();
    s.K = fx.K;
    kernels(KernelVariant::kScalar).scale(s, 0, 1);
    EXPECT_EQ(std::memcmp(buf.data(), fx.pair.scaled() + pair * row,
                          row * sizeof(float)),
              0)
        << "pair " << pair;
    EXPECT_EQ(ln[0], fx.pair.ln_factors()[pair]) << "pair " << pair;
  }
}

TEST(TipPairTableTest, CategoryCountMismatchThrows) {
  Rng rng(5);
  SubstitutionModel m1(test::random_gtr(rng, 1));
  SubstitutionModel m4(test::random_gtr(rng, 4));
  const TipPartial a(m1.transition_matrices(0.1));
  const TipPartial b(m4.transition_matrices(0.1));
  EXPECT_THROW(TipPairTable(a, b), plf::Error);
}

// ---------------------------------------------------------------------------
// Kernel conformance, parameterized over
// (variant, K, branch-length scale, site repeats on/off).

using TipParam =
    std::tuple<KernelVariant, std::size_t /*K*/, double /*branch scale*/,
               bool /*site repeats*/>;

class TipKernelConformanceTest : public ::testing::TestWithParam<TipParam> {
 protected:
  // Both outputs seeded identically so untouched (non-representative) sites
  // compare equal under memcmp too.
  static aligned_vector<float> zeros(std::size_t n) {
    return aligned_vector<float>(n, 0.0f);
  }
};

TEST_P(TipKernelConformanceTest, TipTipGatherMatchesGenericDown) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);

  DownArgs generic;
  generic.left = fx.tip_left();
  generic.right = fx.tip_right();
  generic.K = K;
  generic.site_index = use_repeats ? fx.repeats.data() : nullptr;
  generic.n_sites = fx.m;

  aligned_vector<float> out_gen = zeros(fx.m * K * 4);
  aligned_vector<float> out_tt = zeros(fx.m * K * 4);
  generic.out = out_gen.data();
  ks.down(generic, 0, fx.run_m(use_repeats));
  TipTipArgs tt = fx.tt_args(out_tt.data(), use_repeats);
  ks.down_tt(tt, 0, fx.run_m(use_repeats));
  expect_bitwise_equal(out_tt, out_gen);
}

TEST_P(TipKernelConformanceTest, TipInnerMatchesGenericDown) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);

  DownArgs args;
  args.left = fx.tip_left();
  args.right = fx.inner_right();
  args.K = K;
  args.site_index = use_repeats ? fx.repeats.data() : nullptr;
  args.n_sites = fx.m;

  aligned_vector<float> out_gen = zeros(fx.m * K * 4);
  aligned_vector<float> out_ti = zeros(fx.m * K * 4);
  args.out = out_gen.data();
  ks.down(args, 0, fx.run_m(use_repeats));
  args.out = out_ti.data();
  ks.down_ti(args, 0, fx.run_m(use_repeats));
  expect_bitwise_equal(out_ti, out_gen);
}

TEST_P(TipKernelConformanceTest, FusedDownScaleMatchesUnfusedPair) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);
  // Generic inner×inner op (second random CLV as the left child).
  aligned_vector<float> cl_l = test::random_cl(fx.m, K, fx.rng);

  DownArgs args;
  args.left.cl = cl_l.data();
  args.left.p = fx.tm_l.row_major();
  args.left.pt = fx.tm_l.col_major();
  args.right = fx.inner_right();
  args.K = K;
  args.site_index = use_repeats ? fx.repeats.data() : nullptr;
  args.n_sites = fx.m;

  aligned_vector<float> out_a = zeros(fx.m * K * 4);
  aligned_vector<float> out_b = zeros(fx.m * K * 4);
  aligned_vector<float> ln_a = zeros(fx.m);
  aligned_vector<float> ln_b = zeros(fx.m);

  args.out = out_a.data();
  ScaleArgs sa;
  sa.cl = out_a.data();
  sa.ln_scaler = ln_a.data();
  sa.K = K;
  sa.site_index = args.site_index;
  sa.n_sites = fx.m;
  ks.down(args, 0, fx.run_m(use_repeats));
  ks.scale(sa, 0, fx.run_m(use_repeats));

  args.out = out_b.data();
  ScaleArgs sb = sa;
  sb.cl = out_b.data();
  sb.ln_scaler = ln_b.data();
  ks.down_scale(args, sb, 0, fx.run_m(use_repeats));

  expect_bitwise_equal(out_b, out_a);
  expect_bitwise_equal(ln_b, ln_a);
}

TEST_P(TipKernelConformanceTest, FusedTipInnerScaleMatchesUnfusedPair) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);

  DownArgs args;
  args.left = fx.tip_left();
  args.right = fx.inner_right();
  args.K = K;
  args.site_index = use_repeats ? fx.repeats.data() : nullptr;
  args.n_sites = fx.m;

  aligned_vector<float> out_a = zeros(fx.m * K * 4);
  aligned_vector<float> out_b = zeros(fx.m * K * 4);
  aligned_vector<float> ln_a = zeros(fx.m);
  aligned_vector<float> ln_b = zeros(fx.m);

  args.out = out_a.data();
  ScaleArgs sa;
  sa.cl = out_a.data();
  sa.ln_scaler = ln_a.data();
  sa.K = K;
  sa.site_index = args.site_index;
  sa.n_sites = fx.m;
  ks.down_ti(args, 0, fx.run_m(use_repeats));
  ks.scale(sa, 0, fx.run_m(use_repeats));

  args.out = out_b.data();
  ScaleArgs sb = sa;
  sb.cl = out_b.data();
  sb.ln_scaler = ln_b.data();
  ks.down_ti_scale(args, sb, 0, fx.run_m(use_repeats));

  expect_bitwise_equal(out_b, out_a);
  expect_bitwise_equal(ln_b, ln_a);
}

TEST_P(TipKernelConformanceTest, FusedTipTipScaleMatchesUnfusedPair) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);

  aligned_vector<float> out_a = zeros(fx.m * K * 4);
  aligned_vector<float> out_b = zeros(fx.m * K * 4);
  aligned_vector<float> ln_a = zeros(fx.m);
  aligned_vector<float> ln_b = zeros(fx.m);

  TipTipArgs ta = fx.tt_args(out_a.data(), use_repeats);
  ScaleArgs sa;
  sa.cl = out_a.data();
  sa.ln_scaler = ln_a.data();
  sa.K = K;
  sa.site_index = ta.site_index;
  sa.n_sites = fx.m;
  ks.down_tt(ta, 0, fx.run_m(use_repeats));
  ks.scale(sa, 0, fx.run_m(use_repeats));

  TipTipArgs tb = fx.tt_args(out_b.data(), use_repeats);
  ScaleArgs sb = sa;
  sb.cl = out_b.data();
  sb.ln_scaler = ln_b.data();
  ks.down_tt_scale(tb, sb, 0, fx.run_m(use_repeats));

  expect_bitwise_equal(out_b, out_a);
  expect_bitwise_equal(ln_b, ln_a);
}

TEST_P(TipKernelConformanceTest, FusedRootScaleMatchesUnfusedPair) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);

  RootArgs args;
  args.down.left = fx.tip_left();
  args.down.right = fx.inner_right();
  args.down.K = K;
  args.down.site_index = use_repeats ? fx.repeats.data() : nullptr;
  args.down.n_sites = fx.m;
  args.out_mask = fx.mask_o.data();
  args.out_tp = fx.tp_o.data();

  aligned_vector<float> out_a = zeros(fx.m * K * 4);
  aligned_vector<float> out_b = zeros(fx.m * K * 4);
  aligned_vector<float> ln_a = zeros(fx.m);
  aligned_vector<float> ln_b = zeros(fx.m);

  args.down.out = out_a.data();
  ScaleArgs sa;
  sa.cl = out_a.data();
  sa.ln_scaler = ln_a.data();
  sa.K = K;
  sa.site_index = args.down.site_index;
  sa.n_sites = fx.m;
  ks.root(args, 0, fx.run_m(use_repeats));
  ks.scale(sa, 0, fx.run_m(use_repeats));

  args.down.out = out_b.data();
  ScaleArgs sb = sa;
  sb.cl = out_b.data();
  sb.ln_scaler = ln_b.data();
  ks.root_scale(args, sb, 0, fx.run_m(use_repeats));

  expect_bitwise_equal(out_b, out_a);
  expect_bitwise_equal(ln_b, ln_a);
}

TEST_P(TipKernelConformanceTest, TipTipRangeSplitEqualsWholeRange) {
  const auto [variant, K, scale, use_repeats] = GetParam();
  TipFixture fx(K, scale);
  const KernelSet& ks = kernels(variant);
  const std::size_t n = fx.run_m(use_repeats);

  aligned_vector<float> whole = zeros(fx.m * K * 4);
  aligned_vector<float> split = zeros(fx.m * K * 4);
  TipTipArgs tw = fx.tt_args(whole.data(), use_repeats);
  ks.down_tt(tw, 0, n);
  TipTipArgs ts = fx.tt_args(split.data(), use_repeats);
  ks.down_tt(ts, 0, n / 3);
  ks.down_tt(ts, n / 3, n / 2 + 1);
  ks.down_tt(ts, n / 2 + 1, n);
  expect_bitwise_equal(split, whole);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TipKernelConformanceTest,
    ::testing::Combine(
        ::testing::Values(KernelVariant::kScalar, KernelVariant::kSimdRow,
                          KernelVariant::kSimdCol, KernelVariant::kSimdCol8),
        ::testing::Values(1u, 4u),
        // Branch-length scale factors: near-zero branches (transition matrix
        // ~identity, tip rows hit the 0/1 extremes), typical, and
        // near-saturation (rows flatten toward the stationary distribution).
        ::testing::Values(1e-5, 1.0, 250.0), ::testing::Bool()),
    [](const ::testing::TestParamInfo<TipParam>& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      const double s = std::get<2>(info.param);
      const char* stag = s < 1e-3 ? "tiny" : (s > 10.0 ? "huge" : "mid");
      return name + "_K" + std::to_string(std::get<1>(info.param)) + "_" +
             stag + (std::get<3>(info.param) ? "_rep" : "_dense");
    });

}  // namespace
}  // namespace plf::core
