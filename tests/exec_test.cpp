// Tests for the multi-instance runtime (src/exec/): the InstanceScheduler's
// ordering/barrier/error contracts, PartitionSpec parsing and splitting, and
// PartitionedEngine's fan-out protocol — including the headline property
// that scheduled (driver-threaded) and inline execution are bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "exec/partitioned.hpp"
#include "exec/scheduler.hpp"
#include "phylo/partition.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace plf::exec {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::Alignment aln;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  phylo::Alignment aln = ev.evolve(cols, rng);
  auto data = phylo::PatternMatrix::compress(aln);
  return Instance{std::move(tree), params, std::move(aln), std::move(data)};
}

TEST(InstanceSchedulerTest, RegistersAndLabelsInstances) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 80, 11);
  core::PlfEngine e0(inst.data, inst.params, inst.tree, backend);
  core::PlfEngine e1(inst.data, inst.params, inst.tree, backend);

  InstanceScheduler sched(2);
  const int id0 = sched.register_instance(e0, "alpha");
  const int id1 = sched.register_instance(e1, "beta");
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(sched.n_instances(), 2u);
  EXPECT_EQ(sched.instance(id0).label, "alpha");
  EXPECT_EQ(sched.instance(id1).label, "beta");
  EXPECT_EQ(&sched.engine(id0), &e0);
  EXPECT_EQ(e0.instance_label(), "alpha");
  // Instances round-robin over drivers.
  EXPECT_NE(sched.instance(id0).driver, sched.instance(id1).driver);
}

TEST(InstanceSchedulerTest, TasksForOneInstanceRunInSubmissionOrder) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 80, 12);
  core::PlfEngine e(inst.data, inst.params, inst.tree, backend);
  InstanceScheduler sched(1);
  const int id = sched.register_instance(e, "only");

  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    sched.submit(id, [&order, i] { order.push_back(i); });
  }
  sched.barrier();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(InstanceSchedulerTest, BarrierRethrowsFirstTaskError) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 80, 13);
  core::PlfEngine e(inst.data, inst.params, inst.tree, backend);
  InstanceScheduler sched(2);
  const int id = sched.register_instance(e, "x");

  sched.submit(id, [] { throw Error("task boom"); });
  sched.submit(id, [] {});  // queued behind the throwing task: still runs
  try {
    sched.barrier();
    FAIL() << "barrier() swallowed the task exception";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("task boom"), std::string::npos);
  }

  // The scheduler stays usable after a failed barrier.
  std::atomic<int> ran{0};
  sched.submit(id, [&ran] { ran.fetch_add(1); });
  sched.barrier();
  EXPECT_EQ(ran.load(), 1);
}

TEST(InstanceSchedulerTest, ForEachInstanceVisitsEveryEngineConcurrently) {
  core::SerialBackend b0, b1, b2;
  const Instance inst = make_instance(6, 80, 14);
  core::PlfEngine e0(inst.data, inst.params, inst.tree, b0);
  core::PlfEngine e1(inst.data, inst.params, inst.tree, b1);
  core::PlfEngine e2(inst.data, inst.params, inst.tree, b2);
  InstanceScheduler sched(3);
  sched.register_instance(e0, "p0");
  sched.register_instance(e1, "p1");
  sched.register_instance(e2, "p2");

  std::vector<double> lnl(3, 0.0);
  sched.for_each_instance([&lnl](int id, core::PlfEngine& e) {
    lnl[static_cast<std::size_t>(id)] = e.log_likelihood();
  });
  // Identical engines on identical data: identical bits.
  EXPECT_EQ(lnl[0], lnl[1]);
  EXPECT_EQ(lnl[1], lnl[2]);
}

TEST(PartitionSpecTest, UniformCoversAndNames) {
  const auto spec = phylo::PartitionSpec::uniform(10, 3);
  ASSERT_EQ(spec.n_parts(), 3u);
  // 10 = 4 + 3 + 3, remainder to the first ranges.
  EXPECT_EQ(spec.range(0).name, "part0");
  EXPECT_EQ(spec.range(0).begin, 0u);
  EXPECT_EQ(spec.range(0).end, 4u);
  EXPECT_EQ(spec.range(1).begin, 4u);
  EXPECT_EQ(spec.range(1).end, 7u);
  EXPECT_EQ(spec.range(2).begin, 7u);
  EXPECT_EQ(spec.range(2).end, 10u);
}

TEST(PartitionSpecTest, ParseInclusiveRanges) {
  const auto spec = phylo::PartitionSpec::parse("genA:0-499,genB:500-799", 800);
  ASSERT_EQ(spec.n_parts(), 2u);
  EXPECT_EQ(spec.range(0).name, "genA");
  EXPECT_EQ(spec.range(0).begin, 0u);
  EXPECT_EQ(spec.range(0).end, 500u);
  EXPECT_EQ(spec.range(1).name, "genB");
  EXPECT_EQ(spec.range(1).end, 800u);
}

TEST(PartitionSpecTest, RejectsGapsOverlapsAndShortCoverage) {
  EXPECT_THROW(phylo::PartitionSpec::parse("a:0-3,b:5-9", 10), Error);
  EXPECT_THROW(phylo::PartitionSpec::parse("a:0-5,b:4-9", 10), Error);
  EXPECT_THROW(phylo::PartitionSpec::parse("a:0-8", 10), Error);
  EXPECT_THROW(phylo::PartitionSpec::uniform(2, 3), Error);
}

TEST(PartitionSpecTest, SplitRoundTripsColumns) {
  const Instance inst = make_instance(5, 30, 15);
  const auto spec = phylo::PartitionSpec::uniform(30, 4);
  const auto parts = spec.split(inst.aln);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].n_taxa(), inst.aln.n_taxa());
    EXPECT_EQ(parts[p].n_columns(), spec.range(p).n_columns());
    total += parts[p].n_columns();
    for (std::size_t t = 0; t < parts[p].n_taxa(); ++t) {
      EXPECT_EQ(parts[p].sequence(t),
                inst.aln.sequence(t).substr(spec.range(p).begin,
                                            spec.range(p).n_columns()));
    }
  }
  EXPECT_EQ(total, inst.aln.n_columns());
}

TEST(PartitionedEngineTest, SumOfPartsMatchesMonolithicLikelihood) {
  // Per-site lnL terms are independent, so partitioning only changes the
  // floating-point summation grouping — the totals agree to tight tolerance
  // (not bitwise: pattern compression differs per part).
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 240, 16);
  core::PlfEngine mono(inst.data, inst.params, inst.tree, backend);
  PartitionedEngine parts(inst.aln, phylo::PartitionSpec::uniform(240, 3),
                          {inst.params}, inst.tree, backend);
  const double mono_lnl = mono.log_likelihood();
  EXPECT_NEAR(parts.log_likelihood(), mono_lnl, 1e-8 * std::abs(mono_lnl));
}

TEST(PartitionedEngineTest, ScheduledAndInlineAreBitIdentical) {
  par::ThreadPool pool(4);
  core::ThreadedBackend backend(pool);
  const Instance inst = make_instance(8, 240, 17);
  const auto spec = phylo::PartitionSpec::uniform(240, 3);

  PartitionedEngine inline_pe(inst.aln, spec, {inst.params}, inst.tree,
                              backend);
  InstanceScheduler sched(3);
  PartitionedEngine sched_pe(inst.aln, spec, {inst.params}, inst.tree,
                             backend, PartitionedEngine::Config{}, &sched);

  EXPECT_EQ(sched_pe.log_likelihood(), inline_pe.log_likelihood());

  // Same move sequence through both: branch moves, an NNI proposal cycle,
  // and a per-partition model change.
  const auto edges = inline_pe.tree().internal_edge_nodes();
  ASSERT_FALSE(edges.empty());
  for (int round = 0; round < 6; ++round) {
    const int leaf = inline_pe.tree().leaf_of(round % 8);
    const double len = 0.05 + 0.02 * round;
    inline_pe.set_branch_length(leaf, len);
    sched_pe.set_branch_length(leaf, len);
    if (round % 2 == 0) {
      const int v = edges[static_cast<std::size_t>(round) % edges.size()];
      inline_pe.begin_proposal();
      sched_pe.begin_proposal();
      inline_pe.apply_nni(v, round % 4 == 0);
      sched_pe.apply_nni(v, round % 4 == 0);
      EXPECT_EQ(sched_pe.log_likelihood(), inline_pe.log_likelihood());
      inline_pe.reject();
      sched_pe.reject();
    }
    EXPECT_EQ(sched_pe.log_likelihood(), inline_pe.log_likelihood());
  }
  phylo::GtrParams hot = inst.params;
  hot.gamma_shape *= 1.5;
  inline_pe.set_model(1, hot);
  sched_pe.set_model(1, hot);
  EXPECT_EQ(sched_pe.log_likelihood(), inline_pe.log_likelihood());
  sched_pe.detach_threads();
}

TEST(PartitionedEngineTest, ModelMoveTouchesOnlyItsPartition) {
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 240, 18);
  PartitionedEngine pe(inst.aln, phylo::PartitionSpec::uniform(240, 3),
                       {inst.params}, inst.tree, backend);
  (void)pe.log_likelihood();
  const double p0 = pe.part(0).log_likelihood();
  const double p2 = pe.part(2).log_likelihood();

  phylo::GtrParams hot = inst.params;
  hot.gamma_shape *= 2.0;
  pe.set_model(1, hot);
  (void)pe.log_likelihood();
  EXPECT_EQ(pe.part(0).log_likelihood(), p0);
  EXPECT_EQ(pe.part(2).log_likelihood(), p2);
  EXPECT_EQ(pe.part(1).model_params().gamma_shape, hot.gamma_shape);
}

TEST(PartitionedEngineTest, ProposalProtocolFansOut) {
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 160, 19);
  PartitionedEngine pe(inst.aln, phylo::PartitionSpec::uniform(160, 2),
                       {inst.params}, inst.tree, backend);
  const double before = pe.log_likelihood();
  const int leaf = pe.tree().leaf_of(0);
  const double len = pe.tree().branch_length(leaf);

  pe.begin_proposal();
  pe.set_branch_length(leaf, len * 3.0);
  EXPECT_NE(pe.log_likelihood(), before);
  pe.reject();
  // Reject is the engines' pointer-flip undo: same bits as before.
  EXPECT_EQ(pe.log_likelihood(), before);

  pe.begin_proposal();
  pe.set_branch_length(leaf, len * 3.0);
  const double moved = pe.log_likelihood();
  pe.accept();
  EXPECT_EQ(pe.log_likelihood(), moved);
  EXPECT_EQ(pe.tree().branch_length(leaf), len * 3.0);
}

TEST(PartitionedEngineTest, CheckpointRoundTripIsBitExact) {
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 240, 20);
  const auto spec = phylo::PartitionSpec::uniform(240, 3);
  std::vector<phylo::GtrParams> per_part(3, inst.params);
  per_part[1].gamma_shape *= 1.7;  // distinct models must round-trip
  PartitionedEngine a(inst.aln, spec, per_part, inst.tree, backend);
  const int leaf = a.tree().leaf_of(2);
  a.set_branch_length(leaf, 0.3);
  const double lnl = a.log_likelihood();

  std::ostringstream os;
  {
    util::BinaryWriter w(os);
    a.save_state(w);
  }
  PartitionedEngine b(inst.aln, spec, {inst.params}, inst.tree, backend);
  std::istringstream is(os.str());
  {
    util::BinaryReader r(is);
    b.restore_state(r);
  }
  EXPECT_EQ(b.log_likelihood(), lnl);
  EXPECT_EQ(b.part(1).model_params().gamma_shape, per_part[1].gamma_shape);
  EXPECT_EQ(b.tree().branch_length(leaf), 0.3);
}

TEST(PartitionedEngineTest, RestoreRejectsDifferentPartitionLayout) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 120, 21);
  PartitionedEngine a(inst.aln, phylo::PartitionSpec::uniform(120, 3),
                      {inst.params}, inst.tree, backend);
  std::ostringstream os;
  {
    util::BinaryWriter w(os);
    a.save_state(w);
  }
  PartitionedEngine b(inst.aln, phylo::PartitionSpec::uniform(120, 2),
                      {inst.params}, inst.tree, backend);
  std::istringstream is(os.str());
  util::BinaryReader r(is);
  EXPECT_THROW(b.restore_state(r), Error);
}

TEST(PartitionedEngineTest, RejectsBadParamsCount) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 120, 22);
  std::vector<phylo::GtrParams> two(2, inst.params);
  EXPECT_THROW(PartitionedEngine(inst.aln,
                                 phylo::PartitionSpec::uniform(120, 3), two,
                                 inst.tree, backend),
               Error);
}

}  // namespace
}  // namespace plf::exec
