// Golden regression values: exact outputs of fixed-seed runs, locked in so
// that accidental numeric or stream changes (kernel edits, RNG changes,
// compression-order changes) are caught immediately.
//
// The scalar-kernel lnL is compared at double precision but with a small
// tolerance: FP contraction decisions may differ across compilers. The RNG
// stream and integer counters must match EXACTLY on every platform
// (xoshiro256** is bit-specified).
#include <gtest/gtest.h>

#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/rng.hpp"

namespace plf {
namespace {

TEST(GoldenTest, RngStreamIsBitExact) {
  Rng r(42);
  EXPECT_EQ(r(), 1546998764402558742ull);
  EXPECT_EQ(r(), 6990951692964543102ull);
}

TEST(GoldenTest, FixedInstanceLikelihood) {
  Rng rng(12001);
  auto tree = seqgen::yule_tree(9, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(250, rng));

  // Data pipeline is bit-deterministic.
  EXPECT_EQ(data.n_patterns(), 80u);
  EXPECT_EQ(tree.to_newick().substr(0, 26), "(t1:0.0154031,((t5:0.06404");

  core::SerialBackend b;
  core::PlfEngine e(data, params, tree, b, core::KernelVariant::kScalar);
  // Kernel arithmetic may contract differently across compilers: accept a
  // float-level band around the locked value.
  EXPECT_NEAR(e.log_likelihood(), -1025.1100511813, 2e-3);
}

// Dup-heavy fixture: every distinct column appears three times (weight 1
// each, so the global pattern compression cannot fold them — only the
// site-repeat machinery can). Locks both the lnL value and the promise that
// the compacted default (kAuto) is bit-identical to the dense path.
TEST(GoldenTest, DupHeavyInstanceLikelihood) {
  Rng rng(12003);
  auto tree = seqgen::yule_tree(6, rng, 1.0, 0.15);
  std::vector<std::vector<phylo::StateMask>> cols;
  for (int base = 0; base < 40; ++base) {
    std::vector<phylo::StateMask> col(6);
    for (auto& m : col) m = phylo::state_to_mask(rng.below(4));
    for (int rep = 0; rep < 3; ++rep) cols.push_back(col);  // 2/3 duplicates
  }
  const auto data = phylo::PatternMatrix::from_patterns(
      tree.taxon_names(), cols, std::vector<std::uint32_t>(cols.size(), 1));
  ASSERT_EQ(data.n_patterns(), 120u);

  auto params = seqgen::default_gtr_params();
  core::SerialBackend b_auto, b_off;
  core::PlfEngine e(data, params, tree, b_auto, core::KernelVariant::kScalar);
  core::PlfEngine dense(data, params, tree, b_off,
                        core::KernelVariant::kScalar,
                        core::SiteRepeatsMode::kOff);
  EXPECT_NEAR(e.log_likelihood(), -1374.4493811520, 2e-3);
  EXPECT_EQ(e.log_likelihood(), dense.log_likelihood());
  // The default (auto) mode must have taken the compacted path and realized
  // at least the 3x duplication this fixture bakes in.
  EXPECT_TRUE(e.site_repeats_enabled());
  EXPECT_GT(e.stats().repeat_down_hits, 0u);
  EXPECT_GE(e.stats().repeat_compression_ratio(), 3.0);
}

TEST(GoldenTest, FixedSeedMcmcTrajectory) {
  Rng rng(12002);
  auto tree = seqgen::yule_tree(7, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(150, rng));
  core::SerialBackend b;
  core::PlfEngine e(data, params, tree, b);
  mcmc::McmcOptions o;
  o.seed = 777;
  mcmc::McmcChain chain(e, o);
  const auto r = chain.run(500);
  // The acceptance COUNT is locked exactly on this platform family; the
  // final lnL to a loose band (accept/reject flips would change the count
  // long before drifting the lnL this far).
  EXPECT_EQ(r.total_accepted(), 299u);
  EXPECT_NEAR(r.final_ln_likelihood, -456.5383879616, 1.0);
}

}  // namespace
}  // namespace plf
