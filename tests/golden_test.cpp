// Golden regression values: exact outputs of fixed-seed runs, locked in so
// that accidental numeric or stream changes (kernel edits, RNG changes,
// compression-order changes) are caught immediately.
//
// The scalar-kernel lnL is compared at double precision but with a small
// tolerance: FP contraction decisions may differ across compilers. The RNG
// stream and integer counters must match EXACTLY on every platform
// (xoshiro256** is bit-specified).
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/rng.hpp"

namespace plf {
namespace {

TEST(GoldenTest, RngStreamIsBitExact) {
  Rng r(42);
  EXPECT_EQ(r(), 1546998764402558742ull);
  EXPECT_EQ(r(), 6990951692964543102ull);
}

TEST(GoldenTest, FixedInstanceLikelihood) {
  Rng rng(12001);
  auto tree = seqgen::yule_tree(9, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(250, rng));

  // Data pipeline is bit-deterministic.
  EXPECT_EQ(data.n_patterns(), 80u);
  EXPECT_EQ(tree.to_newick().substr(0, 26), "(t1:0.0154031,((t5:0.06404");

  core::SerialBackend b;
  core::PlfEngine e(data, params, tree, b, core::KernelVariant::kScalar);
  // Kernel arithmetic may contract differently across compilers: accept a
  // float-level band around the locked value.
  EXPECT_NEAR(e.log_likelihood(), -1025.1100511813, 2e-3);
}

TEST(GoldenTest, FixedSeedMcmcTrajectory) {
  Rng rng(12002);
  auto tree = seqgen::yule_tree(7, rng, 1.0, 0.15);
  auto params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(150, rng));
  core::SerialBackend b;
  core::PlfEngine e(data, params, tree, b);
  mcmc::McmcOptions o;
  o.seed = 777;
  mcmc::McmcChain chain(e, o);
  const auto r = chain.run(500);
  // The acceptance COUNT is locked exactly on this platform family; the
  // final lnL to a loose band (accept/reject flips would change the count
  // long before drifting the lnL this far).
  EXPECT_EQ(r.total_accepted(), 299u);
  EXPECT_NEAR(r.final_ln_likelihood, -456.5383879616, 1.0);
}

}  // namespace
}  // namespace plf
