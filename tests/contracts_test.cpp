// Tests for the contract/invariant layer (util/contracts.hpp).
//
// This TU is compiled with -DPLF_CONTRACTS_CHECKED=1 (see tests/CMakeLists),
// so the PLF_DCHECK/PLF_ASSUME family is active here even in release builds
// and can be exercised with death tests. The *library* objects keep whatever
// contract level the build selected; the kernel-entry integration tests query
// plf::contracts_active() and skip when the library was built unchecked.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/kernel_contracts.hpp"
#include "core/kernels.hpp"
#include "core/plan.hpp"
#include "obs/flight.hpp"
#include "util/aligned.hpp"
#include "util/contracts.hpp"

namespace plf {
namespace {

using core::DownArgs;
using core::KernelVariant;

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PLF_CHECK(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(PLF_CHECK_HW(true, "hardware rule holds"));
}

TEST(CheckTest, FailingCheckThrowsErrorWithContext) {
  try {
    PLF_CHECK(2 + 2 == 5, "math is broken");
    FAIL() << "PLF_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
  }
}

TEST(CheckTest, FailingHwCheckThrowsHardwareViolation) {
  EXPECT_THROW(PLF_CHECK_HW(false, "simulated rule"), HardwareViolation);
}

TEST(CheckTest, AlignedCheckAcceptsAlignedPointer) {
  aligned_vector<float> v(32, 0.0f);
  EXPECT_NO_THROW(PLF_CHECK_ALIGNED(v.data(), 16));
  EXPECT_NO_THROW(PLF_CHECK_ALIGNED(v.data(), kDmaAlignBytes));
}

TEST(CheckTest, AlignedCheckRejectsMisalignedPointer) {
  aligned_vector<std::uint8_t> v(64, 0);
  const std::uint8_t* off = v.data() + 3;
  try {
    PLF_CHECK_ALIGNED(off, 16);
    FAIL() << "PLF_CHECK_ALIGNED did not throw";
  } catch (const HardwareViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("16-byte aligned"), std::string::npos) << what;
    EXPECT_NE(what.find("off"), std::string::npos) << what;
  }
}

TEST(DcheckDeathTest, FailingDcheckAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PLF_DCHECK(false, "dcheck fired"),
               "contract violation: dcheck fired");
}

TEST(DcheckDeathTest, PassingDcheckIsSilent) {
  int evaluations = 0;
  PLF_DCHECK(++evaluations == 1, "must pass");
  EXPECT_EQ(evaluations, 1);  // checked build: condition evaluated once
}

TEST(DcheckDeathTest, MisalignedDcheckAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  aligned_vector<std::uint8_t> v(64, 0);
  const std::uint8_t* off = v.data() + 1;
  EXPECT_DEATH(PLF_DCHECK_ALIGNED(off, 16), "not 16-byte aligned");
}

TEST(AssumeDeathTest, FalseAssumptionAbortsInCheckedBuilds) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PLF_ASSUME(1 == 2), "contract violation");
}

TEST(AssumeDeathTest, TrueAssumptionIsSilent) { PLF_ASSUME(1 == 1); }

// --- flight recorder on the death paths -----------------------------------
//
// The dying child writes the flight JSON to stderr (matched by EXPECT_DEATH)
// and to PLF_FLIGHT_PATH; the parent then parses the file and checks the
// failing thread's last spans survived the crash.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FlightDeathTest, ContractAbortDumpsLastSpans) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      testing::TempDir() + "plf_flight_contract_death.json";
  std::remove(path.c_str());
  ::setenv("PLF_FLIGHT_PATH", path.c_str(), 1);

  EXPECT_DEATH(
      {
        obs::flight_record_span("flight.before.crash", 111, 22);
        obs::flight_record_count("flight.crash.count", 7);
        PLF_DCHECK(false, "flight dump trigger");
      },
      // The contract hook runs before abort and prints the ring to stderr
      // (gtest matches POSIX ERE per line, so anchor on the JSON line).
      "\"name\":\"flight\\.before\\.crash\"");

  const std::string json = read_file(path);
  ::unsetenv("PLF_FLIGHT_PATH");
  ASSERT_FALSE(json.empty()) << "death child did not write " << path;
  EXPECT_NE(json.find("\"schema\":\"plf-flight-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"contract-violation\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"span\",\"name\":\"flight.before.crash\""),
            std::string::npos);
  EXPECT_NE(json.find("\"t_ns\":111,\"dur_ns\":22"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"count\",\"name\":\"flight.crash.count\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightDeathTest, UncaughtCheckThrowDumpsViaTerminateHook) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      testing::TempDir() + "plf_flight_terminate_death.json";
  std::remove(path.c_str());
  ::setenv("PLF_FLIGHT_PATH", path.c_str(), 1);

  EXPECT_DEATH(
      {
        obs::install_flight_handlers();
        obs::flight_record_span("flight.terminate.span", 5, 9);
        // noexcept boundary: the PLF_CHECK throw cannot escape, so the
        // process reaches std::terminate and the installed hook dumps.
        []() noexcept { PLF_CHECK(false, "uncaught escapes to terminate"); }();
      },
      "\"name\":\"flight\\.terminate\\.span\"");

  const std::string json = read_file(path);
  ::unsetenv("PLF_FLIGHT_PATH");
  ASSERT_FALSE(json.empty()) << "death child did not write " << path;
  EXPECT_NE(json.find("\"reason\":\"terminate\""), std::string::npos);
  EXPECT_NE(json.find("flight.terminate.span"), std::string::npos);
  std::remove(path.c_str());
}

/// Minimal valid cond_like_down argument pack over aligned storage.
struct DownFixture {
  static constexpr std::size_t kPatterns = 8;
  static constexpr std::size_t kCats = 4;
  aligned_vector<float> cl_l, cl_r, out, p, pt;

  DownFixture()
      : cl_l(kPatterns * kCats * 4, 0.25f),
        cl_r(kPatterns * kCats * 4, 0.25f),
        out(kPatterns * kCats * 4, 0.0f),
        p(kCats * 16, 0.25f),
        pt(kCats * 16, 0.25f) {}

  DownArgs args() {
    DownArgs a;
    a.left.cl = cl_l.data();
    a.left.p = p.data();
    a.left.pt = pt.data();
    a.right.cl = cl_r.data();
    a.right.p = p.data();
    a.right.pt = pt.data();
    a.out = out.data();
    a.K = kCats;
    return a;
  }
};

TEST(KernelContractTest, ValidArgumentsRunOnEveryVariant) {
  DownFixture f;
  for (auto v : {KernelVariant::kScalar, KernelVariant::kSimdRow,
                 KernelVariant::kSimdCol, KernelVariant::kSimdCol8}) {
    DownArgs a = f.args();
    core::kernels(v).down(a, 0, DownFixture::kPatterns);
    for (float x : f.out) EXPECT_GT(x, 0.0f);
  }
}

TEST(KernelContractDeathTest, MisalignedOutputTripsSimdEntryContract) {
  if (!contracts_active()) {
    GTEST_SKIP() << "library built without checked contracts";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  DownFixture f;
  DownArgs a = f.args();
  a.out = f.out.data() + 1;  // off by one float: 4-byte, not 16-byte, aligned
  EXPECT_DEATH(core::kernels(KernelVariant::kSimdCol).down(a, 0, 4),
               "contract violation");
}

TEST(KernelContractDeathTest, ZeroRateCategoriesTripsEntryContract) {
  if (!contracts_active()) {
    GTEST_SKIP() << "library built without checked contracts";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  DownFixture f;
  DownArgs a = f.args();
  a.K = 0;
  EXPECT_DEATH(core::kernels(KernelVariant::kScalar).down(a, 0, 4),
               "rate category");
}

TEST(KernelContractDeathTest, AmbiguousChildTripsEntryContract) {
  if (!contracts_active()) {
    GTEST_SKIP() << "library built without checked contracts";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  DownFixture f;
  DownArgs a = f.args();
  a.left.cl = nullptr;  // neither internal (cl) nor tip (mask)
  EXPECT_DEATH(core::kernels(KernelVariant::kScalar).down(a, 0, 4),
               "contract violation");
}

TEST(KernelContractTest, SiteIndexedRunTouchesOnlyIndexedSites) {
  DownFixture f;
  DownArgs a = f.args();
  const std::uint32_t idx[4] = {0, 2, 5, 7};
  a.site_index = idx;
  a.n_sites = DownFixture::kPatterns;
  core::kernels(KernelVariant::kScalar).down(a, 0, 4);
  for (std::size_t c = 0; c < DownFixture::kPatterns; ++c) {
    const bool indexed = c == 0 || c == 2 || c == 5 || c == 7;
    for (std::size_t j = 0; j < DownFixture::kCats * 4; ++j) {
      const float x = f.out[c * DownFixture::kCats * 4 + j];
      if (indexed) {
        EXPECT_GT(x, 0.0f) << "site " << c;
      } else {
        EXPECT_EQ(x, 0.0f) << "site " << c;  // skipped: scatter's job
      }
    }
  }
}

TEST(KernelContractTest, OutOfRangeRepeatIndexTripsEntryContract) {
  // The bound check is a PLF_CHECK (always on, throwing): the index vector
  // crosses the repeats-subsystem/kernel trust boundary in every build mode,
  // so a corrupt index must never reach the CLV gathers.
  DownFixture f;
  DownArgs a = f.args();
  const std::uint32_t idx[4] = {0, 1, 2, 99};  // 99 >= n_sites
  a.site_index = idx;
  a.n_sites = DownFixture::kPatterns;
  try {
    core::kernels(KernelVariant::kScalar).down(a, 0, 4);
    FAIL() << "out-of-range site_index did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("repeat index out of range"),
              std::string::npos)
        << e.what();
  }
}

TEST(KernelContractDeathTest, NonIncreasingRepeatIndexTripsCheckedContract) {
  if (!contracts_active()) {
    GTEST_SKIP() << "library built without checked contracts";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  DownFixture f;
  DownArgs a = f.args();
  const std::uint32_t idx[4] = {0, 3, 2, 7};  // not strictly increasing
  a.site_index = idx;
  a.n_sites = DownFixture::kPatterns;
  EXPECT_DEATH(core::kernels(KernelVariant::kScalar).down(a, 0, 4),
               "strictly increasing");
}

/// Minimal valid tip×tip (cherry) argument pack: all 4-bit state codes in
/// range, pair tables sized for the full 16×16 mask space.
struct TipTipFixture {
  static constexpr std::size_t kPatterns = 8;
  static constexpr std::size_t kCats = 4;
  std::vector<phylo::StateMask> ml, mr;
  aligned_vector<float> pair, pair_scaled, ln, out, scaler;

  TipTipFixture()
      : ml(kPatterns, phylo::StateMask{1}),
        mr(kPatterns, phylo::StateMask{2}),
        pair(phylo::kNumMasks * phylo::kNumMasks * kCats * 4, 0.5f),
        pair_scaled(phylo::kNumMasks * phylo::kNumMasks * kCats * 4, 1.0f),
        ln(phylo::kNumMasks * phylo::kNumMasks, 0.0f),
        out(kPatterns * kCats * 4, 0.0f),
        scaler(kPatterns, 0.0f) {}

  core::TipTipArgs args() {
    core::TipTipArgs a;
    a.left_mask = ml.data();
    a.right_mask = mr.data();
    a.pair = pair.data();
    a.pair_scaled = pair_scaled.data();
    a.pair_ln = ln.data();
    a.out = out.data();
    a.K = kCats;
    a.table_categories = kCats;
    a.n_sites = kPatterns;
    return a;
  }
};

TEST(TipKernelContractTest, ValidTipTipGatherRuns) {
  TipTipFixture f;
  core::TipTipArgs a = f.args();
  core::kernels(KernelVariant::kScalar)
      .down_tt(a, 0, TipTipFixture::kPatterns);
  for (float x : f.out) EXPECT_GT(x, 0.0f);
}

TEST(TipKernelContractTest, PairTableCategoryMismatchThrows) {
  // PLF_CHECK, active in every build mode: a table built for a different K
  // would stride the gather wrong, so it is rejected at the trust boundary
  // rather than silently reading the wrong rows.
  TipTipFixture f;
  core::TipTipArgs a = f.args();
  a.table_categories = 2;
  EXPECT_THROW(core::kernels(KernelVariant::kScalar)
                   .down_tt(a, 0, TipTipFixture::kPatterns),
               Error);
}

TEST(TipKernelContractDeathTest, OutOfRangeTipStateCodeTripsCheckedContract) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  TipTipFixture f;
  // 16 is not a 4-bit ambiguity code; the gather would index a foreign row.
  f.ml[3] = static_cast<phylo::StateMask>(phylo::kNumMasks);
  core::TipTipArgs a = f.args();
  EXPECT_DEATH(core::detail::check_down_tt(a, 0, TipTipFixture::kPatterns),
               "tip-state code out of range");
}

TEST(FusedScaleContractDeathTest, NonAliasingScaleBlockIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  DownFixture f;
  DownArgs d = f.args();
  aligned_vector<float> other(DownFixture::kPatterns * DownFixture::kCats * 4);
  aligned_vector<float> scaler(DownFixture::kPatterns, 0.0f);
  core::ScaleArgs s;
  s.cl = other.data();  // some other node's CLV, not this op's down output
  s.ln_scaler = scaler.data();
  s.K = DownFixture::kCats;
  EXPECT_DEATH(core::detail::check_fused_scale(s, d.out, d.K, d.site_index),
               "must alias the down output");
}

TEST(FusedScaleContractDeathTest, FusedEntryRejectsForeignScaleBlock) {
  if (!contracts_active()) {
    GTEST_SKIP() << "library built without checked contracts";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  DownFixture f;
  DownArgs d = f.args();
  aligned_vector<float> other(DownFixture::kPatterns * DownFixture::kCats * 4);
  aligned_vector<float> scaler(DownFixture::kPatterns, 0.0f);
  core::ScaleArgs s;
  s.cl = other.data();
  s.ln_scaler = scaler.data();
  s.K = DownFixture::kCats;
  EXPECT_DEATH(core::kernels(KernelVariant::kScalar).down_scale(d, s, 0, 4),
               "contract violation");
}

/// Minimal storage for structurally valid PlfOps (check_plan inspects
/// pointers and counts, never the float contents).
struct PlanFixture {
  static constexpr std::size_t kPatterns = 8;
  aligned_vector<float> out{kPatterns * 4 * 4, 0.0f};
  aligned_vector<float> scaler{kPatterns, 0.0f};

  core::PlfOp op(int node, int left = phylo::kNoNode,
                 int right = phylo::kNoNode) {
    core::PlfOp o;
    o.node = node;
    o.left = left;
    o.right = right;
    o.args.down.out = out.data();
    o.args.down.K = 4;
    o.scale.cl = out.data();
    o.scale.ln_scaler = scaler.data();
    o.scale.K = 4;
    o.run_m = kPatterns;
    return o;
  }
};

// check_plan is header-inline, so this TU's PLF_CONTRACTS_CHECKED=1 gives the
// death paths regardless of how the library objects were built.
TEST(PlanContractTest, ValidLeveledPlanPasses) {
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  plan.add(f.op(1), 0);
  plan.add(f.op(2), 0);
  plan.add(f.op(3, 1, 2), 1);
  plan.finalize();
  EXPECT_NO_THROW(core::detail::check_plan(plan));
}

TEST(PlanContractDeathTest, UnfinalizedPlanIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  plan.add(f.op(1), 0);
  EXPECT_DEATH(core::detail::check_plan(plan), "must be finalized");
}

TEST(PlanContractDeathTest, SameLevelChildIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  plan.add(f.op(1), 0);
  plan.add(f.op(3, 1, phylo::kNoNode), 0);  // child 1 shares level 0
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan), "strictly earlier level");
}

TEST(PlanContractDeathTest, UnfusedScaleAliasIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  core::PlfOp op = f.op(1);
  op.scale.cl = f.out.data() + 16;  // scales some other node's CLV
  plan.add(op, 0);
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan),
               "must alias the op's down output");
}

TEST(PlanContractDeathTest, OversizedOpIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  core::PlfOp op = f.op(1);
  op.run_m = PlanFixture::kPatterns + 1;
  plan.add(op, 0);
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan), "exceeds pattern count");
}

TEST(PlanContractDeathTest, TipTipOpWritingForeignOutputIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  TipTipFixture t;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  core::PlfOp op = f.op(1);
  op.kind = core::PlfOpKind::kTipTip;
  op.tt = t.args();  // t.out != f.out: the gather would bypass the op's CLV
  plan.add(op, 0);
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan),
               "must write the op's down output");
}

TEST(PlanContractDeathTest, TipTipOpWithForeignTableStrideIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  TipTipFixture t;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  core::PlfOp op = f.op(1);
  op.kind = core::PlfOpKind::kTipTip;
  op.tt = t.args();
  op.tt.out = op.args.down.out;
  op.tt.table_categories = 2;  // stale table from a different model K
  plan.add(op, 0);
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan),
               "pair table built for a different K");
}

TEST(PlanContractDeathTest, NonCanonicalTipInnerOpIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  core::PlfOp op = f.op(1);
  op.kind = core::PlfOpKind::kTipInner;  // but left has no tip mask
  plan.add(op, 0);
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan), "canonicalized tip-left");
}

TEST(PlanContractDeathTest, SpecializedRootOpIsRejected) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PlanFixture f;
  core::PlfPlan plan;
  plan.reset(8, PlanFixture::kPatterns);
  core::PlfOp op = f.op(1);
  op.is_root = true;
  op.kind = core::PlfOpKind::kTipInner;
  plan.add(op, 0);
  plan.finalize();
  EXPECT_DEATH(core::detail::check_plan(plan), "generic three-way kernel");
}

// --- budgeted CLV arena contracts ------------------------------------------
//
// check_arena(arena) and check_arena(arena, plan) are header-inline, so this
// TU's PLF_CONTRACTS_CHECKED=1 arms their death paths regardless of how the
// library objects were built; the eviction-order DCHECK inside
// ClvArena::evict_slot_for_test lives in library code and is gated on
// contracts_active(). Each death additionally dumps the flight-recorder JSON
// — a crashed memory-constrained run must leave a parseable trace behind.

TEST(ArenaContractDeathTest, EvictedClvReachingAKernelAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = testing::TempDir() + "plf_flight_arena_read.json";
  std::remove(path.c_str());
  ::setenv("PLF_FLIGHT_PATH", path.c_str(), 1);

  EXPECT_DEATH(
      {
        obs::flight_record_span("arena.read.crash", 42, 7);
        core::ClvArena arena;
        constexpr std::size_t kFloats = 16;
        arena.init(4, kFloats, 2 * kFloats * sizeof(float));  // capacity: 2
        float* child = arena.acquire(0);
        float* out = arena.acquire(1);
        core::PlfPlan plan;
        plan.reset(4, 4);
        core::PlfOp op;
        op.node = 1;
        op.args.down.out = out;
        op.args.down.left.cl = child;
        op.run_m = 4;
        plan.add(op, 0);
        arena.acquire(2);  // evicts slot 0: op.left.cl now dangles
        core::detail::check_arena(arena, plan);
      },
      "kernel would read an evicted CLV pointer");

  const std::string json = read_file(path);
  ::unsetenv("PLF_FLIGHT_PATH");
  ASSERT_FALSE(json.empty()) << "death child did not write " << path;
  EXPECT_NE(json.find("\"schema\":\"plf-flight-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"contract-violation\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"arena.read.crash\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArenaContractDeathTest, EvictingAPinnedSlotAborts) {
  if (!contracts_active()) {
    GTEST_SKIP() << "library built without checked contracts";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = testing::TempDir() + "plf_flight_arena_pin.json";
  std::remove(path.c_str());
  ::setenv("PLF_FLIGHT_PATH", path.c_str(), 1);

  EXPECT_DEATH(
      {
        obs::flight_record_span("arena.pin.crash", 13, 3);
        core::ClvArena arena;
        constexpr std::size_t kFloats = 16;
        arena.init(4, kFloats, 2 * kFloats * sizeof(float));
        arena.acquire(0);
        arena.pin(0);  // pinned: the current evaluation still reads it
        arena.evict_slot_for_test(0);
      },
      "eviction order must respect pin state");

  const std::string json = read_file(path);
  ::unsetenv("PLF_FLIGHT_PATH");
  ASSERT_FALSE(json.empty()) << "death child did not write " << path;
  EXPECT_NE(json.find("\"reason\":\"contract-violation\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"arena.pin.crash\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArenaContractTest, ExhaustionThrowsWithActionableMessage) {
  // All-pinned exhaustion is a PLF_CHECK (always on, throwing): it crosses
  // the user-configuration trust boundary in every build mode, and the
  // message must tell the operator what to do about it.
  core::ClvArena arena;
  constexpr std::size_t kFloats = 16;
  arena.init(4, kFloats, 1 * kFloats * sizeof(float));  // capacity: 1
  arena.acquire(0);
  arena.pin(0);
  try {
    arena.acquire(1);
    FAIL() << "acquire past an all-pinned budget did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("clv arena exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("raise --clv-budget"), std::string::npos) << what;
  }
}

TEST(ArenaContractDeathTest, UncaughtExhaustionDumpsViaTerminateHook) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      testing::TempDir() + "plf_flight_arena_exhausted.json";
  std::remove(path.c_str());
  ::setenv("PLF_FLIGHT_PATH", path.c_str(), 1);

  EXPECT_DEATH(
      {
        obs::install_flight_handlers();
        obs::flight_record_span("arena.exhausted.crash", 99, 1);
        core::ClvArena arena;
        constexpr std::size_t kFloats = 16;
        arena.init(4, kFloats, 1 * kFloats * sizeof(float));
        arena.acquire(0);
        arena.pin(0);
        // noexcept boundary (a backend worker, say): the exhaustion throw
        // cannot escape, so the process terminates and the hook dumps.
        [&arena]() noexcept { arena.acquire(1); }();
      },
      "\"name\":\"arena\\.exhausted\\.crash\"");

  const std::string json = read_file(path);
  ::unsetenv("PLF_FLIGHT_PATH");
  ASSERT_FALSE(json.empty()) << "death child did not write " << path;
  EXPECT_NE(json.find("\"schema\":\"plf-flight-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"terminate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"arena.exhausted.crash\""),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plf
