// Checkpoint/restore round-trip property tests (docs/SHARDING.md).
//
// The contract under test is exact resumption: serialize a running
// engine+chain (or a whole coupled run), restore into a freshly constructed
// twin, continue both, and every subsequent log likelihood matches to the
// LAST BIT (0 ULP) — across backends, dispatch modes, and the budgeted CLV
// arena, whose evicted vectors are rematerialized rather than serialized.
// Anything weaker would make a resumed run a different run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/coupled.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::mcmc {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

struct Combo {
  const char* name;
  bool threaded;
  core::DispatchMode dispatch;
  const char* budget;  // nullptr: unlimited
};

constexpr Combo kCombos[] = {
    {"serial/percall/unlimited", false, core::DispatchMode::kPerCall, nullptr},
    {"serial/plan/unlimited", false, core::DispatchMode::kPlan, nullptr},
    {"threaded/percall/unlimited", true, core::DispatchMode::kPerCall,
     nullptr},
    {"threaded/plan/unlimited", true, core::DispatchMode::kPlan, nullptr},
    {"serial/percall/0.5", false, core::DispatchMode::kPerCall, "0.5"},
    {"serial/plan/0.5", false, core::DispatchMode::kPlan, "0.5"},
    {"threaded/percall/0.5", true, core::DispatchMode::kPerCall, "0.5"},
    {"threaded/plan/0.5", true, core::DispatchMode::kPlan, "0.5"},
};

TEST(CheckpointTest, EngineChainRoundTripResumesBitExact) {
  par::ThreadPool pool(4);
  core::ThreadedBackend threaded(pool);
  core::SerialBackend serial;
  const Instance inst = make_instance(10, 300, 91);

  for (const Combo& c : kCombos) {
    SCOPED_TRACE(c.name);
    core::ExecutionBackend& backend = c.threaded
                                          ? static_cast<core::ExecutionBackend&>(threaded)
                                          : serial;
    const core::ClvBudget budget = c.budget == nullptr
                                       ? core::ClvBudget{}
                                       : core::clv_budget_from_string(c.budget);
    const auto make_engine = [&] {
      return std::make_unique<core::PlfEngine>(
          inst.data, inst.params, inst.tree, backend,
          core::KernelVariant::kSimdCol, core::SiteRepeatsMode::kOn,
          c.dispatch, budget);
    };
    McmcOptions mo;
    mo.seed = 33;
    mo.w_pinv = 0.0;
    mo.w_spr = 1.0;  // exercise topology state in the checkpoint

    auto ea = make_engine();
    McmcChain ca(*ea, mo);
    for (int g = 0; g < 40; ++g) ca.step();
    const double lnl_at_checkpoint = ca.ln_likelihood();

    // Checkpoint mid-run (some steps were rejects, so the scaler-resum flag
    // and flipped buffers are in a nontrivial state).
    std::ostringstream os;
    {
      util::BinaryWriter w(os);
      ea->save_state(w);
      ca.save_state(w);
    }

    // Continue the original and record its trajectory.
    std::vector<double> trajectory;
    for (int g = 0; g < 40; ++g) {
      ca.step();
      trajectory.push_back(ca.ln_likelihood());
    }

    // Restore into a freshly constructed twin and replay.
    auto eb = make_engine();
    McmcChain cb(*eb, mo);
    std::istringstream is(os.str());
    {
      util::BinaryReader r(is);
      eb->restore_state(r);
      cb.restore_state(r);
    }
    EXPECT_EQ(cb.ln_likelihood(), lnl_at_checkpoint);
    EXPECT_EQ(cb.generation(), 40u);
    // The restored engine re-evaluates to the checkpointed likelihood
    // without stepping (CLVs, scalers, and the resum flag all round-trip).
    EXPECT_EQ(eb->log_likelihood(), lnl_at_checkpoint);

    for (int g = 0; g < 40; ++g) {
      cb.step();
      ASSERT_EQ(cb.ln_likelihood(), trajectory[static_cast<std::size_t>(g)])
          << "diverged at resumed generation " << g;
    }
    EXPECT_EQ(eb->tree().to_newick(), ea->tree().to_newick());
    EXPECT_EQ(eb->model_params().gamma_shape, ea->model_params().gamma_shape);
  }
}

TEST(CheckpointTest, RestoredEngineEvaluatesCheckpointedLikelihood) {
  // Without any further steps, a restored engine's full re-evaluation must
  // reproduce the exact cached likelihood the checkpoint recorded.
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 200, 92);
  core::PlfEngine a(inst.data, inst.params, inst.tree, backend);
  McmcOptions mo;
  mo.seed = 7;
  McmcChain chain(a, mo);
  for (int g = 0; g < 25; ++g) chain.step();
  const double at_checkpoint = a.log_likelihood();

  std::ostringstream os;
  {
    util::BinaryWriter w(os);
    a.save_state(w);
  }
  core::PlfEngine b(inst.data, inst.params, inst.tree, backend);
  std::istringstream is(os.str());
  {
    util::BinaryReader r(is);
    b.restore_state(r);
  }
  EXPECT_EQ(b.log_likelihood(), at_checkpoint);
  // Force a full recompute from the restored CLV/scaler state: a branch
  // wiggle and its exact undo must land back on the same bits.
  const int leaf = b.tree().leaf_of(0);
  const double len = b.tree().branch_length(leaf);
  b.set_branch_length(leaf, len * 2.0);
  (void)b.log_likelihood();
  b.set_branch_length(leaf, len);
  EXPECT_EQ(b.log_likelihood(), at_checkpoint);
}

TEST(CheckpointTest, RestoreRejectsMismatchedShape) {
  core::SerialBackend backend;
  const Instance small = make_instance(6, 100, 93);
  const Instance big = make_instance(9, 100, 94);
  core::PlfEngine a(small.data, small.params, small.tree, backend);
  std::ostringstream os;
  {
    util::BinaryWriter w(os);
    a.save_state(w);
  }
  core::PlfEngine b(big.data, big.params, big.tree, backend);
  std::istringstream is(os.str());
  util::BinaryReader r(is);
  EXPECT_THROW(b.restore_state(r), Error);
}

TEST(CheckpointTest, SaveDuringOpenProposalThrows) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 100, 95);
  core::PlfEngine a(inst.data, inst.params, inst.tree, backend);
  (void)a.log_likelihood();
  a.begin_proposal();
  std::ostringstream os;
  util::BinaryWriter w(os);
  EXPECT_THROW(a.save_state(w), Error);
  a.reject();
}

std::vector<std::unique_ptr<core::PlfEngine>> make_engines(
    const Instance& inst, core::ExecutionBackend& backend, std::size_t n) {
  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (std::size_t i = 0; i < n; ++i) {
    engines.push_back(std::make_unique<core::PlfEngine>(
        inst.data, inst.params, inst.tree, backend));
  }
  return engines;
}

TEST(CheckpointTest, CoupledRunResumesBitExact) {
  // Interrupt a 4-chain MC3 run at generation 150 of 300 via an in-memory
  // checkpoint; the resumed half must land on the same final likelihoods,
  // trees, and swap counters as the uninterrupted run.
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 150, 96);
  CoupledOptions opts;
  opts.chain.seed = 17;
  opts.swap_every = 5;

  CoupledChains full(make_engines(inst, backend, 4), opts);
  CoupledChains a(make_engines(inst, backend, 4), opts);
  const auto full_result = full.run(300);

  a.run(150);
  std::ostringstream os;
  a.save_checkpoint(os);

  CoupledChains b(make_engines(inst, backend, 4), opts);
  std::istringstream is(os.str());
  b.restore_checkpoint(is);
  EXPECT_EQ(b.generation(), 150u);
  const auto resumed = b.run(300);

  EXPECT_EQ(resumed.cold.final_ln_likelihood,
            full_result.cold.final_ln_likelihood);
  EXPECT_EQ(resumed.cold.final_tree_newick,
            full_result.cold.final_tree_newick);
  EXPECT_EQ(resumed.swaps_proposed, full_result.swaps_proposed);
  EXPECT_EQ(resumed.swaps_accepted, full_result.swaps_accepted);
  ASSERT_EQ(resumed.final_ln_likelihoods.size(),
            full_result.final_ln_likelihoods.size());
  for (std::size_t i = 0; i < resumed.final_ln_likelihoods.size(); ++i) {
    EXPECT_EQ(resumed.final_ln_likelihoods[i],
              full_result.final_ln_likelihoods[i])
        << "heat rank " << i;
  }
}

TEST(CheckpointTest, CoupledCheckpointFileRoundTripAndAtomicRename) {
  core::SerialBackend backend;
  const Instance inst = make_instance(8, 150, 97);
  const std::string path =
      ::testing::TempDir() + "plf_checkpoint_test.ckpt";
  CoupledOptions opts;
  opts.chain.seed = 23;
  opts.swap_every = 5;
  opts.checkpoint_every = 50;
  opts.checkpoint_path = path;

  CoupledChains a(make_engines(inst, backend, 3), opts);
  const auto full_result = a.run(200);
  // The periodic writer went through the tmp+rename protocol: the final
  // checkpoint (generation 200) is in place, the tmp file is not.
  {
    std::ifstream ckpt(path, std::ios::binary);
    EXPECT_TRUE(ckpt.good());
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
  }

  CoupledOptions resume_opts = opts;
  resume_opts.checkpoint_every = 0;  // don't overwrite while verifying
  CoupledChains b(make_engines(inst, backend, 3), resume_opts);
  b.restore_checkpoint_file(path);
  EXPECT_EQ(b.generation(), 200u);
  const auto resumed = b.run(400);

  CoupledOptions straight_opts = resume_opts;
  CoupledChains c(make_engines(inst, backend, 3), straight_opts);
  const auto straight = c.run(400);
  EXPECT_EQ(resumed.cold.final_ln_likelihood,
            straight.cold.final_ln_likelihood);
  EXPECT_EQ(resumed.cold.final_tree_newick, straight.cold.final_tree_newick);
  EXPECT_EQ(resumed.swaps_accepted, straight.swaps_accepted);
  (void)full_result;
  std::remove(path.c_str());
}

TEST(CheckpointTest, CoupledRestoreRejectsWrongChainCount) {
  core::SerialBackend backend;
  const Instance inst = make_instance(6, 100, 98);
  CoupledOptions opts;
  opts.chain.seed = 29;
  CoupledChains a(make_engines(inst, backend, 3), opts);
  a.run(20);
  std::ostringstream os;
  a.save_checkpoint(os);

  CoupledChains b(make_engines(inst, backend, 2), opts);
  std::istringstream is(os.str());
  EXPECT_THROW(b.restore_checkpoint(is), Error);
}

}  // namespace
}  // namespace plf::mcmc
