#include <gtest/gtest.h>

#include <sstream>

#include "phylo/nexus.hpp"
#include "phylo/tree.hpp"
#include "util/error.hpp"

namespace plf::phylo {
namespace {

const char* kBasic = R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=8;
  FORMAT DATATYPE=DNA MISSING=? GAP=-;
  MATRIX
    human   ACGTACGT
    chimp   ACGTACGA
    gorilla ACG-ACGA
  ;
END;
)";

TEST(NexusTest, ParsesBasicDataBlock) {
  const NexusFile nx = parse_nexus(kBasic);
  ASSERT_TRUE(nx.has_alignment);
  EXPECT_EQ(nx.alignment.n_taxa(), 3u);
  EXPECT_EQ(nx.alignment.n_columns(), 8u);
  EXPECT_EQ(nx.alignment.name(0), "human");
  EXPECT_EQ(nx.alignment.sequence(1), "ACGTACGA");
  EXPECT_EQ(nx.alignment.at(2, 3), kGapMask);
  EXPECT_TRUE(nx.trees.empty());
}

TEST(NexusTest, CaseInsensitiveKeywordsAndComments) {
  const char* text = R"(#nexus
[ a file comment
spanning lines ]
begin data;
  dimensions ntax=2 nchar=4;
  format datatype=dna;
  matrix
    a ACGT [inline comment]
    b TGCA
  ;
end;
)";
  const NexusFile nx = parse_nexus(text);
  EXPECT_EQ(nx.alignment.n_taxa(), 2u);
  EXPECT_EQ(nx.alignment.sequence(0), "ACGT");
}

TEST(NexusTest, InterleavedMatrix) {
  const char* text = R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=8;
  FORMAT DATATYPE=DNA INTERLEAVE=YES;
  MATRIX
    x ACGT
    y TTTT
    x ACGA
    y CCCC
  ;
END;
)";
  const NexusFile nx = parse_nexus(text);
  EXPECT_EQ(nx.alignment.sequence(0), "ACGTACGA");
  EXPECT_EQ(nx.alignment.sequence(1), "TTTTCCCC");
}

TEST(NexusTest, TreesBlockWithTranslate) {
  const char* text = R"(#NEXUS
BEGIN TREES;
  TRANSLATE
    1 human,
    2 chimp,
    3 gorilla,
    4 orang;
  TREE best = [&U] ((1:0.1,2:0.2):0.05,3:0.3,4:0.4);
  TREE alt = (1:1,3:1,(2:1,4:1):1);
END;
)";
  const NexusFile nx = parse_nexus(text);
  ASSERT_EQ(nx.trees.size(), 2u);
  EXPECT_EQ(nx.trees[0].first, "best");
  const Tree t = Tree::from_newick(nx.trees[0].second);
  EXPECT_EQ(t.n_taxa(), 4u);
  EXPECT_EQ(t.taxon_name(0), "human");
  EXPECT_NEAR(t.total_length(), 1.05, 1e-9);
  const Tree alt = Tree::from_newick(nx.trees[1].second, t.taxon_names());
  EXPECT_FALSE(t.same_topology(alt));
}

TEST(NexusTest, DataAndTreesTogether) {
  const std::string text = std::string(kBasic) + R"(
BEGIN TREES;
  TREE t1 = (human:0.1,chimp:0.1,gorilla:0.2);
END;
)";
  const NexusFile nx = parse_nexus(text);
  EXPECT_TRUE(nx.has_alignment);
  ASSERT_EQ(nx.trees.size(), 1u);
  const Tree t = Tree::from_newick(nx.trees[0].second, nx.alignment.names());
  EXPECT_EQ(t.n_taxa(), 3u);
}

TEST(NexusTest, UnknownBlocksSkipped) {
  const std::string full =
      "#NEXUS\nBEGIN MRBAYES;\n  set autoclose=yes;\n  mcmc ngen=1000;\nEND;\n"
      "BEGIN DATA;\n DIMENSIONS NTAX=2 NCHAR=2;\n FORMAT DATATYPE=DNA;\n"
      " MATRIX\n  a AC\n  b GT\n ;\nEND;\n";
  const NexusFile nx = parse_nexus(full);
  EXPECT_EQ(nx.alignment.n_taxa(), 2u);
}

TEST(NexusTest, Errors) {
  EXPECT_THROW(parse_nexus("BEGIN DATA; END;"), ParseError);  // no #NEXUS
  EXPECT_THROW(parse_nexus("#NEXUS\nBEGIN DATA;\nMATRIX\n a AC\n"),
               ParseError);  // unterminated
  EXPECT_THROW(parse_nexus("#NEXUS\n[unclosed comment"), ParseError);
  // NTAX mismatch.
  EXPECT_THROW(parse_nexus("#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=3 NCHAR=2;\n"
                           "MATRIX\n a AC\n b GT\n;\nEND;\n"),
               Error);
  // Protein data unsupported.
  EXPECT_THROW(parse_nexus("#NEXUS\nBEGIN DATA;\nFORMAT DATATYPE=PROTEIN;\n"
                           "MATRIX\n a AC\n;\nEND;\n"),
               ParseError);
}

TEST(NexusTest, WriteReadRoundTrip) {
  Alignment aln({"tax1", "tax2", "tax3"}, {"ACGTAC", "AC--AC", "ANRYAC"});
  std::vector<std::pair<std::string, std::string>> trees{
      {"sample", "(tax1:0.1,tax2:0.2,tax3:0.3);"}};
  std::ostringstream os;
  write_nexus(os, aln, trees);

  const NexusFile nx = parse_nexus(os.str());
  ASSERT_TRUE(nx.has_alignment);
  EXPECT_EQ(nx.alignment.n_taxa(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(nx.alignment.sequence(t), aln.sequence(t));
  }
  ASSERT_EQ(nx.trees.size(), 1u);
  const Tree t = Tree::from_newick(nx.trees[0].second, aln.names());
  EXPECT_NEAR(t.total_length(), 0.6, 1e-9);
}

}  // namespace
}  // namespace plf::phylo
