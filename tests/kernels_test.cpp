#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include "core/kernels.hpp"
#include "core/tip_partial.hpp"
#include "phylo/model.hpp"
#include "test_support.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace plf::core {
namespace {

using phylo::GtrParams;
using phylo::SubstitutionModel;
using phylo::TransitionMatrices;

struct KernelFixture {
  std::size_t m;
  std::size_t K;
  Rng rng{12345};

  TransitionMatrices tm_l, tm_r, tm_o;
  TipPartial tp_l, tp_r, tp_o;
  aligned_vector<float> cl_l, cl_r;
  std::vector<phylo::StateMask> mask_l, mask_r, mask_o;

  KernelFixture(std::size_t m_, std::size_t K_) : m(m_), K(K_) {
    GtrParams p = test::random_gtr(rng, K);
    SubstitutionModel model(p);
    tm_l = model.transition_matrices(0.12);
    tm_r = model.transition_matrices(0.31);
    tm_o = model.transition_matrices(0.07);
    tp_l = TipPartial(tm_l);
    tp_r = TipPartial(tm_r);
    tp_o = TipPartial(tm_o);
    cl_l = test::random_cl(m, K, rng);
    cl_r = test::random_cl(m, K, rng);
    mask_l = test::random_masks(m, rng);
    mask_r = test::random_masks(m, rng);
    mask_o = test::random_masks(m, rng);
  }

  ChildArgs child(bool tip, bool left) const {
    ChildArgs ch;
    const auto& tm = left ? tm_l : tm_r;
    ch.p = tm.row_major();
    ch.pt = tm.col_major();
    if (tip) {
      ch.mask = (left ? mask_l : mask_r).data();
      ch.tp = (left ? tp_l : tp_r).data();
    } else {
      ch.cl = (left ? cl_l : cl_r).data();
    }
    return ch;
  }
};

void expect_close(const aligned_vector<float>& a, const aligned_vector<float>& b,
                  float rel = 2e-5f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float tol = rel * std::max(1.0f, std::abs(b[i]));
    ASSERT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

using VariantParam = std::tuple<KernelVariant, std::size_t /*K*/,
                                std::size_t /*m*/, bool /*ltip*/, bool /*rtip*/>;

class DownKernelTest : public ::testing::TestWithParam<VariantParam> {};

TEST_P(DownKernelTest, MatchesScalarReference) {
  const auto [variant, K, m, ltip, rtip] = GetParam();
  KernelFixture fx(m, K);

  DownArgs args;
  args.left = fx.child(ltip, true);
  args.right = fx.child(rtip, false);
  args.K = K;

  aligned_vector<float> out_ref(m * K * 4), out_var(m * K * 4);
  args.out = out_ref.data();
  kernels(KernelVariant::kScalar).down(args, 0, m);
  args.out = out_var.data();
  kernels(variant).down(args, 0, m);
  expect_close(out_var, out_ref);
}

TEST_P(DownKernelTest, RangeSplitEqualsWholeRange) {
  const auto [variant, K, m, ltip, rtip] = GetParam();
  KernelFixture fx(m, K);

  DownArgs args;
  args.left = fx.child(ltip, true);
  args.right = fx.child(rtip, false);
  args.K = K;

  aligned_vector<float> whole(m * K * 4), split(m * K * 4);
  args.out = whole.data();
  kernels(variant).down(args, 0, m);
  args.out = split.data();
  // Process in three uneven chunks: identical result required (this is the
  // property every backend partitioning relies on).
  kernels(variant).down(args, 0, m / 3);
  kernels(variant).down(args, m / 3, m / 2 + 1);
  kernels(variant).down(args, m / 2 + 1, m);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    ASSERT_EQ(whole[i], split[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, DownKernelTest,
    ::testing::Combine(
        ::testing::Values(KernelVariant::kSimdRow, KernelVariant::kSimdCol,
                          KernelVariant::kSimdCol8),
        ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u),
        ::testing::Values(1u, 7u, 64u, 193u),
        ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<VariantParam>& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_K" + std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_Lt" : "_Li") +
             (std::get<4>(info.param) ? "_Rt" : "_Ri");
    });

using RootParam = std::tuple<KernelVariant, std::size_t, bool, bool>;
class RootKernelTest : public ::testing::TestWithParam<RootParam> {};

TEST_P(RootKernelTest, MatchesScalarReference) {
  const auto [variant, K, ltip, rtip] = GetParam();
  const std::size_t m = 111;
  KernelFixture fx(m, K);

  RootArgs args;
  args.down.left = fx.child(ltip, true);
  args.down.right = fx.child(rtip, false);
  args.down.K = K;
  args.out_mask = fx.mask_o.data();
  args.out_tp = fx.tp_o.data();

  aligned_vector<float> out_ref(m * K * 4), out_var(m * K * 4);
  args.down.out = out_ref.data();
  kernels(KernelVariant::kScalar).root(args, 0, m);
  args.down.out = out_var.data();
  kernels(variant).root(args, 0, m);
  expect_close(out_var, out_ref);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, RootKernelTest,
    ::testing::Combine(
        ::testing::Values(KernelVariant::kSimdRow, KernelVariant::kSimdCol,
                          KernelVariant::kSimdCol8),
        ::testing::Values(1u, 4u, 5u), ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<RootParam>& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_K" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_Lt" : "_Li") +
             (std::get<3>(info.param) ? "_Rt" : "_Ri");
    });

class ScaleKernelTest
    : public ::testing::TestWithParam<std::tuple<KernelVariant, std::size_t>> {};

TEST_P(ScaleKernelTest, NormalizesToUnitMaxAndRecordsLog) {
  const auto [variant, K] = GetParam();
  const std::size_t m = 97;
  Rng rng(5);
  aligned_vector<float> cl = test::random_cl(m, K, rng, 1e-6f, 0.3f);
  aligned_vector<float> original = cl;
  aligned_vector<float> ln_scaler(m, -1.0f);

  ScaleArgs args{cl.data(), ln_scaler.data(), K};
  kernels(variant).scale(args, 0, m);

  for (std::size_t c = 0; c < m; ++c) {
    float mx = 0.0f;
    float mx_orig = 0.0f;
    for (std::size_t v = 0; v < K * 4; ++v) {
      mx = std::max(mx, cl[c * K * 4 + v]);
      mx_orig = std::max(mx_orig, original[c * K * 4 + v]);
    }
    EXPECT_NEAR(mx, 1.0f, 1e-6f);
    EXPECT_NEAR(ln_scaler[c], std::log(mx_orig), 1e-5f);
    // Ratios preserved.
    for (std::size_t v = 0; v < K * 4; ++v) {
      EXPECT_NEAR(cl[c * K * 4 + v] * mx_orig, original[c * K * 4 + v],
                  2e-6f * mx_orig);
    }
  }
}

TEST_P(ScaleKernelTest, AllZeroSiteLeftIntact) {
  const auto [variant, K] = GetParam();
  const std::size_t m = 3;
  aligned_vector<float> cl(m * K * 4, 0.0f);
  cl[1 * K * 4 + 2] = 0.5f;  // only site 1 has signal
  aligned_vector<float> ln_scaler(m, 99.0f);
  ScaleArgs args{cl.data(), ln_scaler.data(), K};
  kernels(variant).scale(args, 0, m);
  EXPECT_EQ(ln_scaler[0], 0.0f);
  EXPECT_EQ(ln_scaler[2], 0.0f);
  EXPECT_NEAR(ln_scaler[1], std::log(0.5f), 1e-6f);
  EXPECT_EQ(cl[0], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ScaleKernelTest,
    ::testing::Combine(::testing::Values(KernelVariant::kScalar,
                                         KernelVariant::kSimdRow,
                                         KernelVariant::kSimdCol,
                                         KernelVariant::kSimdCol8),
                       ::testing::Values(1u, 3u, 4u, 8u)));

TEST(RootReduceTest, VariantsAgreeWithScalar) {
  const std::size_t m = 301, K = 4;
  Rng rng(9);
  aligned_vector<float> cl = test::random_cl(m, K, rng);
  std::vector<double> scaler(m);
  std::vector<std::uint32_t> weights(m);
  for (std::size_t c = 0; c < m; ++c) {
    scaler[c] = rng.uniform(-3.0, 0.0);
    weights[c] = static_cast<std::uint32_t>(1 + rng.below(10));
  }
  RootReduceArgs args;
  args.cl = cl.data();
  args.ln_scaler_total = scaler.data();
  args.weights = weights.data();
  args.K = K;
  const float pis[4] = {0.3f, 0.2f, 0.26f, 0.24f};
  for (int i = 0; i < 4; ++i) args.pi[i] = pis[i];

  const double ref = kernels(KernelVariant::kScalar).root_reduce(args, 0, m);
  for (auto v : {KernelVariant::kSimdRow, KernelVariant::kSimdCol,
                 KernelVariant::kSimdCol8}) {
    const double got = kernels(v).root_reduce(args, 0, m);
    EXPECT_NEAR(got, ref, std::abs(ref) * 1e-5);
  }
}

TEST(RootReduceTest, PartialSumsCompose) {
  const std::size_t m = 100, K = 4;
  Rng rng(10);
  aligned_vector<float> cl = test::random_cl(m, K, rng);
  std::vector<double> scaler(m, 0.0);
  std::vector<std::uint32_t> weights(m, 1);
  RootReduceArgs args;
  args.cl = cl.data();
  args.ln_scaler_total = scaler.data();
  args.weights = weights.data();
  args.K = K;

  const auto& ks = kernels(KernelVariant::kScalar);
  const double whole = ks.root_reduce(args, 0, m);
  const double parts = ks.root_reduce(args, 0, 33) +
                       ks.root_reduce(args, 33, 71) +
                       ks.root_reduce(args, 71, m);
  EXPECT_NEAR(whole, parts, 1e-9);
}

TEST(RootReduceTest, WeightsScaleContribution) {
  const std::size_t K = 4;
  Rng rng(11);
  aligned_vector<float> cl = test::random_cl(1, K, rng);
  std::vector<double> scaler(1, -1.25);
  RootReduceArgs args;
  args.cl = cl.data();
  args.ln_scaler_total = scaler.data();
  args.K = K;
  std::vector<std::uint32_t> w1{1}, w5{5};
  args.weights = w1.data();
  const double a = kernels(KernelVariant::kScalar).root_reduce(args, 0, 1);
  args.weights = w5.data();
  const double b = kernels(KernelVariant::kScalar).root_reduce(args, 0, 1);
  EXPECT_NEAR(b, 5.0 * a, 1e-12);
}

TEST(TipPartialTest, MatchesManualSum) {
  Rng rng(3);
  SubstitutionModel model(test::random_gtr(rng, 4));
  const TransitionMatrices tm = model.transition_matrices(0.2);
  const TipPartial tp(tm);
  for (std::size_t mask = 1; mask < phylo::kNumMasks; ++mask) {
    for (std::size_t k = 0; k < 4; ++k) {
      for (std::size_t i = 0; i < 4; ++i) {
        float expect = 0.0f;
        for (std::size_t j = 0; j < 4; ++j) {
          if ((mask >> j) & 1u) expect += tm.row_major()[k * 16 + i * 4 + j];
        }
        EXPECT_FLOAT_EQ(tp.data()[mask * 16 + k * 4 + i], expect);
      }
    }
  }
}

TEST(TipPartialTest, GapMaskGivesRowSumsNearOne) {
  // For the full-gap mask the partial is the row sum of P, which is 1.
  Rng rng(4);
  SubstitutionModel model(test::random_gtr(rng, 4));
  const TipPartial tp(model.transition_matrices(0.5));
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(tp.data()[15 * 16 + k * 4 + i], 1.0f, 1e-5f);
    }
  }
}

TEST(KernelMetaTest, VariantNamesDistinct) {
  std::set<std::string> names;
  for (auto v : {KernelVariant::kScalar, KernelVariant::kSimdRow,
                 KernelVariant::kSimdCol, KernelVariant::kSimdCol8}) {
    names.insert(to_string(v));
    EXPECT_EQ(kernels(v).variant, v);
  }
  EXPECT_EQ(names.size(), 4u);
}

TEST(KernelMetaTest, FlopCountPositiveAndLinearInK) {
  EXPECT_GT(down_flops_per_pattern(1), 0.0);
  EXPECT_DOUBLE_EQ(down_flops_per_pattern(8), 2.0 * down_flops_per_pattern(4));
}

}  // namespace
}  // namespace plf::core
