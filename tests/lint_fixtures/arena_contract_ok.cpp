// Known-good companion for the arena-contract rule: every mutating entry
// point re-validates the arena invariants before returning.
#include "core/clv_arena.hpp"

#include "core/kernel_contracts.hpp"

namespace plf::core {

float* ClvArena::acquire(int slot) {
  checker_.check();
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (!s.resident) {
    while (resident_count_ >= capacity_slots_) evict_one();
    s.cl.assign(slot_floats_, 0.0f);
    s.resident = true;
    ++resident_count_;
  } else {
    lru_unlink(slot);
  }
  lru_push_mru(slot);
  detail::check_arena(*this);
  return s.cl.data();
}

void ClvArena::pin(int slot) {
  checker_.check();
  ++slots_[static_cast<std::size_t>(slot)].pin_count;
  detail::check_arena(*this);
}

bool ClvArena::resident(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].resident;
}

}  // namespace plf::core
