// Known-bad fixture for plf_lint rule kernel-contract: a kernel entry taking
// DownArgs that never calls detail::check_down / check_down_aligned.
// Linted as if at src/core/kernels_bad.cpp; never compiled.
#include "core/kernels.hpp"

namespace plf::core {

void down_bad(const DownArgs& a, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    a.cl_out[i] = 0;
  }
}

}  // namespace plf::core
