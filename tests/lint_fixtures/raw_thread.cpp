// Known-bad fixture for plf_lint rule raw-thread: spawning std::thread
// outside src/par/. Linted as if at src/mcmc/spawn_bad.cpp; never compiled.
#include <thread>

void spawn_unpooled() {
  std::thread worker([] {});
  worker.join();
}
