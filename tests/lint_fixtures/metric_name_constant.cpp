// Known-bad fixture for plf_lint rule prof-name-constant (registry form): a
// metric interned straight from an ad-hoc string literal instead of an
// obs::k* constant from src/obs/names.hpp. Linted as if under src/; never
// compiled.
#include "obs/metrics.hpp"

void publish(plf::obs::MetricsRegistry& registry) {
  registry.set_gauge(registry.gauge("adhoc.gauge.name"), 1.0);
}
