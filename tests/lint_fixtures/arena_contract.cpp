// Known-bad fixture for the arena-contract rule: a mutating ClvArena entry
// point that returns without re-validating the budget/LRU invariants.
#include "core/clv_arena.hpp"

namespace plf::core {

float* ClvArena::acquire(int slot) {
  checker_.check();
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.resident) {
    lru_unlink(slot);
    lru_push_mru(slot);
    return s.cl.data();  // BAD: exits without check_arena(*this)
  }
  while (resident_count_ >= capacity_slots_) evict_one();
  s.cl.assign(slot_floats_, 0.0f);
  s.resident = true;
  lru_push_mru(slot);
  ++resident_count_;
  return s.cl.data();  // BAD: miss path also skips the invariant check
}

// Non-mutating accessors are exempt: the rule targets eviction-state writers.
bool ClvArena::resident(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].resident;
}

}  // namespace plf::core
