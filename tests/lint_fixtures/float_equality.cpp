// Known-bad fixture for plf_lint rule float-equality: raw == on doubles in
// numeric code. Linted as if at src/numerics/conv_bad.cpp; never compiled.
bool converged(double previous, double current) {
  return previous == current;
}
