// Known-bad fixture for plf_lint rule checkpoint-serializer: dumping engine
// state as a raw struct through a stream instead of the versioned
// util::BinaryWriter format. Linted as if at src/mcmc/ckpt_bad.cpp; never
// compiled.
#include <ostream>

struct ChainState {
  unsigned long long generation;
  double ln_lik;
};

void dump_state(std::ostream& os, const ChainState& st) {
  os.write(reinterpret_cast<const char*>(&st), sizeof(st));
}
