// Known-good companion for rule kernel-contract: the same entry shape with
// the contract check in place must NOT fire. Never compiled.
#include "core/kernels.hpp"

namespace plf::core {

void down_ok(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down(a, begin, end, false);
  for (std::size_t i = begin; i < end; ++i) {
    a.cl_out[i] = 0;
  }
}

void down_ti_ok(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, false);
  for (std::size_t i = begin; i < end; ++i) {
    a.cl_out[i] = 0;
  }
}

void down_tt_ok(const TipTipArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down_tt(a, begin, end);
  for (std::size_t i = begin; i < end; ++i) {
    a.out[i] = 0;
  }
}

}  // namespace plf::core
