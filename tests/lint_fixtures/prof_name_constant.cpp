// Known-bad fixture for plf_lint rule prof-name-constant: a PLF_PROF_SCOPE
// name given as an ad-hoc string literal instead of an interned obs::k*
// constant. Linted as if under src/; never compiled.
#include "obs/profile.hpp"

void hot_path() {
  PLF_PROF_SCOPE("adhoc.span.name");
}
