// Known-good companion for plf_lint rule checkpoint-serializer: state goes
// through the versioned util::BinaryWriter, and plain text stream writes are
// not binary dumps. Linted as if at src/mcmc/ckpt_ok.cpp; never compiled.
#include <ostream>
#include <string>

namespace util {
struct BinaryWriter {
  explicit BinaryWriter(std::ostream& os);
  void u64(unsigned long long v);
  void f64(double v);
  void str(const std::string& s);
};
}  // namespace util

struct ChainState {
  unsigned long long generation;
  double ln_lik;
};

void save_state(std::ostream& os, const ChainState& st) {
  util::BinaryWriter w(os);
  w.u64(st.generation);
  w.f64(st.ln_lik);
}

void write_report(std::ostream& os, const std::string& text) {
  os.write(text.data(), static_cast<long>(text.size()));
}
