// Known-bad fixture for plf_lint rule atomic-memory-order: an RMW on a
// std::atomic relying on the implicit seq_cst default. Linted as if under
// src/; never compiled.
#include <atomic>

std::atomic<int> g_counter{0};

int bump() {
  return g_counter.fetch_add(1);
}
