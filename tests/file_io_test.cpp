// On-disk I/O paths (the string-based parsers are covered elsewhere):
// Alignment::read_file format sniffing and read_nexus_file, including the
// bundled sample data set when running from the repository root.
#include <gtest/gtest.h>

#include <fstream>

#include "phylo/alignment.hpp"
#include "phylo/nexus.hpp"
#include "util/error.hpp"

namespace plf::phylo {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
}

TEST(FileIoTest, ReadFileSniffsFasta) {
  const std::string path = temp_path("sniff.fasta");
  write_file(path, "  \n>alpha\nACGT\n>beta\nTGCA\n");
  const Alignment a = Alignment::read_file(path);
  EXPECT_EQ(a.n_taxa(), 2u);
  EXPECT_EQ(a.sequence(0), "ACGT");
}

TEST(FileIoTest, ReadFileSniffsPhylip) {
  const std::string path = temp_path("sniff.phy");
  write_file(path, "2 4\nalpha ACGT\nbeta TGCA\n");
  const Alignment a = Alignment::read_file(path);
  EXPECT_EQ(a.n_taxa(), 2u);
  EXPECT_EQ(a.name(1), "beta");
}

TEST(FileIoTest, ReadFileMissingPathThrows) {
  EXPECT_THROW(Alignment::read_file("/definitely/not/here.fasta"), Error);
  EXPECT_THROW(read_nexus_file("/definitely/not/here.nex"), Error);
}

TEST(FileIoTest, NexusFileRoundTrip) {
  const std::string path = temp_path("round.nex");
  {
    Alignment a({"x", "y", "z"}, {"ACGTA", "AC-TA", "ANGTA"});
    std::ofstream f(path);
    write_nexus(f, a, {{"t", "(x:0.1,y:0.1,z:0.2);"}});
  }
  const NexusFile nx = read_nexus_file(path);
  ASSERT_TRUE(nx.has_alignment);
  EXPECT_EQ(nx.alignment.n_taxa(), 3u);
  EXPECT_EQ(nx.alignment.sequence(1), "AC-TA");
  ASSERT_EQ(nx.trees.size(), 1u);
}

TEST(FileIoTest, BundledSampleParsesWhenPresent) {
  // Best-effort: the repo ships data/sample_8taxa.nex; when the test runs
  // from the build tree the path resolves one level up.
  for (const char* candidate :
       {"data/sample_8taxa.nex", "../data/sample_8taxa.nex",
        "../../data/sample_8taxa.nex"}) {
    std::ifstream probe(candidate);
    if (!probe.good()) continue;
    const NexusFile nx = read_nexus_file(candidate);
    EXPECT_TRUE(nx.has_alignment);
    EXPECT_EQ(nx.alignment.n_taxa(), 8u);
    EXPECT_EQ(nx.alignment.n_columns(), 800u);
    ASSERT_EQ(nx.trees.size(), 1u);
    const Tree t = Tree::from_newick(nx.trees[0].second, nx.alignment.names());
    EXPECT_EQ(t.n_taxa(), 8u);
    return;
  }
  GTEST_SKIP() << "sample data file not reachable from this cwd";
}

}  // namespace
}  // namespace plf::phylo
