// Tests for the observability subsystem (src/obs): registry semantics,
// thread-shard merging, the injectable fake clock, the trace/metrics JSON
// exporters, and the paper-style breakdown report. Timing-dependent cases
// run against a fake nanosecond source, so every expectation is exact and
// deterministic regardless of host load.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace plf::obs {
namespace {

// --- fake clock -----------------------------------------------------------

std::atomic<std::uint64_t> g_fake_now_ns{0};

std::uint64_t fake_now_ns() {
  return g_fake_now_ns.load(std::memory_order_relaxed);
}

/// Install the fake source for one test's scope; restores the previous
/// source (normally the steady clock) on destruction.
class FakeClockGuard {
 public:
  explicit FakeClockGuard(std::uint64_t start_ns = 0) {
    g_fake_now_ns.store(start_ns, std::memory_order_relaxed);
    prev_ = set_now_ns_source(&fake_now_ns);
  }
  ~FakeClockGuard() { set_now_ns_source(prev_); }

  void advance_ns(std::uint64_t delta) {
    g_fake_now_ns.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  NowNsFn prev_;
};

// --- registry semantics ---------------------------------------------------

TEST(MetricsRegistry, CounterAddAndSnapshot) {
  MetricsRegistry reg;
  const MetricId id = reg.counter("test.counter");
  reg.add(id);          // default delta 1
  reg.add(id, 41);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("test.counter"), 42u);
  EXPECT_EQ(snap.counter_value("test.absent"), 0u);
}

TEST(MetricsRegistry, InterningReturnsStableIds) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("same.name");
  const MetricId b = reg.counter("same.name");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("other.name"), a);
  EXPECT_EQ(reg.metric_name(a), "same.name");
}

TEST(MetricsRegistry, KindMismatchIsContractViolation) {
  MetricsRegistry reg;
  reg.counter("mixed.kind");
  EXPECT_THROW(reg.timer("mixed.kind"), Error);
  EXPECT_THROW(reg.gauge("mixed.kind"), Error);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("test.gauge");
  reg.set_gauge(g, 1.5);
  reg.set_gauge(g, 2.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_value("test.gauge"), 2.5);
}

TEST(MetricsRegistry, SetGaugeOnNonGaugeIsContractViolation) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("not.a.gauge");
  EXPECT_THROW(reg.set_gauge(c, 1.0), Error);
}

TEST(MetricsRegistry, TimerRecordsExactSamples) {
  MetricsRegistry reg;
  const MetricId t = reg.timer("test.timer");
  reg.record_seconds(t, 0.25);
  reg.record_seconds(t, 0.75);
  const Snapshot snap = reg.snapshot();
  const Snapshot::Timer* timer = snap.find_timer("test.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->stats.count(), 2u);
  EXPECT_DOUBLE_EQ(timer->stats.total(), 1.0);
  EXPECT_DOUBLE_EQ(timer->stats.min(), 0.25);
  EXPECT_DOUBLE_EQ(timer->stats.max(), 0.75);
  EXPECT_DOUBLE_EQ(snap.timer_total_s("test.timer"), 1.0);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.add(reg.counter("zz.last"));
  reg.add(reg.counter("aa.first"));
  reg.add(reg.counter("mm.middle"));
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa.first");
  EXPECT_EQ(snap.counters[1].name, "mm.middle");
  EXPECT_EQ(snap.counters[2].name, "zz.last");
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("keep.counter");
  const MetricId t = reg.timer("keep.timer");
  const MetricId g = reg.gauge("keep.gauge");
  reg.add(c, 7);
  reg.record_seconds(t, 1.0);
  reg.set_gauge(g, 3.0);
  reg.reset();

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("keep.counter"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("keep.gauge"), 0.0);
  const Snapshot::Timer* timer = snap.find_timer("keep.timer");
  ASSERT_NE(timer, nullptr);  // name survives
  EXPECT_EQ(timer->stats.count(), 0u);

  // Ids held across the reset stay valid.
  reg.add(c, 2);
  EXPECT_EQ(reg.snapshot().counter_value("keep.counter"), 2u);
}

TEST(MetricsRegistry, ThreadShardsMergeExactly) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("mt.counter");
  const MetricId t = reg.timer("mt.timer");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg, c, t] {
      for (int j = 0; j < kPerThread; ++j) {
        reg.add(c);
        reg.record_seconds(t, 0.001);
      }
    });
  }
  for (auto& th : threads) th.join();

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("mt.counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Snapshot::Timer* timer = snap.find_timer("mt.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->stats.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(timer->stats.total(), kThreads * kPerThread * 0.001, 1e-9);
  EXPECT_NEAR(timer->stats.stddev(), 0.0, 1e-12);  // identical samples
}

// --- ScopedTimer with the fake clock --------------------------------------

TEST(ScopedTimer, RecordsExactDurationFromInjectedClock) {
  FakeClockGuard clock(1'000'000);
  MetricsRegistry reg;
  const MetricId t = reg.timer("fake.span");
  {
    ScopedTimer timer(reg, t);
    clock.advance_ns(250'000'000);  // exactly 0.25 s
  }
  const Snapshot snap = reg.snapshot();
  const Snapshot::Timer* timer = snap.find_timer("fake.span");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->stats.count(), 1u);
  EXPECT_DOUBLE_EQ(timer->stats.total(), 0.25);
}

TEST(ScopedTimer, EmitsTraceSpanOnlyWhenTracingEnabled) {
  FakeClockGuard clock(500);
  MetricsRegistry reg;
  const MetricId t = reg.timer("traced.span");
  {
    ScopedTimer timer(reg, t);  // tracing off: no event
    clock.advance_ns(10);
  }
  EXPECT_TRUE(reg.trace_events().empty());

  reg.enable_tracing(true);
  {
    ScopedTimer timer(reg, t);
    clock.advance_ns(1'000);
  }
  const auto events = reg.trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name_id, t);
  EXPECT_EQ(events[0].start_ns, 510u);
  EXPECT_EQ(events[0].dur_ns, 1'000u);
  EXPECT_EQ(reg.trace_events_dropped(), 0u);
}

TEST(MetricsRegistry, TraceBufferCapsAndCountsDrops) {
  MetricsRegistry reg;
  const MetricId t = reg.timer("cap.span");
  reg.enable_tracing(true);
  constexpr std::uint64_t kCap = 1u << 18;
  for (std::uint64_t i = 0; i < kCap + 100; ++i) {
    reg.record_span(t, i, i + 1);
  }
  EXPECT_EQ(reg.trace_events().size(), kCap);
  EXPECT_EQ(reg.trace_events_dropped(), 100u);
  reg.reset();
  EXPECT_TRUE(reg.trace_events().empty());
  EXPECT_EQ(reg.trace_events_dropped(), 0u);
}

TEST(ProfMacros, RecordIntoGlobalRegistry) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::uint64_t before =
      reg.snapshot().counter_value("test.macro_counter");
  PLF_PROF_COUNT("test.macro_counter", 3);
  PLF_PROF_GAUGE("test.macro_gauge", 1.5);
  {
    PLF_PROF_SCOPE("test.macro_scope");
  }
  const Snapshot snap = reg.snapshot();
#if defined(PLF_PROFILING_ENABLED)
  EXPECT_EQ(snap.counter_value("test.macro_counter"), before + 3);
  EXPECT_DOUBLE_EQ(snap.gauge_value("test.macro_gauge"), 1.5);
  const Snapshot::Timer* t = snap.find_timer("test.macro_scope");
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->stats.count(), 1u);
#else
  EXPECT_EQ(snap.counter_value("test.macro_counter"), before);
#endif
}

// --- JSON exporters -------------------------------------------------------

TEST(TraceWriter, EmitsChromeTracingShape) {
  FakeClockGuard clock(2'000);
  MetricsRegistry reg;
  reg.enable_tracing(true);
  const MetricId t = reg.timer("json.span");
  {
    ScopedTimer timer(reg, t);
    clock.advance_ns(5'000);  // 5 us
  }
  std::ostringstream os;
  write_chrome_trace(os, reg);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":5"), std::string::npos);  // microseconds
  EXPECT_EQ(out.find("Infinity"), std::string::npos);
  // Crude balance check: the writer emits one top-level object.
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
}

TEST(MetricsWriter, EmitsAllSectionsAndNullForEmptyTimerExtremes) {
  MetricsRegistry reg;
  reg.add(reg.counter("json.counter"), 5);
  reg.set_gauge(reg.gauge("json.gauge"), 0.5);
  reg.timer("json.empty_timer");  // interned, never sampled
  std::ostringstream os;
  write_metrics_json(os, reg.snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"gauges\""), std::string::npos);
  EXPECT_NE(out.find("\"timers\""), std::string::npos);
  EXPECT_NE(out.find("\"json.counter\":5"), std::string::npos);
  EXPECT_NE(out.find("\"json.empty_timer\""), std::string::npos);
  // Empty min/max are NaN internally and must serialize as null: JSON has
  // no NaN/Infinity literals and python -m json.tool would reject them.
  EXPECT_NE(out.find("\"min_s\":null"), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
}

// --- breakdown report -----------------------------------------------------

/// Registry pre-loaded with a known kernel profile: 2s down + 1s root +
/// 0.5s scaler + 0.5s reduce = 4s PLF, plus 1s of engine-serial time.
void load_kernel_profile(MetricsRegistry& reg) {
  reg.record_seconds(reg.timer(kTimerCondLikeDown), 2.0);
  reg.record_seconds(reg.timer(kTimerCondLikeRoot), 1.0);
  reg.record_seconds(reg.timer(kTimerCondLikeScaler), 0.5);
  reg.record_seconds(reg.timer(kTimerRootReduce), 0.5);
  reg.record_seconds(reg.timer(kTimerTiProbs), 0.75);
  reg.record_seconds(reg.timer(kTimerScalerSum), 0.25);
}

TEST(Breakdown, SectionsPartitionTotalExactly) {
  MetricsRegistry reg;
  load_kernel_profile(reg);
  const Breakdown b = build_breakdown(reg.snapshot(), 10.0, "test-backend");
  EXPECT_DOUBLE_EQ(b.plf_s, 4.0);
  EXPECT_DOUBLE_EQ(b.remaining_s, 6.0);
  EXPECT_DOUBLE_EQ(b.plf_pct, 40.0);
  EXPECT_DOUBLE_EQ(b.remaining_pct, 60.0);
  EXPECT_NEAR(b.plf_pct + b.remaining_pct, 100.0, 1e-9);
  // Engine share: 4s of 5s measured engine time.
  EXPECT_NEAR(b.plf_pct_of_engine, 80.0, 1e-9);
  double kernel_pct_sum = 0.0;
  for (const KernelShare& k : b.kernels) kernel_pct_sum += k.pct_of_engine;
  EXPECT_NEAR(kernel_pct_sum, b.plf_pct_of_engine, 1e-9);
}

TEST(Breakdown, ClampsWhenWallTimeBelowKernelTime) {
  MetricsRegistry reg;
  load_kernel_profile(reg);
  // Caller-measured wall below summed kernel time (clock jitter): total is
  // raised so percentages stay in [0, 100] and still sum to 100.
  const Breakdown b = build_breakdown(reg.snapshot(), 1.0, "jitter");
  EXPECT_DOUBLE_EQ(b.total_s, 4.0);
  EXPECT_DOUBLE_EQ(b.plf_pct, 100.0);
  EXPECT_DOUBLE_EQ(b.remaining_pct, 0.0);
  EXPECT_NEAR(b.plf_pct + b.remaining_pct, 100.0, 1e-9);
}

TEST(Breakdown, EmptySnapshotIsAllRemaining) {
  MetricsRegistry reg;
  const Breakdown b = build_breakdown(reg.snapshot(), 0.0, "empty");
  EXPECT_DOUBLE_EQ(b.plf_s, 0.0);
  EXPECT_NEAR(b.plf_pct + b.remaining_pct, 100.0, 1e-9);
}

TEST(Breakdown, FormatContainsPaperSections) {
  MetricsRegistry reg;
  load_kernel_profile(reg);
  reg.set_gauge(reg.gauge(kGaugeTransferSimSeconds), 0.125);
  const Breakdown b = build_breakdown(reg.snapshot(), 10.0, "test-backend");
  const std::string out = format_breakdown(b);
  EXPECT_NE(out.find("CondLikeDown"), std::string::npos);
  EXPECT_NE(out.find("CondLikeRoot"), std::string::npos);
  EXPECT_NE(out.find("CondLikeScaler"), std::string::npos);
  EXPECT_NE(out.find("RootReduce"), std::string::npos);
  EXPECT_NE(out.find("PLF (parallel section)"), std::string::npos);
  EXPECT_NE(out.find("Remaining (serial)"), std::string::npos);
  EXPECT_NE(out.find("test-backend"), std::string::npos);
  EXPECT_NE(out.find("100.0"), std::string::npos);  // total row sums to 100%
  EXPECT_NE(out.find("simulated transfer"), std::string::npos);
  EXPECT_NE(out.find("85-95%"), std::string::npos);  // the paper anchor
}

// --- latency histograms ---------------------------------------------------

TEST(LatencyHistogram, BucketBoundariesArePowersOfTwo) {
  // Layout: bucket 0 = {0}; bucket b in 1..62 = [2^(b-1), 2^b); 63 overflow.
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_index(1024), 11);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::uint64_t{1} << 61), 62);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::uint64_t{1} << 62), 63);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<std::uint64_t>::max()),
            63);
  for (int b = 1; b < LatencyHistogram::kBuckets - 1; ++b) {
    // Each bucket's bounds are consistent with bucket_index at the edges.
    EXPECT_EQ(LatencyHistogram::bucket_index(
                  LatencyHistogram::bucket_lower_ns(b)),
              b);
    EXPECT_EQ(LatencyHistogram::bucket_index(
                  LatencyHistogram::bucket_upper_ns(b) - 1),
              b);
  }
}

TEST(LatencyHistogram, MergeIsExactElementWiseAddition) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.add_ns(1000);
  for (int i = 0; i < 7; ++i) b.add_ns(1000);
  b.add_ns(0);
  b.add_ns(std::numeric_limits<std::uint64_t>::max());
  b.add_seconds(-1.0);  // dropped
  a.merge(b);
  EXPECT_EQ(a.count(), 19u);
  EXPECT_EQ(a.bucket_count(10), 17u);  // 1000 ns -> [512, 1024)
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(63), 1u);
  EXPECT_EQ(a.dropped(), 1u);
}

TEST(LatencyHistogram, PercentileGoldenSingleBucket) {
  // 100 identical 1000 ns samples live in bucket 10 = [512, 1024).
  // Linear interpolation inside the bucket gives exact, deterministic
  // quantiles: p50 -> 512 + 0.50*512 = 768, p99 -> 512 + 0.99*512 = 1018.88.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add_ns(1000);
  EXPECT_DOUBLE_EQ(h.percentile_ns(0.50), 768.0);
  EXPECT_DOUBLE_EQ(h.percentile_ns(0.95), 998.4);
  EXPECT_DOUBLE_EQ(h.percentile_ns(0.99), 1018.88);
  EXPECT_DOUBLE_EQ(h.percentile_s(0.50), 768.0e-9);
}

TEST(LatencyHistogram, PercentileSeparatesTailFromBody) {
  // 99 fast samples (~1 us) and 1 slow (~2 ms): the mean moves ~3%, but p99
  // must land in the slow bucket — the tail-visibility property the
  // histogram exists for.
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add_ns(1000);
  h.add_ns(2'000'000);
  EXPECT_LT(h.percentile_ns(0.50), 1024.0);
  EXPECT_GE(h.percentile_ns(0.995), 1'048'576.0);  // slow bucket lower bound
}

TEST(LatencyHistogram, EmptyPercentileIsNaNAndDroppedCounts) {
  LatencyHistogram h;
  EXPECT_TRUE(std::isnan(h.percentile_ns(0.5)));
  h.add_seconds(std::numeric_limits<double>::quiet_NaN());
  h.add_seconds(std::numeric_limits<double>::infinity());
  h.add_seconds(-0.001);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.dropped(), 3u);
  h.add_seconds(1e-6);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, TimerHistogramMatchesRecordedSamplesExactly) {
  FakeClockGuard clock(0);
  MetricsRegistry reg;
  const MetricId t = reg.timer("hist.timer");
  // 100 spans of exactly 1000 ns through the real ScopedTimer path.
  for (int i = 0; i < 100; ++i) {
    ScopedTimer timer(reg, t);
    clock.advance_ns(1'000);
  }
  const Snapshot snap = reg.snapshot();
  const Snapshot::Timer* timer = snap.find_timer("hist.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->hist.count(), 100u);
  EXPECT_EQ(timer->hist.bucket_count(10), 100u);
  EXPECT_DOUBLE_EQ(timer->hist.percentile_ns(0.50), 768.0);
  EXPECT_EQ(snap.hist_samples_dropped, 0u);

  reg.reset();
  const Snapshot after_reset = reg.snapshot();
  const Snapshot::Timer* cleared = after_reset.find_timer("hist.timer");
  ASSERT_NE(cleared, nullptr);
  EXPECT_EQ(cleared->hist.count(), 0u);
}

TEST(MetricsRegistry, HistogramMergesAcrossThreadShards) {
  FakeClockGuard clock(0);
  MetricsRegistry reg;
  const MetricId t = reg.timer("hist.mt");
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg, t] {
      for (int j = 0; j < 50; ++j) reg.record_seconds(t, 1e-6);  // 1000 ns
    });
  }
  for (auto& th : threads) th.join();
  const Snapshot snap = reg.snapshot();
  const Snapshot::Timer* timer = snap.find_timer("hist.mt");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->hist.count(), 200u);
  EXPECT_EQ(timer->hist.bucket_count(10), 200u);
}

TEST(MetricsWriter, EmitsPercentileKeysAndMetaSection) {
  FakeClockGuard clock(0);
  MetricsRegistry reg;
  const MetricId t = reg.timer("json.p50");
  for (int i = 0; i < 10; ++i) {
    ScopedTimer timer(reg, t);
    clock.advance_ns(1'000);
  }
  reg.timer("json.empty");  // interned, never sampled -> null percentiles
  std::ostringstream os;
  write_metrics_json(os, reg.snapshot());
  const std::string out = os.str();
  EXPECT_NE(out.find("\"p50_s\":7.68"), std::string::npos);  // 768 ns
  EXPECT_NE(out.find("\"p95_s\":"), std::string::npos);
  EXPECT_NE(out.find("\"p99_s\":"), std::string::npos);
  EXPECT_NE(out.find("\"p50_s\":null"), std::string::npos);  // empty timer
  EXPECT_NE(out.find("\"meta\":{\"trace_events_dropped\":0,"
                     "\"hist_samples_dropped\":0}"),
            std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
}

// --- report: latency table + drop-count footer ----------------------------

TEST(Breakdown, CarriesLatencyRowsAndDropCounts) {
  FakeClockGuard clock(0);
  MetricsRegistry reg;
  load_kernel_profile(reg);
  const MetricId t = reg.timer(kTimerPlanExecute);
  for (int i = 0; i < 8; ++i) {
    ScopedTimer timer(reg, t);
    clock.advance_ns(1'000);
  }
  const Breakdown b = build_breakdown(reg.snapshot(), 10.0, "lat");
  ASSERT_FALSE(b.latencies.empty());
  const LatencyRow* plan_row = nullptr;
  for (const LatencyRow& r : b.latencies) {
    if (r.name == kTimerPlanExecute) plan_row = &r;
  }
  ASSERT_NE(plan_row, nullptr);
  EXPECT_EQ(plan_row->count, 8u);
  EXPECT_DOUBLE_EQ(plan_row->p50_us, 0.768);

  const std::string out = format_breakdown(b);
  EXPECT_NE(out.find("per-call latency percentiles"), std::string::npos);
  EXPECT_NE(out.find("p99 us"), std::string::npos);
  EXPECT_NE(out.find(kTimerPlanExecute), std::string::npos);
  // No drops -> no warnings in the footer.
  EXPECT_EQ(out.find("warning:"), std::string::npos);
}

TEST(Breakdown, FooterSurfacesTraceAndHistogramDrops) {
  MetricsRegistry reg;
  const MetricId t = reg.timer("drop.timer");
  reg.record_seconds(t, -1.0);  // unbucketable -> hist drop
  reg.enable_tracing(true);
  constexpr std::uint64_t kCap = 1u << 18;
  for (std::uint64_t i = 0; i < kCap + 3; ++i) reg.record_span(t, i, i + 1);

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.trace_events_dropped, 3u);
  EXPECT_EQ(snap.hist_samples_dropped, 1u);

  const Breakdown b = build_breakdown(snap, 1.0, "drops");
  const std::string out = format_breakdown(b);
  EXPECT_NE(out.find("trace buffer full — 3 spans dropped"),
            std::string::npos);
  EXPECT_NE(out.find("1 histogram samples dropped"), std::string::npos);
}

// --- flight recorder (in-process paths; death paths live in
// contracts_test.cpp) --------------------------------------------------------

TEST(FlightRecorder, RecordsSpansAndCountsIntoJson) {
  flight_reset_for_tests();
  flight_record_span("flight.test.span", 100, 50);
  flight_record_count("flight.test.count", 3);
  std::ostringstream os;
  write_flight_json(os, "unit-test");
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\":\"plf-flight-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"span\",\"name\":\"flight.test.span\""),
            std::string::npos);
  EXPECT_NE(out.find("\"t_ns\":100,\"dur_ns\":50"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"count\",\"name\":\"flight.test.count\""),
            std::string::npos);
  EXPECT_NE(out.find("\"delta\":3"), std::string::npos);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastEvents) {
  flight_reset_for_tests();
  for (std::uint64_t i = 0; i < kFlightRingSize + 10; ++i) {
    flight_record_span(i % 2 == 0 ? "flight.even" : "flight.odd", i, 1);
  }
  std::ostringstream os;
  write_flight_json(os, "wrap");
  const std::string out = os.str();
  // The first 10 events were overwritten: t_ns 0..9 must be gone, the most
  // recent event must be present.
  EXPECT_EQ(out.find("\"t_ns\":3,"), std::string::npos);
  EXPECT_NE(out.find("\"t_ns\":" + std::to_string(kFlightRingSize + 9)),
            std::string::npos);
}

TEST(FlightRecorder, ScopedTimerFeedsTheRing) {
  FakeClockGuard clock(5'000);
  flight_reset_for_tests();
  MetricsRegistry reg;
  const MetricId t = reg.timer("flight.scoped");
  {
    ScopedTimer timer(reg, t, "flight.scoped");
    clock.advance_ns(2'000);
  }
  std::ostringstream os;
  write_flight_json(os, "scoped");
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"flight.scoped\""), std::string::npos);
  EXPECT_NE(out.find("\"t_ns\":5000,\"dur_ns\":2000"), std::string::npos);
}

}  // namespace
}  // namespace plf::obs
