#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/search.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"

namespace plf::core {
namespace {

struct Instance {
  phylo::Tree true_tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.12);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

TEST(HillClimbTest, RecoversTrueTopologyFromRandomStart) {
  auto inst = make_instance(7, 1500, 61);
  Rng rng(62);
  phylo::Tree start = seqgen::yule_tree(7, rng, 1.0, 0.12);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, start, backend);

  const auto result = hill_climb(engine);
  EXPECT_TRUE(engine.tree().same_topology(inst.true_tree))
      << engine.tree().to_newick();
  EXPECT_GT(result.accepted_moves, 0);
  EXPECT_GT(result.evaluations, 10u);
}

TEST(HillClimbTest, TrueTopologyIsLocalOptimum) {
  auto inst = make_instance(8, 1500, 63);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.true_tree, backend);
  const auto result = hill_climb(engine);
  // Started at the truth with strong data: no NNI should improve it.
  EXPECT_EQ(result.accepted_moves, 0);
  EXPECT_EQ(result.rounds, 1);
  EXPECT_TRUE(engine.tree().same_topology(inst.true_tree));
}

TEST(HillClimbTest, LikelihoodNeverDecreases) {
  auto inst = make_instance(8, 400, 64);
  Rng rng(65);
  phylo::Tree start = seqgen::yule_tree(8, rng, 1.0, 0.12);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, start, backend);
  const double before = engine.log_likelihood();
  const auto result = hill_climb(engine);
  EXPECT_GE(result.ln_likelihood, before);
  // Engine state consistent with a fresh evaluation of the final tree.
  PlfEngine fresh(inst.data, inst.params, engine.tree(), backend);
  EXPECT_NEAR(fresh.log_likelihood(), result.ln_likelihood,
              std::abs(result.ln_likelihood) * 1e-5);
}

TEST(HillClimbTest, BeatsOrMatchesGeneratingParameters) {
  auto inst = make_instance(9, 800, 66);
  SerialBackend backend;
  PlfEngine ref(inst.data, inst.params, inst.true_tree, backend);
  const double ln_true_params = ref.log_likelihood();

  Rng rng(67);
  phylo::Tree start = seqgen::yule_tree(9, rng, 1.0, 0.12);
  PlfEngine engine(inst.data, inst.params, start, backend);
  const auto result = hill_climb(engine);
  // ML fit (topology + branch lengths) >= likelihood at the generating
  // parameters, modulo the NNI neighborhood being a local search.
  EXPECT_GT(result.ln_likelihood, ln_true_params - 10.0);
}

TEST(HillClimbTest, WorksOnThreadedBackend) {
  auto inst = make_instance(6, 600, 68);
  Rng rng(69);
  phylo::Tree start = seqgen::yule_tree(6, rng, 1.0, 0.12);
  par::ThreadPool pool(2);
  ThreadedBackend backend(pool);
  PlfEngine engine(inst.data, inst.params, start, backend);
  const double before = engine.log_likelihood();
  const auto result = hill_climb(engine);
  // This test exercises backend compatibility, not search power: the search
  // must run, improve, and leave a state consistent with a fresh engine.
  EXPECT_GT(result.ln_likelihood, before);
  SerialBackend serial;
  PlfEngine fresh(inst.data, inst.params, engine.tree(), serial);
  EXPECT_NEAR(fresh.log_likelihood(), result.ln_likelihood,
              std::abs(result.ln_likelihood) * 1e-5);
}

}  // namespace
}  // namespace plf::core
