#include <gtest/gtest.h>

#include <algorithm>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/consensus.hpp"
#include "phylo/patterns.hpp"
#include "phylo/tree.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"

namespace plf::mcmc {
namespace {

using phylo::Tree;

TEST(ConsensusTest, SingleTreeAllSplitsAtFullFrequency) {
  TreeSampleSummary s;
  s.add_newick("((A:1,B:1):1,(C:1,D:1):1,(E:1,F:1):1);");
  EXPECT_EQ(s.n_trees(), 1u);
  const auto freqs = s.split_frequencies();
  // 6 taxa -> 4 internal nodes, 3 nontrivial splits.
  ASSERT_EQ(freqs.size(), 3u);
  for (const auto& f : freqs) {
    EXPECT_EQ(f.count, 1u);
    EXPECT_DOUBLE_EQ(f.frequency, 1.0);
    EXPECT_GE(f.taxa.size(), 2u);
  }
}

TEST(ConsensusTest, IdenticalTreesConsensusRecoversTopology) {
  const char* nwk = "((A:1,B:1):1,(C:1,D:1):1,(E:1,F:1):1);";
  TreeSampleSummary s;
  for (int i = 0; i < 10; ++i) s.add_newick(nwk);
  const std::string consensus = s.majority_rule_newick();
  // The consensus (stripped of support labels) must equal the input
  // topology; parse it back and compare splits.
  const Tree original = Tree::from_newick(nwk);
  const Tree back = Tree::from_newick(consensus, original.taxon_names());
  EXPECT_TRUE(back.same_topology(original)) << consensus;
  // Full support labels present.
  EXPECT_NE(consensus.find("1.00"), std::string::npos);
}

TEST(ConsensusTest, MinoritySplitsDropOut) {
  // 3 trees: AB|rest twice, AC|rest once. Majority keeps only AB.
  TreeSampleSummary s;
  s.add_newick("((A:1,B:1):1,C:1,D:1);");
  s.add_newick("((A:1,B:1):1,D:1,C:1);");
  s.add_newick("((A:1,C:1):1,B:1,D:1);");
  const auto freqs = s.split_frequencies();
  ASSERT_EQ(freqs.size(), 2u);
  EXPECT_EQ(freqs[0].count, 2u);  // AB
  EXPECT_EQ(freqs[1].count, 1u);  // AC
  const std::string consensus = s.majority_rule_newick();
  // AB grouped with 0.67 support; C and D attach at the root polytomy.
  EXPECT_NE(consensus.find("0.67"), std::string::npos);
  EXPECT_EQ(consensus.find("0.33"), std::string::npos);
}

TEST(ConsensusTest, TotalConflictYieldsStarTree) {
  TreeSampleSummary s;
  s.add_newick("((A:1,B:1):1,C:1,D:1);");
  s.add_newick("((A:1,C:1):1,B:1,D:1);");
  s.add_newick("((A:1,D:1):1,B:1,C:1);");
  const std::string consensus = s.majority_rule_newick();
  // No split reaches >50%: star tree (single pair of outer parens).
  EXPECT_EQ(std::count(consensus.begin(), consensus.end(), '('), 1);
}

TEST(ConsensusTest, TaxonOrderIndependent) {
  // The same topology written with different rotations/taxon orderings
  // counts as the same splits.
  TreeSampleSummary s;
  s.add_newick("((A:1,B:1):1,(C:1,D:1):1,E:1);");
  s.add_newick("(E:2,(D:2,C:2):2,(B:2,A:2):2);");
  const auto freqs = s.split_frequencies();
  ASSERT_EQ(freqs.size(), 2u);
  for (const auto& f : freqs) EXPECT_EQ(f.count, 2u);
}

TEST(ConsensusTest, TopologyFrequency) {
  TreeSampleSummary s;
  s.add_newick("((A:1,B:1):1,C:1,D:1);");
  s.add_newick("((A:1,B:1):1,C:1,D:1);");
  s.add_newick("((A:1,C:1):1,B:1,D:1);");
  const Tree ab = Tree::from_newick("((A:1,B:1):1,C:1,D:1);");
  const Tree ac = Tree::from_newick("((A:1,C:1):1,B:1,D:1);");
  const Tree ad = Tree::from_newick("((A:1,D:1):1,B:1,C:1);");
  EXPECT_NEAR(s.topology_frequency(ab), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.topology_frequency(ac), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.topology_frequency(ad), 0.0);
}

TEST(ConsensusTest, MismatchedTaxaRejected) {
  TreeSampleSummary s;
  s.add_newick("((A:1,B:1):1,C:1,D:1);");
  EXPECT_THROW(s.add_newick("((A:1,B:1):1,C:1,X:1);"), Error);
  EXPECT_THROW(s.add_newick("((A:1,B:1):1,(C:1,D:1):1,E:1);"), Error);
}

TEST(ConsensusTest, EmptySummaryRejectsConsensus) {
  TreeSampleSummary s;
  EXPECT_THROW(s.majority_rule_newick(), Error);
}

TEST(ConsensusTest, NestedCladesRenderCorrectly) {
  // All trees share ((C,D),E) nested structure.
  TreeSampleSummary s;
  for (int i = 0; i < 4; ++i) {
    s.add_newick("(A:1,B:1,((C:1,D:1):1,E:1):1);");
  }
  const std::string consensus = s.majority_rule_newick();
  const Tree back =
      Tree::from_newick(consensus, {"A", "B", "C", "D", "E"});
  EXPECT_TRUE(back.same_topology(
      Tree::from_newick("(A:1,B:1,((C:1,D:1):1,E:1):1);",
                        std::vector<std::string>{"A", "B", "C", "D", "E"})));
}

TEST(ConsensusTest, PosteriorFromRealChainIsConcentrated) {
  // Strong-signal data: the chain's posterior sample should concentrate on
  // the generating topology, and the consensus should recover it.
  Rng rng(31);
  const Tree true_tree = seqgen::yule_tree(6, rng, 1.0, 0.15);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(true_tree, model);
  auto data = phylo::PatternMatrix::compress(ev.evolve(1500, rng));

  core::SerialBackend backend;
  core::PlfEngine engine(data, params, true_tree, backend);
  McmcOptions opts;
  opts.seed = 3;
  opts.sample_every = 20;
  opts.collect_trees = true;
  McmcChain chain(engine, opts);
  const auto result = chain.run(2000);
  ASSERT_GT(result.sampled_trees.size(), 50u);

  TreeSampleSummary summary;
  // Burn-in: drop the first quarter of samples.
  for (std::size_t i = result.sampled_trees.size() / 4;
       i < result.sampled_trees.size(); ++i) {
    summary.add_newick(result.sampled_trees[i]);
  }
  EXPECT_GT(summary.topology_frequency(true_tree), 0.5);
  const Tree consensus = Tree::from_newick(summary.majority_rule_newick(),
                                           true_tree.taxon_names());
  EXPECT_TRUE(consensus.same_topology(true_tree));
}

}  // namespace
}  // namespace plf::mcmc
