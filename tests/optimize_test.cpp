#include <gtest/gtest.h>

#include <cmath>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/optimize.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"

namespace plf::core {
namespace {

struct Instance {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Instance make_instance(std::size_t taxa, std::size_t cols, std::uint64_t seed,
                       double scale = 0.15) {
  Rng rng(seed);
  phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, scale);
  phylo::GtrParams params = seqgen::default_gtr_params();
  phylo::SubstitutionModel model(params);
  seqgen::SequenceEvolver ev(tree, model);
  auto aln = ev.evolve(cols, rng);
  return Instance{std::move(tree), params, phylo::PatternMatrix::compress(aln)};
}

TEST(OptimizeBranchTest, ImprovesPerturbedBranch) {
  auto inst = make_instance(8, 800, 41);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const int b = engine.tree().leaf_of(2);
  const double true_len = engine.tree().branch_length(b);

  engine.set_branch_length(b, true_len * 8.0);  // badly off
  const double perturbed = engine.log_likelihood();
  const auto r = optimize_branch(engine, b);
  EXPECT_GT(r.ln_likelihood, perturbed);
  EXPECT_GT(r.evaluations, 3);
  // ML estimate lands near the generating value (data has finite signal).
  EXPECT_NEAR(std::log(r.length), std::log(true_len), std::log(2.2));
  EXPECT_DOUBLE_EQ(engine.tree().branch_length(b), r.length);
}

TEST(OptimizeBranchTest, AlreadyOptimalBranchBarelyMoves) {
  auto inst = make_instance(8, 800, 42);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const int b = engine.tree().leaf_of(4);
  const auto first = optimize_branch(engine, b);
  const auto second = optimize_branch(engine, b);
  // The single-precision likelihood surface is flat near the optimum, so
  // Brent may settle anywhere inside the tolerance basin.
  EXPECT_NEAR(second.length, first.length, 0.1 * first.length + 1e-6);
  EXPECT_NEAR(second.ln_likelihood, first.ln_likelihood, 1e-3);
  EXPECT_GE(second.ln_likelihood, first.ln_likelihood - 1e-3);
}

TEST(OptimizeBranchTest, MonotoneNonDecreasingLikelihood) {
  auto inst = make_instance(10, 300, 43);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  double prev = engine.log_likelihood();
  for (int b : engine.tree().branch_nodes()) {
    const auto r = optimize_branch(engine, b);
    EXPECT_GE(r.ln_likelihood, prev - 1e-6) << "branch " << b;
    prev = r.ln_likelihood;
  }
}

TEST(OptimizeBranchTest, RespectsBounds) {
  auto inst = make_instance(6, 100, 44);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  OptimizeOptions opts;
  opts.min_length = 0.05;
  opts.max_length = 0.2;
  const auto r = optimize_branch(engine, engine.tree().leaf_of(1), opts);
  EXPECT_GE(r.length, opts.min_length * 0.999);
  EXPECT_LE(r.length, opts.max_length * 1.001);
}

TEST(OptimizeBranchTest, RejectsRootAndBadBounds) {
  auto inst = make_instance(6, 100, 45);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  EXPECT_THROW(optimize_branch(engine, engine.tree().root()), Error);
  OptimizeOptions bad;
  bad.min_length = 1.0;
  bad.max_length = 0.5;
  EXPECT_THROW(optimize_branch(engine, engine.tree().leaf_of(0), bad), Error);
}

TEST(OptimizeAllTest, RecoversTreeLengthFromPerturbedStart) {
  auto inst = make_instance(8, 2000, 46);
  SerialBackend backend;

  // Reference: lnL at the generating branch lengths.
  PlfEngine ref(inst.data, inst.params, inst.tree, backend);
  const double ln_true = ref.log_likelihood();

  // Perturbed start: every branch at 0.5.
  phylo::Tree start = inst.tree;
  for (int b : start.branch_nodes()) start.set_branch_length(b, 0.5);
  PlfEngine engine(inst.data, inst.params, start, backend);
  const double ln_start = engine.log_likelihood();
  ASSERT_LT(ln_start, ln_true - 100.0);

  const auto r = optimize_all_branches(engine);
  // ML on the true topology must meet or beat the generating parameters.
  EXPECT_GT(r.ln_likelihood, ln_true - 5.0);
  EXPECT_NEAR(engine.tree().total_length(), inst.tree.total_length(),
              0.35 * inst.tree.total_length());
}

TEST(OptimizeAllTest, WorksOnThreadedBackend) {
  auto inst = make_instance(7, 400, 47);
  par::ThreadPool pool(3);
  ThreadedBackend backend(pool);
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const double before = engine.log_likelihood();
  engine.set_branch_length(engine.tree().leaf_of(0), 3.0);
  const auto r = optimize_all_branches(engine, 3);
  EXPECT_GE(r.ln_likelihood, before - 1.0);
}

TEST(OptimizeAllTest, ConvergesAndStops) {
  auto inst = make_instance(6, 300, 48);
  SerialBackend backend;
  PlfEngine engine(inst.data, inst.params, inst.tree, backend);
  const auto r1 = optimize_all_branches(engine, 10);
  // A second full optimization finds (numerically) nothing new.
  const auto r2 = optimize_all_branches(engine, 10);
  EXPECT_NEAR(r2.ln_likelihood, r1.ln_likelihood, 1e-4);
  EXPECT_LT(r2.evaluations, r1.evaluations + 1);
}

}  // namespace
}  // namespace plf::core
