// Property/fuzz battery for the budgeted CLV arena (core/clv_arena.hpp).
//
// Three layers:
//   1. ClvBudget parsing/resolution: fractions vs bytes vs suffixes, and the
//      clamp up to the minimum feasible working set.
//   2. The arena as an eviction state machine: randomized acquire/pin/unpin
//      storms checked against an independent reference model of LRU order,
//      the resident set, and victim selection — after every single op.
//   3. The engine property the tentpole promises: a budgeted engine is
//      BIT-IDENTICAL (0 ULP) to an unbudgeted twin through randomized
//      NNI/SPR/branch/model proposal storms at budgets from 100% down to the
//      minimum feasible, while resident bytes never exceed the budget and
//      tight budgets demonstrably evict (arena.evictions > 0).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/clv_arena.hpp"
#include "core/engine.hpp"
#include "par/thread_pool.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace plf::core {
namespace {

// --- layer 1: budget parsing and resolution ---------------------------------

TEST(ClvBudgetTest, ParsesFractionsBytesAndSuffixes) {
  EXPECT_TRUE(clv_budget_from_string("unlimited").unlimited());

  const ClvBudget half = clv_budget_from_string("0.5");
  EXPECT_EQ(half.kind, ClvBudget::Kind::kFraction);
  EXPECT_DOUBLE_EQ(half.fraction, 0.5);

  // "1" and "1.0" both mean the whole pool, not one byte.
  EXPECT_EQ(clv_budget_from_string("1").kind, ClvBudget::Kind::kFraction);
  EXPECT_DOUBLE_EQ(clv_budget_from_string("1.0").fraction, 1.0);

  const ClvBudget bytes = clv_budget_from_string("1048576");
  EXPECT_EQ(bytes.kind, ClvBudget::Kind::kBytes);
  EXPECT_EQ(bytes.bytes, std::size_t{1048576});

  EXPECT_EQ(clv_budget_from_string("512k").bytes, std::size_t{512} << 10);
  EXPECT_EQ(clv_budget_from_string("64M").bytes, std::size_t{64} << 20);
  EXPECT_EQ(clv_budget_from_string("2g").bytes, std::size_t{2} << 30);
}

TEST(ClvBudgetTest, RejectsMalformedValues) {
  EXPECT_THROW(clv_budget_from_string(""), Error);
  EXPECT_THROW(clv_budget_from_string("lots"), Error);
  EXPECT_THROW(clv_budget_from_string("m"), Error);
  EXPECT_THROW(clv_budget_from_string("0"), Error);
  EXPECT_THROW(clv_budget_from_string("-0.5"), Error);
  EXPECT_THROW(clv_budget_from_string("1.5"), Error);  // fraction > 1
  EXPECT_THROW(clv_budget_from_string("0.5x"), Error);
}

TEST(ClvBudgetTest, ResolveClampsUpToMinimumFeasible) {
  const std::size_t full = 1000;
  const std::size_t min = 500;
  EXPECT_EQ(ClvBudget{}.resolve(full, min), full);  // unlimited

  ClvBudget frac;
  frac.kind = ClvBudget::Kind::kFraction;
  frac.fraction = 0.75;
  EXPECT_EQ(frac.resolve(full, min), std::size_t{750});
  frac.fraction = 0.25;  // below the feasible floor: clamped up
  EXPECT_EQ(frac.resolve(full, min), min);

  ClvBudget b;
  b.kind = ClvBudget::Kind::kBytes;
  b.bytes = 1;
  EXPECT_EQ(b.resolve(full, min), min);
  b.bytes = 900;
  EXPECT_EQ(b.resolve(full, min), std::size_t{900});
}

// --- layer 2: the eviction state machine vs a reference model ---------------

/// Independent model of the arena's documented policy: resident slots in LRU
/// order (front = next victim), eviction takes the first unpinned slot from
/// the front, acquire of a miss evicts before allocating.
struct LruRef {
  std::size_t capacity;
  std::vector<int> order;  // LRU -> MRU
  std::vector<int> pins;   // per-slot pin count
  std::uint64_t hits = 0, misses = 0, evictions = 0;

  explicit LruRef(std::size_t cap, std::size_t n_slots)
      : capacity(cap), pins(n_slots, 0) {}

  bool resident(int slot) const {
    return std::find(order.begin(), order.end(), slot) != order.end();
  }
  void touch(int slot) {
    order.erase(std::find(order.begin(), order.end(), slot));
    order.push_back(slot);
  }
  void acquire(int slot) {
    if (resident(slot)) {
      ++hits;
      touch(slot);
      return;
    }
    ++misses;
    while (order.size() >= capacity) {
      auto victim = std::find_if(order.begin(), order.end(),
                                 [&](int s) { return pins[static_cast<std::size_t>(s)] == 0; });
      ASSERT_NE(victim, order.end()) << "reference model exhausted";
      ++evictions;
      order.erase(victim);
    }
    order.push_back(slot);
  }
};

TEST(ClvArenaLruTest, RandomizedOpsMatchReferenceModel) {
  constexpr std::size_t kSlots = 24;
  constexpr std::size_t kSlotFloats = 32;
  constexpr std::size_t kCapacity = 6;
  const std::size_t slot_bytes = kSlotFloats * sizeof(float);

  for (std::uint64_t seed : {11u, 31u, 77u}) {
    ClvArena arena;
    arena.init(kSlots, kSlotFloats, kCapacity * slot_bytes);
    LruRef ref(kCapacity, kSlots);
    Rng rng(seed);

    std::size_t pinned_slots = 0;
    for (int op = 0; op < 2000; ++op) {
      SCOPED_TRACE(::testing::Message() << "seed " << seed << " op " << op);
      const std::size_t r = rng.below(100);
      if (r < 70) {
        const int slot = static_cast<int>(rng.below(kSlots));
        arena.acquire(slot);
        ref.acquire(slot);
      } else if (r < 82 && !ref.order.empty() && pinned_slots + 1 < kCapacity) {
        // Pin a resident slot (keep at least one evictable so acquire can
        // always make progress — exhaustion has its own test below).
        const int slot = ref.order[rng.below(ref.order.size())];
        if (ref.pins[static_cast<std::size_t>(slot)] == 0) ++pinned_slots;
        ++ref.pins[static_cast<std::size_t>(slot)];
        arena.pin(slot);
      } else if (r < 92) {
        // Unpin one pinned slot, if any.
        for (std::size_t s = 0; s < kSlots; ++s) {
          if (ref.pins[s] > 0) {
            --ref.pins[s];
            if (ref.pins[s] == 0) --pinned_slots;
            arena.unpin(static_cast<int>(s));
            break;
          }
        }
      } else {
        arena.release_eval_pins();
        std::fill(ref.pins.begin(), ref.pins.end(), 0);
        pinned_slots = 0;
      }

      // (b) resident bytes never exceed the budget; (c) LRU order matches.
      ASSERT_LE(arena.resident_bytes(), arena.budget_bytes());
      ASSERT_EQ(arena.lru_order_for_test(), ref.order);
      ASSERT_EQ(arena.resident_bytes(), ref.order.size() * slot_bytes);
    }

    const ArenaCounters c = arena.counters();
    EXPECT_EQ(c.hits, ref.hits);
    EXPECT_EQ(c.misses, ref.misses);
    EXPECT_EQ(c.evictions, ref.evictions);
  }
}

TEST(ClvArenaLruTest, EvictionSkipsPinnedSlots) {
  ClvArena arena;
  arena.init(4, 8, 2 * 8 * sizeof(float));  // capacity: 2 slots
  arena.acquire(0);
  arena.acquire(1);
  arena.pin(0);  // slot 0 is LRU but pinned: slot 1 must be the victim
  arena.acquire(2);
  EXPECT_TRUE(arena.resident(0));
  EXPECT_FALSE(arena.resident(1));
  EXPECT_TRUE(arena.resident(2));
  EXPECT_EQ(arena.counters().evictions, 1u);
  EXPECT_EQ(arena.lru_order_for_test(), (std::vector<int>{0, 2}));
}

TEST(ClvArenaLruTest, ExhaustionReportsClearMessage) {
  ClvArena arena;
  arena.init(4, 8, 1 * 8 * sizeof(float));  // capacity: 1 slot
  arena.acquire(0);
  arena.pin(0);
  try {
    arena.acquire(1);
    FAIL() << "acquire past an all-pinned budget must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("raise --clv-budget"),
              std::string::npos)
        << e.what();
  }
}

TEST(ClvArenaLruTest, PinLifecycleChecks) {
  ClvArena arena;
  arena.init(4, 8, 4 * 8 * sizeof(float));
  EXPECT_THROW(arena.pin(0), Error);  // not resident yet
  arena.acquire(0);
  EXPECT_THROW(arena.unpin(0), Error);  // never pinned
  arena.pin(0);
  arena.pin(0);  // pins nest
  arena.unpin(0);
  EXPECT_TRUE(arena.pinned(0));
  arena.release_eval_pins();
  EXPECT_FALSE(arena.pinned(0));
}

// --- layer 3: budgeted vs unbudgeted twin engines ---------------------------

struct Dataset {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
};

Dataset make_dataset(std::uint64_t seed, std::size_t n_taxa) {
  Rng rng(seed);
  Dataset d{seqgen::yule_tree(n_taxa, rng, 1.0, 0.1),
            seqgen::default_gtr_params(), {}};
  phylo::SubstitutionModel model(d.params);
  seqgen::SequenceEvolver ev(d.tree, model);
  d.data = phylo::PatternMatrix::compress(ev.evolve(180, rng));
  return d;
}

enum class BackendKind { kSerial, kThreaded };

struct BackendHolder {
  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<ExecutionBackend> backend;

  static BackendHolder make(BackendKind kind) {
    BackendHolder h;
    if (kind == BackendKind::kThreaded) {
      h.pool = std::make_unique<par::ThreadPool>(4);
      h.backend = std::make_unique<ThreadedBackend>(*h.pool);
    } else {
      h.backend = std::make_unique<SerialBackend>();
    }
    return h;
  }
};

/// Drive a budgeted engine and its unbudgeted twin through the same
/// randomized proposal storm (branch, NNI, SPR, model moves; random
/// accept/reject) and require bit-identical lnL at every evaluation, a
/// respected budget at every step, and — for tight budgets — actual
/// evictions, proving the recompute path ran.
void twin_storm(BackendKind kind, SiteRepeatsMode mode, ClvBudget budget,
                bool expect_evictions, std::uint64_t seed) {
  const Dataset d = make_dataset(seed, 10);
  BackendHolder h_budget = BackendHolder::make(kind);
  BackendHolder h_full = BackendHolder::make(kind);
  PlfEngine budgeted(d.data, d.params, d.tree, *h_budget.backend,
                     KernelVariant::kSimdCol, mode, DispatchMode::kPlan,
                     budget);
  PlfEngine full(d.data, d.params, d.tree, *h_full.backend,
                 KernelVariant::kSimdCol, mode, DispatchMode::kPlan);

  ASSERT_LE(budgeted.arena().budget_bytes(), full.arena().budget_bytes());
  EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());

  Rng rng(seed * 1031 + 7);
  for (int step = 0; step < 25; ++step) {
    SCOPED_TRACE(::testing::Message() << "step " << step);
    for (PlfEngine* e : {&budgeted, &full}) e->begin_proposal();

    const double u = rng.uniform();
    if (u < 0.40) {
      int node;
      do {
        node = static_cast<int>(rng.below(budgeted.tree().n_nodes()));
      } while (node == budgeted.tree().root());
      const double len = rng.uniform(0.01, 1.2);
      for (PlfEngine* e : {&budgeted, &full}) e->set_branch_length(node, len);
    } else if (u < 0.65) {
      const auto edges = budgeted.tree().internal_edge_nodes();
      ASSERT_FALSE(edges.empty());
      const int v = edges[rng.below(edges.size())];
      const bool swap_left = rng.uniform() < 0.5;
      for (PlfEngine* e : {&budgeted, &full}) e->apply_nni(v, swap_left);
    } else if (u < 0.80) {
      // SPR (never interleaved with other topology moves in one proposal).
      std::vector<int> prunable;
      for (std::size_t id = 0; id < budgeted.tree().n_nodes(); ++id) {
        if (!budgeted.tree().spr_valid_targets(static_cast<int>(id)).empty()) {
          prunable.push_back(static_cast<int>(id));
        }
      }
      ASSERT_FALSE(prunable.empty());
      const int s = prunable[rng.below(prunable.size())];
      const auto targets = budgeted.tree().spr_valid_targets(s);
      const int target = targets[rng.below(targets.size())];
      const double x =
          budgeted.tree().branch_length(target) * rng.uniform(0.2, 0.8);
      for (PlfEngine* e : {&budgeted, &full}) e->apply_spr(s, target, x);
    } else if (u < 0.90) {
      phylo::GtrParams p = budgeted.model_params();
      p.gamma_shape = rng.uniform(0.5, 2.0);
      for (PlfEngine* e : {&budgeted, &full}) e->set_model(p);
    } else {
      // Two evaluated moves in one proposal: flip-epoch overwrite path.
      const int leaf = budgeted.tree().leaf_of(
          static_cast<int>(rng.below(budgeted.data().n_taxa())));
      const double len = rng.uniform(0.01, 1.2);
      for (PlfEngine* e : {&budgeted, &full}) e->set_branch_length(leaf, len);
      EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
      for (PlfEngine* e : {&budgeted, &full}) {
        e->set_branch_length(leaf, len * 0.5);
      }
    }

    // (a) 0-ULP identical to the unbudgeted twin at every evaluation.
    EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
    // (b) the hard budget is respected at every step.
    EXPECT_LE(budgeted.arena().resident_bytes(),
              budgeted.arena().budget_bytes());

    if (rng.uniform() < 0.5) {
      for (PlfEngine* e : {&budgeted, &full}) e->accept();
    } else {
      for (PlfEngine* e : {&budgeted, &full}) e->reject();
    }
    EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
  }

  // A final accepted evaluation guarantees the root CLV is resident before
  // reading it raw: a reject may legitimately restore an evicted buffer
  // (node_cl on it PLF_CHECKs; the next dirty evaluation rematerializes).
  for (PlfEngine* e : {&budgeted, &full}) {
    e->set_branch_length(e->tree().leaf_of(0), 0.42);
  }
  EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
  // Whole root CLVs locked, not just the reduction.
  EXPECT_EQ(std::memcmp(budgeted.node_cl(budgeted.tree().root()),
                        full.node_cl(full.tree().root()),
                        d.data.n_patterns() * 4 * 4 * sizeof(float)),
            0);

  const ArenaCounters c = budgeted.arena().counters();
  if (expect_evictions) {
    EXPECT_GT(c.evictions, 0u) << "tight budget never evicted - storm too weak";
    EXPECT_GT(c.recompute_ops, 0u)
        << "evictions without rematerializations - closure never grew the set";
  }
  EXPECT_EQ(full.arena().counters().evictions, 0u);
}

ClvBudget fraction_budget(double f) {
  ClvBudget b;
  b.kind = ClvBudget::Kind::kFraction;
  b.fraction = f;
  return b;
}

using StormParam = std::tuple<BackendKind, SiteRepeatsMode>;

class ClvArenaStormTest : public ::testing::TestWithParam<StormParam> {};

TEST_P(ClvArenaStormTest, BudgetSweepBitIdenticalToUnbudgetedTwin) {
  const auto [kind, mode] = GetParam();
  // 100% holds everything: no evictions required. 0.75 and 0.5 must evict;
  // 0.5 is exactly the feasibility floor (one buffer per internal node).
  twin_storm(kind, mode, fraction_budget(1.0), false, 101);
  twin_storm(kind, mode, fraction_budget(0.75), true, 211);
  twin_storm(kind, mode, fraction_budget(0.5), true, 307);
}

TEST_P(ClvArenaStormTest, MinimumFeasibleByteBudgetClampsAndMatches) {
  const auto [kind, mode] = GetParam();
  // 1 byte clamps up to the minimum feasible working set — the harshest
  // legal budget, equivalent to fraction 0.5.
  ClvBudget b;
  b.kind = ClvBudget::Kind::kBytes;
  b.bytes = 1;
  twin_storm(kind, mode, b, true, 401);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ClvArenaStormTest,
    ::testing::Combine(
        ::testing::Values(BackendKind::kSerial, BackendKind::kThreaded),
        ::testing::Values(SiteRepeatsMode::kOff, SiteRepeatsMode::kOn)),
    [](const ::testing::TestParamInfo<StormParam>& info) {
      return std::string(std::get<0>(info.param) == BackendKind::kSerial
                             ? "serial"
                             : "threaded") +
             "_repeats_" +
             (std::get<1>(info.param) == SiteRepeatsMode::kOn ? "on" : "off");
    });

TEST(ClvArenaEngineTest, TinyBudgetClampsToOneBufferPerInternalNode) {
  const Dataset d = make_dataset(5, 9);
  SerialBackend backend;
  ClvBudget b;
  b.kind = ClvBudget::Kind::kBytes;
  b.bytes = 1;
  PlfEngine e(d.data, d.params, d.tree, backend, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan, b);
  std::size_t n_internal = 0;
  for (std::size_t id = 0; id < d.tree.n_nodes(); ++id) {
    if (!d.tree.node(static_cast<int>(id)).is_leaf()) ++n_internal;
  }
  const std::size_t slot_bytes = d.data.n_patterns() * 4 * 4 * sizeof(float);
  EXPECT_EQ(e.arena().budget_bytes(), n_internal * slot_bytes);
  // The floor is workable: a full evaluation completes and stays in budget.
  e.log_likelihood();
  EXPECT_LE(e.arena().resident_bytes(), e.arena().budget_bytes());
}

TEST(ClvArenaEngineTest, UnlimitedBudgetPreallocatesEagerly) {
  const Dataset d = make_dataset(6, 8);
  SerialBackend backend;
  PlfEngine e(d.data, d.params, d.tree, backend);
  std::size_t n_internal = 0;
  for (std::size_t id = 0; id < d.tree.n_nodes(); ++id) {
    if (!d.tree.node(static_cast<int>(id)).is_leaf()) ++n_internal;
  }
  const std::size_t slot_bytes = d.data.n_patterns() * 4 * 4 * sizeof(float);
  // Historical memory behaviour: both buffers resident from construction,
  // so engine.clv_bytes is meaningful before the first evaluation.
  EXPECT_EQ(e.arena().resident_bytes(), 2 * n_internal * slot_bytes);
  EXPECT_EQ(e.arena().counters().evictions, 0u);
  // node_cl is valid (zeroed) before the first evaluation, as before.
  EXPECT_NE(e.node_cl(d.tree.root()), nullptr);
}

TEST(ClvArenaEngineTest, EvictedAncestorIsRematerializedTransparently) {
  const Dataset d = make_dataset(7, 10);
  SerialBackend b1, b2;
  PlfEngine e(d.data, d.params, d.tree, b1, KernelVariant::kSimdCol,
              SiteRepeatsMode::kOff, DispatchMode::kPlan, fraction_budget(1.0));
  PlfEngine twin(d.data, d.params, d.tree, b2, KernelVariant::kSimdCol,
                 SiteRepeatsMode::kOff, DispatchMode::kPlan);
  EXPECT_EQ(e.log_likelihood(), twin.log_likelihood());

  // Evict an internal node OFF the dirty path: the next evaluation only
  // dirties leaf->root, yet must grow its recompute set with the evicted
  // ancestor (it feeds a path node) and reproduce the evicted bits exactly.
  const int leaf = e.tree().leaf_of(0);
  std::vector<char> on_path(e.tree().n_nodes(), 0);
  for (int id = e.tree().node(leaf).parent; id != phylo::kNoNode;
       id = e.tree().node(id).parent) {
    on_path[static_cast<std::size_t>(id)] = 1;
  }
  int off_path = phylo::kNoNode;
  for (std::size_t id = 0; id < e.tree().n_nodes(); ++id) {
    const phylo::TreeNode& n = e.tree().node(static_cast<int>(id));
    if (!n.is_leaf() && on_path[id] == 0) {
      // Only useful if some path node reads it; with a leaf->root dirty path
      // every off-path internal child of a path node qualifies.
      const int parent = n.parent;
      if (parent != phylo::kNoNode && on_path[static_cast<std::size_t>(parent)] != 0) {
        off_path = static_cast<int>(id);
        break;
      }
    }
  }
  ASSERT_NE(off_path, phylo::kNoNode) << "degenerate tree for this test";

  e.evict_node_for_test(off_path);
  EXPECT_FALSE(e.node_resident(off_path));
  const std::uint64_t remats_before = e.arena().counters().recompute_ops;

  for (PlfEngine* eng : {&e, &twin}) eng->set_branch_length(leaf, 0.37);
  EXPECT_EQ(e.log_likelihood(), twin.log_likelihood());
  EXPECT_TRUE(e.node_resident(off_path));
  EXPECT_GT(e.arena().counters().recompute_ops, remats_before);
  // The rematerialized CLV is bit-identical to the never-evicted twin's.
  EXPECT_EQ(std::memcmp(e.node_cl(off_path), twin.node_cl(off_path),
                        d.data.n_patterns() * 4 * 4 * sizeof(float)),
            0);
}

}  // namespace
}  // namespace plf::core
