// Cross-backend differential harness for the site-repeat and plan-dispatch
// paths.
//
// Properties under test: (a) site-repeat compaction only skips arithmetic
// whose result is already known, so for any (data, tree, model) the compacted
// engine must match the dense engine BIT FOR BIT on the same backend and
// kernel variant — 0 ULP, not "close"; (b) batched PlfPlan dispatch only
// regroups and fuses the identical per-site kernel work, so a plan-dispatch
// engine must match its per-call twin bit for bit on every backend × variant
// × repeats combination, through proposals and rejects. Across backends and variants the
// summation order changes, so those comparisons get per-backend tolerances
// (ULP bounds on CLV entries, relative bounds on lnL against an independent
// double-precision reference).
//
// Inputs are randomized with realistic structure: Yule trees and Seq-Gen
// style evolved alignments, swept over branch-length extremes (near-zero,
// typical, saturated) and gamma-rate-category counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <tuple>

#include "cell/machine.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "gpu/plf_gpu.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "test_support.hpp"

namespace plf::core {
namespace {

enum class BackendKind { kSerial, kThreaded, kCell, kGpu };

const char* name_of(BackendKind b) {
  switch (b) {
    case BackendKind::kSerial: return "serial";
    case BackendKind::kThreaded: return "threaded";
    case BackendKind::kCell: return "cell";
    case BackendKind::kGpu: return "gpu";
  }
  return "?";
}

struct BackendHolder {
  std::unique_ptr<par::ThreadPool> pool;
  std::unique_ptr<ExecutionBackend> backend;

  static BackendHolder make(BackendKind kind) {
    BackendHolder h;
    switch (kind) {
      case BackendKind::kSerial:
        h.backend = std::make_unique<SerialBackend>();
        break;
      case BackendKind::kThreaded:
        h.pool = std::make_unique<par::ThreadPool>(3);
        h.backend = std::make_unique<ThreadedBackend>(*h.pool);
        break;
      case BackendKind::kCell: {
        cell::CellConfig cfg;
        cfg.n_spes = 4;
        h.backend = std::make_unique<cell::CellMachine>(cfg);
        break;
      }
      case BackendKind::kGpu:
        h.backend = std::make_unique<gpu::GpuPlf>(gpu::GpuPlfConfig{});
        break;
    }
    return h;
  }
};

/// ULP distance between two finite same-sign floats (CLV entries are
/// non-negative, so the monotone integer reinterpretation applies directly).
std::uint32_t ulp_distance(float a, float b) {
  std::uint32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(float));
  std::memcpy(&ib, &b, sizeof(float));
  return ia > ib ? ia - ib : ib - ia;
}

/// Relative lnL tolerance vs the double-precision reference. The simulated
/// accelerators run the identical float kernels, but their partitioning
/// changes the root-reduce summation order, so they get a little headroom.
double lnl_rel_tol(BackendKind b) {
  switch (b) {
    case BackendKind::kSerial:
    case BackendKind::kThreaded: return 2e-4;
    case BackendKind::kCell:
    case BackendKind::kGpu: return 3e-4;
  }
  return 2e-4;
}

struct Dataset {
  phylo::Tree tree;
  phylo::GtrParams params;
  phylo::PatternMatrix data;
  double ref_lnl = 0.0;
};

Dataset make_dataset(std::uint64_t seed, std::size_t K, double branch_scale) {
  Rng rng(seed);
  Dataset d{seqgen::yule_tree(9, rng, 1.0, branch_scale),
            seqgen::default_gtr_params(), {}, 0.0};
  d.params.n_rate_categories = K;
  phylo::SubstitutionModel model(d.params);
  seqgen::SequenceEvolver ev(d.tree, model);
  // Keep the raw columns instead of compressing to distinct patterns:
  // repeated columns are exactly what the site-repeat machinery must find
  // (and near-identical sequences at the small branch scale would otherwise
  // collapse to a handful of patterns with nothing left to repeat).
  const phylo::Alignment aln = ev.evolve(240, rng);
  std::vector<std::vector<phylo::StateMask>> cols(aln.n_columns());
  for (std::size_t c = 0; c < aln.n_columns(); ++c) {
    cols[c].resize(aln.n_taxa());
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) cols[c][t] = aln.at(t, c);
  }
  d.data = phylo::PatternMatrix::from_patterns(
      aln.names(), cols, std::vector<std::uint32_t>(cols.size(), 1));
  d.ref_lnl = test::reference_log_likelihood(d.tree, model, d.data);
  return d;
}

using Param = std::tuple<BackendKind, KernelVariant>;

class BackendDiffTest : public ::testing::TestWithParam<Param> {};

TEST_P(BackendDiffTest, RepeatsOnOffAgreeBitwiseAndMatchReference) {
  const BackendKind kind = std::get<0>(GetParam());
  const KernelVariant variant = std::get<1>(GetParam());

  // Branch-length extremes: near-zero (sequences nearly identical — repeat
  // heaven, and CLVs hug the tip partials), typical, and saturated (CLVs
  // converge toward pi; classes barely repeat at upper nodes).
  for (const double scale : {0.0005, 0.1, 2.5}) {
    for (const std::size_t K : {std::size_t{1}, std::size_t{4}}) {
      for (const std::uint64_t seed : {11ull, 23ull}) {
        SCOPED_TRACE(::testing::Message()
                     << "backend=" << name_of(kind)
                     << " variant=" << to_string(variant) << " scale=" << scale
                     << " K=" << K << " seed=" << seed);
        const Dataset d = make_dataset(seed, K, scale);
        const std::size_t m = d.data.n_patterns();

        BackendHolder h_off = BackendHolder::make(kind);
        BackendHolder h_on = BackendHolder::make(kind);
        PlfEngine dense(d.data, d.params, d.tree, *h_off.backend, variant,
                        SiteRepeatsMode::kOff, DispatchMode::kPerCall);
        PlfEngine compact(d.data, d.params, d.tree, *h_on.backend, variant,
                          SiteRepeatsMode::kOn, DispatchMode::kPerCall);

        // Plan-dispatch twins: same backend kind, same variant, same repeat
        // mode — only the dispatch path differs. Every comparison between a
        // per-call engine and its twin below is exact (EXPECT_EQ, memcmp),
        // which is the acceptance bar for the PlfPlan refactor: batching and
        // fusing must not move a single bit on any backend.
        BackendHolder h_off_plan = BackendHolder::make(kind);
        BackendHolder h_on_plan = BackendHolder::make(kind);
        PlfEngine dense_plan(d.data, d.params, d.tree, *h_off_plan.backend,
                             variant, SiteRepeatsMode::kOff,
                             DispatchMode::kPlan);
        PlfEngine compact_plan(d.data, d.params, d.tree, *h_on_plan.backend,
                               variant, SiteRepeatsMode::kOn,
                               DispatchMode::kPlan);

        const double lnl_dense = dense.log_likelihood();
        const double lnl_compact = compact.log_likelihood();

        // Same backend, same variant: bit-identical lnL and root CLVs.
        EXPECT_EQ(lnl_dense, lnl_compact);
        EXPECT_EQ(std::memcmp(dense.node_cl(dense.tree().root()),
                              compact.node_cl(compact.tree().root()),
                              m * K * 4 * sizeof(float)),
                  0);

        // Per-call vs plan: bit-identical lnL and root CLVs, repeats on and
        // off alike, and the plan path must actually have built plans.
        EXPECT_EQ(lnl_dense, dense_plan.log_likelihood());
        EXPECT_EQ(lnl_compact, compact_plan.log_likelihood());
        EXPECT_EQ(std::memcmp(dense.node_cl(dense.tree().root()),
                              dense_plan.node_cl(dense_plan.tree().root()),
                              m * K * 4 * sizeof(float)),
                  0);
        EXPECT_EQ(std::memcmp(compact.node_cl(compact.tree().root()),
                              compact_plan.node_cl(compact_plan.tree().root()),
                              m * K * 4 * sizeof(float)),
                  0);
        EXPECT_EQ(dense.stats().plan_builds, 0u);
        EXPECT_GT(dense_plan.stats().plan_builds, 0u);
        EXPECT_GT(dense_plan.stats().plan_ops, 0u);
        // Identical work, batched: the kernel-call accounting must agree.
        EXPECT_EQ(dense.stats().pattern_iterations,
                  dense_plan.stats().pattern_iterations);
        EXPECT_EQ(compact.stats().pattern_iterations,
                  compact_plan.stats().pattern_iterations);

        // Tip specialization: on tip-capable backends the plan engine must
        // have routed cherries through the pair-table gather (every binary
        // tree with more than one internal node has a cherry below the
        // root), while the per-call engine stays fully generic — it is the
        // exact A/B baseline the bitwise comparisons above rely on.
        EXPECT_EQ(dense.stats().tip_tt_ops, 0u);
        EXPECT_EQ(dense.stats().tip_ti_ops, 0u);
        EXPECT_EQ(dense.stats().tip_tables_built, 0u);
        if (has_capability(h_off_plan.backend->capabilities(),
                           Capabilities::kTipKernels)) {
          EXPECT_GT(dense_plan.stats().tip_tt_ops, 0u);
          EXPECT_GT(dense_plan.stats().tip_tables_built, 0u);
          EXPECT_GT(compact_plan.stats().tip_tt_ops, 0u);
        } else {
          EXPECT_EQ(dense_plan.stats().tip_tt_ops, 0u);
          EXPECT_EQ(dense_plan.stats().tip_tables_built, 0u);
        }

        // The compacted path must actually have run where supported, and
        // must have fallen back (not silently diverged) where not.
        if (has_capability(h_on.backend->capabilities(),
                           Capabilities::kSiteRepeats)) {
          ASSERT_TRUE(compact.site_repeats_enabled());
          EXPECT_GT(compact.stats().repeat_down_hits, 0u);
          EXPECT_GT(compact.stats().repeat_compression_ratio(), 1.0);
          // Compacted kernels iterate fewer sites than the dense engine.
          EXPECT_LT(compact.stats().pattern_iterations,
                    dense.stats().pattern_iterations);
        } else {
          EXPECT_FALSE(compact.site_repeats_enabled());
          EXPECT_EQ(compact.stats().repeat_down_hits, 0u);
        }

        // Both must agree with the independent double-precision pruning
        // reference within the backend's tolerance.
        const double tol = std::abs(d.ref_lnl) * lnl_rel_tol(kind);
        EXPECT_NEAR(lnl_dense, d.ref_lnl, tol);
        EXPECT_NEAR(lnl_compact, d.ref_lnl, tol);

        // Mid-run differential: a branch-length move plus an NNI proposal
        // exercises class invalidation (and, for the plan engines, partial
        // plans plus the incremental scaler-total path) under this backend;
        // all four engines must stay bitwise-locked through it.
        for (PlfEngine* e :
             {&dense, &compact, &dense_plan, &compact_plan}) {
          e->set_branch_length(e->tree().leaf_of(1), 1.7);
        }
        const auto edges = dense.tree().internal_edge_nodes();
        ASSERT_FALSE(edges.empty());
        for (PlfEngine* e :
             {&dense, &compact, &dense_plan, &compact_plan}) {
          e->begin_proposal();
          e->apply_nni(edges.front(), true);
        }
        EXPECT_EQ(dense.log_likelihood(), compact.log_likelihood());
        EXPECT_EQ(dense.log_likelihood(), dense_plan.log_likelihood());
        EXPECT_EQ(compact.log_likelihood(), compact_plan.log_likelihood());
        for (PlfEngine* e :
             {&dense, &compact, &dense_plan, &compact_plan}) {
          e->reject();
        }
        EXPECT_EQ(dense.log_likelihood(), compact.log_likelihood());
        EXPECT_EQ(dense.log_likelihood(), dense_plan.log_likelihood());
        EXPECT_EQ(compact.log_likelihood(), compact_plan.log_likelihood());
      }
    }
  }
}

// Scalar and SIMD variants reorder the per-entry dot products, so their CLVs
// are not bit-identical — but they must stay within a small ULP envelope,
// with repeats on and off alike.
TEST(BackendDiffCrossVariantTest, ScalarVsSimdColWithinUlpEnvelope) {
  constexpr std::uint32_t kMaxUlp = 256;
  for (const double scale : {0.0005, 0.1, 2.5}) {
    const Dataset d = make_dataset(31, 4, scale);
    const std::size_t m = d.data.n_patterns();
    for (const auto mode : {SiteRepeatsMode::kOff, SiteRepeatsMode::kOn}) {
      SCOPED_TRACE(::testing::Message()
                   << "scale=" << scale << " repeats=" << to_string(mode));
      SerialBackend b1, b2;
      PlfEngine scalar(d.data, d.params, d.tree, b1, KernelVariant::kScalar,
                       mode);
      PlfEngine simd(d.data, d.params, d.tree, b2, KernelVariant::kSimdCol,
                     mode);
      EXPECT_NEAR(scalar.log_likelihood(), simd.log_likelihood(),
                  std::abs(d.ref_lnl) * 2e-5);
      const float* a = scalar.node_cl(scalar.tree().root());
      const float* b = simd.node_cl(simd.tree().root());
      std::uint32_t worst = 0;
      for (std::size_t i = 0; i < m * 4 * 4; ++i) {
        worst = std::max(worst, ulp_distance(a[i], b[i]));
      }
      EXPECT_LE(worst, kMaxUlp);
    }
  }
}

// Serial and threaded backends run the same kernel over different partitions
// of the same index range; partitioning must not change a single bit.
TEST(BackendDiffCrossBackendTest, SerialVsThreadedBitIdentical) {
  const Dataset d = make_dataset(47, 4, 0.1);
  const std::size_t m = d.data.n_patterns();
  for (const auto mode : {SiteRepeatsMode::kOff, SiteRepeatsMode::kOn}) {
    SCOPED_TRACE(to_string(mode));
    BackendHolder hs = BackendHolder::make(BackendKind::kSerial);
    BackendHolder ht = BackendHolder::make(BackendKind::kThreaded);
    PlfEngine serial(d.data, d.params, d.tree, *hs.backend,
                     KernelVariant::kSimdCol, mode);
    PlfEngine threaded(d.data, d.params, d.tree, *ht.backend,
                       KernelVariant::kSimdCol, mode);
    serial.log_likelihood();
    threaded.log_likelihood();
    EXPECT_EQ(std::memcmp(serial.node_cl(serial.tree().root()),
                          threaded.node_cl(threaded.tree().root()),
                          m * 4 * 4 * sizeof(float)),
              0);
  }
}

// --- budgeted CLV arena differential ----------------------------------------
//
// A budgeted engine rematerializes evicted CLVs through the same kernels the
// unbudgeted twin used to compute them, so eviction must not move a single
// bit on ANY backend, in EITHER dispatch mode, repeats on or off. The twins'
// kernel-call accounting legitimately differs (rematerialization is extra
// work), so only lnL and CLV bits are compared — never stats.

using BudgetParam = std::tuple<BackendKind, DispatchMode, SiteRepeatsMode>;

class BudgetedDiffTest : public ::testing::TestWithParam<BudgetParam> {};

TEST_P(BudgetedDiffTest, HalfBudgetBitIdenticalToUnbudgetedTwin) {
  const auto [kind, dispatch, mode] = GetParam();
  const Dataset d = make_dataset(59, 4, 0.1);
  const std::size_t m = d.data.n_patterns();

  BackendHolder h_budget = BackendHolder::make(kind);
  BackendHolder h_full = BackendHolder::make(kind);
  ClvBudget half;
  half.kind = ClvBudget::Kind::kFraction;
  half.fraction = 0.5;  // the minimum feasible working set
  PlfEngine budgeted(d.data, d.params, d.tree, *h_budget.backend,
                     KernelVariant::kSimdCol, mode, dispatch, half);
  PlfEngine full(d.data, d.params, d.tree, *h_full.backend,
                 KernelVariant::kSimdCol, mode, dispatch);

  EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());

  // Branch moves, an NNI proposal with reject, and a double-move proposal:
  // enough churn that the half-size arena must recycle buffers.
  Rng rng(59);
  for (int step = 0; step < 12; ++step) {
    SCOPED_TRACE(::testing::Message() << "step " << step);
    for (PlfEngine* e : {&budgeted, &full}) e->begin_proposal();
    if (step % 3 == 0) {
      const auto edges = budgeted.tree().internal_edge_nodes();
      ASSERT_FALSE(edges.empty());
      const int v = edges[rng.below(edges.size())];
      for (PlfEngine* e : {&budgeted, &full}) e->apply_nni(v, true);
    } else {
      int node;
      do {
        node = static_cast<int>(rng.below(budgeted.tree().n_nodes()));
      } while (node == budgeted.tree().root());
      const double len = rng.uniform(0.01, 1.2);
      for (PlfEngine* e : {&budgeted, &full}) e->set_branch_length(node, len);
    }
    EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
    EXPECT_LE(budgeted.arena().resident_bytes(),
              budgeted.arena().budget_bytes());
    if (step % 2 == 0) {
      for (PlfEngine* e : {&budgeted, &full}) e->accept();
    } else {
      for (PlfEngine* e : {&budgeted, &full}) e->reject();
    }
    EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
  }

  // A final accepted evaluation guarantees the root CLV is resident before
  // reading it raw: a reject may legitimately restore an evicted buffer
  // (node_cl on it PLF_CHECKs; the next dirty evaluation rematerializes).
  for (PlfEngine* e : {&budgeted, &full}) {
    e->set_branch_length(e->tree().leaf_of(0), 0.42);
  }
  EXPECT_EQ(budgeted.log_likelihood(), full.log_likelihood());
  EXPECT_EQ(std::memcmp(budgeted.node_cl(budgeted.tree().root()),
                        full.node_cl(full.tree().root()),
                        m * 4 * 4 * sizeof(float)),
            0);
  EXPECT_GT(budgeted.arena().counters().evictions, 0u);
  EXPECT_EQ(full.arena().counters().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BudgetedDiffTest,
    ::testing::Combine(
        ::testing::Values(BackendKind::kSerial, BackendKind::kThreaded,
                          BackendKind::kCell, BackendKind::kGpu),
        ::testing::Values(DispatchMode::kPerCall, DispatchMode::kPlan),
        ::testing::Values(SiteRepeatsMode::kOff, SiteRepeatsMode::kOn)),
    [](const ::testing::TestParamInfo<BudgetParam>& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param)) + "_repeats_" +
             (std::get<2>(info.param) == SiteRepeatsMode::kOn ? "on" : "off");
    });

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDiffTest,
    ::testing::Combine(
        ::testing::Values(BackendKind::kSerial, BackendKind::kThreaded,
                          BackendKind::kCell, BackendKind::kGpu),
        ::testing::Values(KernelVariant::kScalar, KernelVariant::kSimdCol,
                          KernelVariant::kSimdCol8)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string v = to_string(std::get<1>(info.param));
      for (auto& c : v) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return std::string(name_of(std::get<0>(info.param))) + "_" + v;
    });

}  // namespace
}  // namespace plf::core
