#include "bench_compare_lib.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace plf::tools {

namespace {

constexpr const char* kSchema = "plf-bench-v1";

const json::Value::Object& cases_of(const json::Value& doc, const char* which) {
  const json::Value* schema = doc.find("schema");
  PLF_CHECK(schema != nullptr && schema->is_string() &&
                schema->as_string() == kSchema,
            std::string("bench_compare: ") + which +
                " document is not schema plf-bench-v1");
  const json::Value* cases = doc.find("cases");
  PLF_CHECK(cases != nullptr && cases->is_object(),
            std::string("bench_compare: ") + which +
                " document has no \"cases\" object");
  return cases->as_object();
}

double case_min(const json::Value& c, const std::string& name,
                const char* which) {
  const json::Value* v = c.find("min");
  PLF_CHECK(v != nullptr && v->is_number(),
            "bench_compare: case '" + name + "' in " + which +
                " document has no numeric \"min\"");
  return v->as_number();
}

}  // namespace

const char* to_string(CaseStatus s) {
  switch (s) {
    case CaseStatus::kOk: return "ok";
    case CaseStatus::kImproved: return "improved";
    case CaseStatus::kRegressed: return "REGRESSED";
    case CaseStatus::kNew: return "new";
    case CaseStatus::kMissing: return "MISSING";
  }
  return "?";
}

CompareReport compare_benches(const json::Value& baseline,
                              const json::Value& current,
                              const CompareOptions& opts) {
  const json::Value::Object& base_cases = cases_of(baseline, "baseline");
  const json::Value::Object& cur_cases = cases_of(current, "current");
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

  CompareReport report;
  for (const auto& [name, base_case] : base_cases) {
    CaseResult r;
    r.name = name;
    r.baseline_min = case_min(base_case, name, "baseline");
    r.threshold = base_case.number_or("threshold", opts.default_threshold);
    const json::Value* cur = current.at("cases").find(name);
    if (cur == nullptr) {
      r.status = CaseStatus::kMissing;
      r.current_min = kNan;
      r.ratio = kNan;
      ++report.missing;
    } else {
      r.current_min = case_min(*cur, name, "current");
      r.ratio = r.baseline_min > 0.0 ? r.current_min / r.baseline_min : kNan;
      if (!std::isfinite(r.ratio)) {
        // A zero/negative baseline cannot be compared relatively; treat as ok
        // rather than inventing a verdict from garbage.
        r.status = CaseStatus::kOk;
        ++report.ok;
      } else if (r.ratio > 1.0 + r.threshold) {
        r.status = CaseStatus::kRegressed;
        ++report.regressed;
      } else if (r.ratio < 1.0 - r.threshold) {
        r.status = CaseStatus::kImproved;
        ++report.improved;
      } else {
        r.status = CaseStatus::kOk;
        ++report.ok;
      }
    }
    report.cases.push_back(std::move(r));
  }

  for (const auto& [name, cur_case] : cur_cases) {
    if (baseline.at("cases").find(name) != nullptr) continue;
    CaseResult r;
    r.name = name;
    r.status = CaseStatus::kNew;
    r.baseline_min = kNan;
    r.current_min = case_min(cur_case, name, "current");
    r.ratio = kNan;
    r.threshold = opts.default_threshold;
    ++report.new_cases;
    report.cases.push_back(std::move(r));
  }

  return report;
}

std::string format_report(const CompareReport& report) {
  std::ostringstream os;
  Table t("bench comparison (min-of-N seconds, current vs baseline)");
  t.header({"case", "baseline", "current", "ratio", "thresh", "status"});
  auto cell = [](double v, int prec) {
    return std::isfinite(v) ? Table::num(v, prec) : std::string("-");
  };
  for (const CaseResult& r : report.cases) {
    t.row({r.name, cell(r.baseline_min, 6), cell(r.current_min, 6),
           cell(r.ratio, 3), "+" + Table::num(100.0 * r.threshold, 0) + "%",
           to_string(r.status)});
  }
  os << t;
  os << "summary: " << report.ok << " ok, " << report.improved
     << " improved, " << report.regressed << " regressed, "
     << report.new_cases << " new, " << report.missing << " missing\n";
  if (report.failed()) {
    os << "verdict: FAIL (perf regression gate)\n";
  } else {
    os << "verdict: PASS\n";
  }
  return os.str();
}

}  // namespace plf::tools
