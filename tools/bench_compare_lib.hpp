// Noise-aware benchmark regression comparison (library half).
//
// bench_compare diffs a freshly generated BENCH_<date>.json against the
// committed bench/baseline.json. Noise handling is the min-of-N scheme the
// suite runner pairs with: each case value is the *minimum* over reps (the
// least-perturbed observation of the same deterministic work), and a case
// only counts as a regression when current_min exceeds baseline_min by more
// than the case's relative threshold. Thresholds live in the baseline file
// per case (engine/threaded cases are noisier than tight kernel loops), with
// a CLI default for cases that do not carry one.
//
// Split from the CLI so tests/bench_compare_test.cpp can drive the logic on
// synthetic documents without spawning processes.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace plf::tools {

enum class CaseStatus : unsigned char {
  kOk,        ///< within threshold either way
  kImproved,  ///< faster than baseline by more than the threshold
  kRegressed, ///< slower than baseline by more than the threshold (failure)
  kNew,       ///< in current only (informational; baseline needs a refresh)
  kMissing,   ///< in baseline only (failure: a case silently disappeared)
};

const char* to_string(CaseStatus s);

struct CaseResult {
  std::string name;
  CaseStatus status = CaseStatus::kOk;
  double baseline_min = 0.0;  ///< seconds (NaN for kNew)
  double current_min = 0.0;   ///< seconds (NaN for kMissing)
  double ratio = 0.0;         ///< current/baseline (NaN when either is absent)
  double threshold = 0.0;     ///< relative threshold applied to this case
};

struct CompareOptions {
  /// Relative slowdown tolerated before a case regresses, applied when the
  /// baseline case carries no per-case "threshold" key.
  double default_threshold = 0.15;
};

struct CompareReport {
  std::vector<CaseResult> cases;  ///< baseline order, then new cases
  int ok = 0;
  int improved = 0;
  int regressed = 0;
  int new_cases = 0;
  int missing = 0;

  /// Gate verdict: regressions and vanished cases fail the build.
  bool failed() const { return regressed > 0 || missing > 0; }
};

/// Compare two parsed bench documents (both must be schema "plf-bench-v1";
/// throws plf::Error otherwise or when "cases" is malformed).
CompareReport compare_benches(const json::Value& baseline,
                              const json::Value& current,
                              const CompareOptions& opts);

/// Human-readable table plus a one-line verdict, ready for stdout.
std::string format_report(const CompareReport& report);

}  // namespace plf::tools
