#!/usr/bin/env bash
# Correctness gate: builds and tests the tree under every checking mode.
#
#   tools/check.sh              # run everything available on this host
#   tools/check.sh plain        # RelWithDebInfo build + ctest
#   tools/check.sh checked      # checked contracts + site-repeat diff suite
#   tools/check.sh asan         # ASan+UBSan preset + ctest
#   tools/check.sh tsan         # TSan preset + ctest
#   tools/check.sh tidy         # clang-tidy over src/ (skipped if absent)
#   tools/check.sh lint         # plf_lint project invariants over src/
#   tools/check.sh tsa          # Clang Thread Safety build (skipped if no clang)
#   tools/check.sh bench        # quick bench suite + warn-only compare
#
# Stages that need a tool the host lacks (clang-tidy, clang++ for tsa) are
# skipped with a warning rather than failed, so the script is usable both on
# dev machines and as the single entry point for CI (which installs
# everything).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAILED=()
SKIPPED=()

note() { printf '\n\033[1;34m== %s ==\033[0m\n' "$*"; }
warn() { printf '\033[1;33mwarning: %s\033[0m\n' "$*" >&2; }

# Steps are chained with && because stages run inside an if-condition
# (run_stage), which suppresses `set -e` in the function body: without the
# chain a failed configure/build would fall through to ctest against a stale
# tree and could be masked as a pass.
run_preset() {
  local preset="$1"
  note "preset '${preset}': configure" &&
    cmake --preset "${preset}" &&
    note "preset '${preset}': build" &&
    cmake --build --preset "${preset}" -j "${JOBS}" &&
    note "preset '${preset}': ctest" &&
    ctest --preset "${preset}"
}

stage_plain() { run_preset default; }
stage_asan()  { run_preset asan-ubsan; }
stage_tsan()  { run_preset tsan; }

# Checked-contract build running the site-repeat, plan-dispatch, and
# tip-kernel differential suites: every backend x repeats on/off x
# percall/plan cross-check plus the repeat-class, plan, and tip-kernel
# conformance tests, with the PLF_DCHECK-level contracts (index monotonicity,
# plan leveling, tip-state range etc.) armed.
stage_checked() {
  note "preset 'checked': configure" &&
    cmake --preset checked &&
    note "preset 'checked': build" &&
    cmake --build --preset checked -j "${JOBS}" &&
    note "preset 'checked': differential suite" &&
    ctest --preset checked \
      -R 'BackendDiff|SiteRepeats|Repeats|Contract|Check|Plan|ComputeLevels|DispatchMode|IncrementalScaler|TipKernel|TipPairTable|FusedScale|Arena|Budget|Checkpoint|InstanceScheduler|Partition|Coupled|Telemetry|StreamingEss|SplitRhat|DiagnosticsEdge'
}

# Quick bench-suite smoke: produces a schema-valid BENCH json and runs the
# regression compare warn-only (quick numbers are too noisy to gate on; the
# full-run gate is a manual/nightly step — see docs/BENCHMARKING.md).
stage_bench() {
  local out
  out="$(mktemp /tmp/plf_bench_smoke.XXXXXX.json)" &&
    note "bench: quick suite" &&
    tools/bench.sh --quick --out "${out}" &&
    note "bench: schema check + warn-only compare" &&
    python3 -m json.tool "${out}" >/dev/null &&
    build/tools/bench_compare bench/baseline.json "${out}" --warn-only &&
    rm -f "${out}"
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    warn "clang-tidy not found on PATH; skipping the lint stage"
    SKIPPED+=(tidy)
    return 0
  fi
  note "preset 'tidy': configure + build (clang-tidy on every TU)" &&
    cmake --preset tidy &&
    cmake --build --preset tidy -j "${JOBS}"
}

# Project-invariant linter (docs/STATIC_ANALYSIS.md): builds plf_lint in the
# default tree and runs it over the compile database. Exit 1 = unsuppressed
# findings; the suppression file is the only sanctioned escape hatch.
stage_lint() {
  note "lint: configure + build plf_lint" &&
    cmake --preset default &&
    cmake --build --preset default -j "${JOBS}" --target plf_lint &&
    note "lint: plf_lint over src/" &&
    build-default/tools/plf_lint \
      --compile-commands build-default/compile_commands.json \
      --root . \
      --suppressions tools/plf_lint/suppressions.json
}

# Compile-time concurrency proofs: build the whole tree under Clang with
# -Wthread-safety (and the beta/precise groups) as errors. Needs clang++ —
# gcc parses the annotations to nothing, so there is nothing to check there.
stage_tsa() {
  if ! command -v clang++ >/dev/null 2>&1; then
    warn "clang++ not found on PATH; skipping the tsa stage"
    SKIPPED+=(tsa)
    return 0
  fi
  note "preset 'tsa': configure + build (-Werror=thread-safety)" &&
    cmake --preset tsa &&
    cmake --build --preset tsa -j "${JOBS}"
}

run_stage() {
  local name="$1"
  if "stage_${name}"; then
    return 0
  else
    FAILED+=("${name}")
    return 0
  fi
}

STAGES=("$@")
if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=(plain checked asan tsan tidy lint tsa bench)
fi

for s in "${STAGES[@]}"; do
  case "$s" in
    plain|checked|asan|tsan|tidy|lint|tsa|bench) run_stage "$s" ;;
    *) echo "unknown stage '$s' (expected plain|checked|asan|tsan|tidy|lint|tsa|bench)" >&2
       exit 2 ;;
  esac
done

note "summary"
if [[ ${#SKIPPED[@]} -gt 0 ]]; then
  echo "skipped: ${SKIPPED[*]} (missing tools)"
fi
if [[ ${#FAILED[@]} -gt 0 ]]; then
  echo "FAILED stages: ${FAILED[*]}"
  exit 1
fi
echo "all requested stages passed"
