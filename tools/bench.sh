#!/usr/bin/env bash
# Run the unified bench suite and write BENCH_<UTC-date>.json at the repo
# root. See docs/BENCHMARKING.md for the schema and baseline-refresh policy.
#
#   tools/bench.sh [--quick] [--out FILE] [--reps N] [--build-dir DIR]
#
#   --quick      fewer iterations/reps (CI smoke; compare warn-only)
#   --out FILE   output path (default: BENCH_<UTC-date>.json in repo root)
#   --reps N     repetitions per case (default: suite's default)
#   --build-dir  existing CMake build directory (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
out=""
quick=""
reps=""

while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick="--quick" ;;
    --out) out="$2"; shift ;;
    --reps) reps="$2"; shift ;;
    --build-dir) build_dir="$2"; shift ;;
    *) echo "usage: $0 [--quick] [--out FILE] [--reps N] [--build-dir DIR]" >&2
       exit 2 ;;
  esac
  shift
done

if [ -z "$out" ]; then
  out="$repo_root/BENCH_$(date -u +%Y-%m-%d).json"
fi

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_suite bench_compare -j"$(nproc)"

git_sha="$(git -C "$repo_root" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"

"$build_dir/bench/bench_suite" \
  --out "$out" \
  --git-sha "$git_sha" \
  ${quick:+$quick} \
  ${reps:+--reps "$reps"}

echo "bench.sh: wrote $out"
echo "bench.sh: compare against the committed baseline with:"
echo "  $build_dir/tools/bench_compare $repo_root/bench/baseline.json $out"
