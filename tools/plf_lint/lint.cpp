#include "plf_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json_util.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace plf::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Two-character operators we must not split (":" ":" would break the
/// "std :: thread" match; "=" "=" would make every assignment look like a
/// comparison). Everything else tokenizes one char at a time.
constexpr const char* kTwoCharOps[] = {"::", "==", "!=", "<=", ">=", "&&",
                                       "||", "->", "++", "--", "+=", "-=",
                                       "*=", "/=", "|=", "&=", "^="};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      while (p < n && src[p] != '(') ++p;
      const std::string close =
          ")" + std::string(src.substr(i + 2, p - (i + 2))) + "\"";
      const std::size_t end = src.find(close, p);
      const std::size_t stop = end == std::string_view::npos ? n : end + close.size();
      const int start_line = line;
      for (std::size_t q = i; q < stop; ++q) {
        if (src[q] == '\n') ++line;
      }
      out.push_back(Token{Token::Kind::kString,
                          std::string(src.substr(i, stop - i)), start_line});
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      p = std::min(n, p + 1);
      out.push_back(Token{quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
                          std::string(src.substr(i, p - i)), line});
      i = p;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      out.push_back(Token{Token::Kind::kIdent, std::string(src.substr(i, p - i)),
                          line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      // Consume the pp-number: digits, hex, separators, suffixes, and
      // exponent signs (the char after e/E/p/P may be +/-).
      std::size_t p = i;
      while (p < n) {
        const char d = src[p];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++p;
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && p < n &&
              (src[p] == '+' || src[p] == '-') &&
              !(src.substr(i, 2) == "0x" || src.substr(i, 2) == "0X")) {
            ++p;
          }
          continue;
        }
        break;
      }
      out.push_back(Token{Token::Kind::kNumber, std::string(src.substr(i, p - i)),
                          line});
      i = p;
      continue;
    }
    // Punctuation: try two-char ops first.
    if (i + 1 < n) {
      const std::string two(src.substr(i, 2));
      for (const char* op : kTwoCharOps) {
        if (two == op) {
          out.push_back(Token{Token::Kind::kPunct, two, line});
          i += 2;
          goto next;
        }
      }
    }
    out.push_back(Token{Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  next:;
  }
  return out;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "kernel-contract", "prof-name-constant", "raw-thread", "float-equality",
      "atomic-memory-order", "arena-contract", "checkpoint-serializer"};
  return names;
}

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
std::size_t match_forward(const std::vector<Token>& t, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kPunct) continue;
    if (t[i].text == opener) ++depth;
    if (t[i].text == closer && --depth == 0) return i;
  }
  return t.size();
}

bool is_float_literal(const Token& t) {
  if (t.kind != Token::Kind::kNumber) return false;
  const std::string& s = t.text;
  if (starts_with(s, "0x") || starts_with(s, "0X")) return false;
  if (s.find('.') != std::string::npos) return true;
  if (s.find('e') != std::string::npos || s.find('E') != std::string::npos) {
    return true;
  }
  return ends_with(s, "f") || ends_with(s, "F");
}

const std::set<std::string>& stmt_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",        "switch",  "catch",
      "return", "sizeof", "alignof",      "decltype", "noexcept",
      "static_assert"};
  return kw;
}

/// std::atomic member-function calls whose default memory order is the rule's
/// target. wait/notify are excluded (no order parameter worth forcing).
const std::set<std::string>& atomic_ops() {
  static const std::set<std::string> ops = {
      "load",        "store",       "exchange",     "fetch_add",
      "fetch_sub",   "fetch_and",   "fetch_or",     "fetch_xor",
      "compare_exchange_strong",    "compare_exchange_weak"};
  return ops;
}

/// Collect variable names declared as std::atomic<...> (or atomic<...>).
void collect_atomic_names(const std::vector<Token>& t,
                          std::set<std::string>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || t[i].text != "atomic") continue;
    std::size_t p = i + 1;
    if (p < t.size() && t[p].kind == Token::Kind::kPunct && t[p].text == "<") {
      // Skip the template argument list (no >> splitting needed: the
      // tokenizer never folds >>).
      int depth = 0;
      for (; p < t.size(); ++p) {
        if (t[p].kind != Token::Kind::kPunct) continue;
        if (t[p].text == "<") ++depth;
        if (t[p].text == ">" && --depth == 0) {
          ++p;
          break;
        }
      }
    }
    if (p < t.size() && t[p].kind == Token::Kind::kIdent) {
      const std::string& name = t[p].text;
      // Require a declarator ending: initialization or end of member.
      if (p + 1 < t.size() && t[p + 1].kind == Token::Kind::kPunct &&
          (t[p + 1].text == "{" || t[p + 1].text == ";" ||
           t[p + 1].text == "=" || t[p + 1].text == "(")) {
        out.insert(name);
      }
    }
  }
}

/// Collect names declared float/double in this file (parameters, locals,
/// members): keyword float|double, optional cv/ref/pointer sigils, name.
void collect_float_names(const std::vector<Token>& t,
                         std::set<std::string>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        (t[i].text != "float" && t[i].text != "double")) {
      continue;
    }
    // References carry the value; pointers do not (p == nullptr is fine).
    std::size_t p = i + 1;
    while (p < t.size() && t[p].kind == Token::Kind::kPunct && t[p].text == "&") {
      ++p;
    }
    if (p < t.size() && t[p].kind == Token::Kind::kIdent &&
        t[p].text != "const") {
      out.insert(t[p].text);
    }
  }
}

// --- rule: kernel-contract -------------------------------------------------

struct KernelRule {
  const char* arg_type;
  std::vector<const char*> allowed_checks;
};

const std::vector<KernelRule>& kernel_rules() {
  static const std::vector<KernelRule> rules = {
      {"DownArgs", {"check_down", "check_down_aligned", "check_down_ti"}},
      {"RootArgs", {"check_root", "check_root_aligned"}},
      {"ScaleArgs", {"check_scale"}},
      {"RootReduceArgs", {"check_root_reduce"}},
      {"TipTipArgs", {"check_down_tt"}},
      {"PlfPlan", {"check_plan"}},
  };
  return rules;
}

void rule_kernel_contract(std::string_view relpath, const std::vector<Token>& t,
                          std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // Candidate function definition: ident '(' ... ')' [const|noexcept] '{'.
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (stmt_keywords().count(t[i].text) != 0) continue;
    if (i + 1 >= t.size() || t[i + 1].kind != Token::Kind::kPunct ||
        t[i + 1].text != "(") {
      continue;
    }
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    if (close >= t.size()) continue;
    std::size_t body = close + 1;
    while (body < t.size() && t[body].kind == Token::Kind::kIdent &&
           (t[body].text == "const" || t[body].text == "noexcept" ||
            t[body].text == "override")) {
      ++body;
    }
    if (body >= t.size() || t[body].kind != Token::Kind::kPunct ||
        t[body].text != "{") {
      continue;
    }
    // First parameter: tokens up to the first top-level comma.
    std::size_t first_end = close;
    int depth = 0;
    for (std::size_t p = open + 1; p < close; ++p) {
      if (t[p].kind != Token::Kind::kPunct) continue;
      if (t[p].text == "(" || t[p].text == "<" || t[p].text == "[") ++depth;
      if (t[p].text == ")" || t[p].text == ">" || t[p].text == "]") --depth;
      if (t[p].text == "," && depth == 0) {
        first_end = p;
        break;
      }
    }
    const KernelRule* rule = nullptr;
    for (std::size_t p = open + 1; p < first_end && rule == nullptr; ++p) {
      if (t[p].kind != Token::Kind::kIdent) continue;
      for (const KernelRule& kr : kernel_rules()) {
        if (t[p].text == kr.arg_type) {
          rule = &kr;
          break;
        }
      }
    }
    if (rule == nullptr) continue;
    const std::size_t body_end = match_forward(t, body, "{", "}");
    bool checked = false;
    for (std::size_t p = body + 1; p < body_end && !checked; ++p) {
      if (t[p].kind != Token::Kind::kIdent) continue;
      if (p + 1 >= t.size() || t[p + 1].text != "(") continue;
      for (const char* name : rule->allowed_checks) {
        if (t[p].text == name) {
          checked = true;
          break;
        }
      }
    }
    if (!checked) {
      std::ostringstream msg;
      msg << "kernel entry '" << t[i].text << "' takes " << rule->arg_type
          << " but never calls its contract check (";
      for (std::size_t k = 0; k < rule->allowed_checks.size(); ++k) {
        msg << (k != 0 ? " or " : "") << rule->allowed_checks[k];
      }
      msg << "); see src/core/kernel_contracts.hpp";
      out.push_back(Finding{std::string(relpath), t[i].line, "kernel-contract",
                            msg.str()});
    }
    i = body;  // resume after the header; nested scans are fine to skip
  }
}

// --- rule: arena-contract ----------------------------------------------------

/// ClvArena methods that mutate eviction state. Every one must re-validate
/// the arena invariants (budget ceiling, LRU-list/flag consistency) before
/// returning, by calling check_arena — the same closed check set the engine
/// and the kernels rely on (src/core/kernel_contracts.hpp).
const std::set<std::string>& arena_entry_points() {
  static const std::set<std::string> names = {
      "init", "acquire",           "pin",
      "unpin", "release_eval_pins", "evict_slot_for_test"};
  return names;
}

void rule_arena_contract(std::string_view relpath, const std::vector<Token>& t,
                         std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    // Candidate method definition: ClvArena '::' <name> '(' ... ')'
    // [const|noexcept] '{'.
    if (t[i].kind != Token::Kind::kIdent || t[i].text != "ClvArena") continue;
    if (t[i + 1].kind != Token::Kind::kPunct || t[i + 1].text != "::") continue;
    if (t[i + 2].kind != Token::Kind::kIdent) continue;
    const std::string& name = t[i + 2].text;
    if (t[i + 3].kind != Token::Kind::kPunct || t[i + 3].text != "(") continue;
    if (arena_entry_points().count(name) == 0) continue;
    const std::size_t close = match_forward(t, i + 3, "(", ")");
    if (close >= t.size()) continue;
    std::size_t body = close + 1;
    while (body < t.size() && t[body].kind == Token::Kind::kIdent &&
           (t[body].text == "const" || t[body].text == "noexcept")) {
      ++body;
    }
    if (body >= t.size() || t[body].kind != Token::Kind::kPunct ||
        t[body].text != "{") {
      continue;  // declaration or out-of-line signature only
    }
    const std::size_t body_end = match_forward(t, body, "{", "}");
    bool checked = false;
    for (std::size_t p = body + 1; p < body_end; ++p) {
      if (t[p].kind == Token::Kind::kIdent && t[p].text == "check_arena" &&
          p + 1 < t.size() && t[p + 1].kind == Token::Kind::kPunct &&
          t[p + 1].text == "(") {
        checked = true;
        break;
      }
    }
    if (!checked) {
      out.push_back(Finding{
          std::string(relpath), t[i + 2].line, "arena-contract",
          "arena entry point 'ClvArena::" + name + "' mutates eviction "
          "state but never calls check_arena; every mutating entry must "
          "re-validate the budget/LRU invariants before returning (see "
          "src/core/kernel_contracts.hpp)"});
    }
    i = body;
  }
}

// --- rule: prof-name-constant ----------------------------------------------

void rule_prof_name(std::string_view relpath, const std::vector<Token>& t,
                    std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = t[i].text;
    if (name != "PLF_PROF_SCOPE" && name != "PLF_PROF_COUNT" &&
        name != "PLF_PROF_GAUGE") {
      continue;
    }
    if (t[i + 1].kind != Token::Kind::kPunct || t[i + 1].text != "(") continue;
    const Token& arg = t[i + 2];
    if (arg.kind == Token::Kind::kString) {
      out.push_back(Finding{
          std::string(relpath), arg.line, "prof-name-constant",
          name + " called with string literal " + arg.text +
              "; use an interned obs::k* constant from src/obs/names.hpp "
              "so the report/trace name set stays closed"});
    }
  }
  // The MetricsRegistry interning calls are the same surface without the
  // macro: registry.counter("lit") / .gauge("lit") / .timer("lit") mint a
  // metric name the report and telemetry consumers can't find in
  // obs/names.hpp. Names built from the k* prefix constants pass (the first
  // argument token is then an identifier, not a string literal).
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kPunct ||
        (t[i].text != "." && t[i].text != "->")) {
      continue;
    }
    if (t[i + 1].kind != Token::Kind::kIdent) continue;
    const std::string& method = t[i + 1].text;
    if (method != "counter" && method != "gauge" && method != "timer") continue;
    if (t[i + 2].kind != Token::Kind::kPunct || t[i + 2].text != "(") continue;
    const Token& arg = t[i + 3];
    if (arg.kind == Token::Kind::kString) {
      out.push_back(Finding{
          std::string(relpath), arg.line, "prof-name-constant",
          "MetricsRegistry::" + method + " called with string literal " +
              arg.text +
              "; intern through an obs::k* constant from src/obs/names.hpp "
              "(prefix constants + a dynamic suffix are fine)"});
    }
  }
}

// --- rule: raw-thread ------------------------------------------------------

void rule_raw_thread(std::string_view relpath, const std::vector<Token>& t,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || t[i].text != "std") continue;
    if (t[i + 1].kind != Token::Kind::kPunct || t[i + 1].text != "::") continue;
    const std::string& name = t[i + 2].text;
    if (name != "thread" && name != "async" && name != "jthread") continue;
    // std::thread::id / std::thread::hardware_concurrency are type-level
    // uses, not thread creation; only flag the bare type/function.
    if (name == "thread" && i + 3 < t.size() &&
        t[i + 3].kind == Token::Kind::kPunct && t[i + 3].text == "::") {
      continue;
    }
    out.push_back(Finding{
        std::string(relpath), t[i].line, "raw-thread",
        "raw std::" + name + " outside src/par/ or src/exec/; all "
        "parallelism must go through par::ThreadPool or the instance "
        "scheduler so region accounting and the timing model stay complete"});
  }
}

// --- rule: checkpoint-serializer --------------------------------------------

void rule_checkpoint_serializer(std::string_view relpath,
                                const std::vector<Token>& t,
                                std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = t[i].text;
    if (t[i + 1].kind != Token::Kind::kPunct || t[i + 1].text != "(") continue;
    if (name == "fwrite" || name == "fread") {
      out.push_back(Finding{
          std::string(relpath), t[i].line, "checkpoint-serializer",
          "ad-hoc std::" + name + " outside src/util/serialize.cpp; "
          "persistent binary state must go through util::BinaryWriter/"
          "BinaryReader so every checkpoint carries the versioned header "
          "and stays restorable across releases"});
      continue;
    }
    // Pattern: <stream>.write(reinterpret_cast<...>(...), n) — the classic
    // raw-struct dump. Plain text stream writes don't match.
    if ((name == "write" || name == "read") && i >= 1 &&
        t[i - 1].kind == Token::Kind::kPunct &&
        (t[i - 1].text == "." || t[i - 1].text == "->") &&
        i + 2 < t.size() && t[i + 2].kind == Token::Kind::kIdent &&
        t[i + 2].text == "reinterpret_cast") {
      out.push_back(Finding{
          std::string(relpath), t[i].line, "checkpoint-serializer",
          "raw stream ." + name + "(reinterpret_cast<...>) outside "
          "src/util/serialize.cpp; persistent binary state must go through "
          "util::BinaryWriter/BinaryReader so every checkpoint carries the "
          "versioned header and stays restorable across releases"});
    }
  }
}

// --- rule: float-equality --------------------------------------------------

void rule_float_equality(std::string_view relpath, const std::vector<Token>& t,
                         std::vector<Finding>& out) {
  std::set<std::string> float_names;
  collect_float_names(t, float_names);
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kPunct ||
        (t[i].text != "==" && t[i].text != "!=")) {
      continue;
    }
    const Token& lhs = t[i - 1];
    const Token& rhs = t[i + 1];
    // A nullptr comparand means a pointer test, never a value comparison.
    if (lhs.text == "nullptr" || rhs.text == "nullptr") continue;
    const auto is_float_operand = [&](const Token& tok) {
      if (is_float_literal(tok)) return true;
      return tok.kind == Token::Kind::kIdent && float_names.count(tok.text) != 0;
    };
    if (is_float_operand(lhs) || is_float_operand(rhs)) {
      out.push_back(Finding{
          std::string(relpath), t[i].line, "float-equality",
          "floating-point " + t[i].text + " ('" + lhs.text + "' " + t[i].text +
              " '" + rhs.text + "'); use plf::num::exactly_equal / "
              "is_exactly_zero / nearly_equal from src/numerics/ulp.hpp to "
              "name the intent"});
    }
  }
}

// --- rule: atomic-memory-order ---------------------------------------------

void rule_atomic_order(std::string_view relpath, const std::vector<Token>& t,
                       const std::set<std::string>& atomic_names,
                       std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    // Pattern: <atomic-name> '.' <op> '(' args ')' — args must mention a
    // memory_order.
    if (t[i].kind != Token::Kind::kIdent || atomic_names.count(t[i].text) == 0) {
      continue;
    }
    if (t[i + 1].kind != Token::Kind::kPunct || t[i + 1].text != ".") continue;
    if (t[i + 2].kind != Token::Kind::kIdent ||
        atomic_ops().count(t[i + 2].text) == 0) {
      continue;
    }
    if (t[i + 3].kind != Token::Kind::kPunct || t[i + 3].text != "(") continue;
    const std::size_t close = match_forward(t, i + 3, "(", ")");
    bool has_order = false;
    for (std::size_t p = i + 4; p < close; ++p) {
      if (t[p].kind == Token::Kind::kIdent &&
          starts_with(t[p].text, "memory_order")) {
        has_order = true;
        break;
      }
    }
    if (!has_order) {
      out.push_back(Finding{
          std::string(relpath), t[i].line, "atomic-memory-order",
          "'" + t[i].text + "." + t[i + 2].text + "' without an explicit "
          "std::memory_order; the seq_cst default either hides a cost or an "
          "unconsidered ordering decision — state one"});
    }
  }
}

}  // namespace

void scan_context(std::string_view text, Context& ctx) {
  const std::vector<Token> t = tokenize(text);
  collect_atomic_names(t, ctx.atomic_names);
}

std::vector<Finding> lint_source(std::string_view relpath, std::string_view text,
                                 const Context* ctx) {
  const std::vector<Token> t = tokenize(text);
  std::vector<Finding> out;

  const bool in_src = starts_with(relpath, "src/");
  const bool kernels_file = starts_with(relpath, "src/core/kernels_") &&
                            ends_with(relpath, ".cpp");
  // src/exec/ owns the multi-instance driver threads (exec/scheduler.cpp);
  // like the pool itself, it is the sanctioned home for std::thread.
  const bool in_pool_layer = starts_with(relpath, "src/par/") ||
                             starts_with(relpath, "src/exec/");
  const bool numeric_scope = (starts_with(relpath, "src/core/") ||
                              starts_with(relpath, "src/numerics/")) &&
                             relpath != "src/numerics/ulp.hpp";

  const bool arena_file = relpath == "src/core/clv_arena.cpp";

  if (kernels_file) rule_kernel_contract(relpath, t, out);
  if (arena_file) rule_arena_contract(relpath, t, out);
  if (in_src) rule_prof_name(relpath, t, out);
  if (in_src && !in_pool_layer) rule_raw_thread(relpath, t, out);
  if (in_src && relpath != "src/util/serialize.cpp") {
    rule_checkpoint_serializer(relpath, t, out);
  }
  if (numeric_scope) rule_float_equality(relpath, t, out);
  if (in_src) {
    std::set<std::string> atomic_names;
    collect_atomic_names(t, atomic_names);
    if (ctx != nullptr) {
      atomic_names.insert(ctx->atomic_names.begin(), ctx->atomic_names.end());
    }
    rule_atomic_order(relpath, t, atomic_names, out);
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<Suppression> load_suppressions(const std::string& path) {
  const json::Value doc = json::parse_file(path);
  std::vector<Suppression> out;
  for (const json::Value& entry : doc.at("suppressions").as_array()) {
    Suppression s;
    s.rule = entry.at("rule").as_string();
    s.file = entry.at("file").as_string();
    s.reason = entry.at("reason").as_string();
    if (const json::Value* line = entry.find("line")) {
      s.line = static_cast<int>(line->as_number());
    }
    if (s.reason.empty()) {
      throw Error("suppression for " + s.file + " has an empty reason");
    }
    if (std::find(rule_names().begin(), rule_names().end(), s.rule) ==
        rule_names().end()) {
      throw Error("suppression names unknown rule '" + s.rule + "'");
    }
    out.push_back(std::move(s));
  }
  return out;
}

void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<Suppression>& sups) {
  for (Finding& f : findings) {
    for (const Suppression& s : sups) {
      if (s.rule != f.rule) continue;
      const bool file_match =
          f.file == s.file || ends_with(f.file, "/" + s.file);
      if (!file_match) continue;
      if (s.line != -1 && s.line != f.line) continue;
      f.suppressed = true;
      break;
    }
  }
}

std::string findings_to_json(const std::vector<Finding>& findings) {
  using obs::detail::json_escape;
  std::ostringstream os;
  os << "{\"schema\":\"plf-lint-v1\",\"findings\":[";
  std::size_t suppressed = 0;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (f.suppressed) ++suppressed;
    os << (i != 0 ? "," : "") << "{\"file\":\"" << json_escape(f.file)
       << "\",\"line\":" << f.line << ",\"rule\":\"" << json_escape(f.rule)
       << "\",\"message\":\"" << json_escape(f.message)
       << "\",\"suppressed\":" << (f.suppressed ? "true" : "false") << "}";
  }
  os << "],\"counts\":{\"total\":" << findings.size()
     << ",\"suppressed\":" << suppressed << "}}";
  return os.str();
}

}  // namespace plf::lint
