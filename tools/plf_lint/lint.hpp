// plf_lint: project-invariant linter (docs/STATIC_ANALYSIS.md).
//
// Token/structure-level checks for rules the compiler cannot express and
// clang-tidy has no checker for — they are *project* conventions:
//
//   kernel-contract      every kernel entry in src/core/kernels_*.cpp calls
//                        its kernel_contracts.hpp check before touching data
//   prof-name-constant   PLF_PROF_SCOPE/COUNT/GAUGE names must be the interned
//                        constants from obs/names.hpp, never ad-hoc string
//                        literals (ad-hoc names fragment the Fig. 12 report)
//   raw-thread           no std::thread/std::async outside src/par/ and
//                        src/exec/ — all parallelism goes through the pool
//                        (or the instance scheduler built on it) so region
//                        accounting stays complete
//   checkpoint-serializer  no ad-hoc binary state I/O (fwrite/fread, stream
//                        .write/.read of reinterpret_cast'ed buffers)
//                        outside src/util/serialize.cpp — checkpoints must
//                        ride the versioned BinaryWriter/BinaryReader format
//   float-equality       no ==/!= on floating-point in src/core/ and
//                        src/numerics/ outside numerics/ulp.hpp — exact
//                        comparisons must name their intent via the ULP
//                        helpers
//   atomic-memory-order  std::atomic load/store/RMW must pass an explicit
//                        std::memory_order — the default seq_cst either hides
//                        a cost or hides an unconsidered ordering decision
//
// The analysis is a real tokenizer (comments/strings/numbers handled) plus
// shallow structure (brace depth, balanced parens) — deliberately not a full
// parser. Findings carry file:line:rule and are matched against a checked-in
// suppression file; the driver exits nonzero on unsuppressed findings.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace plf::lint {

/// One C++ token with its 1-based source line.
struct Token {
  enum class Kind : unsigned char { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line = 0;
};

/// Strip comments, fold string/char literals into single tokens, keep
/// everything else as identifier/number/punctuation tokens.
std::vector<Token> tokenize(std::string_view src);

struct Finding {
  std::string file;   ///< repo-relative path (forward slashes)
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
};

/// Cross-file knowledge a single-file pass cannot gather: names declared as
/// std::atomic anywhere in the linted set (members declared in headers are
/// used in .cpp files that never re-declare them).
struct Context {
  std::set<std::string> atomic_names;
};

/// Names of all rules, in reporting order.
const std::vector<std::string>& rule_names();

/// Collect Context contributions from one file.
void scan_context(std::string_view text, Context& ctx);

/// Lint one file's text. `relpath` (repo-relative, forward slashes) scopes
/// the rules; `ctx` may be null (single-file mode: context is built from the
/// file itself).
std::vector<Finding> lint_source(std::string_view relpath, std::string_view text,
                                 const Context* ctx = nullptr);

struct Suppression {
  std::string rule;
  std::string file;    ///< repo-relative path, matched exactly or by suffix
  int line = -1;       ///< -1 matches any line
  std::string reason;  ///< required: a suppression without a why is a bug
};

/// Parse a suppression file: {"suppressions":[{"rule","file","line"?,"reason"}]}.
/// Throws plf::Error on malformed entries (missing rule/file/reason).
std::vector<Suppression> load_suppressions(const std::string& path);

/// Mark findings matched by a suppression entry (rule + file [+ line]).
void apply_suppressions(std::vector<Finding>& findings,
                        const std::vector<Suppression>& sups);

/// Machine-readable report: {"schema":"plf-lint-v1","findings":[...],
/// "counts":{"total":N,"suppressed":M}}.
std::string findings_to_json(const std::vector<Finding>& findings);

}  // namespace plf::lint
