// plf_lint driver (docs/STATIC_ANALYSIS.md).
//
// Usage:
//   plf_lint --compile-commands build/compile_commands.json
//            [--root .] [--suppressions tools/plf_lint/suppressions.json]
//            [--json out.json] [files...]
//
// Files come from the compile database (filtered to the repo's src/ tree,
// headers discovered by a directory walk — the database only lists .cpp) or
// from explicit positional arguments. Exit code: 0 when every finding is
// suppressed, 1 on unsuppressed findings, 2 on usage/IO errors.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "plf_lint/lint.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace fs = std::filesystem;

namespace {

struct Args {
  std::string compile_commands;
  std::string root = ".";
  std::string suppressions;
  std::string json_out;
  std::vector<std::string> files;
  bool list_rules = false;
};

int usage(std::ostream& os) {
  os << "usage: plf_lint [--compile-commands FILE] [--root DIR]\n"
        "                [--suppressions FILE] [--json FILE] [--list-rules]\n"
        "                [files...]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw plf::Error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative forward-slash path, or empty when `p` is outside `root`.
std::string relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path canon = fs::weakly_canonical(p, ec);
  const fs::path rel = canon.lexically_relative(root);
  if (rel.empty() || rel.native().rfind("..", 0) == 0) return {};
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "plf_lint: " << a << " needs a value\n";
        std::exit(usage(std::cerr));
      }
      return argv[++i];
    };
    if (a == "--compile-commands") {
      args.compile_commands = next();
    } else if (a == "--root") {
      args.root = next();
    } else if (a == "--suppressions") {
      args.suppressions = next();
    } else if (a == "--json") {
      args.json_out = next();
    } else if (a == "--list-rules") {
      args.list_rules = true;
    } else if (a == "--help" || a == "-h") {
      return usage(std::cout), 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "plf_lint: unknown option " << a << "\n";
      return usage(std::cerr);
    } else {
      args.files.push_back(a);
    }
  }

  if (args.list_rules) {
    for (const std::string& r : plf::lint::rule_names()) std::cout << r << "\n";
    return 0;
  }

  try {
    const fs::path root = fs::weakly_canonical(args.root);

    // Gather (relpath, abspath) pairs, deduplicated.
    std::set<std::pair<std::string, std::string>> files;
    for (const std::string& f : args.files) {
      const std::string rel = relativize(f, root);
      files.insert({rel.empty() ? f : rel, f});
    }
    if (!args.compile_commands.empty()) {
      const plf::json::Value db = plf::json::parse_file(args.compile_commands);
      for (const plf::json::Value& entry : db.as_array()) {
        fs::path file = entry.at("file").as_string();
        if (file.is_relative()) {
          file = fs::path(entry.at("directory").as_string()) / file;
        }
        const std::string rel = relativize(file, root);
        // The database covers the whole build (tests, bench, third-party);
        // the project rules apply to the library tree.
        if (rel.rfind("src/", 0) != 0) continue;
        files.insert({rel, file.string()});
      }
      // The database only lists translation units; the rules also bind
      // headers (annotated members, inline hot paths).
      const fs::path src = root / "src";
      if (fs::is_directory(src)) {
        for (const auto& e : fs::recursive_directory_iterator(src)) {
          if (!e.is_regular_file()) continue;
          if (e.path().extension() != ".hpp") continue;
          files.insert({relativize(e.path(), root), e.path().string()});
        }
      }
    }
    if (files.empty()) {
      std::cerr << "plf_lint: no input files (pass --compile-commands or "
                   "explicit files)\n";
      return usage(std::cerr);
    }

    // Pass 1: cross-file context (atomics declared in headers, used in cpps).
    plf::lint::Context ctx;
    std::vector<std::pair<std::string, std::string>> texts;
    for (const auto& [rel, abs] : files) {
      texts.emplace_back(rel, read_file(abs));
      plf::lint::scan_context(texts.back().second, ctx);
    }

    // Pass 2: lint.
    std::vector<plf::lint::Finding> findings;
    for (const auto& [rel, text] : texts) {
      std::vector<plf::lint::Finding> f = plf::lint::lint_source(rel, text, &ctx);
      findings.insert(findings.end(), f.begin(), f.end());
    }

    if (!args.suppressions.empty()) {
      const std::vector<plf::lint::Suppression> sups =
          plf::lint::load_suppressions(args.suppressions);
      plf::lint::apply_suppressions(findings, sups);
    }

    std::size_t unsuppressed = 0;
    for (const plf::lint::Finding& f : findings) {
      if (f.suppressed) continue;
      ++unsuppressed;
      std::cerr << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
    }

    if (!args.json_out.empty()) {
      std::ofstream out(args.json_out, std::ios::binary);
      if (!out) throw plf::Error("cannot write " + args.json_out);
      out << plf::lint::findings_to_json(findings) << "\n";
    }

    std::cerr << "plf_lint: " << texts.size() << " files, " << findings.size()
              << " findings (" << findings.size() - unsuppressed
              << " suppressed)\n";
    return unsuppressed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "plf_lint: " << e.what() << "\n";
    return 2;
  }
}
