// bench_compare: the perf-regression gate CLI.
//
//   bench_compare <baseline.json> <current.json> [--threshold 0.15]
//                 [--warn-only]
//
// Prints the comparison table and exits non-zero when a case regressed past
// its threshold or vanished from the current run — unless --warn-only (the
// CI smoke mode, where the runner's hardware is too noisy to gate on).
#include <cstring>
#include <iostream>
#include <string>

#include "bench_compare_lib.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <baseline.json> <current.json> [--threshold R] [--warn-only]\n"
               "  --threshold R   default relative threshold for cases without\n"
               "                  a per-case value in the baseline (default 0.15)\n"
               "  --warn-only     print the table but always exit 0\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  plf::tools::CompareOptions opts;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--threshold") {
      if (i + 1 >= argc) return usage(argv[0]);
      try {
        opts.default_threshold = std::stod(argv[++i]);
      } catch (const std::exception&) {
        return usage(argv[0]);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage(argv[0]);

  try {
    const plf::json::Value baseline = plf::json::parse_file(baseline_path);
    const plf::json::Value current = plf::json::parse_file(current_path);
    const plf::tools::CompareReport report =
        plf::tools::compare_benches(baseline, current, opts);
    std::cout << plf::tools::format_report(report);
    if (report.failed() && !warn_only) return 1;
    if (report.failed()) {
      std::cout << "(--warn-only: regression not gating this run)\n";
    }
    return 0;
  } catch (const plf::Error& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }
}
