// plf_status rendering: turn one plf-telemetry-v1 record (the atomic status
// file, or the last line of the JSONL history) into the terminal table a
// practitioner watches during a run — generation, lnL, streaming ESS,
// ESS/sec, split R-hat, per-proposal acceptance, per-pair swap rates, and
// the arena hit rate. Pure functions over parsed plf::json::Value so
// tests/telemetry_test.cpp can drive them without a filesystem.
#pragma once

#include <string>

#include "util/json.hpp"

namespace plf::status {

/// Schema this renderer understands (matches obs::TelemetryExporter).
inline constexpr const char* kSchema = "plf-telemetry-v1";

/// Render one telemetry record as the live status view. Throws plf::Error
/// when `record` is not a plf-telemetry-v1 object.
std::string render_record(const json::Value& record);

/// Load the newest record from `path`: a status file holds exactly one
/// record; a JSONL history yields its last parseable line (a torn tail line
/// mid-append is skipped). Throws plf::Error when the file is unreadable or
/// holds no complete record.
json::Value load_latest(const std::string& path);

}  // namespace plf::status
