// plf_status: terminal monitor for a live mrbayes_lite run
// (docs/OBSERVABILITY.md).
//
//   plf_status run_status.json            render the latest record once
//   plf_status --follow run_status.json   re-render whenever the file changes
//   plf_status --follow=0.2 x.jsonl       custom poll interval (seconds)
//
// Accepts either the atomic --status-file JSON (one record) or the
// --telemetry JSONL history (renders its last complete line). --follow polls
// the file's mtime; because the status file is replaced by rename, a read
// always sees a complete document — worst case the parse hits a JSONL line
// mid-append and the renderer falls back to the previous complete record.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>

#include "plf_status/status.hpp"
#include "util/error.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--follow[=SECONDS]] FILE\n"
            << "  FILE: a --status-file JSON or --telemetry JSONL from "
               "mrbayes_lite\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  double poll_s = 1.0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow = true;
    } else if (arg.rfind("--follow=", 0) == 0) {
      follow = true;
      poll_s = std::strtod(arg.c_str() + std::string("--follow=").size(),
                           nullptr);
      if (poll_s <= 0.0) poll_s = 1.0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    std::cout << plf::status::render_record(plf::status::load_latest(path));
    // Flush eagerly: in follow mode the next write may be seconds away, and
    // a piped/redirected stdout is fully buffered.
    std::cout.flush();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!follow) return 0;

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::file_time_type last = fs::last_write_time(path, ec);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
    const fs::file_time_type now = fs::last_write_time(path, ec);
    if (ec || now == last) continue;
    last = now;
    try {
      std::cout << "\n" << std::string(64, '-') << "\n\n"
                << plf::status::render_record(plf::status::load_latest(path));
      std::cout.flush();
    } catch (const std::exception&) {
      // Mid-rewrite or vanished file: keep polling, render the next one.
    }
  }
}
