#include "plf_status/status.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace plf::status {

namespace {

/// "n/a" for the JSON nulls the exporter writes for NaN diagnostics.
std::string num_or_na(const json::Value& obj, std::string_view key,
                      int precision) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return "n/a";
  return Table::num(v->as_number(), precision);
}

void render_rate_table(std::ostream& os, const json::Value& rates,
                       const std::string& title,
                       const std::string& key_header) {
  if (!rates.is_object() || rates.as_object().empty()) return;
  Table t(title);
  t.header({key_header, "proposed", "accepted", "rate"});
  for (const auto& [name, entry] : rates.as_object()) {
    t.row({name, num_or_na(entry, "proposed", 0), num_or_na(entry, "accepted", 0),
           num_or_na(entry, "rate", 3)});
  }
  os << t;
}

}  // namespace

std::string render_record(const json::Value& record) {
  const json::Value* schema = record.is_object() ? record.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchema) {
    throw Error(std::string("not a ") + kSchema + " record");
  }
  std::ostringstream os;

  const json::Value& cold = record.at("cold");
  Table run("run status");
  run.header({"generation", "wall_s", "lnL", "mean_lnL", "samples", "ESS",
              "ESS/sec", "R-hat"});
  run.row({Table::num(record.number_or("generation", 0.0), 0),
           num_or_na(record, "wall_s", 1), num_or_na(cold, "ln_likelihood", 2),
           num_or_na(cold, "mean_ln_likelihood", 2),
           num_or_na(cold, "n_samples", 0), num_or_na(cold, "ess", 1),
           num_or_na(cold, "ess_per_sec", 1), num_or_na(cold, "rhat", 3)});
  os << run << "\n";

  if (const json::Value* acc = record.find("acceptance"); acc != nullptr) {
    render_rate_table(os, *acc, "proposal acceptance (all chains)",
                      "proposal");
    os << "\n";
  }
  if (const json::Value* swaps = record.find("swaps"); swaps != nullptr) {
    os << "swaps: " << num_or_na(*swaps, "accepted", 0) << "/"
       << num_or_na(*swaps, "proposed", 0) << " accepted (rate "
       << num_or_na(*swaps, "rate", 3) << ")\n";
    if (const json::Value* pairs = swaps->find("pairs"); pairs != nullptr) {
      render_rate_table(os, *pairs, "swap rates by heat-rank pair", "pair");
    }
    os << "\n";
  }
  if (const json::Value* extra = record.find("extra");
      extra != nullptr && extra->is_object() && !extra->as_object().empty()) {
    Table t("extra gauges");
    t.header({"gauge", "value"});
    for (const auto& [name, v] : extra->as_object()) {
      t.row({name, v.is_number() ? Table::num(v.as_number(), 4) : "n/a"});
    }
    os << t;
  }
  return os.str();
}

json::Value load_latest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw Error("cannot open telemetry/status file: " + path);
  std::string line;
  bool have = false;
  json::Value latest;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      latest = json::parse(line);
      have = true;
    } catch (const Error&) {
      // A torn mid-append tail line; keep the previous complete record.
    }
  }
  if (!have) throw Error("no complete telemetry record in " + path);
  return latest;
}

}  // namespace plf::status
