// Ablation: the Cell double-buffering scheme (paper §3.3, Fig. 7).
//
// "The adopted two-level partitioning method along with the double-buffering
// technique requires two levels of synchronization" — the paper treats the
// overlap of chunk i's compute with chunk i+1's DMA as a given. This bench
// quantifies what it buys on the simulated hardware: the same offloads with
// the SPE program's prefetch disabled (each chunk's DMA strictly serialized
// with its compute).
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "cell/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;
  const std::size_t kTaxa = 20;

  Table t("Cell double-buffering ablation (QS20, 16 SPEs)");
  t.header({"m", "PLF no-overlap s", "PLF overlapped s", "benefit"});

  for (std::size_t m : {1000u, 8543u, 20000u, 50000u}) {
    const auto w = bench::measured_workload(kTaxa, m, kGenerations);

    SystemConfig plain = system_by_name("QS20");
    plain.cell.spu.double_buffering = false;
    SystemConfig buffered = system_by_name("QS20");
    buffered.cell.spu.double_buffering = true;

    CellModel plain_model(plain);
    CellModel buffered_model(buffered);
    const double t_plain = plain_model.plf_section_s(w, 16);
    const double t_buf = buffered_model.plf_section_s(w, 16);
    t.row({std::to_string(m), Table::num(t_plain, 3), Table::num(t_buf, 3),
           "+" + Table::num(100.0 * (t_plain / t_buf - 1.0), 1) + "%"});
  }
  std::cout << t << "\n";
  std::cout << "Double buffering hides the per-chunk DMA latency behind the\n"
               "SPU compute; its benefit equals the DMA share of the chunk\n"
               "pipeline, which grows with the data size (bigger chunks,\n"
               "same compute-to-byte ratio).\n";
  return 0;
}
