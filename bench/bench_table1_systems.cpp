// Table 1 — Systems Setup. Prints the eight system configurations the way
// the paper tabulates them, straight from the model database, so any drift
// between code and paper is visible at a glance.
#include <iostream>

#include "arch/systems.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  Table t("Table 1: Systems Setup");
  t.header({"System", "Chassis", "Cores", "Model", "Freq", "Cache", "Mem",
            "Family"});
  for (const auto& s : table1_systems()) {
    const char* family = s.family == SystemFamily::kBaseline ? "baseline"
                         : s.family == SystemFamily::kMultiCore
                             ? "multi-core"
                         : s.family == SystemFamily::kCell ? "Cell/BE"
                                                           : "GPU";
    t.row({s.name, s.chassis, std::to_string(s.cores), s.cpu_model,
           Table::num(s.freq_hz / 1e9, 3) + "GHz", s.cache_desc, s.mem_desc,
           family});
  }
  std::cout << t << "\n";

  Table topo("Derived cache topologies (multi-core sync model inputs)");
  topo.header({"System", "packages", "dies/pkg", "cores/die", "die cache"});
  for (const auto& s : table1_systems()) {
    if (s.family != SystemFamily::kMultiCore) continue;
    topo.row({s.name, std::to_string(s.topology.packages),
              std::to_string(s.topology.dies_per_package),
              std::to_string(s.topology.cores_per_die),
              s.topology.die_cache_shared ? "shared" : "private"});
  }
  std::cout << topo;
  return 0;
}
