// Unified bench suite: one binary that runs the whole perf matrix and emits
// the schema-versioned BENCH_<date>.json the regression gate consumes.
//
// Two families of cases:
//
//   kernel.<op>.<variant>       raw per-call kernel time at the paper's
//                               8,543-pattern width, for scalar / simd-row /
//                               simd-col (the approach (i)/(ii) distinction)
//   engine.<backend>.<dispatch>.<sr>
//                               seconds per likelihood evaluation under a
//                               branch-move loop, over {serial,threaded} ×
//                               {percall,plan} × site repeats {off,on}
//
// Noise discipline: every case value is the MINIMUM over --reps repetitions
// of the identical deterministic workload — the least-disturbed observation —
// and tools/bench_compare applies a per-case relative threshold on top. The
// full per-rep distribution (median/mean/stddev) is recorded alongside for
// humans; --quick shrinks iteration counts but not the per-call/per-eval
// normalization, so quick runs stay comparable (just noisier, which is why
// CI compares --warn-only).
//
// Usage: bench_suite --out FILE [--quick] [--reps N] [--git-sha SHA]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/kernels.hpp"
#include "core/tip_partial.hpp"
#include "exec/partitioned.hpp"
#include "exec/scheduler.hpp"
#include "mcmc/coupled.hpp"
#include "obs/exporter.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "phylo/alignment.hpp"
#include "phylo/model.hpp"
#include "phylo/partition.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace plf;
using obs::detail::json_escape;

constexpr std::size_t kPatterns = 8543;  // paper §4: distinct rRNA patterns
constexpr std::size_t kTaxa = 16;
constexpr std::size_t kPoolWorkers = 2;

/// Sink for benchmark results the optimizer must treat as observable.
[[maybe_unused]] volatile double g_bench_sink = 0.0;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CaseStat {
  std::string name;
  std::string unit;       ///< "s/call" or "s/eval"
  std::uint64_t iters;    ///< timed operations per rep
  double threshold;       ///< relative gate threshold for this case
  std::vector<double> values;  ///< one per rep

  double min() const {
    return *std::min_element(values.begin(), values.end());
  }
  double median() const {
    std::vector<double> v = values;
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  }
};

// ---------------------------------------------------------------------------
// kernel cases (operand fixture mirrors bench_kernels.cpp)

struct Operands {
  std::size_t m, K;
  phylo::TransitionMatrices tm_l, tm_r;
  aligned_vector<float> cl_l, cl_r, out;
  aligned_vector<float> ln_scaler;
  aligned_vector<double> scaler_total;
  aligned_vector<std::uint32_t> weights;
  std::vector<phylo::StateMask> mask_l, mask_r;
  core::TipPartial tp_l, tp_r;
  core::TipPairTable pair;

  explicit Operands(std::size_t m_, std::size_t K_ = 4) : m(m_), K(K_) {
    phylo::GtrParams p = seqgen::default_gtr_params();
    p.n_rate_categories = K;
    phylo::SubstitutionModel model(p);
    tm_l = model.transition_matrices(0.1);
    tm_r = model.transition_matrices(0.2);
    Rng rng(7);
    cl_l.resize(m * K * 4);
    cl_r.resize(m * K * 4);
    out.resize(m * K * 4);
    for (auto& v : cl_l) v = static_cast<float>(rng.uniform(0.05, 1.0));
    for (auto& v : cl_r) v = static_cast<float>(rng.uniform(0.05, 1.0));
    ln_scaler.assign(m, 0.0f);
    scaler_total.assign(m, -0.5);
    weights.assign(m, 1);
    // Tip operands: realistic mask mix (mostly resolved bases, ~10%
    // ambiguity codes) and the per-branch / per-pair lookup tables the
    // engine would have staged for a cherry.
    mask_l.resize(m);
    mask_r.resize(m);
    for (auto* masks : {&mask_l, &mask_r}) {
      for (auto& x : *masks) {
        x = rng.uniform() < 0.1
                ? static_cast<phylo::StateMask>(1 + rng.below(15))
                : phylo::state_to_mask(rng.below(4));
      }
    }
    tp_l = core::TipPartial(tm_l);
    tp_r = core::TipPartial(tm_r);
    pair = core::TipPairTable(tp_l, tp_r);
  }

  core::DownArgs down() {
    core::DownArgs a;
    a.K = K;
    a.left.cl = cl_l.data();
    a.left.p = tm_l.row_major();
    a.left.pt = tm_l.col_major();
    a.right.cl = cl_r.data();
    a.right.p = tm_r.row_major();
    a.right.pt = tm_r.col_major();
    a.out = out.data();
    return a;
  }

  core::DownArgs down_tip_inner() {
    core::DownArgs a = down();
    a.left.cl = nullptr;
    a.left.mask = mask_l.data();
    a.left.tp = tp_l.data();
    return a;
  }

  core::TipTipArgs down_tip_tip() {
    core::TipTipArgs a;
    a.left_mask = mask_l.data();
    a.right_mask = mask_r.data();
    a.pair = pair.raw();
    a.pair_scaled = pair.scaled();
    a.pair_ln = pair.ln_factors();
    a.out = out.data();
    a.K = K;
    a.table_categories = pair.n_categories();
    return a;
  }
};

struct VariantRow {
  core::KernelVariant variant;
  const char* label;
};

constexpr VariantRow kVariants[] = {
    {core::KernelVariant::kScalar, "scalar"},
    {core::KernelVariant::kSimdRow, "simd-row"},
    {core::KernelVariant::kSimdCol, "simd-col"},
};

CaseStat kernel_case(const std::string& op_name,
                     core::KernelVariant variant, const char* variant_label,
                     std::uint64_t iters, int reps) {
  Operands op(kPatterns);
  const auto& ks = core::kernels(variant);
  const auto down_args = op.down();
  core::ScaleArgs scale_args{op.cl_l.data(), op.ln_scaler.data(), op.K};
  core::RootReduceArgs reduce_args;
  reduce_args.cl = op.cl_l.data();
  reduce_args.ln_scaler_total = op.scaler_total.data();
  reduce_args.weights = op.weights.data();
  reduce_args.K = op.K;

  CaseStat cs;
  cs.name = "kernel." + op_name + "." + variant_label;
  cs.unit = "s/call";
  cs.iters = iters;
  cs.threshold = 0.15;
  double sink = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < iters; ++i) {
      if (op_name == "down") {
        ks.down(down_args, 0, op.m);
        sink += static_cast<double>(op.out[0]);
      } else if (op_name == "scale") {
        ks.scale(scale_args, 0, op.m);
        sink += static_cast<double>(op.ln_scaler[0]);
      } else {
        sink += ks.root_reduce(reduce_args, 0, op.m);
      }
    }
    const double t1 = now_s();
    cs.values.push_back((t1 - t0) / static_cast<double>(iters));
  }
  g_bench_sink = sink;  // keep the timed work observable
  return cs;
}

/// Tip-specialized and fused kernel cases (docs/KERNELS.md), all on the
/// production simd-col entries where a variant matters; the tip×tip gather is
/// variant-independent. Case names:
///   kernel.down.tip-inner    tip-partial row instead of the left matvec
///   kernel.down.tip-tip      per-pair table gather (cherry nodes)
///   kernel.down_scale.fused  single-pass down + rescale over one CLV sweep
CaseStat tip_kernel_case(const std::string& case_name, std::uint64_t iters,
                         int reps) {
  Operands op(kPatterns);
  const auto& ks = core::kernels(core::KernelVariant::kSimdCol);
  const auto ti_args = op.down_tip_inner();
  const auto tt_args = op.down_tip_tip();
  const auto fused_down = op.down();
  core::ScaleArgs fused_scale{op.out.data(), op.ln_scaler.data(), op.K};

  CaseStat cs;
  cs.name = "kernel." + case_name;
  cs.unit = "s/call";
  cs.iters = iters;
  cs.threshold = 0.15;
  double sink = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < iters; ++i) {
      if (case_name == "down.tip-tip") {
        ks.down_tt(tt_args, 0, op.m);
      } else if (case_name == "down.tip-inner") {
        ks.down_ti(ti_args, 0, op.m);
      } else {
        ks.down_scale(fused_down, fused_scale, 0, op.m);
      }
      sink += static_cast<double>(op.out[0]);
    }
    const double t1 = now_s();
    cs.values.push_back((t1 - t0) / static_cast<double>(iters));
  }
  g_bench_sink = sink;
  return cs;
}

// ---------------------------------------------------------------------------
// engine cases

phylo::PatternMatrix make_columns(const std::vector<std::string>& names,
                                  std::size_t m, Rng& rng) {
  const std::size_t n_taxa = names.size();
  std::vector<std::vector<phylo::StateMask>> cols;
  cols.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    std::vector<phylo::StateMask> col(n_taxa);
    for (auto& x : col) x = phylo::state_to_mask(rng.below(4));
    cols.push_back(std::move(col));
  }
  return phylo::PatternMatrix::from_patterns(
      names, cols, std::vector<std::uint32_t>(cols.size(), 1));
}

CaseStat engine_case(const phylo::PatternMatrix& data,
                     const phylo::Tree& tree, const phylo::GtrParams& params,
                     core::ExecutionBackend& backend,
                     const char* backend_label, core::DispatchMode dispatch,
                     core::SiteRepeatsMode repeats, std::uint64_t evals,
                     int reps, core::ClvBudget budget = core::ClvBudget{},
                     const char* name_suffix = "") {
  CaseStat cs;
  cs.name = std::string("engine.") + backend_label + "." +
            (dispatch == core::DispatchMode::kPlan ? "plan" : "percall") +
            "." +
            (repeats == core::SiteRepeatsMode::kOn ? "sr-on" : "sr-off") +
            name_suffix;
  cs.unit = "s/eval";
  cs.iters = evals;
  // Engine paths cross parallel regions and allocators; they are noisier
  // than a tight kernel loop, more so on the threaded backend.
  cs.threshold = std::string(backend_label) == "threaded" ? 0.40 : 0.25;

  core::PlfEngine engine(data, params, tree, backend,
                         core::KernelVariant::kSimdCol, repeats, dispatch,
                         budget);
  engine.log_likelihood();  // warm-up: buffers, matrices, plan cache
  const int n_leaves = static_cast<int>(data.n_taxa());
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < evals; ++i) {
      engine.set_branch_length(
          engine.tree().leaf_of(static_cast<int>(i) % n_leaves),
          0.05 + 0.001 * static_cast<double>(i % 7));
      engine.log_likelihood();
    }
    const double t1 = now_s();
    cs.values.push_back((t1 - t0) / static_cast<double>(evals));
  }
  engine.publish_stats(obs::MetricsRegistry::global());
  return cs;
}

// ---------------------------------------------------------------------------
// multi-instance runtime cases (exec/scheduler.hpp, docs/SHARDING.md)

/// 4-chain MC3 stepping cost. per-pool: each chain's engine submits to its
/// own 2-worker pool and the chains step sequentially (the pre-runtime
/// shape). shared-pool: all four engines share ONE 2-worker pool and step
/// concurrently through the InstanceScheduler. On a single hardware thread
/// both are honest serializations; the pair of cases exists so the gate
/// tracks the scheduler's overhead against the sequential baseline.
CaseStat coupled_case(const phylo::PatternMatrix& data,
                      const phylo::Tree& tree,
                      const phylo::GtrParams& params, bool shared_pool,
                      std::uint64_t gens, int reps) {
  CaseStat cs;
  cs.name = shared_pool ? "coupled.4chain.shared-pool"
                        : "coupled.4chain.per-pool";
  cs.unit = "s/gen";
  cs.iters = gens;
  cs.threshold = 0.40;

  constexpr std::size_t kChains = 4;
  std::vector<std::unique_ptr<par::ThreadPool>> pools;
  std::vector<std::unique_ptr<core::ThreadedBackend>> backends;
  const std::size_t n_pools = shared_pool ? 1 : kChains;
  for (std::size_t i = 0; i < n_pools; ++i) {
    pools.push_back(std::make_unique<par::ThreadPool>(kPoolWorkers));
    backends.push_back(std::make_unique<core::ThreadedBackend>(*pools[i]));
  }
  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (std::size_t i = 0; i < kChains; ++i) {
    engines.push_back(std::make_unique<core::PlfEngine>(
        data, params, tree, *backends[shared_pool ? 0 : i]));
  }
  mcmc::CoupledOptions opts;
  opts.chain.seed = 4242;
  std::unique_ptr<exec::InstanceScheduler> sched;
  if (shared_pool) sched = std::make_unique<exec::InstanceScheduler>(kChains);
  mcmc::CoupledChains mc3(std::move(engines), opts, sched.get());

  std::uint64_t target = 5;  // warm-up: plans, pair tables, driver rebind
  mc3.run(target);
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_s();
    target += gens;
    mc3.run(target);
    const double t1 = now_s();
    cs.values.push_back((t1 - t0) / static_cast<double>(gens));
  }
  return cs;
}

/// Telemetry overhead (docs/OBSERVABILITY.md): the same sequential 4-chain
/// MC3 stepping loop with live telemetry off vs exporting a full record —
/// gauges, JSONL append, atomic status rewrite — EVERY generation, the
/// worst-case cadence (real runs default to every 100). The gate holds the
/// "on" case to the same relative threshold as the other MC3 cases, keeping
/// the observability layer honest about staying off the hot path.
CaseStat telemetry_case(const phylo::PatternMatrix& data,
                        const phylo::Tree& tree,
                        const phylo::GtrParams& params, bool telemetry_on,
                        std::uint64_t gens, int reps) {
  CaseStat cs;
  cs.name = telemetry_on ? "engine.telemetry.on" : "engine.telemetry.off";
  cs.unit = "s/gen";
  cs.iters = gens;
  cs.threshold = 0.40;

  constexpr std::size_t kChains = 4;
  par::ThreadPool pool(kPoolWorkers);
  core::ThreadedBackend backend(pool);
  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (std::size_t i = 0; i < kChains; ++i) {
    engines.push_back(
        std::make_unique<core::PlfEngine>(data, params, tree, backend));
  }
  const std::string tmp_prefix = "bench_telemetry_" +
                                 std::to_string(::getpid());
  std::unique_ptr<obs::TelemetryExporter> exporter;
  if (telemetry_on) {
    obs::TelemetryOptions topts;
    topts.jsonl_path = tmp_prefix + ".jsonl";
    topts.status_path = tmp_prefix + ".status.json";
    topts.every_generations = 1;
    exporter = std::make_unique<obs::TelemetryExporter>(
        topts, &obs::MetricsRegistry::global());
  }
  mcmc::CoupledOptions opts;
  opts.chain.seed = 4343;
  opts.telemetry = exporter.get();
  mcmc::CoupledChains mc3(std::move(engines), opts);

  std::uint64_t target = 5;  // warm-up: plans, pair tables, first record
  mc3.run(target);
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_s();
    target += gens;
    mc3.run(target);
    const double t1 = now_s();
    cs.values.push_back((t1 - t0) / static_cast<double>(gens));
  }
  if (telemetry_on) {
    std::remove((tmp_prefix + ".jsonl").c_str());
    std::remove((tmp_prefix + ".status.json").c_str());
  }
  return cs;
}

/// Partitioned model: 4 uniform partitions of one alignment, each with its
/// own engine, summed per-evaluation through the shared-pool scheduler.
CaseStat partitioned_case(const phylo::Alignment& aln,
                          const phylo::Tree& tree,
                          const phylo::GtrParams& params, std::uint64_t evals,
                          int reps) {
  CaseStat cs;
  cs.name = "partitioned.4part";
  cs.unit = "s/eval";
  cs.iters = evals;
  cs.threshold = 0.40;

  par::ThreadPool pool(kPoolWorkers);
  core::ThreadedBackend backend(pool);
  exec::InstanceScheduler sched(4);
  const auto spec = phylo::PartitionSpec::uniform(aln.n_columns(), 4);
  exec::PartitionedEngine pe(aln, spec, {params}, tree, backend,
                             exec::PartitionedConfig{}, &sched);
  pe.log_likelihood();  // warm-up
  const int n_leaves = static_cast<int>(aln.n_taxa());
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < evals; ++i) {
      pe.set_branch_length(
          pe.tree().leaf_of(static_cast<int>(i) % n_leaves),
          0.05 + 0.001 * static_cast<double>(i % 7));
      pe.log_likelihood();
    }
    const double t1 = now_s();
    cs.values.push_back((t1 - t0) / static_cast<double>(evals));
  }
  return cs;
}

// ---------------------------------------------------------------------------
// output

std::string utc_timestamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

void write_bench_json(std::ostream& os, const std::vector<CaseStat>& cases,
                      const std::string& git_sha, bool quick, int reps) {
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);

  const auto old_precision = os.precision(12);
  os << "{\n"
     << "  \"schema\": \"plf-bench-v1\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"generated_utc\": \"" << utc_timestamp() << "\",\n"
     << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"host\": {\n"
     << "    \"hostname\": \"" << json_escape(host) << "\",\n"
     << "    \"cpu\": \"" << json_escape(cpu_model()) << "\",\n"
     << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "    \"compiler\": \"" << json_escape(__VERSION__) << "\",\n"
     << "    \"pointer_bits\": " << 8 * sizeof(void*) << "\n"
     << "  },\n"
     << "  \"cases\": {\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseStat& c = cases[i];
    OnlineStats stats;
    for (const double v : c.values) stats.add(v);
    os << "    \"" << json_escape(c.name) << "\": {\"unit\": \"" << c.unit
       << "\", \"reps\": " << reps << ", \"iters\": " << c.iters
       << ", \"min\": " << c.min() << ", \"median\": " << c.median()
       << ", \"mean\": " << stats.mean() << ", \"stddev\": " << stats.stddev()
       << ", \"threshold\": " << c.threshold << "}"
       << (i + 1 < cases.size() ? ",\n" : "\n");
  }
  os << "  },\n"
     << "  \"metrics\": ";
  obs::write_metrics_json(os, obs::MetricsRegistry::global().snapshot());
  os << "\n}\n";
  os.precision(old_precision);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --out FILE [--quick] [--reps N] [--git-sha SHA]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string git_sha = "unknown";
  bool quick = false;
  int reps = 5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--git-sha" && i + 1 < argc) {
      git_sha = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (out_path.empty()) return usage(argv[0]);
  if (quick) reps = std::min(reps, 2);
  if (reps < 1) reps = 1;

  const std::uint64_t kernel_iters = quick ? 10 : 60;
  const std::uint64_t engine_evals = quick ? 4 : 16;

  std::vector<CaseStat> cases;

  for (const VariantRow& v : kVariants) {
    for (const char* op : {"down", "scale", "root_reduce"}) {
      cases.push_back(kernel_case(op, v.variant, v.label, kernel_iters, reps));
      std::cerr << cases.back().name << ": "
                << cases.back().min() * 1e6 << " us/call (min of " << reps
                << ")\n";
    }
  }

  for (const char* c : {"down.tip-tip", "down.tip-inner", "down_scale.fused"}) {
    cases.push_back(tip_kernel_case(c, kernel_iters, reps));
    std::cerr << cases.back().name << ": " << cases.back().min() * 1e6
              << " us/call (min of " << reps << ")\n";
  }

  Rng rng(2025);
  const phylo::Tree tree = seqgen::yule_tree(kTaxa, rng, 1.0, 0.2);
  const auto params = seqgen::default_gtr_params();
  Rng data_rng(9001);
  const auto data = make_columns(tree.taxon_names(), kPatterns, data_rng);

  core::SerialBackend serial;
  par::ThreadPool pool(kPoolWorkers);
  core::ThreadedBackend threaded(pool);
  struct BackendRow {
    core::ExecutionBackend* backend;
    const char* label;
  };
  const BackendRow backends[] = {{&serial, "serial"}, {&threaded, "threaded"}};

  for (const BackendRow& b : backends) {
    for (const core::DispatchMode dispatch :
         {core::DispatchMode::kPerCall, core::DispatchMode::kPlan}) {
      for (const core::SiteRepeatsMode sr :
           {core::SiteRepeatsMode::kOff, core::SiteRepeatsMode::kOn}) {
        cases.push_back(engine_case(data, tree, params, *b.backend, b.label,
                                    dispatch, sr, engine_evals, reps));
        std::cerr << cases.back().name << ": "
                  << cases.back().min() * 1e3 << " ms/eval (min of " << reps
                  << ")\n";
      }
    }
  }

  // CLV-budget sweep: the recompute-vs-memory tradeoff of the budgeted
  // arena, serial plan dispatch (the least noisy engine path). 1.00 holds
  // every buffer (eager unlimited twin of the row above); shrinking budgets
  // trade resident bytes for rematerialization kernel work. 0.25 requests
  // below the feasibility floor and clamps up to 0.50 — kept in the sweep so
  // the gate notices if the clamp ever stops holding that cost constant.
  struct BudgetRow {
    const char* spec;
    const char* suffix;
  };
  const BudgetRow budgets[] = {{"1.0", ".budget-1.00"},
                               {"0.75", ".budget-0.75"},
                               {"0.5", ".budget-0.50"},
                               {"0.25", ".budget-0.25"}};
  for (const BudgetRow& b : budgets) {
    cases.push_back(engine_case(data, tree, params, serial, "serial",
                                core::DispatchMode::kPlan,
                                core::SiteRepeatsMode::kOff, engine_evals,
                                reps, core::clv_budget_from_string(b.spec),
                                b.suffix));
    std::cerr << cases.back().name << ": " << cases.back().min() * 1e3
              << " ms/eval (min of " << reps << ")\n";
  }

  // Multi-instance runtime cases (docs/SHARDING.md): 4-chain MC3 stepping
  // cost sequential-per-pool vs shared-pool-scheduled, and a 4-partition
  // model batched through the scheduler.
  const std::uint64_t coupled_gens = quick ? 3 : 10;
  for (const bool shared : {false, true}) {
    cases.push_back(
        coupled_case(data, tree, params, shared, coupled_gens, reps));
    std::cerr << cases.back().name << ": " << cases.back().min() * 1e3
              << " ms/gen (min of " << reps << ")\n";
  }
  // Telemetry overhead pair: off vs a full record every generation.
  for (const bool telemetry_on : {false, true}) {
    cases.push_back(
        telemetry_case(data, tree, params, telemetry_on, coupled_gens, reps));
    std::cerr << cases.back().name << ": " << cases.back().min() * 1e3
              << " ms/gen (min of " << reps << ")\n";
  }
  {
    phylo::SubstitutionModel model(params);
    seqgen::SequenceEvolver ev(tree, model);
    Rng aln_rng(777);
    const phylo::Alignment aln = ev.evolve(quick ? 400 : 2000, aln_rng);
    cases.push_back(partitioned_case(aln, tree, params, engine_evals, reps));
    std::cerr << cases.back().name << ": " << cases.back().min() * 1e3
              << " ms/eval (min of " << reps << ")\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_suite: cannot open " << out_path << "\n";
    return 1;
  }
  write_bench_json(out, cases, git_sha, quick, reps);
  std::cerr << "bench_suite: wrote " << cases.size() << " cases to "
            << out_path << "\n";
  return 0;
}
