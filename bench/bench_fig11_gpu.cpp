// Figure 11 — Scalability for the 8800GT and GTX285 systems.
//
// GPU PLF throughput (pattern-updates per second in the kernels) normalized
// to the 8800GT on the smallest data set (10_1K) — the paper's "speedup
// normalized to 10_1K". Per-call kernel times are GpuPlf simulations with
// each card's launch configuration from the §3.4 design-space exploration.
//
// Paper shape: speedup rises with the column count, peaking at 20K/50K;
// rises (mildly) with computation intensity; GTX285 ends 2.2x (20K) to 2.4x
// (50K) above the 8800GT.
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "seqgen/datasets.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;

  GpuModel gt(system_by_name("8800GT"));
  GpuModel gtx(system_by_name("GTX285"));

  auto throughput = [](GpuModel& model, const PlfWorkload& w) {
    const double work = static_cast<double>(w.plf_calls()) *
                        static_cast<double>(w.m);  // pattern-updates
    return work / model.plf_section(w).kernel_s;
  };

  const auto w_ref = bench::measured_workload(10, 1000, kGenerations);
  const double ref = throughput(gt, w_ref);

  Table t("Figure 11: GPU speedup normalized to 8800GT @ 10_1K (PLF kernels)");
  t.header({"data set", "8800GT", "GTX285", "GTX/GT"});
  for (const auto& spec : seqgen::paper_grid()) {
    const auto w = bench::measured_workload(spec.taxa, spec.patterns,
                                            kGenerations);
    const double s_gt = throughput(gt, w) / ref;
    const double s_gtx = throughput(gtx, w) / ref;
    t.row({spec.name(), Table::num(s_gt, 2), Table::num(s_gtx, 2),
           Table::num(s_gtx / s_gt, 2)});
    bench::publish_bench_value("fig11", spec.name(), "gt8800_speedup", s_gt);
    bench::publish_bench_value("fig11", spec.name(), "gtx285_speedup", s_gtx);
  }
  std::cout << t << "\n";
  std::cout << "paper: GTX285/8800GT = 2.2x at 20K, up to 2.4x at 50K;\n"
               "core-count ratio 240/112 = 2.1x.\n";
  bench::emit_metrics_json("fig11");
  return 0;
}
