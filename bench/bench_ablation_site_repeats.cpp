// Ablation: site-repeat compaction (docs/SITE_REPEATS.md) on vs off.
//
// Sweeps duplicate-column fractions on one tree and measures the wall time
// the engine spends inside the PLF kernels for full re-evaluations (every
// node recomputed, as after a model move — the workload the compaction must
// beat). The compacted path must win big on dup-heavy data and cost nothing
// measurable on all-unique data, where the per-node auto/on gate keeps the
// dense path.
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/random_tree.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace plf;

/// m columns of which a `dup_fraction` share are copies of earlier columns.
phylo::PatternMatrix make_columns(const std::vector<std::string>& names,
                                  std::size_t m, double dup_fraction,
                                  Rng& rng) {
  const std::size_t n_taxa = names.size();
  const auto n_unique =
      static_cast<std::size_t>(static_cast<double>(m) * (1.0 - dup_fraction));
  std::vector<std::vector<phylo::StateMask>> cols;
  cols.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    if (c < n_unique || n_unique == 0) {
      std::vector<phylo::StateMask> col(n_taxa);
      for (auto& x : col) x = phylo::state_to_mask(rng.below(4));
      cols.push_back(std::move(col));
    } else {
      cols.push_back(cols[rng.below(n_unique)]);  // duplicate of an earlier one
    }
  }
  return phylo::PatternMatrix::from_patterns(
      names, cols, std::vector<std::uint32_t>(cols.size(), 1));
}

struct RunResult {
  double plf_s = 0.0;
  double rebuild_s = 0.0;
  double compression = 1.0;
};

RunResult run(const phylo::PatternMatrix& data, const phylo::Tree& tree,
              const phylo::GtrParams& params, core::SiteRepeatsMode mode,
              int iterations) {
  core::SerialBackend backend;
  core::PlfEngine engine(data, params, tree, backend,
                         core::KernelVariant::kSimdCol, mode);
  engine.log_likelihood();  // warm up: class identification + first eval
  RunResult r;
  r.rebuild_s = engine.stats().repeat_rebuild_seconds;  // one-time, amortized
  engine.reset_stats();
  for (int i = 0; i < iterations; ++i) {
    engine.set_model(params);  // dirty everything: full PLF re-evaluation
    engine.log_likelihood();
  }
  r.plf_s = engine.stats().plf_seconds;
  r.compression = engine.stats().repeat_compression_ratio();
  return r;
}

}  // namespace

int main() {
  constexpr std::size_t kTaxa = 20;
  constexpr std::size_t kColumns = 4000;
  constexpr int kIterations = 30;

  Rng rng(2025);
  const phylo::Tree tree = seqgen::yule_tree(kTaxa, rng, 1.0, 0.2);
  auto params = seqgen::default_gtr_params();

  Table t("Site-repeat ablation: full PLF re-evaluations, serial simd-col, " +
          std::to_string(kColumns) + " columns x " +
          std::to_string(kIterations) + " iterations");
  t.header({"dup fraction", "dense s", "repeats s", "kernel speedup",
            "realized compression", "ident s"});

  for (const double dup : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    Rng data_rng(7000 + static_cast<std::uint64_t>(dup * 100));
    const auto data =
        make_columns(tree.taxon_names(), kColumns, dup, data_rng);

    const RunResult off =
        run(data, tree, params, core::SiteRepeatsMode::kOff, kIterations);
    const RunResult on =
        run(data, tree, params, core::SiteRepeatsMode::kOn, kIterations);

    t.row({Table::num(dup, 2), Table::num(off.plf_s, 3),
           Table::num(on.plf_s, 3), Table::num(off.plf_s / on.plf_s, 2) + "x",
           Table::num(on.compression, 2) + "x", Table::num(on.rebuild_s, 4)});
  }
  std::cout << t << "\n";
  std::cout
      << "Duplicate columns cannot be folded by global pattern compression\n"
         "(their weights are per-site), so only the per-node repeat classes\n"
         "recover the redundancy. Identification (ident) runs once per\n"
         "topology, not per evaluation, and is amortized across the chain.\n";
  return 0;
}
