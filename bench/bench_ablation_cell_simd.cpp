// Ablation (paper §3.3, in-text): SPU SIMD layout — row-wise "approach (i)"
// vs column-wise/transposed "approach (ii)".
//
// The paper implemented both and measured "a benefit of 34% for the total
// speedup and 2x for the PLF speedup" for the column-wise layout, which is
// why only approach (ii) appears in its figures. This bench reruns that
// comparison on the simulated Cell: identical offloads, only the SPU
// program's SIMD layout differs.
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "cell/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;
  const std::size_t kTaxa = 20;

  Table t("Cell SPU SIMD ablation: approach (i) row-wise vs (ii) column-wise");
  t.header({"m", "PLF (i) s", "PLF (ii) s", "PLF speedup", "total speedup"});

  for (std::size_t m : {1000u, 5000u, 8543u, 20000u, 50000u}) {
    const auto w = bench::measured_workload(kTaxa, m, kGenerations);

    SystemConfig row_sys = system_by_name("QS20");
    row_sys.cell.simd = cell::SpuSimd::kRowWise;
    SystemConfig col_sys = system_by_name("QS20");
    col_sys.cell.simd = cell::SpuSimd::kColumnWise;

    CellModel row_model(row_sys);
    CellModel col_model(col_sys);
    const double plf_row = row_model.plf_section_s(w, 16);
    const double plf_col = col_model.plf_section_s(w, 16);
    const double serial = col_model.serial_s(w);  // identical on both

    const double plf_speedup = plf_row / plf_col;
    const double total_speedup = (plf_row + serial) / (plf_col + serial);
    t.row({std::to_string(m), Table::num(plf_row, 3), Table::num(plf_col, 3),
           Table::num(plf_speedup, 2) + "x",
           "+" + Table::num(100.0 * (total_speedup - 1.0), 1) + "%"});
  }
  std::cout << t << "\n";
  std::cout << "paper: column-wise layout gave 2x PLF speedup and +34% total\n"
               "speedup on the Cell (the row-wise variant needs a horizontal\n"
               "reduction after every inner product; the transposed layout\n"
               "runs straight-line FMA).\n";
  return 0;
}
