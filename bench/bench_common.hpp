// Shared machinery for the figure/table benches.
//
// Workloads are derived the honest way: a real McmcChain is run on a small
// pattern matrix with the requested taxon count (PLF call counts depend on
// the tree, not on m), the measured kernel call counts are scaled to the
// requested generation budget, and the pattern count is set to the target
// dataset's m. Serial cycles come from the calibrated analytic model (wall
// time on the build host would not describe a 2009 core).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "arch/workload.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/rng.hpp"

namespace plf::bench {

/// Publish one bench result cell into the global metrics registry as the
/// gauge "bench.<bench>.<row>.<column>", so a run's table is recoverable
/// from the structured JSON dump (emit_metrics_json below) without parsing
/// the human-readable output.
inline void publish_bench_value(const std::string& bench,
                                const std::string& row,
                                const std::string& column, double value) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.set_gauge(reg.gauge("bench." + bench + "." + row + "." + column), value);
}

/// If the PLF_BENCH_JSON environment variable names a file, dump the global
/// metrics registry (bench.* gauges published above plus any engine/kernel
/// metrics the run recorded) there as JSON. Benches call this once before
/// exiting; without the variable it is a no-op, so interactive runs keep
/// their table-only output.
inline void emit_metrics_json(const std::string& bench) {
  const char* path = std::getenv("PLF_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "PLF_BENCH_JSON: cannot open " << path << "\n";
    return;
  }
  publish_bench_value(bench, "meta", "emitted", 1.0);
  obs::write_metrics_json(out, obs::MetricsRegistry::global().snapshot());
  std::cerr << "metrics json: " << path << " (" << bench << ")\n";
}

/// Scale an integer call count to a different generation budget, rounding to
/// nearest. Truncation here understated every scaled count by up to one call
/// per category and biased short-budget workloads low.
inline std::uint64_t scale_count(std::uint64_t count, double scale) {
  const double scaled = static_cast<double>(count) * scale;
  return scaled <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(scaled));
}

/// Measured-by-proxy workload: call counts from a real chain on `taxa`
/// taxa, scaled to `generations`, with pattern count `m`.
inline arch::PlfWorkload measured_workload(std::size_t taxa, std::size_t m,
                                           std::uint64_t generations) {
  // Cache the per-taxa chain measurement (independent of m).
  static std::map<std::size_t, arch::PlfWorkload> cache;
  const std::uint64_t probe_gens = 2000;

  auto it = cache.find(taxa);
  if (it == cache.end()) {
    Rng rng(1000 + taxa);
    phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
    phylo::GtrParams params = seqgen::default_gtr_params();
    phylo::SubstitutionModel model(params);
    seqgen::SequenceEvolver ev(tree, model);
    auto data = phylo::PatternMatrix::compress(ev.evolve(400, rng));

    core::SerialBackend backend;
    core::PlfEngine engine(data, params, tree, backend);
    mcmc::McmcOptions opts;
    opts.seed = 5;
    mcmc::McmcChain chain(engine, opts);
    const auto result = chain.run(probe_gens);
    it = cache
             .emplace(taxa, mcmc::workload_from_run(
                                result, data.n_patterns(), 4, taxa))
             .first;
  }

  arch::PlfWorkload w = it->second;
  const double scale =
      static_cast<double>(generations) / static_cast<double>(probe_gens);
  w.m = m;
  w.taxa = taxa;
  w.down_calls = scale_count(w.down_calls, scale);
  w.root_calls = scale_count(w.root_calls, scale);
  w.scale_calls = scale_count(w.scale_calls, scale);
  w.reduce_calls = scale_count(w.reduce_calls, scale);
  w.tm_builds = scale_count(w.tm_builds, scale);
  // Serial remainder from the calibrated model (host wall time is not a
  // 2009 baseline core).
  w.serial_cycles =
      arch::analytic_mcmc_workload(taxa, m, generations).serial_cycles;
  return w;
}

}  // namespace plf::bench
