// Ablation: batched plan dispatch (docs/EXECUTION_PLAN.md) vs per-call.
//
// Same engine, same threaded backend, same kernels — only the dispatch path
// differs, and results are bit-identical (tests/backend_diff_test.cpp), so
// any wall-time gap is pure dispatch overhead: spawn/sync barriers and the
// extra memory pass the unfused CondLikeScaler makes over each CLV block.
// The pattern count matches the paper's real ssu-rRNA alignment (8,543
// distinct patterns, §4) and the tree its 20-taxon scaling study.
//
// Two workloads bracket the MCMC mix:
//   branch move  recompute one leaf-to-root path (the common proposal);
//                every op depends on the previous, so batching wins by
//                halving the barriers (down+scale fused) per node
//   model move   recompute every internal (worst case for per-call:
//                2 regions per op vs 1 region per level)
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "par/thread_pool.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/random_tree.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace plf;

phylo::PatternMatrix make_columns(const std::vector<std::string>& names,
                                  std::size_t m, Rng& rng) {
  const std::size_t n_taxa = names.size();
  std::vector<std::vector<phylo::StateMask>> cols;
  cols.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    std::vector<phylo::StateMask> col(n_taxa);
    for (auto& x : col) x = phylo::state_to_mask(rng.below(4));
    cols.push_back(std::move(col));
  }
  return phylo::PatternMatrix::from_patterns(
      names, cols, std::vector<std::uint32_t>(cols.size(), 1));
}

struct RunResult {
  double wall_s = 0.0;
  double plf_s = 0.0;  ///< time inside backend dispatch (the ablated part)
  double mean_level_width = 0.0;
};

RunResult run(const phylo::PatternMatrix& data, const phylo::Tree& tree,
              const phylo::GtrParams& params, core::ExecutionBackend& backend,
              core::DispatchMode dispatch, bool full_reval, int iterations) {
  core::PlfEngine engine(data, params, tree, backend,
                         core::KernelVariant::kSimdCol,
                         core::SiteRepeatsMode::kOff, dispatch);
  engine.log_likelihood();  // warm up: buffers touched, matrices built
  engine.reset_stats();

  const int n_leaves = static_cast<int>(data.n_taxa());
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    if (full_reval) {
      engine.set_model(params);  // dirty everything
    } else {
      engine.set_branch_length(engine.tree().leaf_of(i % n_leaves),
                               0.05 + 0.001 * (i % 7));  // dirty one path
    }
    engine.log_likelihood();
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.plf_s = engine.stats().plf_seconds;
  if (engine.stats().plan_levels > 0) {
    r.mean_level_width = static_cast<double>(engine.stats().plan_ops) /
                         static_cast<double>(engine.stats().plan_levels);
  }
  return r;
}

/// Best-of-`reps`: the minimum is the least scheduler-disturbed run, the
/// right statistic for comparing two fixed workloads on a shared host.
RunResult best_of(const phylo::PatternMatrix& data, const phylo::Tree& tree,
                  const phylo::GtrParams& params,
                  core::ExecutionBackend& backend, core::DispatchMode dispatch,
                  bool full_reval, int iterations, int reps) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    const RunResult r =
        run(data, tree, params, backend, dispatch, full_reval, iterations);
    if (i == 0 || r.wall_s < best.wall_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kTaxa = 20;
  constexpr std::size_t kColumns = 8543;  // paper §4: distinct rRNA patterns
  const std::size_t workers = argc > 1 ? std::stoul(argv[1]) : 8;
  const int branch_iters = argc > 2 ? std::stoi(argv[2]) : 1000;
  const int model_iters = branch_iters / 8;
  constexpr int kReps = 3;

  Rng rng(2025);
  const phylo::Tree tree = seqgen::yule_tree(kTaxa, rng, 1.0, 0.2);
  auto params = seqgen::default_gtr_params();
  Rng data_rng(9001);
  const auto data = make_columns(tree.taxon_names(), kColumns, data_rng);

  par::ThreadPool pool(workers);
  core::ThreadedBackend backend(pool);

  Table t("Plan-dispatch ablation: threaded(" + std::to_string(workers) +
          "), simd-col, " + std::to_string(kTaxa) + " taxa, " +
          std::to_string(data.n_patterns()) + " patterns");
  t.header({"workload", "evals", "percall plf s", "plan plf s", "speedup",
            "percall wall s", "plan wall s", "wall speedup",
            "mean level width"});

  double headline = 0.0;  // full-reevaluation wall speedup
  for (const bool full : {false, true}) {
    const int iters = full ? model_iters : branch_iters;
    const RunResult pc =
        best_of(data, tree, params, backend, core::DispatchMode::kPerCall,
                full, iters, kReps);
    const RunResult pl =
        best_of(data, tree, params, backend, core::DispatchMode::kPlan, full,
                iters, kReps);
    const double speedup = pc.plf_s / pl.plf_s;
    if (full) headline = pc.wall_s / pl.wall_s;
    t.row({full ? "model move (all nodes)" : "branch move (one path)",
           std::to_string(iters), Table::num(pc.plf_s, 3),
           Table::num(pl.plf_s, 3), Table::num(speedup, 2) + "x",
           Table::num(pc.wall_s, 3), Table::num(pl.wall_s, 3),
           Table::num(pc.wall_s / pl.wall_s, 2) + "x",
           Table::num(pl.mean_level_width, 2)});
  }
  std::cout << t << "\n";
  std::cout << "Both paths produce bit-identical likelihoods; the gap is\n"
               "dispatch overhead only: per-call opens two parallel regions\n"
               "per node (down/root, then scale) and re-reads the CLV block\n"
               "for the scale pass, while plan dispatch fuses runs of dense\n"
               "dependency levels into single regions with the rescale done\n"
               "inside each worker's still-hot chunk. The plf columns time\n"
               "exactly the dispatched work; wall adds the per-evaluation\n"
               "costs the dispatch mode cannot change (matrix rebuilds,\n"
               "scaler totals, root reduction).\n";
  std::cout << "fused plan dispatch speedup (full re-evaluations, wall): "
            << Table::num(headline, 2) << "x\n";
  return 0;
}
