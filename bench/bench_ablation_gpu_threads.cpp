// Ablation (paper §3.4, in-text): GPU thread scheme — cooperative
// "reduction-parallel" groups (approach i, Fig. 8b) vs fully independent
// "entry-parallel" threads (approach ii, Fig. 8c).
//
// The paper implemented both and measured "a benefit of 36% over the total
// speedup and 2.5x over the PLF speedup" for the entry-parallel scheme.
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "gpu/plf_gpu.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;
  const std::size_t kTaxa = 20;

  Table t("GPU thread-scheme ablation (8800GT): reduction- vs entry-parallel");
  t.header({"m", "kernels (i) s", "kernels (ii) s", "PLF speedup",
            "total speedup"});

  for (std::size_t m : {1000u, 5000u, 8543u, 20000u, 50000u}) {
    const auto w = bench::measured_workload(kTaxa, m, kGenerations);

    SystemConfig red_sys = system_by_name("8800GT");
    red_sys.gpu.scheme = gpu::ThreadScheme::kReductionParallel;
    SystemConfig ent_sys = system_by_name("8800GT");
    ent_sys.gpu.scheme = gpu::ThreadScheme::kEntryParallel;

    GpuModel red_model(red_sys);
    GpuModel ent_model(ent_sys);
    const auto red = red_model.plf_section(w);
    const auto ent = ent_model.plf_section(w);
    const double serial = ent_model.serial_s(w);

    const double plf_speedup = red.kernel_s / ent.kernel_s;
    // Total includes the (scheme-independent) PCIe and serial parts.
    const double total_speedup = (red.kernel_s + red.pcie_s + serial) /
                                 (ent.kernel_s + ent.pcie_s + serial);
    t.row({std::to_string(m), Table::num(red.kernel_s, 3),
           Table::num(ent.kernel_s, 3), Table::num(plf_speedup, 2) + "x",
           "+" + Table::num(100.0 * (total_speedup - 1.0), 1) + "%"});
  }
  std::cout << t << "\n";
  std::cout
      << "paper: entry-parallel threads gave 2.5x PLF speedup and +36% total\n"
         "speedup (the cooperative scheme needs __syncthreads() and\n"
         "conditionals per reduction; independent threads need none).\n"
         "Note: our total-speedup benefit is diluted by the PCIe share,\n"
         "which the scheme cannot change.\n";
  return 0;
}
