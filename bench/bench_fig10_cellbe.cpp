// Figure 10 — Scalability for the Cell/BE based systems.
//
// PLF-section speedup of n SPEs vs 1 SPE for the PS3 (6 SPEs) and the QS20
// blade (16 SPEs) across the 16 input data sets. The per-call durations are
// actual CellMachine simulations (mailbox trigger + two-level partitioning +
// double-buffered DMA + SPU compute).
//
// Paper shape: near-ideal except the 1K sets; stable across computation
// intensity (even slightly improving with more calls); 16-SPE speedup
// plateaus near ~12; peak PLF efficiency ~92%.
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "seqgen/datasets.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;

  CellModel ps3(system_by_name("PS3"));
  CellModel qs20(system_by_name("QS20"));

  Table t("Figure 10: Cell/BE speedup vs 1 SPE, PLF section");
  t.header({"data set", "PS3 (6 SPE)", "QS20 (16 SPE)", "QS20 efficiency"});

  double best_eff = 0.0;
  for (const auto& spec : seqgen::paper_grid()) {
    auto w = bench::measured_workload(spec.taxa, spec.patterns, kGenerations);
    // Scale the probe down: per-call simulation cost is amortized via the
    // model cache, but the counts only enter linearly — use them as-is.
    const double s6 = ps3.speedup_vs_one_spe(w, 6);
    const double s16 = qs20.speedup_vs_one_spe(w, 16);
    const double eff = s16 / 16.0;
    best_eff = std::max(best_eff, eff);
    t.row({spec.name(), Table::num(s6, 2), Table::num(s16, 2),
           Table::num(100.0 * eff, 1) + "%"});
    bench::publish_bench_value("fig10", spec.name(), "ps3_speedup", s6);
    bench::publish_bench_value("fig10", spec.name(), "qs20_speedup", s16);
  }
  std::cout << t << "\n";
  std::cout << "peak PLF efficiency: " << Table::num(100.0 * best_eff, 1)
            << "%  (paper: 92%)\n";
  bench::publish_bench_value("fig10", "summary", "peak_efficiency_pct",
                             100.0 * best_eff);
  bench::emit_metrics_json("fig10");
  return 0;
}
