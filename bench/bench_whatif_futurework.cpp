// What-if analysis of the paper's §4.2/§6 future-work proposals:
//
//  (a) Cell with a powerful serial core: "it would be interesting to explore
//      systems with multiple cores in order to use the Cell/BE for the
//      parallel section ... and offload the serial execution to more
//      powerful cores" — we re-run the QS20 model with the serial remainder
//      on a baseline-class core instead of the PPE.
//
//  (b) GPU with overlapped transfers: "explore faster ways to transfer the
//      data, or overlap the data transmission with computation" — we model
//      perfect transfer/compute overlap (total = max(kernel, pcie) instead
//      of kernel + pcie) and a PCIe-2.0 upgrade for the 8800GT.
//
//  (c) The paper's closing vision — heterogeneous cores + fast serial core +
//      efficient communication — approximated as: GTX285-class kernels,
//      overlapped PCIe-2.0 transfers, baseline-class serial core.
#include <algorithm>
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;
  const auto w = bench::measured_workload(20, 8543, kGenerations);

  const auto& base_sys = system_by_name("Baseline");
  MultiCoreModel base(base_sys);
  const double t_base = base.total_s(w, 1);
  const double base_serial = base.serial_s(w);

  Table t("future-work what-ifs (real data set, % of baseline)");
  t.header({"configuration", "PLF", "Remaining", "PCIe", "total", "speedup"});
  auto add = [&](const std::string& name, double plf, double rem, double pcie) {
    const double total = plf + rem + pcie;
    t.row({name, Table::num(100.0 * plf / t_base, 1),
           Table::num(100.0 * rem / t_base, 1),
           pcie > 0.0 ? Table::num(100.0 * pcie / t_base, 1) : "-",
           Table::num(100.0 * total / t_base, 1),
           Table::num(t_base / total, 2)});
  };

  // As-published references.
  {
    const auto& sys = system_by_name("QS20");
    CellModel m(sys);
    add("QS20 (as measured)",
        frequency_scaled(m.plf_section_s(w, 16), sys, base_sys),
        frequency_scaled(m.serial_s(w), sys, base_sys), 0.0);
    // (a) same SPE offload, serial on a baseline-class core.
    add("QS20 + fast serial core",
        frequency_scaled(m.plf_section_s(w, 16), sys, base_sys), base_serial,
        0.0);
  }
  {
    const auto& sys = system_by_name("8800GT");
    GpuModel m(sys);
    const auto pt = m.plf_section(w);
    add("8800GT (as measured)", frequency_scaled(pt.kernel_s, sys, base_sys),
        frequency_scaled(m.serial_s(w), sys, base_sys),
        frequency_scaled(pt.pcie_s, sys, base_sys));
    // (b1) overlap transfers with compute.
    const double overlapped = std::max(pt.kernel_s, pt.pcie_s);
    add("8800GT + overlap", frequency_scaled(overlapped, sys, base_sys),
        frequency_scaled(m.serial_s(w), sys, base_sys), 0.0);
    // (b2) PCIe 2.0 upgrade (GTX285's link), no overlap.
    SystemConfig upgraded = sys;
    upgraded.gpu.pcie = system_by_name("GTX285").gpu.pcie;
    GpuModel mu(upgraded);
    const auto ptu = mu.plf_section(w);
    add("8800GT + PCIe 2.0", frequency_scaled(ptu.kernel_s, sys, base_sys),
        frequency_scaled(mu.serial_s(w), sys, base_sys),
        frequency_scaled(ptu.pcie_s, sys, base_sys));
  }
  {
    // (c) the closing vision.
    const auto& sys = system_by_name("GTX285");
    GpuModel m(sys);
    const auto pt = m.plf_section(w);
    const double overlapped = std::max(pt.kernel_s, pt.pcie_s);
    add("heterogeneous vision (GTX285 kernels + overlap + fast serial)",
        frequency_scaled(overlapped, sys, base_sys), base_serial, 0.0);
  }

  std::cout << t << "\n";
  std::cout
      << "The paper's diagnosis quantified: the QS20's remaining time and\n"
         "the 8800GT's transfer time are each worth roughly a 2-4x overall\n"
         "factor; fixing both (the 'heterogeneous many-core' vision of §6)\n"
         "beats every 2009 system in Table 1.\n";
  return 0;
}
