// Design-space exploration (paper §3.4): CUDA launch configuration sweep.
//
// "Design space exploitation led to testing a wide range of configurations
// for different number of threads and blocks ... it was concluded that 256
// threads and 40 blocks was the best solution to use in the GPU 8800 GT,
// while for the GPU GTX 285 the best results were obtained with 256 threads
// and 85 blocks."
//
// We sweep the same axes through the kernel timing model at a representative
// PLF size (20K patterns) and report the best configuration per device.
#include <iostream>
#include <vector>

#include "gpu/device.hpp"
#include "gpu/launch.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::gpu;

  const std::size_t m = 20000, K = 4;
  const std::size_t n_elems = m * K * 4;
  KernelProfile prof;  // the entry-parallel CondLike kernel
  prof.flops_per_elem = 15.0;
  prof.bytes_per_elem = 36.0;

  const std::vector<std::size_t> thread_counts{32, 64, 128, 192, 256, 384, 512};
  const std::vector<std::size_t> block_counts{8,  14, 20,  28,  40, 42,
                                              56, 64, 85, 90, 120, 160};

  for (const DeviceSpec& dev :
       {DeviceSpec::geforce_8800gt(), DeviceSpec::gtx285()}) {
    KernelLauncher launcher(dev);
    Table t("launch-config sweep: " + dev.name + " (kernel us, 20K patterns)");
    std::vector<std::string> header{"blocks\\threads"};
    for (auto th : thread_counts) header.push_back(std::to_string(th));
    t.header(header);

    double best = 1e9;
    LaunchConfig best_cfg;
    for (auto b : block_counts) {
      std::vector<std::string> row{std::to_string(b)};
      for (auto th : thread_counts) {
        const LaunchConfig cfg{b, th};
        if (occupancy(dev, cfg) == 0.0) {
          row.push_back("-");
          continue;
        }
        const double us = launcher.kernel_time(cfg, n_elems, prof) * 1e6;
        if (us < best) {
          best = us;
          best_cfg = cfg;
        }
        row.push_back(Table::num(us, 1));
      }
      t.row(row);
    }
    std::cout << t;
    std::cout << "best: " << best_cfg.blocks << " blocks x "
              << best_cfg.threads_per_block << " threads ("
              << Table::num(best, 1) << " us)\n";
    std::cout << "paper: "
              << (dev.name == "8800GT" ? "40 blocks x 256 threads"
                                       : "85 blocks x 256 threads")
              << "\n\n";
  }
  return 0;
}
