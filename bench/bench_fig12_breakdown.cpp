// Figure 12 — Frequency-scaled total execution time for all systems, on the
// real data set (mammalian sub-alignment: 20 organisms, 28,740 columns,
// ~8,543 distinct patterns).
//
// Steps:
//   1. generate the real-data stand-in and report its compression stats;
//   2. run a genuine MCMC slice on it (threaded host backend) to validate
//      the pipeline end-to-end and to measure the PLF call profile;
//   3. evaluate every Table-1 system model on that workload and print the
//      PLF / Remaining / PCIe breakdown normalized to the baseline — the
//      bars of Fig. 12 — plus the overall speedups quoted in §4.2.
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "seqgen/datasets.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;

  std::cout << "generating the real-data stand-in (28,740 columns)...\n";
  const auto ds = seqgen::make_real_dataset();
  std::cout << "  " << ds.patterns.n_taxa() << " taxa, "
            << ds.patterns.total_weight() << " columns, "
            << ds.patterns.n_patterns()
            << " distinct patterns (paper: 8,543)\n\n";

  // A genuine short run on the host, to anchor the workload in reality.
  std::cout << "running a 500-generation MCMC slice on the host...\n";
  par::ThreadPool pool;
  core::ThreadedBackend backend(pool);
  core::PlfEngine engine(ds.patterns, ds.model_params, ds.tree, backend);
  mcmc::McmcOptions opts;
  opts.seed = 11;
  mcmc::McmcChain chain(engine, opts);
  const auto result = chain.run(500);
  std::cout << "  lnL " << Table::num(result.samples.front().ln_likelihood, 1)
            << " -> " << Table::num(result.final_ln_likelihood, 1) << ", "
            << result.total_accepted() << "/" << result.total_proposed()
            << " accepted, " << Table::num(result.wall_seconds, 2) << " s ("
            << Table::num(100.0 * result.plf_wall_seconds /
                              std::max(result.wall_seconds, 1e-12),
                          1)
            << "% in PLF kernels)\n\n";

  const PlfWorkload w =
      bench::measured_workload(20, ds.patterns.n_patterns(), kGenerations);

  const auto& base_sys = system_by_name("Baseline");
  MultiCoreModel base(base_sys);
  const double t_base = base.total_s(w, 1);

  Table t("Figure 12: frequency-scaled time, % of baseline");
  t.header({"system", "PLF", "Remaining", "PCIe", "total", "overall speedup"});
  auto add = [&](const std::string& name, double plf, double rem, double pcie) {
    const double total = plf + rem + pcie;
    t.row({name, Table::num(100.0 * plf / t_base, 1),
           Table::num(100.0 * rem / t_base, 1),
           pcie > 0.0 ? Table::num(100.0 * pcie / t_base, 1) : "-",
           Table::num(100.0 * total / t_base, 1),
           Table::num(t_base / total, 2)});
    bench::publish_bench_value("fig12", name, "plf_s", plf);
    bench::publish_bench_value("fig12", name, "remaining_s", rem);
    bench::publish_bench_value("fig12", name, "pcie_s", pcie);
    bench::publish_bench_value("fig12", name, "speedup", t_base / total);
  };

  add("Baseline", base.plf_section_s(w, 1), base.serial_s(w), 0.0);
  for (const char* name : {"2xXeon(4)", "4xOpteron(4)", "8xOpteron(2)"}) {
    const auto& sys = system_by_name(name);
    MultiCoreModel model(sys);
    add(name, frequency_scaled(model.plf_section_s(w, sys.cores), sys, base_sys),
        frequency_scaled(model.serial_s(w), sys, base_sys), 0.0);
  }
  for (const char* name : {"PS3", "QS20"}) {
    const auto& sys = system_by_name(name);
    CellModel model(sys);
    add(name,
        frequency_scaled(model.plf_section_s(w, sys.cell.n_spes), sys, base_sys),
        frequency_scaled(model.serial_s(w), sys, base_sys), 0.0);
  }
  for (const char* name : {"8800GT", "GTX285"}) {
    const auto& sys = system_by_name(name);
    GpuModel model(sys);
    const auto pt = model.plf_section(w);
    add(name, frequency_scaled(pt.kernel_s, sys, base_sys),
        frequency_scaled(model.serial_s(w), sys, base_sys),
        frequency_scaled(pt.pcie_s, sys, base_sys));
  }
  std::cout << t << "\n";
  std::cout
      << "paper anchors (§4.2): baseline >90% in PLF (57s of 62s);\n"
         "multi-cores reduce PLF to 10-15%, ~4x at 8 cores / ~7x at 16;\n"
         "Cell reduces PLF to 20-30% but the PPE inflates Remaining (~1.5x\n"
         "overall); GPUs reach 5-10% PLF but pay PCIe — the 8800GT ends\n"
         "slower than the baseline, the GTX285 at ~1.5x.\n";
  bench::emit_metrics_json("fig12");
  return 0;
}
