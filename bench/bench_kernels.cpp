// Microbenchmarks (google-benchmark): raw host throughput of the PLF
// kernels — kernel-variant comparison (the paper's approach (i)/(ii)
// distinction on this machine's SIMD), pattern-count scaling, tip
// specializations, the scaler and reduction kernels, and threaded scaling
// over the pattern loop.
#include <benchmark/benchmark.h>

#include "core/backend.hpp"
#include "core/kernels.hpp"
#include "core/tip_partial.hpp"
#include "par/thread_pool.hpp"
#include "phylo/model.hpp"
#include "seqgen/datasets.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace {

using namespace plf;

struct Operands {
  std::size_t m, K;
  phylo::TransitionMatrices tm_l, tm_r;
  core::TipPartial tp_l;
  aligned_vector<float> cl_l, cl_r, out;
  aligned_vector<float> ln_scaler;
  aligned_vector<double> scaler_total;
  aligned_vector<std::uint32_t> weights;
  std::vector<phylo::StateMask> mask_l;

  Operands(std::size_t m_, std::size_t K_ = 4) : m(m_), K(K_) {
    phylo::GtrParams p = seqgen::default_gtr_params();
    p.n_rate_categories = K;
    phylo::SubstitutionModel model(p);
    tm_l = model.transition_matrices(0.1);
    tm_r = model.transition_matrices(0.2);
    tp_l = core::TipPartial(tm_l);
    Rng rng(7);
    cl_l.resize(m * K * 4);
    cl_r.resize(m * K * 4);
    out.resize(m * K * 4);
    for (auto& v : cl_l) v = static_cast<float>(rng.uniform(0.05, 1.0));
    for (auto& v : cl_r) v = static_cast<float>(rng.uniform(0.05, 1.0));
    ln_scaler.assign(m, 0.0f);
    scaler_total.assign(m, -0.5);
    weights.assign(m, 1);
    mask_l.resize(m);
    for (auto& x : mask_l) x = phylo::state_to_mask(rng.below(4));
  }

  core::DownArgs down(bool tip_left = false) {
    core::DownArgs a;
    a.K = K;
    if (tip_left) {
      a.left.mask = mask_l.data();
      a.left.tp = tp_l.data();
    } else {
      a.left.cl = cl_l.data();
    }
    a.left.p = tm_l.row_major();
    a.left.pt = tm_l.col_major();
    a.right.cl = cl_r.data();
    a.right.p = tm_r.row_major();
    a.right.pt = tm_r.col_major();
    a.out = out.data();
    return a;
  }
};

core::KernelVariant variant_of(int i) {
  switch (i) {
    case 0: return core::KernelVariant::kScalar;
    case 1: return core::KernelVariant::kSimdRow;
    case 2: return core::KernelVariant::kSimdCol;
    default: return core::KernelVariant::kSimdCol8;
  }
}

void BM_CondLikeDown(benchmark::State& state) {
  const auto variant = variant_of(static_cast<int>(state.range(0)));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  Operands op(m);
  const auto& ks = core::kernels(variant);
  const auto args = op.down();
  for (auto _ : state) {
    ks.down(args, 0, m);
    benchmark::DoNotOptimize(op.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
  state.SetLabel(core::to_string(variant));
}
BENCHMARK(BM_CondLikeDown)
    ->ArgsProduct({{0, 1, 2, 3}, {1000, 8543, 50000}})
    ->Unit(benchmark::kMicrosecond);

void BM_CondLikeDownTip(benchmark::State& state) {
  const auto variant = variant_of(static_cast<int>(state.range(0)));
  Operands op(8543);
  const auto& ks = core::kernels(variant);
  const auto args = op.down(/*tip_left=*/true);
  for (auto _ : state) {
    ks.down(args, 0, op.m);
    benchmark::DoNotOptimize(op.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8543);
  state.SetLabel(core::to_string(variant));
}
BENCHMARK(BM_CondLikeDownTip)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_CondLikeScaler(benchmark::State& state) {
  const auto variant = variant_of(static_cast<int>(state.range(0)));
  Operands op(8543);
  const auto& ks = core::kernels(variant);
  core::ScaleArgs args{op.cl_l.data(), op.ln_scaler.data(), op.K};
  for (auto _ : state) {
    ks.scale(args, 0, op.m);
    benchmark::DoNotOptimize(op.cl_l.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8543);
  state.SetLabel(core::to_string(variant));
}
BENCHMARK(BM_CondLikeScaler)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_RootReduce(benchmark::State& state) {
  const auto variant = variant_of(static_cast<int>(state.range(0)));
  Operands op(8543);
  const auto& ks = core::kernels(variant);
  core::RootReduceArgs args;
  args.cl = op.cl_l.data();
  args.ln_scaler_total = op.scaler_total.data();
  args.weights = op.weights.data();
  args.K = op.K;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks.root_reduce(args, 0, op.m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8543);
  state.SetLabel(core::to_string(variant));
}
BENCHMARK(BM_RootReduce)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_ThreadedDown(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 50000;
  Operands op(m);
  par::ThreadPool pool(threads);
  core::ThreadedBackend backend(pool);
  const auto& ks = core::kernels(core::KernelVariant::kSimdCol);
  const auto args = op.down();
  for (auto _ : state) {
    backend.run_down(ks, args, m);
    benchmark::DoNotOptimize(op.out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_ThreadedDown)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_ParallelRegionOverhead(benchmark::State& state) {
  // The cost the multi-core model's fork/join term represents, measured on
  // this host: an empty parallel region.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  par::ThreadPool pool(threads);
  for (auto _ : state) {
    pool.parallel_for(0, threads, [](par::Range, std::size_t) {});
  }
}
BENCHMARK(BM_ParallelRegionOverhead)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
