// Figure 9 — Scalability for the multi-core based systems.
//
// Relative PLF-section speedup (n cores vs 1 core, same system) for the
// 2xXeon(4), 4xOpteron(4) and 8xOpteron(2) systems across the paper's 16
// input data sets (10/20/50/100 taxa x 1K/5K/20K/50K distinct patterns).
// Workload call counts are measured from a real MCMC chain per taxon count.
//
// Paper shape to reproduce: all systems scale well; 1K sets are the worst
// (lowest ~6 on the Xeon); speedups drop as the computation intensity
// (taxa -> calls) rises; the 16-core systems top out around 12-13x; average
// parallel efficiency ~71%.
#include <iostream>

#include "arch/models.hpp"
#include "bench_common.hpp"
#include "seqgen/datasets.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;
  using namespace plf::arch;

  const std::uint64_t kGenerations = 2000;

  MultiCoreModel xeon(system_by_name("2xXeon(4)"));
  MultiCoreModel opt4(system_by_name("4xOpteron(4)"));
  MultiCoreModel opt2(system_by_name("8xOpteron(2)"));

  Table t("Figure 9: relative speedup (n-core vs 1-core), PLF section");
  t.header({"data set", "2xXeon(4) n=8", "4xOpteron(4) n=16",
            "8xOpteron(2) n=16"});

  double eff_sum = 0.0;
  int eff_count = 0;
  for (const auto& spec : seqgen::paper_grid()) {
    const auto w = bench::measured_workload(spec.taxa, spec.patterns,
                                            kGenerations);
    const double s_xeon = xeon.relative_speedup(w, 8);
    const double s_opt4 = opt4.relative_speedup(w, 16);
    const double s_opt2 = opt2.relative_speedup(w, 16);
    t.row({spec.name(), Table::num(s_xeon, 2), Table::num(s_opt4, 2),
           Table::num(s_opt2, 2)});
    bench::publish_bench_value("fig09", spec.name(), "xeon8_speedup", s_xeon);
    bench::publish_bench_value("fig09", spec.name(), "opt16_speedup", s_opt4);
    bench::publish_bench_value("fig09", spec.name(), "opt2x16_speedup", s_opt2);
    eff_sum += s_xeon / 8.0 + s_opt4 / 16.0 + s_opt2 / 16.0;
    eff_count += 3;
  }
  std::cout << t << "\n";
  std::cout << "average parallel efficiency: "
            << Table::num(100.0 * eff_sum / eff_count, 1)
            << "%  (paper: ~71% average for the multi-cores)\n";
  bench::publish_bench_value("fig09", "summary", "avg_efficiency_pct",
                             100.0 * eff_sum / eff_count);
  bench::emit_metrics_json("fig09");
  return 0;
}
