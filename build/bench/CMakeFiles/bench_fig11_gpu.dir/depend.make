# Empty dependencies file for bench_fig11_gpu.
# This may be replaced when dependencies are built.
