# Empty dependencies file for bench_fig09_multicore.
# This may be replaced when dependencies are built.
