file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_multicore.dir/bench_fig09_multicore.cpp.o"
  "CMakeFiles/bench_fig09_multicore.dir/bench_fig09_multicore.cpp.o.d"
  "bench_fig09_multicore"
  "bench_fig09_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
