file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cell_simd.dir/bench_ablation_cell_simd.cpp.o"
  "CMakeFiles/bench_ablation_cell_simd.dir/bench_ablation_cell_simd.cpp.o.d"
  "bench_ablation_cell_simd"
  "bench_ablation_cell_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cell_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
