# Empty dependencies file for bench_ablation_cell_simd.
# This may be replaced when dependencies are built.
