file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cell_buffering.dir/bench_ablation_cell_buffering.cpp.o"
  "CMakeFiles/bench_ablation_cell_buffering.dir/bench_ablation_cell_buffering.cpp.o.d"
  "bench_ablation_cell_buffering"
  "bench_ablation_cell_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cell_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
