# Empty dependencies file for bench_ablation_cell_buffering.
# This may be replaced when dependencies are built.
