file(REMOVE_RECURSE
  "CMakeFiles/bench_whatif_futurework.dir/bench_whatif_futurework.cpp.o"
  "CMakeFiles/bench_whatif_futurework.dir/bench_whatif_futurework.cpp.o.d"
  "bench_whatif_futurework"
  "bench_whatif_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
