file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cellbe.dir/bench_fig10_cellbe.cpp.o"
  "CMakeFiles/bench_fig10_cellbe.dir/bench_fig10_cellbe.cpp.o.d"
  "bench_fig10_cellbe"
  "bench_fig10_cellbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cellbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
