# Empty compiler generated dependencies file for mrbayes_lite.
# This may be replaced when dependencies are built.
