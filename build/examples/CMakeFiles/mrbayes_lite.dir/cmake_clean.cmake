file(REMOVE_RECURSE
  "CMakeFiles/mrbayes_lite.dir/mrbayes_lite.cpp.o"
  "CMakeFiles/mrbayes_lite.dir/mrbayes_lite.cpp.o.d"
  "mrbayes_lite"
  "mrbayes_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbayes_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
