
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mrbayes_lite.cpp" "examples/CMakeFiles/mrbayes_lite.dir/mrbayes_lite.cpp.o" "gcc" "examples/CMakeFiles/mrbayes_lite.dir/mrbayes_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcmc/CMakeFiles/plf_mcmc.dir/DependInfo.cmake"
  "/root/repo/build/src/seqgen/CMakeFiles/plf_seqgen.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/plf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/plf_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/plf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/plf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/plf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/plf_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/plf_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/plf_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/plf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
