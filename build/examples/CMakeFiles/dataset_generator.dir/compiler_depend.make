# Empty compiler generated dependencies file for dataset_generator.
# This may be replaced when dependencies are built.
