file(REMOVE_RECURSE
  "CMakeFiles/dataset_generator.dir/dataset_generator.cpp.o"
  "CMakeFiles/dataset_generator.dir/dataset_generator.cpp.o.d"
  "dataset_generator"
  "dataset_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
