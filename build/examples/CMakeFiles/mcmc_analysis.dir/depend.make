# Empty dependencies file for mcmc_analysis.
# This may be replaced when dependencies are built.
