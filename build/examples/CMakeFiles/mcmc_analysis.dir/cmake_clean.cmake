file(REMOVE_RECURSE
  "CMakeFiles/mcmc_analysis.dir/mcmc_analysis.cpp.o"
  "CMakeFiles/mcmc_analysis.dir/mcmc_analysis.cpp.o.d"
  "mcmc_analysis"
  "mcmc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcmc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
