# Empty compiler generated dependencies file for ml_search.
# This may be replaced when dependencies are built.
