file(REMOVE_RECURSE
  "CMakeFiles/ml_search.dir/ml_search.cpp.o"
  "CMakeFiles/ml_search.dir/ml_search.cpp.o.d"
  "ml_search"
  "ml_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
