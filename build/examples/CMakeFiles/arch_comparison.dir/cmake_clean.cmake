file(REMOVE_RECURSE
  "CMakeFiles/arch_comparison.dir/arch_comparison.cpp.o"
  "CMakeFiles/arch_comparison.dir/arch_comparison.cpp.o.d"
  "arch_comparison"
  "arch_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
