# Empty dependencies file for arch_comparison.
# This may be replaced when dependencies are built.
