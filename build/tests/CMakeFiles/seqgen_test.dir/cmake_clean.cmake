file(REMOVE_RECURSE
  "CMakeFiles/seqgen_test.dir/seqgen_test.cpp.o"
  "CMakeFiles/seqgen_test.dir/seqgen_test.cpp.o.d"
  "seqgen_test"
  "seqgen_test.pdb"
  "seqgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
