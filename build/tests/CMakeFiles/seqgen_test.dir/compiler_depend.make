# Empty compiler generated dependencies file for seqgen_test.
# This may be replaced when dependencies are built.
