# Empty dependencies file for mcmc_test.
# This may be replaced when dependencies are built.
