file(REMOVE_RECURSE
  "CMakeFiles/mcmc_test.dir/mcmc_test.cpp.o"
  "CMakeFiles/mcmc_test.dir/mcmc_test.cpp.o.d"
  "mcmc_test"
  "mcmc_test.pdb"
  "mcmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
