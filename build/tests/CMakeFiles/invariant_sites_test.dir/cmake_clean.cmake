file(REMOVE_RECURSE
  "CMakeFiles/invariant_sites_test.dir/invariant_sites_test.cpp.o"
  "CMakeFiles/invariant_sites_test.dir/invariant_sites_test.cpp.o.d"
  "invariant_sites_test"
  "invariant_sites_test.pdb"
  "invariant_sites_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_sites_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
