# Empty compiler generated dependencies file for invariant_sites_test.
# This may be replaced when dependencies are built.
