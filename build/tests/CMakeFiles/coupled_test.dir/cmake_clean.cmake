file(REMOVE_RECURSE
  "CMakeFiles/coupled_test.dir/coupled_test.cpp.o"
  "CMakeFiles/coupled_test.dir/coupled_test.cpp.o.d"
  "coupled_test"
  "coupled_test.pdb"
  "coupled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
