file(REMOVE_RECURSE
  "CMakeFiles/phylo_test.dir/phylo_test.cpp.o"
  "CMakeFiles/phylo_test.dir/phylo_test.cpp.o.d"
  "phylo_test"
  "phylo_test.pdb"
  "phylo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phylo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
