# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/numerics_test[1]_include.cmake")
include("/root/repo/build/tests/simd_test[1]_include.cmake")
include("/root/repo/build/tests/par_test[1]_include.cmake")
include("/root/repo/build/tests/phylo_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/seqgen_test[1]_include.cmake")
include("/root/repo/build/tests/cell_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/mcmc_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/optimize_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/coupled_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_sites_test[1]_include.cmake")
include("/root/repo/build/tests/nexus_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/spr_test[1]_include.cmake")
include("/root/repo/build/tests/engine_param_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/file_io_test[1]_include.cmake")
