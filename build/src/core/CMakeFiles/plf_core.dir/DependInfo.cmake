
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cpp" "src/core/CMakeFiles/plf_core.dir/backend.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/backend.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/plf_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/plf_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/kernels_scalar.cpp" "src/core/CMakeFiles/plf_core.dir/kernels_scalar.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/kernels_scalar.cpp.o.d"
  "/root/repo/src/core/kernels_simd_col.cpp" "src/core/CMakeFiles/plf_core.dir/kernels_simd_col.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/kernels_simd_col.cpp.o.d"
  "/root/repo/src/core/kernels_simd_row.cpp" "src/core/CMakeFiles/plf_core.dir/kernels_simd_row.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/kernels_simd_row.cpp.o.d"
  "/root/repo/src/core/optimize.cpp" "src/core/CMakeFiles/plf_core.dir/optimize.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/optimize.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/plf_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/search.cpp.o.d"
  "/root/repo/src/core/tip_partial.cpp" "src/core/CMakeFiles/plf_core.dir/tip_partial.cpp.o" "gcc" "src/core/CMakeFiles/plf_core.dir/tip_partial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/plf_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/plf_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/plf_par.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/plf_phylo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
