file(REMOVE_RECURSE
  "CMakeFiles/plf_core.dir/backend.cpp.o"
  "CMakeFiles/plf_core.dir/backend.cpp.o.d"
  "CMakeFiles/plf_core.dir/engine.cpp.o"
  "CMakeFiles/plf_core.dir/engine.cpp.o.d"
  "CMakeFiles/plf_core.dir/kernels.cpp.o"
  "CMakeFiles/plf_core.dir/kernels.cpp.o.d"
  "CMakeFiles/plf_core.dir/kernels_scalar.cpp.o"
  "CMakeFiles/plf_core.dir/kernels_scalar.cpp.o.d"
  "CMakeFiles/plf_core.dir/kernels_simd_col.cpp.o"
  "CMakeFiles/plf_core.dir/kernels_simd_col.cpp.o.d"
  "CMakeFiles/plf_core.dir/kernels_simd_row.cpp.o"
  "CMakeFiles/plf_core.dir/kernels_simd_row.cpp.o.d"
  "CMakeFiles/plf_core.dir/optimize.cpp.o"
  "CMakeFiles/plf_core.dir/optimize.cpp.o.d"
  "CMakeFiles/plf_core.dir/search.cpp.o"
  "CMakeFiles/plf_core.dir/search.cpp.o.d"
  "CMakeFiles/plf_core.dir/tip_partial.cpp.o"
  "CMakeFiles/plf_core.dir/tip_partial.cpp.o.d"
  "libplf_core.a"
  "libplf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
