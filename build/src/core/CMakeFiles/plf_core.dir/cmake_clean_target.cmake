file(REMOVE_RECURSE
  "libplf_core.a"
)
