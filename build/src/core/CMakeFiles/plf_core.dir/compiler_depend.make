# Empty compiler generated dependencies file for plf_core.
# This may be replaced when dependencies are built.
