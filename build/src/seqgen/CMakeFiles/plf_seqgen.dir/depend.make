# Empty dependencies file for plf_seqgen.
# This may be replaced when dependencies are built.
