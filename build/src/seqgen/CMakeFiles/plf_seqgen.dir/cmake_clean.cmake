file(REMOVE_RECURSE
  "CMakeFiles/plf_seqgen.dir/datasets.cpp.o"
  "CMakeFiles/plf_seqgen.dir/datasets.cpp.o.d"
  "CMakeFiles/plf_seqgen.dir/evolve.cpp.o"
  "CMakeFiles/plf_seqgen.dir/evolve.cpp.o.d"
  "CMakeFiles/plf_seqgen.dir/random_tree.cpp.o"
  "CMakeFiles/plf_seqgen.dir/random_tree.cpp.o.d"
  "libplf_seqgen.a"
  "libplf_seqgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_seqgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
