
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seqgen/datasets.cpp" "src/seqgen/CMakeFiles/plf_seqgen.dir/datasets.cpp.o" "gcc" "src/seqgen/CMakeFiles/plf_seqgen.dir/datasets.cpp.o.d"
  "/root/repo/src/seqgen/evolve.cpp" "src/seqgen/CMakeFiles/plf_seqgen.dir/evolve.cpp.o" "gcc" "src/seqgen/CMakeFiles/plf_seqgen.dir/evolve.cpp.o.d"
  "/root/repo/src/seqgen/random_tree.cpp" "src/seqgen/CMakeFiles/plf_seqgen.dir/random_tree.cpp.o" "gcc" "src/seqgen/CMakeFiles/plf_seqgen.dir/random_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/plf_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/plf_phylo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
