file(REMOVE_RECURSE
  "libplf_seqgen.a"
)
