# Empty dependencies file for plf_util.
# This may be replaced when dependencies are built.
