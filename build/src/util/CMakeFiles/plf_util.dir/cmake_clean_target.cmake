file(REMOVE_RECURSE
  "libplf_util.a"
)
