file(REMOVE_RECURSE
  "CMakeFiles/plf_util.dir/error.cpp.o"
  "CMakeFiles/plf_util.dir/error.cpp.o.d"
  "CMakeFiles/plf_util.dir/rng.cpp.o"
  "CMakeFiles/plf_util.dir/rng.cpp.o.d"
  "CMakeFiles/plf_util.dir/table.cpp.o"
  "CMakeFiles/plf_util.dir/table.cpp.o.d"
  "libplf_util.a"
  "libplf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
