file(REMOVE_RECURSE
  "CMakeFiles/plf_arch.dir/models.cpp.o"
  "CMakeFiles/plf_arch.dir/models.cpp.o.d"
  "CMakeFiles/plf_arch.dir/systems.cpp.o"
  "CMakeFiles/plf_arch.dir/systems.cpp.o.d"
  "CMakeFiles/plf_arch.dir/workload.cpp.o"
  "CMakeFiles/plf_arch.dir/workload.cpp.o.d"
  "libplf_arch.a"
  "libplf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
