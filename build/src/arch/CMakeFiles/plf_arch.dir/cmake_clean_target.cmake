file(REMOVE_RECURSE
  "libplf_arch.a"
)
