# Empty compiler generated dependencies file for plf_arch.
# This may be replaced when dependencies are built.
