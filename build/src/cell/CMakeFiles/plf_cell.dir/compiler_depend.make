# Empty compiler generated dependencies file for plf_cell.
# This may be replaced when dependencies are built.
