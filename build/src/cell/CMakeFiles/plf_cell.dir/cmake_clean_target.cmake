file(REMOVE_RECURSE
  "libplf_cell.a"
)
