
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/dma.cpp" "src/cell/CMakeFiles/plf_cell.dir/dma.cpp.o" "gcc" "src/cell/CMakeFiles/plf_cell.dir/dma.cpp.o.d"
  "/root/repo/src/cell/local_store.cpp" "src/cell/CMakeFiles/plf_cell.dir/local_store.cpp.o" "gcc" "src/cell/CMakeFiles/plf_cell.dir/local_store.cpp.o.d"
  "/root/repo/src/cell/machine.cpp" "src/cell/CMakeFiles/plf_cell.dir/machine.cpp.o" "gcc" "src/cell/CMakeFiles/plf_cell.dir/machine.cpp.o.d"
  "/root/repo/src/cell/mailbox.cpp" "src/cell/CMakeFiles/plf_cell.dir/mailbox.cpp.o" "gcc" "src/cell/CMakeFiles/plf_cell.dir/mailbox.cpp.o.d"
  "/root/repo/src/cell/spu.cpp" "src/cell/CMakeFiles/plf_cell.dir/spu.cpp.o" "gcc" "src/cell/CMakeFiles/plf_cell.dir/spu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/plf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/plf_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/plf_par.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/plf_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/plf_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
