file(REMOVE_RECURSE
  "CMakeFiles/plf_cell.dir/dma.cpp.o"
  "CMakeFiles/plf_cell.dir/dma.cpp.o.d"
  "CMakeFiles/plf_cell.dir/local_store.cpp.o"
  "CMakeFiles/plf_cell.dir/local_store.cpp.o.d"
  "CMakeFiles/plf_cell.dir/machine.cpp.o"
  "CMakeFiles/plf_cell.dir/machine.cpp.o.d"
  "CMakeFiles/plf_cell.dir/mailbox.cpp.o"
  "CMakeFiles/plf_cell.dir/mailbox.cpp.o.d"
  "CMakeFiles/plf_cell.dir/spu.cpp.o"
  "CMakeFiles/plf_cell.dir/spu.cpp.o.d"
  "libplf_cell.a"
  "libplf_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
