file(REMOVE_RECURSE
  "libplf_par.a"
)
