# Empty dependencies file for plf_par.
# This may be replaced when dependencies are built.
