file(REMOVE_RECURSE
  "CMakeFiles/plf_par.dir/thread_pool.cpp.o"
  "CMakeFiles/plf_par.dir/thread_pool.cpp.o.d"
  "libplf_par.a"
  "libplf_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
