# Empty dependencies file for plf_mcmc.
# This may be replaced when dependencies are built.
