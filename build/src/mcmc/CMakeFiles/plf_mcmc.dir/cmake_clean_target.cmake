file(REMOVE_RECURSE
  "libplf_mcmc.a"
)
