file(REMOVE_RECURSE
  "CMakeFiles/plf_mcmc.dir/chain.cpp.o"
  "CMakeFiles/plf_mcmc.dir/chain.cpp.o.d"
  "CMakeFiles/plf_mcmc.dir/consensus.cpp.o"
  "CMakeFiles/plf_mcmc.dir/consensus.cpp.o.d"
  "CMakeFiles/plf_mcmc.dir/coupled.cpp.o"
  "CMakeFiles/plf_mcmc.dir/coupled.cpp.o.d"
  "CMakeFiles/plf_mcmc.dir/diagnostics.cpp.o"
  "CMakeFiles/plf_mcmc.dir/diagnostics.cpp.o.d"
  "CMakeFiles/plf_mcmc.dir/proposals.cpp.o"
  "CMakeFiles/plf_mcmc.dir/proposals.cpp.o.d"
  "CMakeFiles/plf_mcmc.dir/trace_io.cpp.o"
  "CMakeFiles/plf_mcmc.dir/trace_io.cpp.o.d"
  "libplf_mcmc.a"
  "libplf_mcmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_mcmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
