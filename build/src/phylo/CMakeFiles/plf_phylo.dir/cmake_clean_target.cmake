file(REMOVE_RECURSE
  "libplf_phylo.a"
)
