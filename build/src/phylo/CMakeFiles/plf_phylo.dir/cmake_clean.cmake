file(REMOVE_RECURSE
  "CMakeFiles/plf_phylo.dir/alignment.cpp.o"
  "CMakeFiles/plf_phylo.dir/alignment.cpp.o.d"
  "CMakeFiles/plf_phylo.dir/dna.cpp.o"
  "CMakeFiles/plf_phylo.dir/dna.cpp.o.d"
  "CMakeFiles/plf_phylo.dir/model.cpp.o"
  "CMakeFiles/plf_phylo.dir/model.cpp.o.d"
  "CMakeFiles/plf_phylo.dir/nexus.cpp.o"
  "CMakeFiles/plf_phylo.dir/nexus.cpp.o.d"
  "CMakeFiles/plf_phylo.dir/patterns.cpp.o"
  "CMakeFiles/plf_phylo.dir/patterns.cpp.o.d"
  "CMakeFiles/plf_phylo.dir/tree.cpp.o"
  "CMakeFiles/plf_phylo.dir/tree.cpp.o.d"
  "libplf_phylo.a"
  "libplf_phylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
