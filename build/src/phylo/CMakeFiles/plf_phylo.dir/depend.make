# Empty dependencies file for plf_phylo.
# This may be replaced when dependencies are built.
