
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phylo/alignment.cpp" "src/phylo/CMakeFiles/plf_phylo.dir/alignment.cpp.o" "gcc" "src/phylo/CMakeFiles/plf_phylo.dir/alignment.cpp.o.d"
  "/root/repo/src/phylo/dna.cpp" "src/phylo/CMakeFiles/plf_phylo.dir/dna.cpp.o" "gcc" "src/phylo/CMakeFiles/plf_phylo.dir/dna.cpp.o.d"
  "/root/repo/src/phylo/model.cpp" "src/phylo/CMakeFiles/plf_phylo.dir/model.cpp.o" "gcc" "src/phylo/CMakeFiles/plf_phylo.dir/model.cpp.o.d"
  "/root/repo/src/phylo/nexus.cpp" "src/phylo/CMakeFiles/plf_phylo.dir/nexus.cpp.o" "gcc" "src/phylo/CMakeFiles/plf_phylo.dir/nexus.cpp.o.d"
  "/root/repo/src/phylo/patterns.cpp" "src/phylo/CMakeFiles/plf_phylo.dir/patterns.cpp.o" "gcc" "src/phylo/CMakeFiles/plf_phylo.dir/patterns.cpp.o.d"
  "/root/repo/src/phylo/tree.cpp" "src/phylo/CMakeFiles/plf_phylo.dir/tree.cpp.o" "gcc" "src/phylo/CMakeFiles/plf_phylo.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/plf_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
