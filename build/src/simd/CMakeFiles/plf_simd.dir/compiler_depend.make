# Empty compiler generated dependencies file for plf_simd.
# This may be replaced when dependencies are built.
