file(REMOVE_RECURSE
  "CMakeFiles/plf_simd.dir/simd.cpp.o"
  "CMakeFiles/plf_simd.dir/simd.cpp.o.d"
  "libplf_simd.a"
  "libplf_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
