file(REMOVE_RECURSE
  "libplf_simd.a"
)
