file(REMOVE_RECURSE
  "libplf_gpu.a"
)
