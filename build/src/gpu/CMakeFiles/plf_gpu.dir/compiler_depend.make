# Empty compiler generated dependencies file for plf_gpu.
# This may be replaced when dependencies are built.
