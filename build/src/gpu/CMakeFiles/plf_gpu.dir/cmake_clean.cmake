file(REMOVE_RECURSE
  "CMakeFiles/plf_gpu.dir/coalescing.cpp.o"
  "CMakeFiles/plf_gpu.dir/coalescing.cpp.o.d"
  "CMakeFiles/plf_gpu.dir/device.cpp.o"
  "CMakeFiles/plf_gpu.dir/device.cpp.o.d"
  "CMakeFiles/plf_gpu.dir/device_memory.cpp.o"
  "CMakeFiles/plf_gpu.dir/device_memory.cpp.o.d"
  "CMakeFiles/plf_gpu.dir/launch.cpp.o"
  "CMakeFiles/plf_gpu.dir/launch.cpp.o.d"
  "CMakeFiles/plf_gpu.dir/plf_gpu.cpp.o"
  "CMakeFiles/plf_gpu.dir/plf_gpu.cpp.o.d"
  "libplf_gpu.a"
  "libplf_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
