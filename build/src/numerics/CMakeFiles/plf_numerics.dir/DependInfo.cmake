
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/discrete_gamma.cpp" "src/numerics/CMakeFiles/plf_numerics.dir/discrete_gamma.cpp.o" "gcc" "src/numerics/CMakeFiles/plf_numerics.dir/discrete_gamma.cpp.o.d"
  "/root/repo/src/numerics/eigen.cpp" "src/numerics/CMakeFiles/plf_numerics.dir/eigen.cpp.o" "gcc" "src/numerics/CMakeFiles/plf_numerics.dir/eigen.cpp.o.d"
  "/root/repo/src/numerics/special.cpp" "src/numerics/CMakeFiles/plf_numerics.dir/special.cpp.o" "gcc" "src/numerics/CMakeFiles/plf_numerics.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/plf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
