file(REMOVE_RECURSE
  "libplf_numerics.a"
)
