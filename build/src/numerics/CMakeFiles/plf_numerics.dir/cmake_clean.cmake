file(REMOVE_RECURSE
  "CMakeFiles/plf_numerics.dir/discrete_gamma.cpp.o"
  "CMakeFiles/plf_numerics.dir/discrete_gamma.cpp.o.d"
  "CMakeFiles/plf_numerics.dir/eigen.cpp.o"
  "CMakeFiles/plf_numerics.dir/eigen.cpp.o.d"
  "CMakeFiles/plf_numerics.dir/special.cpp.o"
  "CMakeFiles/plf_numerics.dir/special.cpp.o.d"
  "libplf_numerics.a"
  "libplf_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plf_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
