# Empty dependencies file for plf_numerics.
# This may be replaced when dependencies are built.
