#include "exec/partitioned.hpp"

#include <sstream>
#include <utility>

#include "phylo/patterns.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::exec {

PartitionedEngine::PartitionedEngine(const phylo::Alignment& aln,
                                     const phylo::PartitionSpec& spec,
                                     const std::vector<phylo::GtrParams>& params,
                                     const phylo::Tree& tree,
                                     core::ExecutionBackend& backend,
                                     const Config& config,
                                     InstanceScheduler* scheduler)
    : spec_(spec), scheduler_(scheduler) {
  PLF_CHECK(params.size() == 1 || params.size() == spec.n_parts(),
            "partitioned engine: pass one GtrParams or one per partition");
  const std::vector<phylo::Alignment> parts = spec_.split(aln);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const phylo::GtrParams& p = params[params.size() == 1 ? 0 : i];
    engines_.push_back(std::make_unique<core::PlfEngine>(
        phylo::PatternMatrix::compress(parts[i]), p, tree, backend,
        config.variant, config.site_repeats, config.dispatch,
        config.clv_budget));
    if (scheduler_ != nullptr) {
      instance_ids_.push_back(
          scheduler_->register_instance(*engines_.back(), spec_.range(i).name));
    } else {
      // Multiple engines share the caller's registry either way: label them
      // so their engine.*/arena.* gauges don't collide.
      engines_.back()->set_instance_label(spec_.range(i).name);
    }
  }
}

void PartitionedEngine::for_each_part(
    const std::function<void(std::size_t, core::PlfEngine&)>& fn) const {
  if (scheduler_ != nullptr) {
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      core::PlfEngine* engine = engines_[i].get();
      scheduler_->submit(instance_ids_[i], [&fn, i, engine] { fn(i, *engine); });
    }
    scheduler_->barrier();
  } else {
    for (std::size_t i = 0; i < engines_.size(); ++i) fn(i, *engines_[i]);
  }
}

double PartitionedEngine::log_likelihood() {
  std::vector<double> per_part(engines_.size(), 0.0);
  for_each_part([&per_part](std::size_t i, core::PlfEngine& e) {
    per_part[i] = e.log_likelihood();
  });
  // Fixed reduction order (partition index): the sum is bit-stable across
  // runs and identical between scheduled and inline execution.
  double total = 0.0;
  for (const double v : per_part) total += v;
  return total;
}

void PartitionedEngine::begin_proposal() {
  for_each_part([](std::size_t, core::PlfEngine& e) { e.begin_proposal(); });
}

void PartitionedEngine::accept() {
  for_each_part([](std::size_t, core::PlfEngine& e) { e.accept(); });
}

void PartitionedEngine::reject() {
  for_each_part([](std::size_t, core::PlfEngine& e) { e.reject(); });
}

void PartitionedEngine::set_branch_length(int node, double length) {
  for_each_part([node, length](std::size_t, core::PlfEngine& e) {
    e.set_branch_length(node, length);
  });
}

void PartitionedEngine::apply_nni(int v, bool swap_left) {
  for_each_part([v, swap_left](std::size_t, core::PlfEngine& e) {
    e.apply_nni(v, swap_left);
  });
}

void PartitionedEngine::set_model(std::size_t part,
                                  const phylo::GtrParams& params) {
  PLF_CHECK(part < engines_.size(), "partitioned engine: part out of range");
  core::PlfEngine* engine = engines_[part].get();
  if (scheduler_ != nullptr) {
    scheduler_->submit(instance_ids_[part],
                       [engine, params] { engine->set_model(params); });
    scheduler_->barrier();
  } else {
    engine->set_model(params);
  }
}

void PartitionedEngine::save_state(util::BinaryWriter& w) const {
  w.section("PRTE");
  w.u64(engines_.size());
  // Engines are thread-confined to their drivers: each serializes into its
  // own buffer there; the coordinator then frames the buffers in partition
  // order (each blob is a complete nested checkpoint stream).
  std::vector<std::string> blobs(engines_.size());
  for_each_part([&blobs](std::size_t i, core::PlfEngine& e) {
    std::ostringstream os;
    util::BinaryWriter pw(os);
    e.save_state(pw);
    blobs[i] = os.str();
  });
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    w.str(spec_.range(i).name);
    w.str(blobs[i]);
  }
}

void PartitionedEngine::restore_state(util::BinaryReader& r) {
  r.section("PRTE");
  const std::uint64_t n = r.u64();
  PLF_CHECK(n == engines_.size(),
            "restore_state: checkpoint has a different partition count");
  std::vector<std::string> blobs(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    const std::string name = r.str();
    PLF_CHECK(name == spec_.range(i).name,
              "restore_state: partition name mismatch ('" + name +
                  "' vs '" + spec_.range(i).name + "')");
    blobs[i] = r.str();
  }
  for_each_part([&blobs](std::size_t i, core::PlfEngine& e) {
    std::istringstream is(blobs[i]);
    util::BinaryReader pr(is);
    e.restore_state(pr);
  });
}

void PartitionedEngine::publish_stats(obs::MetricsRegistry& registry) const {
  for_each_part([&registry](std::size_t, core::PlfEngine& e) {
    e.publish_stats(registry);
  });
}

void PartitionedEngine::detach_threads() {
  for (auto& e : engines_) e->detach_thread();
}

}  // namespace plf::exec
