// Multi-instance engine runtime: registry + cooperative scheduler
// (docs/SHARDING.md).
//
// The paper accelerates ONE likelihood evaluation; production phylogenetics
// runs many at once — MrBayes steps N Metropolis-coupled chains, partitioned
// analyses evaluate P models over one tree — and BEAGLE's instance/resource
// split shows the winning shape: independent likelihood instances sharing a
// fixed hardware pool. This layer is that runtime for plf:
//
//   InstanceScheduler  owns a small set of DRIVER threads. Each registered
//                      PlfEngine instance is pinned to driver
//                      (instance_id % n_drivers), so the engine's
//                      ThreadChecker binds exactly once and every operation
//                      on that instance executes in submission order, on one
//                      thread, forever. Drivers run the engines' evaluations,
//                      whose backends submit parallel regions to the SHARED
//                      ThreadPool concurrently — the pool's FIFO region
//                      queue (par/thread_pool.hpp) interleaves the instances'
//                      plans at region granularity.
//
// Fairness: the scheduler itself is work-conserving and per-instance FIFO;
// cross-instance fairness comes from the thread pool's region queue, which
// serves whole regions in arrival order (no starvation: every enqueued
// region is eventually at the head).
//
// The driver threads below are the reason src/exec/ is exempt from the
// plf_lint raw-thread rule alongside src/par/: this layer IS the threading
// substrate other code should use instead of raw std::thread.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::exec {

/// One registered engine: the label its gauges are prefixed with, the engine
/// itself, and the driver it is pinned to.
struct EngineInstance {
  std::string label;
  core::PlfEngine* engine = nullptr;
  std::size_t driver = 0;
};

class InstanceScheduler {
 public:
  /// Start `n_drivers` driver threads (>= 1; one per concurrently-stepping
  /// instance is the useful maximum — excess drivers just idle).
  explicit InstanceScheduler(std::size_t n_drivers);
  ~InstanceScheduler();

  InstanceScheduler(const InstanceScheduler&) = delete;
  InstanceScheduler& operator=(const InstanceScheduler&) = delete;

  /// Register `engine` under `label`: sets the engine's instance label (so
  /// its engine.*/arena.* gauges stop colliding with other instances') and
  /// releases its thread confinement so the pinned driver binds it on first
  /// use. The engine must outlive the scheduler (or at least every task
  /// submitted for it). Returns the instance id.
  int register_instance(core::PlfEngine& engine, std::string label);

  std::size_t n_instances() const { return instances_.size(); }
  std::size_t n_drivers() const { return drivers_.size(); }
  const EngineInstance& instance(int id) const {
    return instances_[static_cast<std::size_t>(id)];
  }
  core::PlfEngine& engine(int id) const {
    return *instances_[static_cast<std::size_t>(id)].engine;
  }

  /// Enqueue `fn` on instance `id`'s pinned driver. Tasks for one instance
  /// run in submission order; tasks for instances pinned to different
  /// drivers run concurrently. fn must not call submit()/barrier() on this
  /// scheduler (drivers never wait on other drivers — no deadlock by
  /// construction).
  void submit(int id, std::function<void()> fn);

  /// Block until every previously submitted task has finished. Rethrows the
  /// first task exception, if any (remaining queued tasks still ran — an
  /// engine whose task threw is in whatever state the throw left it).
  void barrier();

  /// submit() the same callable for every registered instance, then
  /// barrier(). `fn` receives (instance id, engine).
  void for_each_instance(
      const std::function<void(int, core::PlfEngine&)>& fn);

 private:
  struct Driver {
    util::Mutex m;
    util::CondVar cv;
    std::deque<std::function<void()>> queue PLF_GUARDED_BY(m);
    bool stop PLF_GUARDED_BY(m) = false;
    std::thread thread;
  };

  void driver_loop(Driver& d);
  void finish_task(std::exception_ptr error);

  std::vector<std::unique_ptr<Driver>> drivers_;
  std::vector<EngineInstance> instances_;

  /// Completion accounting for barrier(): outstanding task count and the
  /// first captured task exception.
  mutable util::Mutex done_m_;
  util::CondVar done_cv_;
  std::size_t pending_ PLF_GUARDED_BY(done_m_) = 0;
  std::exception_ptr error_ PLF_GUARDED_BY(done_m_);
};

}  // namespace plf::exec
