#include "exec/scheduler.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace plf::exec {

InstanceScheduler::InstanceScheduler(std::size_t n_drivers) {
  PLF_CHECK(n_drivers >= 1, "instance scheduler needs at least one driver");
  drivers_.reserve(n_drivers);
  for (std::size_t i = 0; i < n_drivers; ++i) {
    auto d = std::make_unique<Driver>();
    Driver* dp = d.get();
    d->thread = std::thread([this, dp] { driver_loop(*dp); });
    drivers_.push_back(std::move(d));
  }
}

InstanceScheduler::~InstanceScheduler() {
  for (auto& d : drivers_) {
    {
      util::MutexLock lock(d->m);
      d->stop = true;
    }
    d->cv.notify_all();
  }
  for (auto& d : drivers_) d->thread.join();
}

int InstanceScheduler::register_instance(core::PlfEngine& engine,
                                         std::string label) {
  const int id = static_cast<int>(instances_.size());
  engine.set_instance_label(label);
  // The engine may be bound to the registering thread (construction runs its
  // first evaluation there); release it so the pinned driver rebinds.
  engine.detach_thread();
  instances_.push_back(
      {std::move(label), &engine, static_cast<std::size_t>(id) % n_drivers()});
  return id;
}

void InstanceScheduler::submit(int id, std::function<void()> fn) {
  PLF_CHECK(id >= 0 && static_cast<std::size_t>(id) < instances_.size(),
            "instance scheduler: unknown instance id");
  Driver& d = *drivers_[instances_[static_cast<std::size_t>(id)].driver];
  {
    util::MutexLock lock(done_m_);
    ++pending_;
  }
  {
    util::MutexLock lock(d.m);
    d.queue.push_back(std::move(fn));
  }
  d.cv.notify_one();
}

void InstanceScheduler::barrier() {
  std::exception_ptr error;
  {
    util::MutexLock lock(done_m_);
    // Predicate runs with done_m_ held by the wait loop itself; TSA analyzes
    // the lambda without that context, hence the exemption.
    done_cv_.wait(done_m_, [&]() PLF_NO_TSA { return pending_ == 0; });
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void InstanceScheduler::for_each_instance(
    const std::function<void(int, core::PlfEngine&)>& fn) {
  for (std::size_t id = 0; id < instances_.size(); ++id) {
    core::PlfEngine* engine = instances_[id].engine;
    const int iid = static_cast<int>(id);
    submit(iid, [&fn, iid, engine] { fn(iid, *engine); });
  }
  barrier();
}

void InstanceScheduler::finish_task(std::exception_ptr error) {
  {
    util::MutexLock lock(done_m_);
    if (error && !error_) error_ = error;
    --pending_;
  }
  // notify_all: barrier() may be re-entered while another thread also waits.
  done_cv_.notify_all();
}

void InstanceScheduler::driver_loop(Driver& d) {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(d.m);
      // Predicate runs with d.m held by the wait loop itself (see barrier()).
      d.cv.wait(d.m, [&]() PLF_NO_TSA { return d.stop || !d.queue.empty(); });
      if (d.queue.empty()) return;  // stop requested and fully drained
      task = std::move(d.queue.front());
      d.queue.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    finish_task(error);
  }
}

}  // namespace plf::exec
