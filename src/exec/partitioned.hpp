// PartitionedEngine: one tree, many models (docs/SHARDING.md).
//
// A partitioned analysis evaluates each alignment partition (gene, codon
// position) under its own substitution model on a shared topology; the run's
// log likelihood is the SUM of the per-partition log likelihoods. This class
// owns one PlfEngine per partition and fans the engine protocol out:
// topology/branch moves go to every partition (the tree is shared), model
// moves to one, and log_likelihood() sums per-partition results in partition
// order (a fixed reduction order — the sum is bit-stable across runs and
// across serial/scheduled execution).
//
// With an InstanceScheduler, every engine-touching operation is routed
// through the partition's pinned driver thread, so all partitions evaluate
// concurrently on the shared thread pool; without one, everything runs
// inline on the calling thread. The two modes are bit-identical.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "exec/scheduler.hpp"
#include "phylo/alignment.hpp"
#include "phylo/model.hpp"
#include "phylo/partition.hpp"
#include "phylo/tree.hpp"

namespace plf::exec {

/// Engine knobs shared by every partition. (Namespace scope rather than
/// nested: a nested struct's default member initializers can't back a
/// default argument inside the enclosing class.)
struct PartitionedConfig {
  core::KernelVariant variant = core::KernelVariant::kSimdCol;
  core::SiteRepeatsMode site_repeats = core::SiteRepeatsMode::kAuto;
  core::DispatchMode dispatch = core::DispatchMode::kPlan;
  core::ClvBudget clv_budget;
};

class PartitionedEngine {
 public:
  using Config = PartitionedConfig;

  /// Build one engine per range of `spec` over `aln`'s columns. `params`
  /// holds either one entry (every partition starts from the same model) or
  /// exactly spec.n_parts() entries. Every engine gets its own copy of
  /// `tree` and is labeled with its partition's name. With a scheduler,
  /// instances are registered and all subsequent operations run on their
  /// pinned drivers.
  PartitionedEngine(const phylo::Alignment& aln,
                    const phylo::PartitionSpec& spec,
                    const std::vector<phylo::GtrParams>& params,
                    const phylo::Tree& tree, core::ExecutionBackend& backend,
                    const Config& config = Config{},
                    InstanceScheduler* scheduler = nullptr);

  std::size_t n_parts() const { return engines_.size(); }
  const phylo::PartitionSpec& spec() const { return spec_; }
  core::PlfEngine& part(std::size_t i) { return *engines_[i]; }

  /// Sum of per-partition log likelihoods, accumulated in partition order.
  double log_likelihood();

  // --- proposal protocol, fanned out to every partition ---
  void begin_proposal();
  void accept();
  void reject();

  // --- shared-tree mutations (fanned out) ---
  void set_branch_length(int node, double length);
  void apply_nni(int v, bool swap_left);

  /// Model mutation for ONE partition (models are independent).
  void set_model(std::size_t part, const phylo::GtrParams& params);

  /// The shared topology (partition 0's copy; all partitions track the same
  /// moves, so their trees are identical).
  const phylo::Tree& tree() const { return engines_.front()->tree(); }

  // --- checkpoint/restore (docs/SHARDING.md) ---
  void save_state(util::BinaryWriter& w) const;
  void restore_state(util::BinaryReader& r);

  /// Publish every partition's stats under its partition-name label.
  void publish_stats(obs::MetricsRegistry& registry) const;

  /// Release every engine's thread confinement (serial handoff back to the
  /// caller, e.g. for post-run stats reads without the scheduler).
  void detach_threads();

 private:
  /// Run `fn(part, engine)` for every partition: through the pinned drivers
  /// (with a trailing barrier) when scheduled, inline otherwise.
  void for_each_part(
      const std::function<void(std::size_t, core::PlfEngine&)>& fn) const;

  phylo::PartitionSpec spec_;
  std::vector<std::unique_ptr<core::PlfEngine>> engines_;
  std::vector<int> instance_ids_;  ///< scheduler ids, parallel to engines_
  InstanceScheduler* scheduler_ = nullptr;
};

}  // namespace plf::exec
