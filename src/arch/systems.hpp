// The eight systems of Table 1, as model configurations.
//
// Each entry carries the published hardware facts (cores, frequency, cache
// organization, memory) plus the derived topology the timing models need —
// most importantly the cache-sharing structure, which the paper identifies
// as THE determinant of multi-core synchronization cost (§4.1.1):
//   Xeon E5320:   quad-core package = two dual-core dies, L2 per die
//   Opteron 8354: four cores on one die sharing L3
//   Opteron 8218: dual-core, private L2s (weakest sharing)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cell/machine.hpp"
#include "gpu/plf_gpu.hpp"

namespace plf::arch {

enum class SystemFamily { kBaseline, kMultiCore, kCell, kGpu };

/// Cache-sharing topology of a multi-core system: `packages` sockets, each
/// with `dies_per_package` dies, each die holding `cores_per_die` cores that
/// share their last on-die cache level. `die_cache_shared` is false when the
/// per-die cores have private caches (Opteron 8218).
struct CacheTopology {
  std::size_t packages = 1;
  std::size_t dies_per_package = 1;
  std::size_t cores_per_die = 1;
  bool die_cache_shared = true;

  std::size_t total_cores() const {
    return packages * dies_per_package * cores_per_die;
  }
};

struct SystemConfig {
  std::string name;
  SystemFamily family = SystemFamily::kMultiCore;
  std::string chassis;     ///< "IBM x3650", "Sony PS3", ...
  std::string cpu_model;   ///< "Intel E5320", "PPE+SPE", ...
  std::size_t cores = 1;   ///< parallel cores as counted in Table 1
  double freq_hz = 3.0e9;
  std::string cache_desc;
  std::string mem_desc;

  CacheTopology topology;          ///< multicore family
  cell::CellConfig cell;           ///< cell family
  gpu::GpuPlfConfig gpu;           ///< gpu family

  /// Serial-code slowdown relative to the baseline core at equal frequency
  /// (in-order PPE ~6x; GPU host ~1.15x; multi-cores ~1x).
  double serial_slowdown = 1.0;
};

/// All Table 1 systems, baseline first.
std::vector<SystemConfig> table1_systems();

/// Lookup by the Table 1 name ("2xXeon(4)", "PS3", ...).
const SystemConfig& system_by_name(const std::string& name);

}  // namespace plf::arch
