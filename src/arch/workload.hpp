// Workload descriptors: what one MrBayes-style analysis asks of the PLF.
//
// A workload is characterized exactly the way the paper scales its inputs
// (§4.1): the pattern count `m` sets the length of the compute-intensive
// loops ("data size scaling"), while the number of PLF invocations — driven
// by the taxon count through the tree size — sets the call frequency
// ("computation intensity scaling"). Counts are either measured from a real
// McmcChain run (mcmc::workload_from_stats) or derived analytically here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace plf::arch {

struct PlfWorkload {
  std::size_t m = 1000;      ///< distinct site patterns
  std::size_t K = 4;         ///< discrete-Γ categories
  std::size_t taxa = 10;

  std::uint64_t down_calls = 0;   ///< CondLikeDown invocations
  std::uint64_t root_calls = 0;   ///< CondLikeRoot invocations
  std::uint64_t scale_calls = 0;  ///< CondLikeScaler invocations
  std::uint64_t reduce_calls = 0; ///< root-likelihood reductions
  std::uint64_t tm_builds = 0;    ///< serial transition-matrix rebuilds

  /// Abstract serial work in baseline-core cycles (proposal machinery, tree
  /// surgery, bookkeeping) — the "Remaining" of Fig. 12.
  double serial_cycles = 0.0;

  std::uint64_t plf_calls() const { return down_calls + root_calls; }
};

/// Analytic model of a fixed-generation Bayesian run: per generation one
/// proposal dirties an average root-path of ~log2(taxa)+1 internal nodes
/// (each recomputed and rescaled), one root reduction, and a couple of
/// branch-matrix rebuilds. Matches the McmcChain's measured call counts to
/// within ~20% (see arch_test).
PlfWorkload analytic_mcmc_workload(std::size_t taxa, std::size_t m,
                                   std::uint64_t generations,
                                   std::size_t K = 4);

}  // namespace plf::arch
