#include "arch/models.hpp"

#include <algorithm>
#include <cmath>

#include "core/tip_partial.hpp"
#include "phylo/model.hpp"
#include "seqgen/datasets.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace plf::arch {

namespace {

double log2ceil(std::size_t n) {
  return n <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(n)));
}

/// Shared synthetic kernel operands for the simulator-backed models.
struct SyntheticJob {
  std::size_t m, K;
  phylo::TransitionMatrices tm_l, tm_r, tm_o;
  core::TipPartial tp_o;
  aligned_vector<float> cl_l, cl_r, out;
  aligned_vector<float> ln_scaler;
  aligned_vector<double> scaler_total;
  aligned_vector<std::uint32_t> weights;
  // aligned_vector, not std::vector: the Cell DMA rounds mask transfers up
  // to 16 bytes, so the backing allocation must be padded (the aligned
  // allocator rounds every allocation up to 128 bytes).
  aligned_vector<phylo::StateMask> out_mask;

  SyntheticJob(std::size_t m_, std::size_t K_) : m(m_), K(K_) {
    phylo::GtrParams p = seqgen::default_gtr_params();
    p.n_rate_categories = K;
    phylo::SubstitutionModel model(p);
    tm_l = model.transition_matrices(0.1);
    tm_r = model.transition_matrices(0.2);
    tm_o = model.transition_matrices(0.05);
    tp_o = core::TipPartial(tm_o);
    Rng rng(1234);
    cl_l.resize(m * K * 4);
    cl_r.resize(m * K * 4);
    out.resize(m * K * 4);
    for (auto& v : cl_l) v = static_cast<float>(rng.uniform(0.05, 1.0));
    for (auto& v : cl_r) v = static_cast<float>(rng.uniform(0.05, 1.0));
    ln_scaler.assign(m, 0.0f);
    scaler_total.assign(m, -0.5);
    weights.assign(m, 1);
    out_mask.resize(m);
    for (auto& x : out_mask) x = phylo::state_to_mask(rng.below(4));
  }

  core::DownArgs down_args() {
    core::DownArgs a;
    a.K = K;
    a.left.cl = cl_l.data();
    a.left.p = tm_l.row_major();
    a.left.pt = tm_l.col_major();
    a.right.cl = cl_r.data();
    a.right.p = tm_r.row_major();
    a.right.pt = tm_r.col_major();
    a.out = out.data();
    return a;
  }
  core::RootArgs root_args() {
    core::RootArgs a;
    a.down = down_args();
    a.out_mask = out_mask.data();
    a.out_tp = tp_o.data();
    return a;
  }
  core::ScaleArgs scale_args() {
    return core::ScaleArgs{out.data(), ln_scaler.data(), K};
  }
  core::RootReduceArgs reduce_args() {
    core::RootReduceArgs a;
    a.cl = cl_l.data();
    a.ln_scaler_total = scaler_total.data();
    a.weights = weights.data();
    a.K = K;
    return a;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Multi-core
// ---------------------------------------------------------------------------

MultiCoreModel::MultiCoreModel(const SystemConfig& sys,
                               const MultiCoreParams& params)
    : sys_(&sys), p_(params) {
  PLF_CHECK(sys.family == SystemFamily::kMultiCore ||
                sys.family == SystemFamily::kBaseline,
            "MultiCoreModel needs a multi-core or baseline system");
}

double MultiCoreModel::region_overhead_s(std::size_t n_cores) const {
  if (n_cores <= 1) return 0.0;
  const CacheTopology& t = sys_->topology;
  PLF_CHECK(n_cores <= t.total_cores(), "more cores requested than present");

  // Threads fill dies first, then packages (the natural OS placement).
  const std::size_t dies_used =
      (n_cores + t.cores_per_die - 1) / t.cores_per_die;
  const std::size_t packages_used =
      (dies_used + t.dies_per_package - 1) / t.dies_per_package;
  const std::size_t cores_in_die = std::min(n_cores, t.cores_per_die);
  const std::size_t dies_in_pkg = std::min(dies_used, t.dies_per_package);

  // Tree barrier: stages within the die, across dies, across packages.
  const double die_stage =
      t.die_cache_shared ? p_.t_die_shared_s : p_.t_die_private_s;
  double cost = p_.fork_base_s;
  cost += die_stage * log2ceil(cores_in_die);
  cost += p_.t_pkg_s * log2ceil(dies_in_pkg);
  cost += p_.t_sys_s * log2ceil(packages_used);
  return cost;
}

double MultiCoreModel::plf_section_s(const PlfWorkload& w,
                                     std::size_t n_cores) const {
  PLF_CHECK(n_cores >= 1, "need at least one core");
  const double f = sys_->freq_hz;
  const double mk = static_cast<double>(w.m) * static_cast<double>(w.K);
  // Shared-memory scaling: effective per-core throughput drops as more
  // cores contend, and the contention grows with the number of live
  // conditional-likelihood buffers (i.e. with the taxon count).
  const double traffic =
      1.0 + p_.taxa_traffic_nu * std::log2(static_cast<double>(w.taxa));
  const double eff =
      1.0 / (1.0 + p_.mem_scaling_beta * static_cast<double>(n_cores - 1) *
                       traffic);
  const double cores = static_cast<double>(n_cores);

  auto body = [&](double cycles_ppc) {
    return mk * cycles_ppc / (cores * f * eff);
  };
  const double ov = region_overhead_s(n_cores);

  double total = 0.0;
  total += static_cast<double>(w.plf_calls()) *
           (ov + body(p_.cycles_per_pattern_cat));
  total += static_cast<double>(w.scale_calls) *
           (ov + body(p_.scale_cycles_per_pattern_cat));
  total += static_cast<double>(w.reduce_calls) *
           (ov + body(p_.reduce_cycles_per_pattern_cat));
  return total;
}

double MultiCoreModel::serial_s(const PlfWorkload& w) const {
  const double cycles =
      w.serial_cycles + static_cast<double>(w.tm_builds) * p_.tm_build_cycles;
  return cycles * sys_->serial_slowdown / sys_->freq_hz;
}

// ---------------------------------------------------------------------------
// Cell/BE
// ---------------------------------------------------------------------------

CellModel::CellModel(const SystemConfig& sys, const MultiCoreParams& baseline)
    : sys_(&sys), base_(baseline) {
  PLF_CHECK(sys.family == SystemFamily::kCell, "CellModel needs a Cell system");
}

CellModel::PerCall CellModel::measure(std::size_t m, std::size_t K,
                                      std::size_t n_spes) {
  const auto key = std::make_tuple(m, K, n_spes);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  SyntheticJob job(m, K);
  cell::CellConfig cfg = sys_->cell;
  cfg.n_spes = std::max<std::size_t>(cfg.n_spes, n_spes);
  cell::CellMachine machine(cfg);

  PerCall pc{};
  {
    cell::SpuJob proto;
    proto.K = K;
    proto.down = job.down_args();
    pc.down = machine.offload(cell::SpuCommand::kCondLikeDown, proto, m, n_spes);
  }
  {
    cell::SpuJob proto;
    proto.K = K;
    const core::RootArgs ra = job.root_args();
    proto.down = ra.down;
    proto.out_mask = ra.out_mask;
    proto.out_tp = ra.out_tp;
    pc.root = machine.offload(cell::SpuCommand::kCondLikeRoot, proto, m, n_spes);
  }
  {
    cell::SpuJob proto;
    proto.K = K;
    proto.scale = job.scale_args();
    pc.scale =
        machine.offload(cell::SpuCommand::kCondLikeScaler, proto, m, n_spes);
  }
  {
    cell::SpuJob proto;
    proto.K = K;
    proto.reduce = job.reduce_args();
    double unused = 0.0;
    pc.reduce =
        machine.offload(cell::SpuCommand::kRootReduce, proto, m, n_spes, &unused);
  }
  cache_.emplace(key, pc);
  return pc;
}

double CellModel::plf_section_s(const PlfWorkload& w, std::size_t n_spes) {
  const PerCall pc = measure(w.m, w.K, n_spes);
  return static_cast<double>(w.down_calls) * pc.down +
         static_cast<double>(w.root_calls) * pc.root +
         static_cast<double>(w.scale_calls) * pc.scale +
         static_cast<double>(w.reduce_calls) * pc.reduce;
}

double CellModel::serial_s(const PlfWorkload& w) const {
  const double cycles =
      w.serial_cycles + static_cast<double>(w.tm_builds) * base_.tm_build_cycles;
  return cycles * sys_->serial_slowdown / sys_->freq_hz;
}

// ---------------------------------------------------------------------------
// GPU
// ---------------------------------------------------------------------------

GpuModel::GpuModel(const SystemConfig& sys, const MultiCoreParams& baseline)
    : sys_(&sys), base_(baseline) {
  PLF_CHECK(sys.family == SystemFamily::kGpu, "GpuModel needs a GPU system");
}

GpuModel::PerCall GpuModel::measure(std::size_t m, std::size_t K) {
  const auto key = std::make_pair(m, K);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  SyntheticJob job(m, K);
  gpu::GpuPlf dev(sys_->gpu);
  const auto& ks = core::kernels(core::KernelVariant::kScalar);

  PerCall pc{};
  auto snap = [&](double& kernel, double& pcie, auto&& fn) {
    const double k0 = dev.stats().kernel_s;
    const double p0 = dev.stats().pcie_s;
    fn();
    kernel = dev.stats().kernel_s - k0;
    pcie = dev.stats().pcie_s - p0;
  };
  snap(pc.down_kernel, pc.down_pcie,
       [&] { dev.run_down(ks, job.down_args(), m); });
  const core::RootArgs ra = job.root_args();
  snap(pc.root_kernel, pc.root_pcie, [&] { dev.run_root(ks, ra, m); });
  const core::ScaleArgs sa = job.scale_args();
  snap(pc.scale_kernel, pc.scale_pcie, [&] { dev.run_scale(ks, sa, m); });
  const core::RootReduceArgs rra = job.reduce_args();
  snap(pc.reduce_kernel, pc.reduce_pcie,
       [&] { dev.run_root_reduce(ks, rra, m); });

  cache_.emplace(key, pc);
  return pc;
}

GpuModel::PlfTimes GpuModel::plf_section(const PlfWorkload& w) {
  const PerCall pc = measure(w.m, w.K);
  PlfTimes t;
  t.kernel_s = static_cast<double>(w.down_calls) * pc.down_kernel +
               static_cast<double>(w.root_calls) * pc.root_kernel +
               static_cast<double>(w.scale_calls) * pc.scale_kernel +
               static_cast<double>(w.reduce_calls) * pc.reduce_kernel;
  t.pcie_s = static_cast<double>(w.down_calls) * pc.down_pcie +
             static_cast<double>(w.root_calls) * pc.root_pcie +
             static_cast<double>(w.scale_calls) * pc.scale_pcie +
             static_cast<double>(w.reduce_calls) * pc.reduce_pcie;
  return t;
}

double GpuModel::serial_s(const PlfWorkload& w) const {
  const double cycles =
      w.serial_cycles + static_cast<double>(w.tm_builds) * base_.tm_build_cycles;
  return cycles * sys_->serial_slowdown / sys_->freq_hz;
}

double frequency_scaled(double seconds, const SystemConfig& sys,
                        const SystemConfig& baseline) {
  return seconds * sys.freq_hz / baseline.freq_hz;
}

}  // namespace plf::arch
