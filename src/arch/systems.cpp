#include "arch/systems.hpp"

#include "util/error.hpp"

namespace plf::arch {

std::vector<SystemConfig> table1_systems() {
  std::vector<SystemConfig> out;

  {
    SystemConfig s;
    s.name = "Baseline";
    s.family = SystemFamily::kBaseline;
    s.chassis = "Generic";
    s.cpu_model = "Intel E8400";
    s.cores = 1;
    s.freq_hz = 3.0e9;
    s.cache_desc = "6MB";
    s.mem_desc = "2GB";
    s.topology = CacheTopology{1, 1, 1, true};
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "2xXeon(4)";
    s.chassis = "IBM x3650";
    s.cpu_model = "Intel E5320";
    s.cores = 8;
    s.freq_hz = 1.8e9;
    s.cache_desc = "2x4MB";  // per package: two dual-core dies, 4MB L2 each
    s.mem_desc = "48GB";
    s.topology = CacheTopology{2, 2, 2, true};
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "4xOpteron(4)";
    s.chassis = "Dell PowerEdge M905";
    s.cpu_model = "AMD 8354";
    s.cores = 16;
    s.freq_hz = 2.2e9;
    s.cache_desc = "4x512KB+2MB";  // per-core L2 plus die-shared L3
    s.mem_desc = "64GB";
    s.topology = CacheTopology{4, 1, 4, true};
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "8xOpteron(2)";
    s.chassis = "Sun x4600 M2";
    s.cpu_model = "AMD 8218";
    s.cores = 16;
    s.freq_hz = 2.6e9;
    s.cache_desc = "2x1MB";  // private per-core L2, nothing shared on die
    s.mem_desc = "64GB";
    s.topology = CacheTopology{8, 1, 2, /*die_cache_shared=*/false};
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "PS3";
    s.family = SystemFamily::kCell;
    s.chassis = "Sony PS3";
    s.cpu_model = "PPE+SPE";
    s.cores = 6;  // 6 SPEs available to applications
    s.freq_hz = 3.2e9;
    s.cache_desc = "512KB";
    s.mem_desc = "256MB";
    s.cell.name = "PS3";
    s.cell.n_spes = 6;
    s.serial_slowdown = 7.0;  // in-order PPE, 512KB L2 (§4.2)
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "QS20";
    s.family = SystemFamily::kCell;
    s.chassis = "IBM QS20";
    s.cpu_model = "PPE+SPE";
    s.cores = 16;  // 2 Cell/BE processors x 8 SPEs
    s.freq_hz = 3.2e9;
    s.cache_desc = "2x512KB";
    s.mem_desc = "2x512MB";
    s.cell.name = "QS20";
    s.cell.n_spes = 16;
    s.serial_slowdown = 7.0;
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "8800GT";
    s.family = SystemFamily::kGpu;
    s.chassis = "NVIDIA 8800 GT";
    s.cpu_model = "Streaming";
    s.cores = 112;
    s.freq_hz = 1.5e9;
    s.cache_desc = "256KB";
    s.mem_desc = "512MB";
    s.gpu.device = gpu::DeviceSpec::geforce_8800gt();
    s.gpu.launch = gpu::LaunchConfig{40, 256};  // §3.4 exploration result
    s.serial_slowdown = 1.15;  // "host ... slightly slower than the baseline"
    out.push_back(s);
  }
  {
    SystemConfig s;
    s.name = "GTX285";
    s.family = SystemFamily::kGpu;
    s.chassis = "NVIDIA GTX 285";
    s.cpu_model = "Streaming";
    s.cores = 240;
    s.freq_hz = 1.476e9;
    s.cache_desc = "480KB";
    s.mem_desc = "1GB";
    s.gpu.device = gpu::DeviceSpec::gtx285();
    s.gpu.launch = gpu::LaunchConfig{85, 256};  // §3.4 exploration result
    // The GTX285 testbed is a 2009 host with PCIe 2.0 x16 (~6.5 GB/s
    // effective) — the reason Fig. 12 shows it reaching ~1.5x overall while
    // the PCIe 1.x-hosted 8800GT ends up slower than the baseline.
    s.gpu.pcie = gpu::PcieSpec{6.5e9, 8e-6};
    s.serial_slowdown = 1.15;
    out.push_back(s);
  }

  return out;
}

const SystemConfig& system_by_name(const std::string& name) {
  static const std::vector<SystemConfig> kSystems = table1_systems();
  for (const auto& s : kSystems) {
    if (s.name == name) return s;
  }
  throw Error("unknown system: " + name);
}

}  // namespace plf::arch
