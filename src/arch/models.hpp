// Architecture timing models: map a PlfWorkload onto each Table-1 system.
//
// The multi-core model is analytic — per-core kernel throughput plus an
// OpenMP-style fork/join cost derived from the cache topology (the paper's
// §4.1.1 mechanism) plus a shared-memory scaling term. The Cell and GPU
// models are *measured from the simulators*: one representative offload per
// kernel type is run through CellMachine / GpuPlf for the workload's m, and
// per-call durations are multiplied by the workload's call counts. Serial
// ("Remaining") time runs on the host core scaled by the system's
// serial_slowdown (the in-order PPE penalty, the slightly slower GPU host).
//
// All reported times can be frequency-normalized as in §4.2 ("we scale the
// results according to the frequencies of each system and the baseline").
#pragma once

#include <cstddef>
#include <map>

#include "arch/systems.hpp"
#include "arch/workload.hpp"

namespace plf::arch {

/// Calibration constants for the multi-core (and baseline-serial) model.
struct MultiCoreParams {
  /// PLF cycles per (pattern, rate-category) on one core with the SSE
  /// column-wise kernel (CondLikeDown/Root).
  double cycles_per_pattern_cat = 30.0;
  double scale_cycles_per_pattern_cat = 8.0;
  double reduce_cycles_per_pattern_cat = 10.0;
  /// Entering + leaving one `#pragma omp parallel for` region.
  double fork_base_s = 0.8e-6;
  /// Barrier stage latencies by topology distance.
  double t_die_shared_s = 0.08e-6;   ///< cores sharing an on-die cache
  double t_die_private_s = 0.30e-6;  ///< same die, private caches (8218)
  double t_pkg_s = 0.35e-6;          ///< cross-die within one package
  double t_sys_s = 1.0e-6;           ///< cross-package (HyperTransport/FSB)
  /// Shared-memory throughput degradation per additional active core.
  double mem_scaling_beta = 0.008;
  /// Extra coherence/memory traffic per doubling of the taxon count (more
  /// conditional-likelihood buffers cycling through the shared caches) —
  /// the mechanism behind the paper's computation-intensity penalty.
  double taxa_traffic_nu = 0.35;
  /// Serial cost of one transition-matrix rebuild (4x4 eigen-exponential).
  double tm_build_cycles = 3000.0;
};

class MultiCoreModel {
 public:
  explicit MultiCoreModel(const SystemConfig& sys,
                          const MultiCoreParams& params = MultiCoreParams{});

  const SystemConfig& system() const { return *sys_; }

  /// Fork + join + barrier cost of one parallel region on n cores.
  double region_overhead_s(std::size_t n_cores) const;

  /// Time in the parallel PLF section (all kernel invocations) on n cores.
  double plf_section_s(const PlfWorkload& w, std::size_t n_cores) const;

  /// Serial remainder (proposals, tm rebuilds, bookkeeping).
  double serial_s(const PlfWorkload& w) const;

  double total_s(const PlfWorkload& w, std::size_t n_cores) const {
    return serial_s(w) + plf_section_s(w, n_cores);
  }

  /// Fig. 9's metric: PLF-section speedup of n cores vs 1 core on this
  /// system (the paper quotes "71% average efficiency ... for the PLF";
  /// whole-program effects only enter the Fig. 12 total-time analysis).
  double relative_speedup(const PlfWorkload& w, std::size_t n_cores) const {
    return plf_section_s(w, 1) / plf_section_s(w, n_cores);
  }

 private:
  const SystemConfig* sys_;
  MultiCoreParams p_;
};

/// Cell/BE model: PLF times come from actual CellMachine offload simulations
/// (cached per (m, K, n_spes)); the serial remainder runs on the PPE.
class CellModel {
 public:
  explicit CellModel(const SystemConfig& sys,
                     const MultiCoreParams& baseline = MultiCoreParams{});

  const SystemConfig& system() const { return *sys_; }

  double plf_section_s(const PlfWorkload& w, std::size_t n_spes);
  double serial_s(const PlfWorkload& w) const;
  double total_s(const PlfWorkload& w, std::size_t n_spes) {
    return serial_s(w) + plf_section_s(w, n_spes);
  }

  /// Fig. 10's metric: PLF-section speedup of n SPEs vs 1 SPE.
  double speedup_vs_one_spe(const PlfWorkload& w, std::size_t n_spes) {
    return plf_section_s(w, 1) / plf_section_s(w, n_spes);
  }

 private:
  struct PerCall {
    double down, root, scale, reduce;
  };
  PerCall measure(std::size_t m, std::size_t K, std::size_t n_spes);

  const SystemConfig* sys_;
  MultiCoreParams base_;
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, PerCall> cache_;
};

/// GPU model: kernel and PCIe times measured from GpuPlf per call type.
class GpuModel {
 public:
  explicit GpuModel(const SystemConfig& sys,
                    const MultiCoreParams& baseline = MultiCoreParams{});

  struct PlfTimes {
    double kernel_s = 0.0;
    double pcie_s = 0.0;
    double total() const { return kernel_s + pcie_s; }
  };

  const SystemConfig& system() const { return *sys_; }

  PlfTimes plf_section(const PlfWorkload& w);
  double serial_s(const PlfWorkload& w) const;
  double total_s(const PlfWorkload& w) {
    const PlfTimes t = plf_section(w);
    return serial_s(w) + t.kernel_s + t.pcie_s;
  }

 private:
  struct PerCall {
    double down_kernel, down_pcie;
    double root_kernel, root_pcie;
    double scale_kernel, scale_pcie;
    double reduce_kernel, reduce_pcie;
  };
  PerCall measure(std::size_t m, std::size_t K);

  const SystemConfig* sys_;
  MultiCoreParams base_;
  std::map<std::pair<std::size_t, std::size_t>, PerCall> cache_;
};

/// Frequency normalization of §4.2: time scaled so that clock-frequency
/// differences to the baseline are factored out.
double frequency_scaled(double seconds, const SystemConfig& sys,
                        const SystemConfig& baseline);

}  // namespace plf::arch
