#include "arch/workload.hpp"

#include <cmath>

#include "util/error.hpp"

namespace plf::arch {

PlfWorkload analytic_mcmc_workload(std::size_t taxa, std::size_t m,
                                   std::uint64_t generations, std::size_t K) {
  PLF_CHECK(taxa >= 3, "workload needs at least 3 taxa");
  PLF_CHECK(generations >= 1, "workload needs at least one generation");

  PlfWorkload w;
  w.m = m;
  w.K = K;
  w.taxa = taxa;

  // Random Yule trees are balanced on average: a proposal at a uniform
  // random branch dirties the path to the root, ~log2(taxa) internal nodes.
  const double gens = static_cast<double>(generations);
  const double path = std::log2(static_cast<double>(taxa)) + 1.0;

  const double updates = gens * path;
  w.root_calls = generations;  // the root itself is on every dirty path
  w.down_calls = static_cast<std::uint64_t>(updates);
  w.scale_calls = w.down_calls + w.root_calls;
  w.reduce_calls = generations;
  // A branch-length proposal rebuilds one matrix set; an NNI none; a model
  // move all 2*taxa-3. Mixed proposals average out near ~2 per generation.
  w.tm_builds = static_cast<std::uint64_t>(2.0 * gens);

  // Serial remainder per generation: proposal draw, prior/Hastings math,
  // tree surgery, and per-site bookkeeping (scaler-total accumulation,
  // weight handling) that MrBayes performs outside the three hot kernels.
  // Constants calibrated so the baseline's PLF fraction lands in the
  // paper's reported 85-95% band (92% on the real data set). Matrix
  // rebuilds are accounted separately via tm_builds.
  const double per_gen = 25000.0 + 80.0 * static_cast<double>(m);
  w.serial_cycles = gens * per_gen;
  return w;
}

}  // namespace plf::arch
