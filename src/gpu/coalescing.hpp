// Warp-level memory coalescing analysis.
//
// The paper's key GPU data-layout insight (§3.4): "assigning groups of 4
// threads to each likelihood vector discrete rate (array of 4 floats) allows
// the compiler to coalesce memory accesses because the threads access ...
// adjacent memory locations." This analyzer reproduces the Tesla-era
// coalescing rule: for each warp access step, count the number of aligned
// memory segments touched — 1 segment per half-warp is perfectly coalesced;
// 16 segments is fully scattered. The PLF timing model uses the resulting
// transaction ratio as its memory-efficiency factor, and the tests verify
// the paper's claim that the entry-parallel layout coalesces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plf::gpu {

struct CoalescingReport {
  std::uint64_t access_steps = 0;   ///< warp-wide access instructions analyzed
  std::uint64_t transactions = 0;   ///< memory segments actually fetched
  std::uint64_t ideal = 0;          ///< segments had every access been dense

  /// >= 1; 1.0 means perfectly coalesced.
  double transaction_ratio() const {
    return ideal == 0 ? 1.0
                      : static_cast<double>(transactions) /
                            static_cast<double>(ideal);
  }
};

class CoalescingAnalyzer {
 public:
  /// Segment size of the coalescing hardware (Tesla: 64B for 32-bit words
  /// per half-warp; we use 64).
  explicit CoalescingAnalyzer(std::size_t segment_bytes = 64)
      : segment_bytes_(segment_bytes) {}

  /// Record one warp-wide access: `addresses[i]` is the byte address lane i
  /// touches (element size `bytes_per_lane`). Lanes may be inactive (SIZE_MAX).
  void record(const std::vector<std::uint64_t>& addresses,
              std::size_t bytes_per_lane);

  const CoalescingReport& report() const { return report_; }
  void reset() { report_ = CoalescingReport{}; }

 private:
  std::size_t segment_bytes_;
  CoalescingReport report_;
};

}  // namespace plf::gpu
