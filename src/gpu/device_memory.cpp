#include "gpu/device_memory.hpp"

#include <algorithm>
#include <cstring>

#include "util/contracts.hpp"

namespace plf::gpu {

DevPtr DeviceMemory::malloc(std::size_t bytes) {
  checker_.check();
  PLF_CHECK(bytes > 0, "cudaMalloc of zero bytes");
  if (bytes > capacity_ - used_) {
    throw HardwareViolation("device out of memory: " + std::to_string(bytes) +
                            " bytes requested, " +
                            std::to_string(capacity_ - used_) + " free");
  }
  used_ += bytes;
  const std::uint64_t id = next_id_++;
  allocs_.emplace(id, aligned_vector<std::uint8_t>(bytes, 0));
  return DevPtr{id};
}

void DeviceMemory::free(DevPtr p) {
  checker_.check();
  const auto it = allocs_.find(p.id);
  PLF_CHECK(it != allocs_.end(), "cudaFree of invalid device pointer");
  used_ -= it->second.size();
  allocs_.erase(it);
}

double DeviceMemory::transfer(std::size_t bytes, double issue_time) {
  const double start = std::max(issue_time, link_free_at_);
  const double done =
      start + pcie_.latency_s + static_cast<double>(bytes) / pcie_.bandwidth_bps;
  stats_.pcie_busy_s += done - start;
  link_free_at_ = done;
  return done;
}

double DeviceMemory::h2d(DevPtr dst, std::size_t offset, const void* src,
                         std::size_t bytes, double issue_time) {
  checker_.check();
  auto it = allocs_.find(dst.id);
  PLF_CHECK(it != allocs_.end(), "h2d to invalid device pointer");
  PLF_CHECK_HW(offset <= it->second.size() &&
                   bytes <= it->second.size() - offset,
               "h2d out of bounds");
  PLF_DCHECK(src != nullptr || bytes == 0, "h2d from null host pointer");
  std::memcpy(it->second.data() + offset, src, bytes);
  ++stats_.h2d_transfers;
  stats_.h2d_bytes += bytes;
  return transfer(bytes, issue_time);
}

double DeviceMemory::d2h(void* dst, DevPtr src, std::size_t offset,
                         std::size_t bytes, double issue_time) {
  checker_.check();
  auto it = allocs_.find(src.id);
  PLF_CHECK(it != allocs_.end(), "d2h from invalid device pointer");
  PLF_CHECK_HW(offset <= it->second.size() &&
                   bytes <= it->second.size() - offset,
               "d2h out of bounds");
  PLF_DCHECK(dst != nullptr || bytes == 0, "d2h to null host pointer");
  std::memcpy(dst, it->second.data() + offset, bytes);
  ++stats_.d2h_transfers;
  stats_.d2h_bytes += bytes;
  return transfer(bytes, issue_time);
}

float* DeviceMemory::as_floats(DevPtr p) {
  checker_.check();
  auto it = allocs_.find(p.id);
  PLF_CHECK(it != allocs_.end(), "device access through invalid pointer");
  return reinterpret_cast<float*>(it->second.data());
}

const std::uint8_t* DeviceMemory::bytes(DevPtr p) const {
  checker_.check();
  const auto it = allocs_.find(p.id);
  PLF_CHECK(it != allocs_.end(), "device access through invalid pointer");
  return it->second.data();
}

std::uint8_t* DeviceMemory::bytes(DevPtr p) {
  checker_.check();
  auto it = allocs_.find(p.id);
  PLF_CHECK(it != allocs_.end(), "device access through invalid pointer");
  return it->second.data();
}

}  // namespace plf::gpu
