#include "gpu/device.hpp"

#include <algorithm>
#include <cmath>

namespace plf::gpu {

DeviceSpec DeviceSpec::geforce_8800gt() {
  DeviceSpec d;
  d.name = "8800GT";
  d.sm_count = 14;  // 112 streaming processors
  d.cores_per_sm = 8;
  d.shader_clock_hz = 1.5e9;
  d.global_memory_bytes = 512ull << 20;
  d.global_bandwidth_bps = 57.6e9;
  d.max_threads_per_sm = 768;   // compute capability 1.1
  d.max_blocks_per_sm = 8;
  return d;
}

DeviceSpec DeviceSpec::gtx285() {
  DeviceSpec d;
  d.name = "GTX285";
  d.sm_count = 30;  // 240 streaming processors
  d.cores_per_sm = 8;
  d.shader_clock_hz = 1.476e9;
  d.global_memory_bytes = 1ull << 30;
  d.global_bandwidth_bps = 159.0e9;
  d.max_threads_per_sm = 1024;  // compute capability 1.3
  d.max_blocks_per_sm = 8;
  return d;
}

double occupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  if (cfg.threads_per_block == 0 ||
      cfg.threads_per_block > spec.max_threads_per_block) {
    return 0.0;
  }
  const std::size_t blocks_fit = std::min(
      spec.max_blocks_per_sm, spec.max_threads_per_sm / cfg.threads_per_block);
  if (blocks_fit == 0) return 0.0;
  const std::size_t resident = blocks_fit * cfg.threads_per_block;
  return static_cast<double>(resident) /
         static_cast<double>(spec.max_threads_per_sm);
}

double wave_balance(const DeviceSpec& spec, const LaunchConfig& cfg) {
  const std::size_t blocks_fit =
      std::min(spec.max_blocks_per_sm,
               cfg.threads_per_block > 0
                   ? spec.max_threads_per_sm / cfg.threads_per_block
                   : 0);
  if (blocks_fit == 0 || cfg.blocks == 0) return 0.0;
  const std::size_t slots_per_wave = spec.sm_count * blocks_fit;
  const std::size_t waves =
      (cfg.blocks + slots_per_wave - 1) / slots_per_wave;
  return static_cast<double>(cfg.blocks) /
         static_cast<double>(waves * slots_per_wave);
}

}  // namespace plf::gpu
