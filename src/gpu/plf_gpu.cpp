#include "gpu/plf_gpu.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/kernel_contracts.hpp"
#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "phylo/dna.hpp"
#include "util/error.hpp"

namespace plf::gpu {

namespace {

/// Mirror the cumulative run stats into the global metrics registry. The
/// kernel/PCIe seconds are virtual-clock values, published as gauges (never
/// wall-clock timers); pcie_s is this backend's Fig. 12 "transfer" column.
void publish_gpu_metrics([[maybe_unused]] const GpuRunStats& s,
                         [[maybe_unused]] std::uint64_t h2d_bytes,
                         [[maybe_unused]] std::uint64_t d2h_bytes) {
  PLF_PROF_GAUGE(obs::kGaugeGpuKernelSimSeconds, s.kernel_s);
  PLF_PROF_GAUGE(obs::kGaugeGpuPcieSimSeconds, s.pcie_s);
  PLF_PROF_GAUGE(obs::kGaugeGpuH2dBytes, static_cast<double>(h2d_bytes));
  PLF_PROF_GAUGE(obs::kGaugeGpuD2hBytes, static_cast<double>(d2h_bytes));
  PLF_PROF_GAUGE(obs::kGaugeTransferSimSeconds, s.pcie_s);
  PLF_PROF_GAUGE(obs::kGaugeGpuFusedOps, static_cast<double>(s.plan_fused_ops));
  PLF_PROF_GAUGE(obs::kGaugeGpuPcieBytesSaved,
                 static_cast<double>(s.pcie_bytes_saved));
}

/// Inner product of one transition-matrix row with one rate array, in the
/// arithmetic order of the corresponding host kernel (so results are
/// bit-identical): sequential for entry-parallel (the scalar reference
/// order), pairwise tree for reduction-parallel (the hsum order).
inline float row_dot(const float* row, const float* v, ThreadScheme scheme) {
  if (scheme == ThreadScheme::kEntryParallel) {
    return row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
  }
  return (row[0] * v[0] + row[1] * v[1]) + (row[2] * v[2] + row[3] * v[3]);
}

struct DevChild {
  DevPtr cl;      // internal child
  DevPtr mask;    // tip child
  DevPtr tp;      // tip child
  DevPtr pm;      // row-major matrices (internal child)
  bool tip = false;
};

}  // namespace

std::string to_string(ThreadScheme s) {
  return s == ThreadScheme::kEntryParallel ? "entry-parallel (approach ii)"
                                           : "reduction-parallel (approach i)";
}

GpuPlf::GpuPlf(const GpuPlfConfig& config)
    : config_(config),
      mem_(config.device.global_memory_bytes, config.pcie),
      launcher_(config.device) {}

std::string GpuPlf::name() const {
  return config_.device.name + "(" + std::to_string(config_.launch.blocks) +
         "x" + std::to_string(config_.launch.threads_per_block) + ", " +
         to_string(config_.scheme) + ")";
}

KernelProfile GpuPlf::down_profile() const {
  KernelProfile p;
  p.flops_per_elem = 15.0;  // two 4-element inner products + multiply
  p.bytes_per_elem = 36.0;  // 8 cl floats + matrix row (cached) + 1 store
  if (config_.scheme == ThreadScheme::kReductionParallel) {
    // Approach (i): tree reductions need __syncthreads() and conditionals,
    // and the partial-result traffic through shared memory conflicts.
    // Constants calibrated so approach (ii) is ~2.5x faster at the PLF level
    // (the paper's measurement).
    p.syncs_per_elem = 0.25;
    p.divergence_factor = 2.0;
    p.coalescing_ratio = 2.5;
  }
  return p;
}

double GpuPlf::down_like(const core::DownArgs& a, std::size_t m,
                         const core::RootArgs* root,
                         const core::ScaleArgs* fused_scale) {
  const std::size_t K = a.K;
  const ThreadScheme scheme = config_.scheme;
  const double t_begin = clock_.now();
  const double pcie_before = mem_.stats().pcie_busy_s;

  // ---- Global partitioning (level (i) of the three-level scheme). ----
  const std::size_t cl_pp = K * 4 * sizeof(float);
  auto child_pp = [&](const core::ChildArgs& ch) {
    return ch.is_tip() ? std::size_t{1} : cl_pp;
  };
  auto child_static = [&](const core::ChildArgs& ch) {
    return ch.is_tip() ? phylo::kNumMasks * K * 4 * sizeof(float)
                       : K * 16 * sizeof(float);
  };
  const std::size_t per_pattern =
      child_pp(a.left) + child_pp(a.right) + cl_pp +
      (root != nullptr ? 1 : 0) +
      (fused_scale != nullptr ? sizeof(float) : 0);  // device scaler row
  std::size_t static_bytes = child_static(a.left) + child_static(a.right);
  if (root != nullptr) {
    static_bytes += phylo::kNumMasks * K * 4 * sizeof(float);
  }
  PLF_CHECK(static_bytes + per_pattern <= mem_.capacity(),
            "device too small for even one pattern");
  const std::size_t part_max =
      std::min(m, (mem_.capacity() - static_bytes) / per_pattern);

  double t = t_begin;
  std::size_t partitions = 0;
  for (std::size_t p0 = 0; p0 < m; p0 += part_max, ++partitions) {
    const std::size_t pm_count = std::min(part_max, m - p0);

    // ---- Stage inputs over PCIe. ----
    DevChild dev[2];
    const core::ChildArgs* hosts[2] = {&a.left, &a.right};
    for (int s = 0; s < 2; ++s) {
      const core::ChildArgs& ch = *hosts[s];
      if (ch.is_tip()) {
        dev[s].tip = true;
        dev[s].mask = mem_.malloc(pm_count);
        dev[s].tp = mem_.malloc(phylo::kNumMasks * K * 4 * sizeof(float));
        t = mem_.h2d(dev[s].mask, 0, ch.mask + p0, pm_count, t);
        t = mem_.h2d(dev[s].tp, 0, ch.tp,
                     phylo::kNumMasks * K * 4 * sizeof(float), t);
      } else {
        dev[s].cl = mem_.malloc(pm_count * cl_pp);
        dev[s].pm = mem_.malloc(K * 16 * sizeof(float));
        t = mem_.h2d(dev[s].cl, 0, ch.cl + p0 * K * 4, pm_count * cl_pp, t);
        t = mem_.h2d(dev[s].pm, 0, ch.p, K * 16 * sizeof(float), t);
      }
    }
    DevPtr dev_out_mask, dev_out_tp;
    if (root != nullptr) {
      dev_out_mask = mem_.malloc(pm_count);
      dev_out_tp = mem_.malloc(phylo::kNumMasks * K * 4 * sizeof(float));
      t = mem_.h2d(dev_out_mask, 0, root->out_mask + p0, pm_count, t);
      t = mem_.h2d(dev_out_tp, 0, root->out_tp,
                   phylo::kNumMasks * K * 4 * sizeof(float), t);
    }
    DevPtr dev_out = mem_.malloc(pm_count * cl_pp);

    // ---- Launch (functional + timed). ----
    const std::size_t n_elems = pm_count * K * 4;
    float* out = mem_.as_floats(dev_out);
    const float* cl[2];
    const std::uint8_t* mask[2];
    const float* tp[2];
    const float* pmat[2];
    for (int s = 0; s < 2; ++s) {
      cl[s] = dev[s].tip ? nullptr : mem_.as_floats(dev[s].cl);
      mask[s] = dev[s].tip ? mem_.bytes(dev[s].mask) : nullptr;
      tp[s] = dev[s].tip ? mem_.as_floats(dev[s].tp) : nullptr;
      pmat[s] = dev[s].tip ? nullptr : mem_.as_floats(dev[s].pm);
    }
    const std::uint8_t* omask =
        root != nullptr ? mem_.bytes(dev_out_mask) : nullptr;
    const float* otp = root != nullptr ? mem_.as_floats(dev_out_tp) : nullptr;

    const std::size_t total_threads = config_.launch.total_threads();
    launcher_.execute(config_.launch, [&](std::size_t b, std::size_t th) {
      // Grid-stride over output elements; one thread per likelihood-vector
      // entry (approach ii) or per cooperative group's result slot
      // (approach i — functionally identical, different arithmetic order).
      for (std::size_t idx = b * config_.launch.threads_per_block + th;
           idx < n_elems; idx += total_threads) {
        const std::size_t c = idx / (K * 4);
        const std::size_t k = (idx / 4) % K;
        const std::size_t i = idx % 4;
        float vals[2];
        for (int s = 0; s < 2; ++s) {
          if (mask[s] != nullptr) {
            vals[s] = tp[s][static_cast<std::size_t>(mask[s][c]) * K * 4 +
                            k * 4 + i];
          } else {
            vals[s] = row_dot(pmat[s] + k * 16 + i * 4, cl[s] + c * K * 4 + k * 4,
                              scheme);
          }
        }
        float v = vals[0] * vals[1];
        if (omask != nullptr) {
          v *= otp[static_cast<std::size_t>(omask[c]) * K * 4 + k * 4 + i];
        }
        out[idx] = v;
      }
    });
    const double kt = launcher_.kernel_time(config_.launch, n_elems,
                                            down_profile());
    t += kt;
    stats_.kernel_s += kt;
    ++stats_.kernel_launches;
    PLF_PROF_COUNT(obs::kCounterGpuKernelLaunches, 1);

    // ---- Fused scale (plan dispatch): rescale the block while it is still
    // device-resident, so the per-call H2D+D2H round trip between the
    // down/root and scale kernels never happens. ----
    DevPtr dev_sc;
    if (fused_scale != nullptr) {
      dev_sc = mem_.malloc(pm_count * sizeof(float));
      t += scale_on_device(out, mem_.as_floats(dev_sc), pm_count, K);
    }

    // ---- Results back to the host. ----
    t = mem_.d2h(a.out + p0 * K * 4, dev_out, 0, pm_count * cl_pp, t);
    if (fused_scale != nullptr) {
      t = mem_.d2h(fused_scale->ln_scaler + p0, dev_sc, 0,
                   pm_count * sizeof(float), t);
      mem_.free(dev_sc);
    }

    for (int s = 0; s < 2; ++s) {
      if (dev[s].tip) {
        mem_.free(dev[s].mask);
        mem_.free(dev[s].tp);
      } else {
        mem_.free(dev[s].cl);
        mem_.free(dev[s].pm);
      }
    }
    if (root != nullptr) {
      mem_.free(dev_out_mask);
      mem_.free(dev_out_tp);
    }
    mem_.free(dev_out);
  }

  stats_.global_partitions += partitions - 1;
  if (fused_scale != nullptr) {
    ++stats_.plan_fused_ops;
    // Per-call dispatch would H2D the whole CLV block into run_scale and D2H
    // it back out again; fusion eliminates both transfers.
    stats_.pcie_bytes_saved += 2 * m * cl_pp;
  }
  ++stats_.plf_invocations;
  stats_.pcie_s += mem_.stats().pcie_busy_s - pcie_before;
  stats_.h2d_bytes = mem_.stats().h2d_bytes;
  stats_.d2h_bytes = mem_.stats().d2h_bytes;
  publish_gpu_metrics(stats_, mem_.stats().h2d_bytes, mem_.stats().d2h_bytes);
  clock_.advance_to(t);
  return t - t_begin;
}

void GpuPlf::run_down(const core::KernelSet& /*ks*/, const core::DownArgs& a,
                      std::size_t m) {
  // Dense-only backend: the three-level grid partitioning and the coalesced
  // device layout address contiguous pattern blocks; a site-index indirection
  // would break both, so the engine must fall back (this backend does not
  // advertise Capabilities::kSiteRepeats).
  PLF_CHECK(a.site_index == nullptr,
            "GpuPlf is a dense-only backend: site_index rejected");
  down_like(a, m, nullptr);
}

void GpuPlf::run_root(const core::KernelSet& /*ks*/, const core::RootArgs& a,
                      std::size_t m) {
  PLF_CHECK(a.down.site_index == nullptr,
            "GpuPlf is a dense-only backend: site_index rejected");
  down_like(a.down, m, &a);
}

void GpuPlf::run_scale(const core::KernelSet& /*ks*/, const core::ScaleArgs& a,
                       std::size_t m) {
  PLF_CHECK(a.site_index == nullptr,
            "GpuPlf is a dense-only backend: site_index rejected");
  const std::size_t K = a.K;
  const double pcie_before = mem_.stats().pcie_busy_s;
  double t = clock_.now();

  const std::size_t cl_bytes = m * K * 4 * sizeof(float);
  DevPtr dev_cl = mem_.malloc(cl_bytes);
  DevPtr dev_sc = mem_.malloc(m * sizeof(float));
  t = mem_.h2d(dev_cl, 0, a.cl, cl_bytes, t);

  t += scale_on_device(mem_.as_floats(dev_cl), mem_.as_floats(dev_sc), m, K);

  t = mem_.d2h(a.cl, dev_cl, 0, cl_bytes, t);
  t = mem_.d2h(a.ln_scaler, dev_sc, 0, m * sizeof(float), t);
  mem_.free(dev_cl);
  mem_.free(dev_sc);

  ++stats_.plf_invocations;
  stats_.pcie_s += mem_.stats().pcie_busy_s - pcie_before;
  publish_gpu_metrics(stats_, mem_.stats().h2d_bytes, mem_.stats().d2h_bytes);
  clock_.advance_to(t);
}

double GpuPlf::scale_on_device(float* cl, float* sc, std::size_t m,
                               std::size_t K) {
  const std::size_t total_threads = config_.launch.total_threads();
  launcher_.execute(config_.launch, [&](std::size_t b, std::size_t th) {
    for (std::size_t c = b * config_.launch.threads_per_block + th; c < m;
         c += total_threads) {
      float* v = cl + c * K * 4;
      float mx = v[0];
      for (std::size_t x = 1; x < K * 4; ++x) {
        if (v[x] > mx) mx = v[x];
      }
      if (mx > 0.0f) {
        const float inv = 1.0f / mx;
        for (std::size_t x = 0; x < K * 4; ++x) v[x] *= inv;
        sc[c] = std::log(mx);
      } else {
        sc[c] = 0.0f;
      }
    }
  });
  // "The same parallelization approach is used in the three PLFs" (§3.4):
  // the reduction-parallel scheme pays its sync/divergence cost here too.
  KernelProfile prof;
  prof.flops_per_elem = static_cast<double>(K) * 8.0 + 30.0;  // scan + log
  prof.bytes_per_elem = static_cast<double>(K) * 32.0 + 4.0;
  if (config_.scheme == ThreadScheme::kReductionParallel) {
    prof.syncs_per_elem = 0.25;
    prof.divergence_factor = 2.0;
    prof.coalescing_ratio = 2.5;
  }
  const double kt = launcher_.kernel_time(config_.launch, m, prof);
  stats_.kernel_s += kt;
  ++stats_.kernel_launches;
  PLF_PROF_COUNT(obs::kCounterGpuKernelLaunches, 1);
  return kt;
}

void GpuPlf::run_plan(const core::KernelSet& /*ks*/,
                      const core::PlfPlan& plan) {
  core::detail::check_plan(plan);
  // Level order is all the dependency structure requires; within a level the
  // batch runs in plan order. Each op goes through the fused staged path —
  // one H2D of inputs, down/root + scale kernels back to back on the
  // device-resident block, one D2H of the scaled result and its scaler row.
  for (std::size_t level = 0; level < plan.n_levels(); ++level) {
    PLF_PROF_SCOPE(obs::kTimerPlanLevel);
    for (std::size_t i = plan.level_begin(level); i < plan.level_end(level);
         ++i) {
      const core::PlfOp& op = plan.ops()[i];
      PLF_CHECK(op.repeats == nullptr && op.args.down.site_index == nullptr,
                "GpuPlf is a dense-only backend: site_index rejected");
      down_like(op.args.down, op.run_m, op.is_root ? &op.args : nullptr,
                &op.scale);
    }
  }
}

double GpuPlf::run_root_reduce(const core::KernelSet& /*ks*/,
                               const core::RootReduceArgs& a, std::size_t m) {
  const std::size_t K = a.K;
  const double pcie_before = mem_.stats().pcie_busy_s;
  double t = clock_.now();

  const std::size_t cl_bytes = m * K * 4 * sizeof(float);
  DevPtr dev_cl = mem_.malloc(cl_bytes);
  DevPtr dev_sc = mem_.malloc(m * sizeof(double));
  DevPtr dev_w = mem_.malloc(m * sizeof(std::uint32_t));
  t = mem_.h2d(dev_cl, 0, a.cl, cl_bytes, t);
  t = mem_.h2d(dev_sc, 0, a.ln_scaler_total, m * sizeof(double), t);
  t = mem_.h2d(dev_w, 0, a.weights, m * sizeof(std::uint32_t), t);
  DevPtr dev_const;
  const bool has_pinv = a.const_lik != nullptr && a.p_invariant > 0.0f;
  if (has_pinv) {
    dev_const = mem_.malloc(m * sizeof(float));
    t = mem_.h2d(dev_const, 0, a.const_lik, m * sizeof(float), t);
  }

  // One block per contiguous pattern slice; in-block tree reduction, block
  // partials copied back and summed on the host in block order
  // (deterministic for a fixed launch config).
  const float* cl = mem_.as_floats(dev_cl);
  const double* sc = reinterpret_cast<const double*>(mem_.bytes(dev_sc));
  const std::uint32_t* w =
      reinterpret_cast<const std::uint32_t*>(mem_.bytes(dev_w));
  core::RootReduceArgs dev_args = a;  // +I parameters, device const_lik
  dev_args.const_lik = has_pinv ? mem_.as_floats(dev_const) : nullptr;
  const std::size_t blocks = config_.launch.blocks;
  const std::size_t per_block = (m + blocks - 1) / blocks;
  std::vector<double> partials(blocks, 0.0);
  const double inv_k = 1.0 / static_cast<double>(K);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * per_block;
    const std::size_t hi = std::min(m, lo + per_block);
    double acc = 0.0;
    for (std::size_t c = lo; c < hi; ++c) {
      const float* v = cl + c * K * 4;
      double site = 0.0;
      for (std::size_t k = 0; k < K; ++k) {
        site += static_cast<double>(a.pi[0]) * v[k * 4 + 0] +
                static_cast<double>(a.pi[1]) * v[k * 4 + 1] +
                static_cast<double>(a.pi[2]) * v[k * 4 + 2] +
                static_cast<double>(a.pi[3]) * v[k * 4 + 3];
      }
      acc += static_cast<double>(w[c]) *
             core::site_log_likelihood(site * inv_k, sc[c], dev_args, c);
    }
    partials[b] = acc;
  }

  KernelProfile prof;
  prof.flops_per_elem = static_cast<double>(K) * 8.0 + 40.0;
  prof.bytes_per_elem = static_cast<double>(K) * 16.0 + 12.0;
  prof.syncs_per_elem = 0.02;  // per-block tree reduction amortized
  if (config_.scheme == ThreadScheme::kReductionParallel) {
    prof.syncs_per_elem = 0.25;
    prof.divergence_factor = 2.0;
    prof.coalescing_ratio = 2.5;
  }
  const double kt = launcher_.kernel_time(config_.launch, m, prof);
  t += kt;
  stats_.kernel_s += kt;
  ++stats_.kernel_launches;
  PLF_PROF_COUNT(obs::kCounterGpuKernelLaunches, 1);

  // Block partials d2h.
  aligned_vector<double> host_partials(blocks);
  DevPtr dev_p = mem_.malloc(blocks * sizeof(double));
  std::memcpy(mem_.bytes(dev_p), partials.data(), blocks * sizeof(double));
  t = mem_.d2h(host_partials.data(), dev_p, 0, blocks * sizeof(double), t);
  mem_.free(dev_p);
  mem_.free(dev_cl);
  mem_.free(dev_sc);
  mem_.free(dev_w);
  if (has_pinv) mem_.free(dev_const);

  double sum = 0.0;
  for (double p : host_partials) sum += p;

  ++stats_.plf_invocations;
  stats_.pcie_s += mem_.stats().pcie_busy_s - pcie_before;
  publish_gpu_metrics(stats_, mem_.stats().h2d_bytes, mem_.stats().d2h_bytes);
  clock_.advance_to(t);
  return sum;
}

CoalescingReport GpuPlf::analyze_cl_loads(ThreadScheme scheme, std::size_t m,
                                          std::size_t K) const {
  CoalescingAnalyzer analyzer;
  const std::uint64_t base = 0;  // cl array assumed segment-aligned
  const std::size_t lanes = kWarpSize;
  const std::size_t steps = std::min<std::size_t>(m * K * 4 / lanes, 64);

  for (std::size_t step = 0; step < steps; ++step) {
    std::vector<std::uint64_t> addrs(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (scheme == ThreadScheme::kEntryParallel) {
        // One thread per likelihood-vector entry: lane l of warp `step`
        // loads element (step*32 + l) — dense, coalesced.
        addrs[l] = base + (step * lanes + l) * sizeof(float);
      } else {
        // Cooperative groups (Fig. 8b): 16 threads per pattern, thread t
        // loads rate-array element t%4 for inner product t/4 — 4-way
        // replicated addresses within 16-float windows.
        const std::size_t pattern = step * 2 + l / 16;
        const std::size_t j = l % 4;
        const std::size_t k = (step % K);
        addrs[l] = base + (pattern * K * 4 + k * 4 + j) * sizeof(float);
      }
    }
    analyzer.record(addrs, sizeof(float));
  }
  return analyzer.report();
}

void GpuPlf::reset_stats() {
  stats_ = GpuRunStats{};
  mem_.reset_stats();
}

}  // namespace plf::gpu
