#include "gpu/coalescing.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace plf::gpu {

void CoalescingAnalyzer::record(const std::vector<std::uint64_t>& addresses,
                                std::size_t bytes_per_lane) {
  std::set<std::uint64_t> segments;
  std::size_t active = 0;
  for (std::uint64_t a : addresses) {
    if (a == std::numeric_limits<std::uint64_t>::max()) continue;
    ++active;
    const std::uint64_t first = a / segment_bytes_;
    const std::uint64_t last = (a + bytes_per_lane - 1) / segment_bytes_;
    for (std::uint64_t s = first; s <= last; ++s) segments.insert(s);
  }
  if (active == 0) return;
  ++report_.access_steps;
  report_.transactions += segments.size();
  // Dense packing of `active` lanes of `bytes_per_lane` spans this many
  // segments at minimum.
  const std::uint64_t dense_bytes =
      static_cast<std::uint64_t>(active) * bytes_per_lane;
  report_.ideal += (dense_bytes + segment_bytes_ - 1) / segment_bytes_;
}

}  // namespace plf::gpu
