// Simulated 2009-era NVIDIA GPU (Tesla architecture, CUDA 2.x model).
//
// The device is modeled at the granularity the paper reasons about:
// streaming multiprocessors (SMs) of 8 scalar cores each, warps of 32
// threads, a per-SM resident-thread/block limit that determines occupancy,
// global memory with a bandwidth roofline, and a PCIe link to the host whose
// transfer cost is what ultimately sinks the GPU's total-time result in
// Fig. 12.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace plf::gpu {

inline constexpr std::size_t kWarpSize = 32;

struct DeviceSpec {
  std::string name = "GPU";
  std::size_t sm_count = 14;            ///< streaming multiprocessors
  std::size_t cores_per_sm = 8;         ///< scalar processors per SM
  double shader_clock_hz = 1.5e9;
  std::size_t global_memory_bytes = 512ull << 20;
  double global_bandwidth_bps = 57.6e9; ///< device-memory roofline
  std::size_t max_threads_per_block = 512;
  std::size_t max_threads_per_sm = 768; ///< occupancy limit (Tesla: 768/1024)
  std::size_t max_blocks_per_sm = 8;
  double launch_overhead_s = 8e-6;      ///< host-side kernel dispatch cost
  double sync_cycles = 40.0;            ///< __syncthreads() latency

  std::size_t total_cores() const { return sm_count * cores_per_sm; }

  /// NVIDIA GeForce 8800 GT: 112 cores @ 1.5 GHz, 512 MB (Table 1).
  static DeviceSpec geforce_8800gt();
  /// NVIDIA GTX 285: 240 cores @ 1.476 GHz, 1 GB (Table 1).
  static DeviceSpec gtx285();
};

/// Host<->device interconnect: PCIe 1.1/2.0 x16 era numbers.
struct PcieSpec {
  double bandwidth_bps = 2.0e9;  ///< effective, not theoretical peak
  double latency_s = 10e-6;      ///< per-transfer driver + DMA setup
};

/// Kernel launch geometry.
struct LaunchConfig {
  std::size_t blocks = 40;
  std::size_t threads_per_block = 256;

  std::size_t total_threads() const { return blocks * threads_per_block; }
};

/// Occupancy: resident warps per SM relative to the maximum, given the
/// block size and per-SM limits. Low occupancy leaves memory latency
/// exposed; the design-space sweep (§3.4) is largely this function.
double occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

/// Fraction of SM-wave slots doing useful work when `cfg.blocks` blocks are
/// scheduled on the device (tail-wave imbalance).
double wave_balance(const DeviceSpec& spec, const LaunchConfig& cfg);

}  // namespace plf::gpu
