// Simulated device global memory and the PCIe transfer engine.
//
// Kernels may only touch device-resident buffers (as under CUDA): the PLF
// backend must explicitly cudaMemcpy-style stage inputs in and results out,
// and those transfers are exactly the "PCIe" slice of the paper's Fig. 12.
// Allocation is tracked against the device capacity so that the three-level
// partitioning's *global partitions* (split the data when it exceeds device
// memory, §3.4) are forced just like on the real card.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpu/device.hpp"
#include "util/aligned.hpp"

namespace plf::gpu {

/// Opaque device pointer handle.
struct DevPtr {
  std::uint64_t id = 0;
  bool null() const { return id == 0; }
};

struct TransferStats {
  std::uint64_t h2d_transfers = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double pcie_busy_s = 0.0;
};

class DeviceMemory {
 public:
  DeviceMemory(std::size_t capacity, const PcieSpec& pcie)
      : capacity_(capacity), pcie_(pcie) {}

  /// cudaMalloc: throws HardwareViolation when the device is out of memory.
  DevPtr malloc(std::size_t bytes);
  /// cudaFree.
  void free(DevPtr p);

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// cudaMemcpy host->device. Returns the transfer's completion time given
  /// `issue_time` (transfers serialize on the single PCIe link).
  double h2d(DevPtr dst, std::size_t offset, const void* src,
             std::size_t bytes, double issue_time);
  /// cudaMemcpy device->host.
  double d2h(void* dst, DevPtr src, std::size_t offset, std::size_t bytes,
             double issue_time);

  /// Raw device-side access for kernels. Only valid for live allocations.
  float* as_floats(DevPtr p);
  const std::uint8_t* bytes(DevPtr p) const;
  std::uint8_t* bytes(DevPtr p);

  const TransferStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TransferStats{}; }

 private:
  double transfer(std::size_t bytes, double issue_time);

  std::size_t capacity_;
  PcieSpec pcie_;
  std::size_t used_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, aligned_vector<std::uint8_t>> allocs_;
  TransferStats stats_;
  double link_free_at_ = 0.0;
};

}  // namespace plf::gpu
