// Simulated device global memory and the PCIe transfer engine.
//
// Kernels may only touch device-resident buffers (as under CUDA): the PLF
// backend must explicitly cudaMemcpy-style stage inputs in and results out,
// and those transfers are exactly the "PCIe" slice of the paper's Fig. 12.
// Allocation is tracked against the device capacity so that the three-level
// partitioning's *global partitions* (split the data when it exceeds device
// memory, §3.4) are forced just like on the real card.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpu/device.hpp"
#include "util/aligned.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::gpu {

/// Opaque device pointer handle.
struct DevPtr {
  std::uint64_t id = 0;
  bool null() const { return id == 0; }
};

struct TransferStats {
  std::uint64_t h2d_transfers = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double pcie_busy_s = 0.0;
};

/// Thread confinement: one DeviceMemory models one card driven from one host
/// thread (as with a CUDA context bound to a thread); `checker_` turns that
/// rule into a TSA capability (see util/sync.hpp) — allocation tables and
/// transfer stats are GUARDED_BY it and every entry point asserts it, with a
/// checked-build runtime tripwire on cross-thread use.
class DeviceMemory {
 public:
  DeviceMemory(std::size_t capacity, const PcieSpec& pcie)
      : capacity_(capacity), pcie_(pcie) {}

  /// cudaMalloc: throws HardwareViolation when the device is out of memory.
  DevPtr malloc(std::size_t bytes);
  /// cudaFree.
  void free(DevPtr p);

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const {
    checker_.check();
    return used_;
  }

  /// cudaMemcpy host->device. Returns the transfer's completion time given
  /// `issue_time` (transfers serialize on the single PCIe link).
  double h2d(DevPtr dst, std::size_t offset, const void* src,
             std::size_t bytes, double issue_time);
  /// cudaMemcpy device->host.
  double d2h(void* dst, DevPtr src, std::size_t offset, std::size_t bytes,
             double issue_time);

  /// Raw device-side access for kernels. Only valid for live allocations.
  float* as_floats(DevPtr p);
  const std::uint8_t* bytes(DevPtr p) const;
  std::uint8_t* bytes(DevPtr p);

  const TransferStats& stats() const {
    checker_.check();
    return stats_;
  }
  void reset_stats() {
    checker_.check();
    stats_ = TransferStats{};
  }

 private:
  double transfer(std::size_t bytes, double issue_time) PLF_REQUIRES(checker_);

  std::size_t capacity_;
  PcieSpec pcie_;
  util::ThreadChecker checker_;
  std::size_t used_ PLF_GUARDED_BY(checker_) = 0;
  std::uint64_t next_id_ PLF_GUARDED_BY(checker_) = 1;
  std::unordered_map<std::uint64_t, aligned_vector<std::uint8_t>> allocs_
      PLF_GUARDED_BY(checker_);
  TransferStats stats_ PLF_GUARDED_BY(checker_);
  /// Transfers serialize on the single PCIe link.
  double link_free_at_ PLF_GUARDED_BY(checker_) = 0.0;
};

}  // namespace plf::gpu
