// Kernel launch: functional grid execution plus the SM-level timing model.
//
// Functionally, a launch invokes the kernel body for every (block, thread)
// index — our SPMD execution of the CUDA model. Temporally, `kernel_time`
// estimates the duration from a per-element cost profile and the launch
// geometry: occupancy (resident warps hide memory latency), tail-wave
// balance (partially filled last wave of blocks), thread-quantization waste,
// a divergence factor for conditional-heavy kernels, and a bandwidth
// roofline scaled by the coalescing transaction ratio. These are exactly the
// effects the paper's §3.4 design-space exploration trades off.
#pragma once

#include <cstddef>
#include <functional>

#include "gpu/device.hpp"

namespace plf::gpu {

/// Per-element cost description for the timing model. An "element" is one
/// unit of the parallel work (e.g. one output float for the entry-parallel
/// PLF kernel).
struct KernelProfile {
  double flops_per_elem = 1.0;
  double bytes_per_elem = 4.0;
  double syncs_per_elem = 0.0;      ///< __syncthreads() count (approach i)
  double divergence_factor = 1.0;   ///< serialization from warp divergence
  double coalescing_ratio = 1.0;    ///< memory transactions / ideal (>= 1)
};

class KernelLauncher {
 public:
  explicit KernelLauncher(const DeviceSpec& spec) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Functional execution: body(block, thread) for every index pair.
  void execute(const LaunchConfig& cfg,
               const std::function<void(std::size_t block, std::size_t thread)>&
                   body) const;

  /// Simulated kernel duration for `n_elems` elements of work distributed
  /// grid-stride over the launch geometry.
  double kernel_time(const LaunchConfig& cfg, std::size_t n_elems,
                     const KernelProfile& profile) const;

 private:
  DeviceSpec spec_;
};

}  // namespace plf::gpu
