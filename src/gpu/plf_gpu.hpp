// GPU execution backend for the PLF (the paper's §3.4 CUDA port).
//
// Each PLF invocation is staged exactly like the paper describes: inputs are
// copied to device global memory over PCIe, the kernel is launched over a
// (blocks x threads) grid with three-level partitioning — global partitions
// when the data exceeds device memory, block partitions over the likelihood
// vector, thread partitions within a block — and results are copied back.
// Two thread schemes are implemented:
//
//   kReductionParallel  (approach i, Fig. 8b): a group of threads cooperates
//       on each inner product with tree reductions — many __syncthreads()
//       and conditionals;
//   kEntryParallel      (approach ii, Fig. 8c): one independent thread per
//       likelihood-vector entry, groups of 4 threads spanning one discrete-
//       rate array so accesses coalesce. The paper measured this 2.5x faster
//       at the PLF level and adopted it.
//
// Functional results are identical to the host kernels (entry-parallel
// matches the scalar reference ordering; reduction-parallel matches the
// pairwise/hsum ordering). Time accumulates on a virtual clock split into
// kernel and PCIe components — the decomposition Fig. 12 plots.
#pragma once

#include <string>

#include "core/backend.hpp"
#include "gpu/coalescing.hpp"
#include "gpu/device.hpp"
#include "gpu/device_memory.hpp"
#include "gpu/launch.hpp"
#include "util/clock.hpp"

namespace plf::gpu {

enum class ThreadScheme { kEntryParallel, kReductionParallel };

std::string to_string(ThreadScheme s);

struct GpuPlfConfig {
  DeviceSpec device = DeviceSpec::geforce_8800gt();
  PcieSpec pcie;
  LaunchConfig launch{40, 256};
  ThreadScheme scheme = ThreadScheme::kEntryParallel;
};

struct GpuRunStats {
  std::uint64_t plf_invocations = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t global_partitions = 0;  ///< extra partitions beyond the first
  double kernel_s = 0.0;                ///< simulated device-side time
  double pcie_s = 0.0;                  ///< simulated transfer time
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  // Plan batching (run_plan): ops whose scale stage ran on the CLV block
  // still device-resident from the down/root kernel, and the PCIe traffic
  // that saved versus per-call dispatch (one H2D + one D2H of the block).
  std::uint64_t plan_fused_ops = 0;
  std::uint64_t pcie_bytes_saved = 0;
};

class GpuPlf final : public core::ExecutionBackend {
 public:
  explicit GpuPlf(const GpuPlfConfig& config);

  std::string name() const override;

  /// Dense-only (site-index indirection would break the three-level grid
  /// partitioning and the coalesced layout), but plan-batched: run_plan
  /// fuses each op's scale onto the device-resident down/root output and
  /// coalesces the PCIe round trips the per-call path pays between kernels.
  core::Capabilities capabilities() const override {
    return core::Capabilities::kFusedPlan | core::Capabilities::kBatchedTransfers;
  }

  void run_down(const core::KernelSet& ks, const core::DownArgs& a,
                std::size_t m) override;
  void run_root(const core::KernelSet& ks, const core::RootArgs& a,
                std::size_t m) override;
  void run_scale(const core::KernelSet& ks, const core::ScaleArgs& a,
                 std::size_t m) override;
  double run_root_reduce(const core::KernelSet& ks,
                         const core::RootReduceArgs& a, std::size_t m) override;
  void run_plan(const core::KernelSet& ks, const core::PlfPlan& plan) override;

  const GpuPlfConfig& config() const { return config_; }
  const GpuRunStats& stats() const { return stats_; }
  void reset_stats();

  /// Total simulated time (kernel + PCIe) so far.
  double simulated_seconds() const { return clock_.now(); }

  /// Replay the conditional-likelihood load addresses of the first warp for
  /// the given scheme and report the coalescing behaviour (the §3.4 layout
  /// argument, testable).
  CoalescingReport analyze_cl_loads(ThreadScheme scheme, std::size_t m,
                                    std::size_t K) const;

 private:
  /// One staged invocation: H2D inputs, down/root kernel, and — when
  /// `fused_scale` is non-null (plan dispatch) — the scale kernel on the
  /// still-device-resident output before the single D2H, so the per-call
  /// H2D+D2H round trip between the two kernels disappears.
  double down_like(const core::DownArgs& a, std::size_t m,
                   const core::RootArgs* root,
                   const core::ScaleArgs* fused_scale = nullptr);
  /// Device-side rescale of `m` patterns in place (shared by run_scale and
  /// the fused plan path so both orderings are bit-identical). Returns the
  /// simulated kernel time, already accumulated into the stats.
  double scale_on_device(float* cl, float* sc, std::size_t m, std::size_t K);
  KernelProfile down_profile() const;

  GpuPlfConfig config_;
  DeviceMemory mem_;
  KernelLauncher launcher_;
  VirtualClock clock_;
  GpuRunStats stats_;
};

}  // namespace plf::gpu
