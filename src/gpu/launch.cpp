#include "gpu/launch.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace plf::gpu {

void KernelLauncher::execute(
    const LaunchConfig& cfg,
    const std::function<void(std::size_t, std::size_t)>& body) const {
  PLF_CHECK(cfg.threads_per_block >= 1 &&
                cfg.threads_per_block <= spec_.max_threads_per_block,
            "launch: threads per block out of range for this device");
  PLF_CHECK(cfg.blocks >= 1, "launch: needs at least one block");
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    for (std::size_t t = 0; t < cfg.threads_per_block; ++t) {
      body(b, t);
    }
  }
}

double KernelLauncher::kernel_time(const LaunchConfig& cfg,
                                   std::size_t n_elems,
                                   const KernelProfile& profile) const {
  if (n_elems == 0) return spec_.launch_overhead_s;

  const double occ = occupancy(spec_, cfg);
  const double bal = wave_balance(spec_, cfg);
  PLF_CHECK(occ > 0.0 && bal > 0.0, "launch configuration cannot run");

  // Grid-stride: every thread processes ceil(n / total) elements; threads
  // with no element still occupy their slot (quantization waste).
  const std::size_t total_threads = cfg.total_threads();
  const std::size_t per_thread =
      (n_elems + total_threads - 1) / total_threads;
  const double padded =
      static_cast<double>(per_thread) * static_cast<double>(total_threads);

  // Compute roofline: scalar cores retire ~1 flop/cycle; synchronization
  // and divergence serialize issue slots.
  const double cycles_per_elem =
      profile.flops_per_elem * profile.divergence_factor +
      profile.syncs_per_elem * spec_.sync_cycles;
  double compute_s =
      padded * cycles_per_elem /
      (static_cast<double>(spec_.total_cores()) * spec_.shader_clock_hz);

  // Low occupancy exposes memory latency: below ~50% residency the SMs
  // cannot cover global-memory stalls — and equally cannot keep enough
  // requests in flight to saturate the memory system, so the achievable
  // bandwidth degrades with the same factor.
  const double latency_hiding = std::min(1.0, occ / 0.5);
  compute_s /= (bal * latency_hiding);

  // Memory roofline with the coalescing transaction ratio.
  const double mem_s = padded * profile.bytes_per_elem *
                       profile.coalescing_ratio /
                       (spec_.global_bandwidth_bps * bal * latency_hiding);

  return spec_.launch_overhead_s + std::max(compute_s, mem_s);
}

}  // namespace plf::gpu
