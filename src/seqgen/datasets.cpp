#include "seqgen/datasets.hpp"

#include <unordered_map>

#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/error.hpp"

namespace plf::seqgen {

std::string DatasetSpec::name() const {
  std::string cols;
  if (patterns % 1000 == 0) {
    cols = std::to_string(patterns / 1000) + "K";
  } else {
    cols = std::to_string(patterns);
  }
  return std::to_string(taxa) + "_" + cols;
}

std::vector<DatasetSpec> paper_grid() {
  std::vector<DatasetSpec> grid;
  for (std::size_t cols : {1000u, 5000u, 20000u, 50000u}) {
    for (std::size_t taxa : {10u, 20u, 50u, 100u}) {
      grid.push_back(DatasetSpec{taxa, cols});
    }
  }
  return grid;
}

phylo::GtrParams default_gtr_params() {
  phylo::GtrParams p;
  // Empirically-shaped GTR exchangeabilities (AC, AG, AT, CG, CT, GT) with a
  // transition/transversion excess, unequal base frequencies and moderate
  // rate heterogeneity.
  p.rates = {1.0, 2.9, 0.6, 0.9, 3.2, 1.0};
  p.pi = {0.30, 0.20, 0.25, 0.25};
  p.gamma_shape = 0.75;
  p.n_rate_categories = 4;
  return p;
}

namespace {

struct ColumnKey {
  std::string key;
  explicit ColumnKey(const std::vector<phylo::StateMask>& col)
      : key(col.begin(), col.end()) {}
};

Dataset make_dataset_impl(const std::string& name, std::size_t taxa,
                          std::size_t target_patterns, bool weight_one,
                          std::size_t total_columns, std::uint64_t seed,
                          double branch_scale) {
  Rng rng(seed);
  phylo::Tree tree = yule_tree(taxa, rng, 1.0, branch_scale);
  const phylo::GtrParams params = default_gtr_params();
  const phylo::SubstitutionModel model(params);
  SequenceEvolver evolver(tree, model);

  std::unordered_map<std::string, std::size_t> index;
  std::vector<std::vector<phylo::StateMask>> patterns;
  std::vector<std::uint32_t> weights;

  if (weight_one) {
    // Grid mode: keep simulating until `target_patterns` DISTINCT columns
    // exist; each counts once (the paper's distinct-column extraction).
    // Guard against pathological settings where distinct columns saturate.
    const std::size_t max_attempts = target_patterns * 1000 + 100000;
    std::size_t attempts = 0;
    while (patterns.size() < target_patterns) {
      PLF_CHECK(++attempts <= max_attempts,
                "dataset generation stalled: cannot reach requested distinct "
                "pattern count");
      auto col = evolver.evolve_column(rng);
      ColumnKey key(col);
      auto [it, inserted] = index.try_emplace(std::move(key.key), patterns.size());
      if (inserted) {
        patterns.push_back(std::move(col));
        weights.push_back(1);
      }
    }
  } else {
    // Real-data mode: fixed number of columns, compressed with weights.
    for (std::size_t c = 0; c < total_columns; ++c) {
      auto col = evolver.evolve_column(rng);
      ColumnKey key(col);
      auto [it, inserted] = index.try_emplace(std::move(key.key), patterns.size());
      if (inserted) {
        patterns.push_back(std::move(col));
        weights.push_back(1);
      } else {
        ++weights[it->second];
      }
    }
  }

  Dataset ds{name, std::move(tree), params,
             phylo::PatternMatrix::from_patterns(
                 seqgen::default_taxon_names(taxa), patterns, std::move(weights))};
  return ds;
}

}  // namespace

Dataset make_grid_dataset(const DatasetSpec& spec, std::uint64_t seed) {
  // Longer branches for the bigger pattern targets: more site diversity is
  // needed for 50K distinct columns to exist in reasonable simulation time.
  const double scale = spec.patterns >= 20000 ? 0.25 : 0.15;
  return make_dataset_impl(spec.name(), spec.taxa, spec.patterns,
                           /*weight_one=*/true, 0,
                           seed ^ (spec.taxa * 1315423911ull) ^ spec.patterns,
                           scale);
}

Dataset make_real_dataset(std::uint64_t seed, std::size_t columns) {
  // Branch scale tuned so ~30% of 28,740 columns are distinct, matching the
  // paper's real mammalian alignment (8,543 / 28,740 ≈ 0.297).
  return make_dataset_impl("real_20_8543", 20, 0, /*weight_one=*/false,
                           columns, seed, 0.045);
}

}  // namespace plf::seqgen
