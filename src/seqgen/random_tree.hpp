// Random phylogenetic tree generation.
//
// The paper's inputs were "trees with 10, 20, 50, and 100 leaves obtained
// from analyses of real data sets"; lacking those exact trees, we generate
// them from standard stochastic models of diversification — a Yule
// (pure-birth) process and the Kingman coalescent — which produce the
// realistic tree shapes and branch-length distributions phylogenetics
// software is exercised with.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace plf::seqgen {

/// Yule (pure-birth) tree: lineages split at rate `birth_rate` each; the
/// process runs until `n_taxa` tips exist. Branch lengths are in expected
/// substitutions after multiplying by `scale`.
phylo::Tree yule_tree(std::size_t n_taxa, Rng& rng, double birth_rate = 1.0,
                      double scale = 0.1);

/// Kingman coalescent tree: pairs of lineages merge at rate C(k,2)/theta.
phylo::Tree coalescent_tree(std::size_t n_taxa, Rng& rng, double theta = 1.0,
                            double scale = 0.1);

/// Default taxon names "t1".."tN".
std::vector<std::string> default_taxon_names(std::size_t n);

}  // namespace plf::seqgen
