#include "seqgen/random_tree.hpp"

#include <sstream>

#include "util/error.hpp"

namespace plf::seqgen {

namespace {

/// Growing-tree node for the simulators.
struct BNode {
  double length = 0.0;  // branch to parent, accumulated while the lineage is active
  int left = -1;
  int right = -1;
  int name = -1;  // leaf name index, assigned at the end
};

void write_newick(const std::vector<BNode>& nodes,
                  const std::vector<std::string>& names, int id, double scale,
                  std::ostringstream& os) {
  const BNode& n = nodes[static_cast<std::size_t>(id)];
  if (n.left < 0) {
    os << names[static_cast<std::size_t>(n.name)];
  } else {
    os << '(';
    write_newick(nodes, names, n.left, scale, os);
    os << ',';
    write_newick(nodes, names, n.right, scale, os);
    os << ')';
  }
  os << ':' << n.length * scale;
}

phylo::Tree finish(std::vector<BNode>& nodes, int root,
                   const std::vector<int>& leaves, double scale) {
  const auto names = default_taxon_names(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    nodes[static_cast<std::size_t>(leaves[i])].name = static_cast<int>(i);
  }
  std::ostringstream os;
  os.precision(12);
  write_newick(nodes, names, root, scale, os);
  os << ';';
  // The simulators produce a rooted bifurcating top; from_newick unroots it.
  return phylo::Tree::from_newick(os.str(), names);
}

}  // namespace

std::vector<std::string> default_taxon_names(std::size_t n) {
  std::vector<std::string> names(n);
  for (std::size_t i = 0; i < n; ++i) names[i] = "t" + std::to_string(i + 1);
  return names;
}

phylo::Tree yule_tree(std::size_t n_taxa, Rng& rng, double birth_rate,
                      double scale) {
  PLF_CHECK(n_taxa >= 3, "yule_tree: need at least 3 taxa");
  PLF_CHECK(birth_rate > 0.0 && scale > 0.0, "yule_tree: bad parameters");

  std::vector<BNode> nodes;
  std::vector<int> active;
  auto make_node = [&nodes]() {
    nodes.emplace_back();
    return static_cast<int>(nodes.size()) - 1;
  };

  const int root = make_node();
  nodes[static_cast<std::size_t>(root)].left = make_node();
  nodes[static_cast<std::size_t>(root)].right = make_node();
  active.push_back(nodes[static_cast<std::size_t>(root)].left);
  active.push_back(nodes[static_cast<std::size_t>(root)].right);

  while (active.size() < n_taxa) {
    const double k = static_cast<double>(active.size());
    const double dt = rng.exponential(k * birth_rate);
    for (int id : active) nodes[static_cast<std::size_t>(id)].length += dt;

    const std::size_t pick = rng.below(active.size());
    const int split = active[pick];
    const int a = make_node();
    const int b = make_node();
    nodes[static_cast<std::size_t>(split)].left = a;
    nodes[static_cast<std::size_t>(split)].right = b;
    active[pick] = a;
    active.push_back(b);
  }
  // Final stretch so the youngest tips do not end with zero-length branches.
  const double dt =
      rng.exponential(static_cast<double>(active.size()) * birth_rate);
  for (int id : active) nodes[static_cast<std::size_t>(id)].length += dt;

  return finish(nodes, root, active, scale);
}

phylo::Tree coalescent_tree(std::size_t n_taxa, Rng& rng, double theta,
                            double scale) {
  PLF_CHECK(n_taxa >= 3, "coalescent_tree: need at least 3 taxa");
  PLF_CHECK(theta > 0.0 && scale > 0.0, "coalescent_tree: bad parameters");

  std::vector<BNode> nodes;
  std::vector<int> active;
  std::vector<int> leaves;
  auto make_node = [&nodes]() {
    nodes.emplace_back();
    return static_cast<int>(nodes.size()) - 1;
  };

  for (std::size_t i = 0; i < n_taxa; ++i) {
    const int id = make_node();
    active.push_back(id);
    leaves.push_back(id);
  }

  while (active.size() > 1) {
    const double k = static_cast<double>(active.size());
    const double rate = k * (k - 1.0) / (2.0 * theta);
    const double dt = rng.exponential(rate);
    for (int id : active) nodes[static_cast<std::size_t>(id)].length += dt;

    const std::size_t i = rng.below(active.size());
    std::size_t j = rng.below(active.size() - 1);
    if (j >= i) ++j;
    const int parent = make_node();
    nodes[static_cast<std::size_t>(parent)].left = active[i];
    nodes[static_cast<std::size_t>(parent)].right = active[j];
    const std::size_t lo = i < j ? i : j;
    const std::size_t hi = i < j ? j : i;
    active[lo] = parent;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(hi));
  }

  return finish(nodes, active.front(), leaves, scale);
}

}  // namespace plf::seqgen
