// The paper's benchmark datasets (§4).
//
//  * The grid: trees with 10/20/50/100 leaves crossed with sub-alignments of
//    1,000 / 5,000 / 20,000 / 50,000 DISTINCT columns (weight 1 each, since
//    the paper extracted distinct columns — "the number of columns
//    corresponds exactly to the number of patterns").
//  * A stand-in for the real-world mammalian alignment: 20 organisms,
//    28,740 columns compressed to ~8,543 distinct patterns with
//    multiplicities.
//
// Generation is deterministic per (spec, seed).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "phylo/model.hpp"
#include "phylo/patterns.hpp"
#include "phylo/tree.hpp"

namespace plf::seqgen {

/// One cell of the paper's input grid, named like the paper: "50_20K".
struct DatasetSpec {
  std::size_t taxa = 10;
  std::size_t patterns = 1000;

  std::string name() const;
};

/// The 16-cell grid of Figures 9-11, in the paper's plotting order
/// (columns-major: all leaf counts for 1K, then 5K, 20K, 50K).
std::vector<DatasetSpec> paper_grid();

struct Dataset {
  std::string name;
  phylo::Tree tree;
  phylo::GtrParams model_params;
  phylo::PatternMatrix patterns;
};

/// GTR+Γ parameters used for all simulated data (an unremarkable,
/// empirically-shaped parameterization).
phylo::GtrParams default_gtr_params();

/// Simulate one grid dataset: Yule tree with `spec.taxa` leaves, columns
/// evolved under GTR+Γ until `spec.patterns` DISTINCT patterns exist
/// (weight 1 each — the paper's extraction step).
Dataset make_grid_dataset(const DatasetSpec& spec, std::uint64_t seed = 42);

/// Simulate the real-world stand-in: 20 taxa, `columns` evolved columns
/// compressed with multiplicities (branch scale tuned so the distinct count
/// lands near the paper's 8,543 of 28,740).
Dataset make_real_dataset(std::uint64_t seed = 42, std::size_t columns = 28740);

}  // namespace plf::seqgen
