// Sequence evolution along a tree (our Seq-Gen v1.3.2 equivalent, [9] in the
// paper): Monte-Carlo simulation of DNA columns under GTR+Γ. Each column
// draws one discrete-Γ rate category (rates are site-specific but constant
// across the tree, as in the Γ model), samples the root state from the
// stationary distribution, and walks the tree sampling child states from the
// branch transition matrices.
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/matrix4.hpp"
#include "phylo/alignment.hpp"
#include "phylo/dna.hpp"
#include "phylo/model.hpp"
#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace plf::seqgen {

class SequenceEvolver {
 public:
  /// Transition matrices for every branch and rate category are precomputed
  /// at construction (double precision — the simulation substrate does not
  /// inherit the PLF's single-precision constraint).
  SequenceEvolver(const phylo::Tree& tree, const phylo::SubstitutionModel& model);

  /// Simulate one alignment column: per-taxon unambiguous state masks.
  std::vector<phylo::StateMask> evolve_column(Rng& rng) const;

  /// Simulate a full alignment with `n_columns` independent columns.
  phylo::Alignment evolve(std::size_t n_columns, Rng& rng) const;

  const phylo::Tree& tree() const { return *tree_; }

 private:
  std::size_t sample_state(const num::Matrix4& p, std::size_t from,
                           Rng& rng) const;

  const phylo::Tree* tree_;
  const phylo::SubstitutionModel* model_;
  std::size_t k_;
  // branch_tm_[node][category]: P(rate_k * length(node)) for nodes with a parent.
  std::vector<std::vector<num::Matrix4>> branch_tm_;
};

}  // namespace plf::seqgen
