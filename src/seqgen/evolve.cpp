#include "seqgen/evolve.hpp"

#include "util/error.hpp"

namespace plf::seqgen {

SequenceEvolver::SequenceEvolver(const phylo::Tree& tree,
                                 const phylo::SubstitutionModel& model)
    : tree_(&tree), model_(&model), k_(model.n_rate_categories()) {
  branch_tm_.resize(tree.n_nodes());
  for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
    const phylo::TreeNode& n = tree.node(static_cast<int>(id));
    if (n.parent == phylo::kNoNode) continue;
    branch_tm_[id].resize(k_);
    for (std::size_t k = 0; k < k_; ++k) {
      branch_tm_[id][k] = model.transition_matrix(n.length, k);
    }
  }
}

std::size_t SequenceEvolver::sample_state(const num::Matrix4& p,
                                          std::size_t from, Rng& rng) const {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t j = 0; j + 1 < 4; ++j) {
    acc += p(from, j);
    if (u < acc) return j;
  }
  return 3;
}

std::vector<phylo::StateMask> SequenceEvolver::evolve_column(Rng& rng) const {
  // +I: an invariable site carries one stationary draw for every taxon.
  if (model_->params().p_invariant > 0.0 &&
      rng.uniform() < model_->params().p_invariant) {
    const auto& pi = model_->pi();
    const double u = rng.uniform();
    std::size_t s = 3;
    double acc = 0.0;
    for (std::size_t j = 0; j + 1 < 4; ++j) {
      acc += pi[j];
      if (u < acc) {
        s = j;
        break;
      }
    }
    return std::vector<phylo::StateMask>(tree_->n_taxa(),
                                         phylo::state_to_mask(s));
  }

  const std::size_t k = rng.below(k_);  // equiprobable Γ categories

  std::vector<phylo::StateMask> column(tree_->n_taxa(), 0);
  // States per node along the walk; root state from the stationary law.
  std::vector<std::size_t> state(tree_->n_nodes(), 0);

  const auto& pi = model_->pi();
  const double u = rng.uniform();
  std::size_t s = 3;
  double acc = 0.0;
  for (std::size_t j = 0; j + 1 < 4; ++j) {
    acc += pi[j];
    if (u < acc) {
      s = j;
      break;
    }
  }
  const int root = tree_->root();
  state[static_cast<std::size_t>(root)] = s;

  // Iterative preorder from the root; the outgroup leaf hangs off the root.
  std::vector<int> stack;
  auto descend = [&](int child, int parent) {
    state[static_cast<std::size_t>(child)] = sample_state(
        branch_tm_[static_cast<std::size_t>(child)][k],
        state[static_cast<std::size_t>(parent)], rng);
    stack.push_back(child);
  };
  descend(tree_->outgroup(), root);
  stack.pop_back();  // leaf, nothing below
  column[static_cast<std::size_t>(tree_->node(tree_->outgroup()).taxon)] =
      phylo::state_to_mask(state[static_cast<std::size_t>(tree_->outgroup())]);

  stack.push_back(root);
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const phylo::TreeNode& n = tree_->node(id);
    if (n.is_leaf()) {
      column[static_cast<std::size_t>(n.taxon)] =
          phylo::state_to_mask(state[static_cast<std::size_t>(id)]);
      continue;
    }
    descend(n.left, id);
    descend(n.right, id);
  }
  return column;
}

phylo::Alignment SequenceEvolver::evolve(std::size_t n_columns, Rng& rng) const {
  PLF_CHECK(n_columns > 0, "evolve: need at least one column");
  std::vector<std::string> seqs(tree_->n_taxa(), std::string(n_columns, '?'));
  for (std::size_t c = 0; c < n_columns; ++c) {
    const auto column = evolve_column(rng);
    for (std::size_t t = 0; t < tree_->n_taxa(); ++t) {
      seqs[t][c] = phylo::mask_to_char(column[t]);
    }
  }
  return phylo::Alignment(tree_->taxon_names(), std::move(seqs));
}

}  // namespace plf::seqgen
