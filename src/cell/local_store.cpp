#include "cell/local_store.hpp"

namespace plf::cell {

LsRegion LocalStore::alloc(std::size_t bytes, std::size_t align) {
  PLF_CHECK(align > 0 && (align & (align - 1)) == 0,
            "LS alignment must be a power of two");
  const std::size_t offset = round_up(top_, align);
  if (offset + bytes > capacity_) {
    throw HardwareViolation(
        "local store exhausted: request of " + std::to_string(bytes) +
        " bytes at offset " + std::to_string(offset) + " exceeds " +
        std::to_string(capacity_) + " bytes");
  }
  top_ = offset + bytes;
  return LsRegion{offset, bytes};
}

}  // namespace plf::cell
