#include "cell/local_store.hpp"

#include "util/contracts.hpp"

namespace plf::cell {

LsRegion LocalStore::alloc(std::size_t bytes, std::size_t align) {
  PLF_CHECK(align > 0 && (align & (align - 1)) == 0,
            "LS alignment must be a power of two");
  const std::size_t offset = round_up(top_, align);
  // Overflow-safe form of `offset + bytes > capacity_` (round_up itself can
  // wrap when top_ is within `align` of SIZE_MAX, which only a hostile caller
  // can provoke — but the simulator must fail loudly, not corrupt top_).
  if (offset < top_ || offset > capacity_ || bytes > capacity_ - offset) {
    throw HardwareViolation(
        "local store exhausted: request of " + std::to_string(bytes) +
        " bytes at offset " + std::to_string(offset) + " exceeds " +
        std::to_string(capacity_) + " bytes");
  }
  top_ = offset + bytes;
  return LsRegion{offset, bytes};
}

}  // namespace plf::cell
