// Simulated Cell/BE DMA engine (the Memory Flow Controller view of the EIB).
//
// "The Cell/BE supports DMA transfers of aligned data for a maximum size of
// 16KB per transfer" (§3.3). Transfers between main memory and a local store
// are modeled functionally (bytes really move) and temporally (a cost model
// charges latency + size/bandwidth per hardware transfer; requests larger
// than 16 KB are split into a DMA list, exactly as spu_mfcdma64 users do).
//
// The timing model follows the published EIB/MFC characteristics: ~25.6 GB/s
// peak per SPE to main memory and sub-microsecond small-transfer latency.
// The constants live in `DmaTimings` so the architecture model can calibrate
// them per system (PS3 vs QS20).
#pragma once

#include <cstddef>
#include <cstdint>

#include "cell/local_store.hpp"
#include "util/clock.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::cell {

inline constexpr std::size_t kMaxDmaBytes = 16 * 1024;
/// DMA source/destination addresses and sizes must be 16-byte aligned for
/// full-speed transfers; the paper aligns the likelihood arrays to 128 bytes.
inline constexpr std::size_t kDmaElementAlign = 16;

struct DmaTimings {
  double latency_s = 0.25e-6;        ///< per hardware transfer setup
  double bandwidth_bps = 25.6e9;     ///< sustained LS<->main-memory bandwidth
};

/// Cumulative DMA statistics for one SPE's MFC.
struct DmaStats {
  std::uint64_t transfers = 0;   ///< hardware transfers (after 16 KB split)
  std::uint64_t requests = 0;    ///< logical get/put calls
  std::uint64_t bytes = 0;
  double busy_s = 0.0;           ///< total time the MFC spent moving data
};

/// One SPE's DMA engine. Owns a timeline: transfers complete at
/// `completion_time`, and the owning SPU "waits" by advancing its clock.
///
/// Thread confinement: one DmaEngine belongs to one simulated SPE, driven by
/// a single simulation thread; `checker_` turns that rule into a TSA
/// capability (see util/sync.hpp) with a checked-build runtime tripwire.
class DmaEngine {
 public:
  explicit DmaEngine(const DmaTimings& t = DmaTimings{}) : timings_(t) {}

  /// main memory -> local store ("get"). Returns the simulated completion
  /// time given the transfer was issued at `issue_time`.
  ///
  /// `bytes` must honor the 16-byte size rule, so callers moving byte-granular
  /// data (tip masks) round the size up — which means `src` must point into an
  /// allocation with at least `round_up(bytes, 16)` readable bytes. Buffers
  /// from util/aligned.hpp satisfy this (the allocator pads every allocation
  /// to 128 bytes); plain std::vector storage does not.
  double get(LocalStore& ls, const LsRegion& dst, const void* src,
             std::size_t bytes, double issue_time);

  /// local store -> main memory ("put").
  double put(const LocalStore& ls, const LsRegion& src, void* dst,
             std::size_t bytes, double issue_time);

  const DmaStats& stats() const {
    checker_.check();
    return stats_;
  }
  void reset_stats() {
    checker_.check();
    stats_ = DmaStats{};
  }
  const DmaTimings& timings() const { return timings_; }

 private:
  /// Validate alignment/size rules and charge the cost model.
  double account(std::size_t bytes, std::size_t ls_offset, const void* ea,
                 double issue_time) PLF_REQUIRES(checker_);

  DmaTimings timings_;
  util::ThreadChecker checker_;
  DmaStats stats_ PLF_GUARDED_BY(checker_);
  /// MFC queue: transfers serialize per SPE.
  double engine_free_at_ PLF_GUARDED_BY(checker_) = 0.0;
};

}  // namespace plf::cell
