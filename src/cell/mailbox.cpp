#include "cell/mailbox.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace plf::cell {

double Mailbox::write(std::uint32_t value, double time) {
  checker_.check();
  PLF_CHECK_HW(fifo_.size() < depth_,
               "mailbox overflow: writer would stall (depth " +
                   std::to_string(depth_) + ")");
  const double done = time + timings_.write_latency_s;
  fifo_.push_back(Entry{value, done});
  ++messages_;
  return done;
}

Mailbox::ReadResult Mailbox::read(double reader_time) {
  checker_.check();
  PLF_CHECK(!fifo_.empty(), "mailbox read with no pending message");
  const Entry e = fifo_.front();
  fifo_.pop_front();
  const double t = std::max(reader_time, e.available_at) + timings_.read_latency_s;
  return ReadResult{e.value, t};
}

}  // namespace plf::cell
