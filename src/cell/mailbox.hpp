// PPE<->SPE synchronization primitives.
//
// The paper (§3.3) uses "direct problem state accesses ... similar to
// mailboxes" for PPE->SPE messages and DMA-based notifications with PPE busy
// wait for SPE->PPE, because those are the lowest-overhead mechanisms for
// frequent fine-grain synchronization. We model both as bounded FIFOs with a
// per-message latency charge; the SPU-side FSM consumes messages from its
// inbound mailbox.
#pragma once

#include <cstdint>
#include <deque>

#include "util/error.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::cell {

/// Message types the PPE sends to the SPU FSM (paper §3.3: trigger a PLF
/// function, recalculate chunk sizes, finalize).
enum class SpuCommand : std::uint32_t {
  kNop = 0,
  kConfigure,      ///< (re)calculate chunk sizes for a new data layout
  kCondLikeDown,   ///< run the CondLikeDown PLF over this SPE's block
  kCondLikeRoot,   ///< run CondLikeRoot
  kCondLikeScaler, ///< run CondLikeScaler
  kRootReduce,     ///< partial root-likelihood reduction
  kTerminate,      ///< shut the FSM down
};

struct MailboxTimings {
  double write_latency_s = 0.1e-6;  ///< problem-state store from the PPE
  double read_latency_s = 0.05e-6;  ///< SPU-side channel read
};

/// The SPU inbound mailbox has 4 hardware entries; writing to a full mailbox
/// stalls the writer on real hardware — we surface it as a violation since
/// our protocol never legitimately fills it.
inline constexpr std::size_t kInboundMailboxDepth = 4;

/// Thread confinement: the whole Cell simulator — mailboxes, local stores,
/// the SPU FSM — is single-threaded event-driven simulation; nothing here is
/// safe to share across threads. `checker_` makes that rule a TSA capability
/// (state is GUARDED_BY it, every entry point asserts it) plus a checked-build
/// runtime tripwire, instead of an unstated assumption.
class Mailbox {
 public:
  explicit Mailbox(std::size_t depth = kInboundMailboxDepth,
                   const MailboxTimings& t = MailboxTimings{})
      : depth_(depth), timings_(t) {}

  /// Write from the producer at `time`; returns when the write retires.
  double write(std::uint32_t value, double time);

  bool has_message() const {
    checker_.check();
    return !fifo_.empty();
  }
  std::size_t size() const {
    checker_.check();
    return fifo_.size();
  }

  /// Blocking read by the consumer: returns {value, time-of-availability}.
  struct ReadResult {
    std::uint32_t value;
    double time;
  };
  ReadResult read(double reader_time);

  std::uint64_t messages() const {
    checker_.check();
    return messages_;
  }

 private:
  std::size_t depth_;
  MailboxTimings timings_;
  struct Entry {
    std::uint32_t value;
    double available_at;
  };
  util::ThreadChecker checker_;
  std::deque<Entry> fifo_ PLF_GUARDED_BY(checker_);
  std::uint64_t messages_ PLF_GUARDED_BY(checker_) = 0;
};

}  // namespace plf::cell
