#include "cell/machine.hpp"

#include <algorithm>

#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"

namespace plf::cell {

namespace {
/// First-level partition boundaries are multiples of 16 patterns so every
/// SPE block start satisfies the DMA alignment rules (the paper's "dummy
/// elements" trick).
constexpr std::size_t kBlockQuantum = 16;

/// Mirror the cumulative run stats into the global metrics registry. The
/// simulated seconds are virtual-clock values, so they become gauges rather
/// than timers (they must never mix into wall-clock sections); the DMA wait
/// doubles as the backend's Fig. 12 "transfer" column.
void publish_cell_metrics([[maybe_unused]] const CellRunStats& s) {
  PLF_PROF_GAUGE(obs::kGaugeCellSimPlfSeconds, s.simulated_plf_s);
  PLF_PROF_GAUGE(obs::kGaugeCellSpuDmaWaitSeconds, s.spu_dma_wait_s);
  PLF_PROF_GAUGE(obs::kGaugeCellDmaBytes, static_cast<double>(s.dma_bytes));
  PLF_PROF_GAUGE(obs::kGaugeTransferSimSeconds, s.spu_dma_wait_s);
}
}  // namespace

CellMachine::CellMachine(const CellConfig& config) : config_(config) {
  PLF_CHECK(config_.n_spes >= 1, "CellMachine needs at least one SPE");
  for (std::size_t i = 0; i < config_.n_spes; ++i) {
    spes_.push_back(std::make_unique<Spu>(static_cast<int>(i), config_.simd,
                                          config_.spu, config_.dma));
  }
}

std::string CellMachine::name() const {
  return config_.name + "(" + std::to_string(config_.n_spes) + " SPE, " +
         (config_.simd == SpuSimd::kColumnWise ? "col" : "row") + "-SIMD)";
}

double CellMachine::offload(SpuCommand cmd, const SpuJob& proto, std::size_t m,
                            std::size_t n_spes, double* reduce_out) {
  PLF_CHECK(n_spes >= 1 && n_spes <= spes_.size(),
            "offload: SPE count out of range");

  const double start = clock_.now();  // global simulated timeline
  double ppe_t = start;

  // First-level partition: contiguous blocks, quantized to 16 patterns.
  const std::size_t quanta = (m + kBlockQuantum - 1) / kBlockQuantum;
  const std::size_t q_per_spe = quanta / n_spes;
  const std::size_t q_extra = quanta % n_spes;

  double finish = ppe_t;
  double reduce_sum = 0.0;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < n_spes; ++s) {
    const std::size_t my_quanta = q_per_spe + (s < q_extra ? 1 : 0);
    const std::size_t begin = cursor * kBlockQuantum;
    cursor += my_quanta;
    const std::size_t end = std::min(m, cursor * kBlockQuantum);
    if (begin >= end) continue;

    SpuJob job = proto;
    job.cmd = cmd;
    job.begin = begin;
    job.end = end;

    // PPE sends the trigger through the SPE's inbound mailbox (problem-state
    // store); sends are serialized on the PPE.
    Spu& spu = *spes_[s];
    ppe_t = spu.inbound().write(static_cast<std::uint32_t>(cmd), ppe_t);
    ++stats_.mailbox_messages;
    PLF_PROF_COUNT(obs::kCounterCellMailboxMessages, 1);

    const SpuRunResult r = spu.service(job, ppe_t);
    finish = std::max(finish, r.finish_time);
    stats_.spu_compute_s += r.compute_s;
    stats_.spu_dma_wait_s += r.dma_wait_s;
    reduce_sum += r.reduce_partial;
  }

  // The PPE busy-waits on the SPE notifications (DMA-based flags): it
  // observes completion at the first poll boundary after the last SPE done.
  double done = std::max(finish, ppe_t);
  done += config_.ppe_poll_s;

  if (reduce_out != nullptr) *reduce_out = reduce_sum;

  const double duration = done - start;
  clock_.advance_to(done);
  stats_.simulated_plf_s += duration;
  ++stats_.plf_invocations;
  PLF_PROF_COUNT(obs::kCounterCellPlfInvocations, 1);
  publish_cell_metrics(stats());
  return duration;
}

void CellMachine::run_down(const core::KernelSet& /*ks*/,
                           const core::DownArgs& a, std::size_t m) {
  // The SPU program is compiled with the machine's SIMD layout; the caller's
  // kernel variant is not used on the Cell (as on real hardware, where the
  // SPE binary is fixed).
  PLF_CHECK(a.site_index == nullptr,
            "CellMachine is a dense-only backend: the SPU LS chunking streams "
            "contiguous pattern blocks and cannot honor site_index");
  SpuJob proto;
  proto.K = a.K;
  proto.down = a;
  offload(SpuCommand::kCondLikeDown, proto, m, spes_.size());
}

void CellMachine::run_root(const core::KernelSet& /*ks*/,
                           const core::RootArgs& a, std::size_t m) {
  PLF_CHECK(a.down.site_index == nullptr,
            "CellMachine is a dense-only backend (see run_down)");
  SpuJob proto;
  proto.K = a.down.K;
  proto.down = a.down;
  proto.out_mask = a.out_mask;
  proto.out_tp = a.out_tp;
  offload(SpuCommand::kCondLikeRoot, proto, m, spes_.size());
}

void CellMachine::run_scale(const core::KernelSet& /*ks*/,
                            const core::ScaleArgs& a, std::size_t m) {
  PLF_CHECK(a.site_index == nullptr,
            "CellMachine is a dense-only backend (see run_down)");
  SpuJob proto;
  proto.K = a.K;
  proto.scale = a;
  offload(SpuCommand::kCondLikeScaler, proto, m, spes_.size());
}

double CellMachine::run_root_reduce(const core::KernelSet& /*ks*/,
                                    const core::RootReduceArgs& a,
                                    std::size_t m) {
  SpuJob proto;
  proto.K = a.K;
  proto.reduce = a;
  double out = 0.0;
  offload(SpuCommand::kRootReduce, proto, m, spes_.size(), &out);
  return out;
}

CellRunStats CellMachine::stats() const {
  CellRunStats out = stats_;
  for (const auto& s : spes_) {
    out.dma_transfers += s->dma_stats().transfers;
    out.dma_bytes += s->dma_stats().bytes;
  }
  return out;
}

void CellMachine::reset_stats() {
  stats_ = CellRunStats{};
  for (auto& s : spes_) s->reset_dma_stats();
}

}  // namespace plf::cell
