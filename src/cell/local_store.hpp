// Simulated SPE Local Store.
//
// "Each SPE includes a small private unified memory, the Local Store (LS),
// with 256KB" (§2.2). The LS is the only memory an SPU can touch; all traffic
// with main memory goes through explicit DMA. We model it as a flat byte
// array with a bump allocator (SPE programs lay out their buffers statically,
// as the paper's two-level partitioning does) and enforce the capacity and
// alignment rules as hard errors, so a kernel that would not fit on real
// hardware fails loudly in the simulator too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"
#include "util/error.hpp"

namespace plf::cell {

inline constexpr std::size_t kLocalStoreBytes = 256 * 1024;
/// DMA transfers of the likelihood arrays are 128-byte aligned (§3.3).
inline constexpr std::size_t kLsAlign = 128;

/// A region of the local store, in bytes.
struct LsRegion {
  std::size_t offset = 0;
  std::size_t bytes = 0;
};

class LocalStore {
 public:
  explicit LocalStore(std::size_t capacity = kLocalStoreBytes)
      : capacity_(capacity), mem_(capacity, 0) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t allocated() const { return top_; }
  std::size_t free_bytes() const { return capacity_ - top_; }

  /// Reserve `bytes` (rounded up to `align`). Throws HardwareViolation when
  /// the LS is exhausted — the condition the two-level partitioning exists
  /// to avoid.
  LsRegion alloc(std::size_t bytes, std::size_t align = kLsAlign);

  /// Release everything allocated after `mark` (stack discipline).
  void release_to(std::size_t mark) {
    PLF_CHECK(mark <= top_, "local store release point invalid");
    top_ = mark;
  }
  std::size_t mark() const { return top_; }

  /// Raw access for the (simulated) SPU, which may touch any LS byte.
  std::uint8_t* data() { return mem_.data(); }
  const std::uint8_t* data() const { return mem_.data(); }

  float* as_floats(const LsRegion& r) {
    check_region(r);
    return reinterpret_cast<float*>(mem_.data() + r.offset);
  }
  const float* as_floats(const LsRegion& r) const {
    check_region(r);
    return reinterpret_cast<const float*>(mem_.data() + r.offset);
  }
  std::uint8_t* at(const LsRegion& r) {
    check_region(r);
    return mem_.data() + r.offset;
  }

 private:
  void check_region(const LsRegion& r) const {
    PLF_CHECK(r.offset <= capacity_ && r.bytes <= capacity_ - r.offset,
              "local store region out of bounds");
  }

  std::size_t capacity_;
  std::size_t top_ = 0;
  aligned_vector<std::uint8_t> mem_;
};

}  // namespace plf::cell
