// Simulated Synergistic Processing Unit running the PLF offload program.
//
// Mirrors the paper's SPE-side design (§3.3):
//  * a local Finite State Machine driven by PPE messages (trigger a PLF
//    function, recalculate chunk sizes, terminate);
//  * two-level partitioning: the PPE assigns this SPU a block of likelihood
//    vector elements; the SPU cuts the block into chunks that fit the LS;
//  * double buffering: chunk i+1's operands stream in while chunk i
//    computes; results stream back overlapped as well (Fig. 7);
//  * SPU SIMD with either the row-wise (approach i) or the column-wise /
//    transposed (approach ii) reduction layout.
//
// Execution is functional (results are bit-identical to running the same
// kernel variant on the host) and temporal (a cost model yields the SPU's
// finish time on its simulated clock).
#pragma once

#include <cstdint>

#include "cell/dma.hpp"
#include "cell/local_store.hpp"
#include "cell/mailbox.hpp"
#include "core/kernels.hpp"

namespace plf::cell {

/// The PLF code occupies 90 KB of the 256 KB LS (§3.3); the remainder is
/// available for data buffers.
inline constexpr std::size_t kPlfCodeBytes = 90 * 1024;

/// SPU compute-cost model. A "unit" is one (pattern, rate-category) cell:
/// two 4x4 matrix-vector products plus the elementwise multiply. Approach
/// (ii) avoids the per-inner-product horizontal reductions and is ~2x faster
/// at the PLF level (measured in the paper).
struct SpuTimings {
  double clock_hz = 3.2e9;
  double cycles_per_unit_row = 96.0;   ///< approach (i): shuffles + 8 hsums
  double cycles_per_unit_col = 48.0;   ///< approach (ii): straight-line FMA
  /// The scaler/reduction kernels are reductions too, so the SIMD layout
  /// affects them the same way (§3.1: CondLikeScaler "is also a reduction").
  double cycles_per_unit_scale_row = 20.0;
  double cycles_per_unit_scale_col = 10.0;
  double cycles_per_unit_reduce_row = 16.0;
  double cycles_per_unit_reduce_col = 8.0;
  double chunk_loop_overhead_cycles = 200.0;  ///< per-chunk FSM + branch cost
  /// When false, each chunk's operand DMA is issued only after the previous
  /// chunk finished computing (no compute/transfer overlap) — the ablation
  /// baseline for the paper's double-buffering scheme (Fig. 7).
  bool double_buffering = true;
};

/// Which SPU SIMD layout the offload program was compiled with.
enum class SpuSimd { kRowWise, kColumnWise };

/// A PLF job for one SPE: kernel arguments with MAIN-MEMORY pointers plus
/// this SPE's block [begin, end) of the pattern range (first-level
/// partition). Conveyed via direct problem-state access in the real code.
struct SpuJob {
  SpuCommand cmd = SpuCommand::kNop;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t K = 4;
  core::DownArgs down;            ///< kCondLikeDown / kCondLikeRoot
  const core::StateMask* out_mask = nullptr;  ///< kCondLikeRoot
  const float* out_tp = nullptr;              ///< kCondLikeRoot
  core::ScaleArgs scale;          ///< kCondLikeScaler
  core::RootReduceArgs reduce;    ///< kRootReduce
};

/// Result of servicing one job.
struct SpuRunResult {
  double finish_time = 0.0;   ///< simulated time the SPE's notification lands
  double compute_s = 0.0;     ///< time the SPU pipeline was busy
  double dma_wait_s = 0.0;    ///< time the SPU stalled waiting on DMA
  std::size_t chunks = 0;
  double reduce_partial = 0.0;///< kRootReduce only
};

class Spu {
 public:
  Spu(int id, SpuSimd simd, const SpuTimings& timings = SpuTimings{},
      const DmaTimings& dma = DmaTimings{});

  int id() const { return id_; }
  SpuSimd simd() const { return simd_; }
  Mailbox& inbound() { return inbound_; }
  const DmaStats& dma_stats() const { return dma_.stats(); }
  void reset_dma_stats() { dma_.reset_stats(); }
  LocalStore& local_store() { return ls_; }

  /// FSM service loop: consume the next command from the inbound mailbox
  /// (the job payload is read from problem state, i.e. `job`), execute, and
  /// return the completion record. `time` is the SPU's current clock.
  SpuRunResult service(const SpuJob& job, double time);

  /// Chunk size (in patterns) the two-level partitioning uses for a job
  /// with the given per-pattern LS footprint. Multiple of 16 so tip-mask
  /// DMA stays 16-byte aligned; throws if even one 16-pattern chunk cannot
  /// fit (the LS capacity rule).
  std::size_t chunk_patterns(std::size_t bytes_per_pattern,
                             std::size_t static_bytes) const;

 private:
  SpuRunResult run_down_like(const SpuJob& job, double time, bool is_root);
  SpuRunResult run_scale(const SpuJob& job, double time);
  SpuRunResult run_reduce(const SpuJob& job, double time);

  double unit_cost(double cycles_per_unit) const {
    return cycles_per_unit / timings_.clock_hz;
  }

  int id_;
  SpuSimd simd_;
  SpuTimings timings_;
  LocalStore ls_;
  DmaEngine dma_;
  Mailbox inbound_;
};

}  // namespace plf::cell
