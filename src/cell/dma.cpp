#include "cell/dma.hpp"

#include <algorithm>
#include <cstring>

#include "util/contracts.hpp"

namespace plf::cell {

double DmaEngine::account(std::size_t bytes, std::size_t ls_offset,
                          const void* ea, double issue_time) {
  if (bytes == 0) return issue_time;
  PLF_CHECK_HW(ls_offset % kDmaElementAlign == 0,
               "DMA local-store address not 16-byte aligned");
  PLF_CHECK_ALIGNED(ea, kDmaElementAlign);
  PLF_CHECK_HW(bytes % kDmaElementAlign == 0,
               "DMA size must be a multiple of 16 bytes (got " +
                   std::to_string(bytes) + ")");

  // Split into <=16 KB hardware transfers (a DMA list on real hardware).
  double t = std::max(issue_time, engine_free_at_);
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, kMaxDmaBytes);
    t += timings_.latency_s + static_cast<double>(chunk) / timings_.bandwidth_bps;
    stats_.busy_s +=
        timings_.latency_s + static_cast<double>(chunk) / timings_.bandwidth_bps;
    ++stats_.transfers;
    remaining -= chunk;
  }
  ++stats_.requests;
  stats_.bytes += bytes;
  engine_free_at_ = t;
  return t;
}

double DmaEngine::get(LocalStore& ls, const LsRegion& dst, const void* src,
                      std::size_t bytes, double issue_time) {
  checker_.check();
  PLF_CHECK_HW(bytes <= dst.bytes, "DMA get overflows the LS region");
  const double done = account(bytes, dst.offset, src, issue_time);
  std::memcpy(ls.at(LsRegion{dst.offset, bytes}), src, bytes);
  return done;
}

double DmaEngine::put(const LocalStore& ls, const LsRegion& src, void* dst,
                      std::size_t bytes, double issue_time) {
  checker_.check();
  PLF_CHECK_HW(bytes <= src.bytes, "DMA put overruns the LS region");
  const double done = account(bytes, src.offset, dst, issue_time);
  std::memcpy(dst,
              const_cast<LocalStore&>(ls).at(LsRegion{src.offset, bytes}),
              bytes);
  return done;
}

}  // namespace plf::cell
