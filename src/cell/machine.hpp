// The full Cell/BE system simulator: one PPE coordinating N SPEs.
//
// Implements core::ExecutionBackend, so a PlfEngine can run MrBayes-style
// likelihood evaluations "on the Cell": every PLF invocation is partitioned
// evenly across the SPEs (first-level partitioning, §3.3), triggered through
// the mailboxes, executed by the SPU FSMs with LS chunking + double
// buffering, and completed when the PPE observes every SPE's DMA
// notification (busy-wait, as the paper does).
//
// Results are bit-identical to running the same kernel variant on the host;
// simulated time accumulates on a virtual clock and is reported through
// `simulated_seconds()` / `stats()` for the scalability and breakdown
// benches (Figs. 10 and 12).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cell/spu.hpp"
#include "core/backend.hpp"
#include "util/clock.hpp"

namespace plf::cell {

/// System-level parameters (PS3 vs QS20 differ in SPE count; the PPE slowdown
/// models the in-order PPE's weak scalar performance for Fig. 12).
struct CellConfig {
  std::string name = "CellBE";
  std::size_t n_spes = 6;            ///< PS3 exposes 6; the QS20 blade 16
  SpuSimd simd = SpuSimd::kColumnWise;
  SpuTimings spu;
  DmaTimings dma;
  MailboxTimings mailbox;
  /// PPE busy-wait poll granularity for SPE completion notifications.
  double ppe_poll_s = 0.2e-6;
};

struct CellRunStats {
  std::uint64_t plf_invocations = 0;
  double simulated_plf_s = 0.0;   ///< virtual seconds inside PLF offloads
  double spu_compute_s = 0.0;     ///< summed SPU busy time
  double spu_dma_wait_s = 0.0;    ///< summed SPU stall time
  std::uint64_t mailbox_messages = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
};

class CellMachine final : public core::ExecutionBackend {
 public:
  explicit CellMachine(const CellConfig& config);

  std::string name() const override;

  /// Dense per-call offloads only: the SPE double-buffered DMA pipeline
  /// chunks contiguous pattern blocks (no site-index indirection), and each
  /// offload is one mailbox round trip — batching a plan would need a new
  /// SPU command protocol, so this backend runs plans through the default
  /// per-op loop.
  core::Capabilities capabilities() const override {
    return core::Capabilities::kNone;
  }

  void run_down(const core::KernelSet& ks, const core::DownArgs& a,
                std::size_t m) override;
  void run_root(const core::KernelSet& ks, const core::RootArgs& a,
                std::size_t m) override;
  void run_scale(const core::KernelSet& ks, const core::ScaleArgs& a,
                 std::size_t m) override;
  double run_root_reduce(const core::KernelSet& ks,
                         const core::RootReduceArgs& a, std::size_t m) override;

  const CellConfig& config() const { return config_; }
  /// Aggregate statistics (includes per-SPE DMA counters).
  CellRunStats stats() const;
  void reset_stats();

  /// Simulated seconds spent in offloaded PLF work so far.
  double simulated_seconds() const { return clock_.now(); }

  /// Run one offload with an explicit SPE count (scalability studies use
  /// n = 1..16 on the same machine). Returns the simulated duration.
  double offload(SpuCommand cmd, const SpuJob& proto, std::size_t m,
                 std::size_t n_spes, double* reduce_out = nullptr);

 private:
  CellConfig config_;
  std::vector<std::unique_ptr<Spu>> spes_;
  VirtualClock clock_;
  CellRunStats stats_;
};

}  // namespace plf::cell
