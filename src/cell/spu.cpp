#include "cell/spu.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace plf::cell {

namespace {

/// Patterns per chunk are kept multiples of 16 so the 1-byte tip-mask
/// streams stay 16-byte aligned in both main memory and the LS.
constexpr std::size_t kChunkQuantum = 16;

std::size_t child_pattern_bytes(const core::ChildArgs& ch, std::size_t K) {
  // Internal child: K rate arrays of 4 floats; tip child: one mask byte.
  return ch.is_tip() ? 1 : K * 4 * sizeof(float);
}

std::size_t child_static_bytes(const core::ChildArgs& ch, std::size_t K) {
  // Internal child: both transition-matrix layouts; tip child: the
  // 16-mask partial table.
  return ch.is_tip() ? phylo::kNumMasks * K * 4 * sizeof(float)
                     : 2 * K * 16 * sizeof(float);
}

}  // namespace

Spu::Spu(int id, SpuSimd simd, const SpuTimings& timings, const DmaTimings& dma)
    : id_(id), simd_(simd), timings_(timings), ls_(), dma_(dma), inbound_() {
  // The PLF program image occupies a fixed prefix of the LS (§3.3: 90 KB).
  ls_.alloc(kPlfCodeBytes, 16);
}

std::size_t Spu::chunk_patterns(std::size_t bytes_per_pattern,
                                std::size_t static_bytes) const {
  // Fixed slack for the 128-byte alignment of each LS region (at most ~10
  // regions per job; 16 is generous).
  const std::size_t slack = 16 * kLsAlign;
  const std::size_t reserved = static_bytes + slack;
  const std::size_t avail =
      ls_.free_bytes() > reserved ? ls_.free_bytes() - reserved : 0;
  // Double buffering doubles every per-pattern buffer.
  const std::size_t per16 = 2 * bytes_per_pattern * kChunkQuantum;
  if (per16 == 0 || avail < per16) {
    throw HardwareViolation(
        "local store cannot hold even one 16-pattern double-buffered chunk");
  }
  const std::size_t quanta = avail / per16;
  return quanta * kChunkQuantum;
}

SpuRunResult Spu::service(const SpuJob& job, double time) {
  // FSM: read the command from the inbound mailbox (charges read latency),
  // then dispatch. The job payload arrives via problem-state access.
  const auto msg = inbound_.read(time);
  PLF_CHECK(msg.value == static_cast<std::uint32_t>(job.cmd),
            "SPU FSM: mailbox command does not match problem-state job");
  const double t = msg.time;

  switch (job.cmd) {
    case SpuCommand::kCondLikeDown:
      return run_down_like(job, t, /*is_root=*/false);
    case SpuCommand::kCondLikeRoot:
      return run_down_like(job, t, /*is_root=*/true);
    case SpuCommand::kCondLikeScaler:
      return run_scale(job, t);
    case SpuCommand::kRootReduce:
      return run_reduce(job, t);
    case SpuCommand::kConfigure:
    case SpuCommand::kNop:
    case SpuCommand::kTerminate: {
      SpuRunResult r;
      r.finish_time = t;
      return r;
    }
  }
  throw Error("SPU FSM: unknown command");
}

SpuRunResult Spu::run_down_like(const SpuJob& job, double time, bool is_root) {
  const std::size_t K = job.K;
  const std::size_t n = job.end - job.begin;
  SpuRunResult result;
  if (n == 0) {
    result.finish_time = time;
    return result;
  }

  const core::KernelSet& ks = core::kernels(
      simd_ == SpuSimd::kColumnWise ? core::KernelVariant::kSimdCol
                                    : core::KernelVariant::kSimdRow);

  const std::size_t ls_mark = ls_.mark();

  // ---- Static data: transition matrices / tip tables (one DMA each). ----
  double t = time;
  struct ChildLs {
    LsRegion cl_or_mask[2];  // double-buffered per-chunk stream
    LsRegion matrices;       // rm+cm back to back (internal child)
    LsRegion tip_table;      // tip child
  };
  ChildLs ls_child[2];
  const core::ChildArgs* children[2] = {&job.down.left, &job.down.right};

  std::size_t static_bytes = child_static_bytes(*children[0], K) +
                             child_static_bytes(*children[1], K);
  LsRegion out_tp_region{};
  if (is_root) static_bytes += phylo::kNumMasks * K * 4 * sizeof(float);

  const std::size_t bytes_per_pattern = child_pattern_bytes(*children[0], K) +
                                        child_pattern_bytes(*children[1], K) +
                                        K * 4 * sizeof(float) /* out */ +
                                        (is_root ? 1 : 0) /* outgroup mask */;
  const std::size_t chunk = chunk_patterns(bytes_per_pattern, static_bytes);
  const std::size_t chunk_cl_bytes = chunk * K * 4 * sizeof(float);

  for (int s = 0; s < 2; ++s) {
    const core::ChildArgs& ch = *children[s];
    if (ch.is_tip()) {
      ls_child[s].tip_table =
          ls_.alloc(phylo::kNumMasks * K * 4 * sizeof(float));
      t = dma_.get(ls_, ls_child[s].tip_table, ch.tp,
                   ls_child[s].tip_table.bytes, t);
      for (int b = 0; b < 2; ++b) ls_child[s].cl_or_mask[b] = ls_.alloc(chunk);
    } else {
      ls_child[s].matrices = ls_.alloc(2 * K * 16 * sizeof(float));
      t = dma_.get(ls_, LsRegion{ls_child[s].matrices.offset,
                                 K * 16 * sizeof(float)},
                   ch.p, K * 16 * sizeof(float), t);
      t = dma_.get(ls_,
                   LsRegion{ls_child[s].matrices.offset + K * 16 * sizeof(float),
                            K * 16 * sizeof(float)},
                   ch.pt, K * 16 * sizeof(float), t);
      for (int b = 0; b < 2; ++b) {
        ls_child[s].cl_or_mask[b] = ls_.alloc(chunk_cl_bytes);
      }
    }
  }
  LsRegion out_mask_region[2];
  if (is_root) {
    out_tp_region = ls_.alloc(phylo::kNumMasks * K * 4 * sizeof(float));
    t = dma_.get(ls_, out_tp_region, job.out_tp, out_tp_region.bytes, t);
    for (int b = 0; b < 2; ++b) out_mask_region[b] = ls_.alloc(chunk);
  }
  LsRegion out_region[2];
  for (int b = 0; b < 2; ++b) out_region[b] = ls_.alloc(chunk_cl_bytes);

  // ---- Chunk pipeline with double buffering (Fig. 7). ----
  const double unit =
      unit_cost(simd_ == SpuSimd::kColumnWise ? timings_.cycles_per_unit_col
                                              : timings_.cycles_per_unit_row);

  auto issue_gets = [&](std::size_t off, std::size_t cur, int buf,
                        double issue) {
    double done = issue;
    for (int s = 0; s < 2; ++s) {
      const core::ChildArgs& ch = *children[s];
      if (ch.is_tip()) {
        done = dma_.get(ls_, ls_child[s].cl_or_mask[buf],
                        ch.mask + job.begin + off, round_up(cur, 16), issue);
      } else {
        done = dma_.get(ls_, ls_child[s].cl_or_mask[buf],
                        ch.cl + (job.begin + off) * K * 4,
                        cur * K * 4 * sizeof(float), issue);
      }
    }
    if (is_root) {
      done = dma_.get(ls_, out_mask_region[buf], job.out_mask + job.begin + off,
                      round_up(cur, 16), issue);
    }
    return done;
  };

  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  double get_done = issue_gets(0, std::min(chunk, n), 0, t);
  double compute_done = t;
  double last_put_done = t;

  for (std::size_t i = 0; i < n_chunks; ++i) {
    const std::size_t off = i * chunk;
    const std::size_t cur = std::min(chunk, n - off);
    const int buf = static_cast<int>(i % 2);

    const double compute_start = std::max(get_done, compute_done);
    result.dma_wait_s += compute_start - compute_done;

    // ---- Functional execution on LS-resident buffers. ----
    core::DownArgs la;
    la.K = K;
    core::ChildArgs* outs[2] = {&la.left, &la.right};
    for (int s = 0; s < 2; ++s) {
      const core::ChildArgs& ch = *children[s];
      if (ch.is_tip()) {
        outs[s]->mask = ls_.at(ls_child[s].cl_or_mask[buf]);
        outs[s]->tp = ls_.as_floats(ls_child[s].tip_table);
      } else {
        outs[s]->cl = ls_.as_floats(ls_child[s].cl_or_mask[buf]);
        outs[s]->p = ls_.as_floats(
            LsRegion{ls_child[s].matrices.offset, K * 16 * sizeof(float)});
        outs[s]->pt = ls_.as_floats(
            LsRegion{ls_child[s].matrices.offset + K * 16 * sizeof(float),
                     K * 16 * sizeof(float)});
      }
    }
    la.out = ls_.as_floats(out_region[buf]);
    if (is_root) {
      core::RootArgs ra;
      ra.down = la;
      ra.out_mask = ls_.at(out_mask_region[buf]);
      ra.out_tp = ls_.as_floats(out_tp_region);
      ks.root(ra, 0, cur);
    } else {
      ks.down(la, 0, cur);
    }

    const double cost =
        static_cast<double>(cur) * static_cast<double>(K) * unit +
        timings_.chunk_loop_overhead_cycles / timings_.clock_hz;
    compute_done = compute_start + cost;
    result.compute_s += cost;
    ++result.chunks;

    // Next chunk's operands: with double buffering the DMA was issued when
    // this chunk's compute STARTED (overlap, Fig. 7); without it, only now.
    if (i + 1 < n_chunks) {
      const std::size_t next_off = (i + 1) * chunk;
      get_done = issue_gets(
          next_off, std::min(chunk, n - next_off),
          static_cast<int>((i + 1) % 2),
          timings_.double_buffering ? compute_start : compute_done);
    }

    // Stream the results back.
    last_put_done =
        dma_.put(ls_, out_region[buf], job.down.out + (job.begin + off) * K * 4,
                 cur * K * 4 * sizeof(float), compute_done);
  }

  ls_.release_to(ls_mark);
  result.finish_time = std::max(compute_done, last_put_done);
  return result;
}

SpuRunResult Spu::run_scale(const SpuJob& job, double time) {
  const std::size_t K = job.K;
  const std::size_t n = job.end - job.begin;
  SpuRunResult result;
  if (n == 0) {
    result.finish_time = time;
    return result;
  }
  const core::KernelSet& ks = core::kernels(
      simd_ == SpuSimd::kColumnWise ? core::KernelVariant::kSimdCol
                                    : core::KernelVariant::kSimdRow);

  const std::size_t ls_mark = ls_.mark();
  // Per pattern: cl (in+out, counted once for space) + scaler float.
  const std::size_t bytes_per_pattern = K * 4 * sizeof(float) + sizeof(float);
  const std::size_t chunk = chunk_patterns(bytes_per_pattern, 0);
  const std::size_t chunk_cl_bytes = chunk * K * 4 * sizeof(float);

  LsRegion cl_region[2] = {ls_.alloc(chunk_cl_bytes), ls_.alloc(chunk_cl_bytes)};
  LsRegion sc_region[2] = {ls_.alloc(chunk * sizeof(float)),
                           ls_.alloc(chunk * sizeof(float))};

  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  double get_done = dma_.get(ls_, cl_region[0], job.scale.cl + job.begin * K * 4,
                             std::min(chunk, n) * K * 4 * sizeof(float), time);
  double compute_done = time;
  double last_put_done = time;

  for (std::size_t i = 0; i < n_chunks; ++i) {
    const std::size_t off = i * chunk;
    const std::size_t cur = std::min(chunk, n - off);
    const int buf = static_cast<int>(i % 2);

    const double compute_start = std::max(get_done, compute_done);
    result.dma_wait_s += compute_start - compute_done;

    core::ScaleArgs sa;
    sa.cl = ls_.as_floats(cl_region[buf]);
    sa.ln_scaler = ls_.as_floats(sc_region[buf]);
    sa.K = K;
    ks.scale(sa, 0, cur);

    const double cost =
        static_cast<double>(cur) * static_cast<double>(K) *
            unit_cost(simd_ == SpuSimd::kColumnWise
                          ? timings_.cycles_per_unit_scale_col
                          : timings_.cycles_per_unit_scale_row) +
        timings_.chunk_loop_overhead_cycles / timings_.clock_hz;
    compute_done = compute_start + cost;
    result.compute_s += cost;
    ++result.chunks;

    if (i + 1 < n_chunks) {
      const std::size_t next_off = (i + 1) * chunk;
      get_done = dma_.get(ls_, cl_region[(i + 1) % 2],
                          job.scale.cl + (job.begin + next_off) * K * 4,
                          std::min(chunk, n - next_off) * K * 4 * sizeof(float),
                          timings_.double_buffering ? compute_start
                                                    : compute_done);
    }

    last_put_done = dma_.put(ls_, cl_region[buf],
                             job.scale.cl + (job.begin + off) * K * 4,
                             cur * K * 4 * sizeof(float), compute_done);
    last_put_done =
        dma_.put(ls_, sc_region[buf], job.scale.ln_scaler + job.begin + off,
                 round_up(cur * sizeof(float), 16), last_put_done);
  }

  ls_.release_to(ls_mark);
  result.finish_time = std::max(compute_done, last_put_done);
  return result;
}

SpuRunResult Spu::run_reduce(const SpuJob& job, double time) {
  const std::size_t K = job.K;
  const std::size_t n = job.end - job.begin;
  SpuRunResult result;
  if (n == 0) {
    result.finish_time = time;
    return result;
  }
  const core::KernelSet& ks = core::kernels(
      simd_ == SpuSimd::kColumnWise ? core::KernelVariant::kSimdCol
                                    : core::KernelVariant::kSimdRow);

  const bool has_pinv =
      job.reduce.const_lik != nullptr && job.reduce.p_invariant > 0.0f;
  const std::size_t ls_mark = ls_.mark();
  const std::size_t bytes_per_pattern =
      K * 4 * sizeof(float) + sizeof(double) + sizeof(std::uint32_t) +
      (has_pinv ? sizeof(float) : 0);
  const std::size_t chunk = chunk_patterns(bytes_per_pattern, 0);

  LsRegion cl_region[2], sc_region[2], w_region[2], const_region[2];
  for (int b = 0; b < 2; ++b) {
    cl_region[b] = ls_.alloc(chunk * K * 4 * sizeof(float));
    sc_region[b] = ls_.alloc(chunk * sizeof(double));
    w_region[b] = ls_.alloc(chunk * sizeof(std::uint32_t));
    if (has_pinv) const_region[b] = ls_.alloc(chunk * sizeof(float));
  }

  auto issue_gets = [&](std::size_t off, std::size_t cur, int buf,
                        double issue) {
    double done = dma_.get(ls_, cl_region[buf],
                           job.reduce.cl + (job.begin + off) * K * 4,
                           cur * K * 4 * sizeof(float), issue);
    done = dma_.get(ls_, sc_region[buf],
                    job.reduce.ln_scaler_total + job.begin + off,
                    round_up(cur * sizeof(double), 16), issue);
    done = dma_.get(ls_, w_region[buf], job.reduce.weights + job.begin + off,
                    round_up(cur * sizeof(std::uint32_t), 16), issue);
    if (has_pinv) {
      done = dma_.get(ls_, const_region[buf],
                      job.reduce.const_lik + job.begin + off,
                      round_up(cur * sizeof(float), 16), issue);
    }
    return done;
  };

  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  double get_done = issue_gets(0, std::min(chunk, n), 0, time);
  double compute_done = time;
  double partial = 0.0;

  for (std::size_t i = 0; i < n_chunks; ++i) {
    const std::size_t off = i * chunk;
    const std::size_t cur = std::min(chunk, n - off);
    const int buf = static_cast<int>(i % 2);

    const double compute_start = std::max(get_done, compute_done);
    result.dma_wait_s += compute_start - compute_done;

    core::RootReduceArgs ra = job.reduce;
    ra.cl = ls_.as_floats(cl_region[buf]);
    ra.ln_scaler_total =
        reinterpret_cast<const double*>(ls_.at(sc_region[buf]));
    ra.weights =
        reinterpret_cast<const std::uint32_t*>(ls_.at(w_region[buf]));
    if (has_pinv) ra.const_lik = ls_.as_floats(const_region[buf]);
    partial += ks.root_reduce(ra, 0, cur);

    const double cost =
        static_cast<double>(cur) * static_cast<double>(K) *
            unit_cost(simd_ == SpuSimd::kColumnWise
                          ? timings_.cycles_per_unit_reduce_col
                          : timings_.cycles_per_unit_reduce_row) +
        timings_.chunk_loop_overhead_cycles / timings_.clock_hz;
    compute_done = compute_start + cost;
    result.compute_s += cost;
    ++result.chunks;

    if (i + 1 < n_chunks) {
      const std::size_t next_off = (i + 1) * chunk;
      get_done = issue_gets(next_off, std::min(chunk, n - next_off),
                            static_cast<int>((i + 1) % 2),
                            timings_.double_buffering ? compute_start
                                                      : compute_done);
    }
  }

  ls_.release_to(ls_mark);
  result.finish_time = compute_done;
  result.reduce_partial = partial;
  return result;
}

}  // namespace plf::cell
