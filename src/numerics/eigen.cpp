#include "numerics/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace plf::num {

SymmetricEigen jacobi_eigen(const std::vector<double>& a_in, std::size_t n) {
  PLF_CHECK(a_in.size() == n * n, "jacobi_eigen: matrix size mismatch");
  PLF_CHECK(n > 0, "jacobi_eigen: empty matrix");

  // Symmetrize (tolerate tiny numerical asymmetry from upstream arithmetic).
  std::vector<double> a(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      a[r * n + c] = 0.5 * (a_in[r * n + c] + a_in[c * n + r]);

  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) s += a[r * n + c] * a[r * n + c];
    return std::sqrt(2.0 * s);
  };

  const double scale = std::inner_product(a.begin(), a.end(), a.begin(), 0.0);
  const double tol = 1e-14 * std::max(1.0, std::sqrt(scale));

  const int kMaxSweeps = 100;
  int sweep = 0;
  while (off_norm() > tol) {
    PLF_CHECK(++sweep <= kMaxSweeps, "jacobi_eigen: failed to converge");
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) <= tol / static_cast<double>(n * n)) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a[i * n + i] < a[j * n + j];
  });

  SymmetricEigen out;
  out.n = n;
  out.values.resize(n);
  out.vectors.resize(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a[order[j] * n + order[j]];
    for (std::size_t r = 0; r < n; ++r) out.vectors[r * n + j] = v[r * n + order[j]];
  }
  return out;
}

ReversibleSpectral::ReversibleSpectral(const Matrix4& q,
                                       const std::array<double, 4>& pi) {
  for (double p : pi) PLF_CHECK(p > 0.0, "stationary frequencies must be positive");

  std::array<double, 4> sqrt_pi{};
  for (std::size_t i = 0; i < 4; ++i) sqrt_pi[i] = std::sqrt(pi[i]);

  // B = D^{1/2} Q D^{-1/2}
  std::vector<double> b(16);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      b[r * 4 + c] = sqrt_pi[r] * q(r, c) / sqrt_pi[c];

  const SymmetricEigen eig = jacobi_eigen(b, 4);
  for (std::size_t i = 0; i < 4; ++i) lambda_[i] = eig.values[i];

  // left = D^{-1/2} U,  right = U^T D^{1/2}
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      left_(r, c) = eig.vec(r, c) / sqrt_pi[r];
      right_(r, c) = eig.vec(c, r) * sqrt_pi[c];
    }
}

Matrix4 ReversibleSpectral::transition_matrix(double t) const {
  PLF_CHECK(t >= 0.0, "branch length must be nonnegative");
  std::array<double, 4> e{};
  for (std::size_t i = 0; i < 4; ++i) e[i] = std::exp(lambda_[i] * t);

  Matrix4 p;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      double s = 0.0;
      for (std::size_t k = 0; k < 4; ++k) s += left_(r, k) * e[k] * right_(k, c);
      // Rounding can push an entry a hair below zero for tiny t; clamp so the
      // single-precision likelihood kernels never see a negative probability.
      p(r, c) = std::max(s, 0.0);
    }
  return p;
}

}  // namespace plf::num
