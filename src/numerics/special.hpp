// Special functions needed by the Γ-rates model (Yang 1994) and the MCMC
// priors: regularized incomplete gamma, and the chi-square / normal / gamma
// quantile functions (following the classic AS 91 / AS 241 algorithms, the
// same lineage used by PAML and MrBayes).
#pragma once

namespace plf::num {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// computed by series (x < a+1) or continued fraction (otherwise).
double incomplete_gamma_p(double a, double x);

/// Quantile of the standard normal distribution (AS 241, double precision).
double normal_quantile(double p);

/// Quantile of the chi-square distribution with `df` degrees of freedom
/// (AS 91 with Newton refinement on incomplete_gamma_p).
double chi_square_quantile(double p, double df);

/// Quantile of Gamma(shape, scale).
double gamma_quantile(double p, double shape, double scale);

}  // namespace plf::num
