// Discrete-Γ model of among-site rate variation (Yang, JME 1994).
//
// The continuous Gamma(alpha, 1/alpha) distribution over per-site rates
// (mean 1) is approximated by `k` equiprobable categories; the paper's PLF
// uses k = 4, making each conditional-likelihood element 4 rates x 4 states
// = 16 floats (Fig. 3).
#pragma once

#include <cstddef>
#include <vector>

namespace plf::num {

enum class GammaDiscretization {
  kMean,    ///< category rate = mean of the quantile slice (MrBayes default)
  kMedian,  ///< category rate = median of the slice, renormalized to mean 1
};

/// Compute the `k` category rates for shape `alpha`. Rates always have mean 1
/// (exactly for kMean up to roundoff; renormalized for kMedian).
std::vector<double> discrete_gamma_rates(
    double alpha, std::size_t k,
    GammaDiscretization method = GammaDiscretization::kMean);

}  // namespace plf::num
