// Fixed-size 4x4 double matrix used for DNA rate and transition matrices.
//
// The nucleotide substitution matrix Q of the paper (Fig. 2) and the
// per-branch transition-probability matrices P(t) = e^{Qt} are 4x4; keeping
// them as a dedicated value type keeps the model code allocation-free.
#pragma once

#include <array>
#include <cstddef>

namespace plf::num {

inline constexpr std::size_t kStates = 4;  ///< A, C, G, T

/// Row-major 4x4 matrix of doubles.
struct Matrix4 {
  std::array<double, kStates * kStates> m{};

  double& operator()(std::size_t r, std::size_t c) { return m[r * kStates + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return m[r * kStates + c];
  }

  static Matrix4 identity() {
    Matrix4 out;
    for (std::size_t i = 0; i < kStates; ++i) out(i, i) = 1.0;
    return out;
  }

  static Matrix4 zero() { return Matrix4{}; }

  Matrix4 transposed() const {
    Matrix4 out;
    for (std::size_t r = 0; r < kStates; ++r)
      for (std::size_t c = 0; c < kStates; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  friend Matrix4 operator*(const Matrix4& a, const Matrix4& b) {
    Matrix4 out;
    for (std::size_t r = 0; r < kStates; ++r)
      for (std::size_t c = 0; c < kStates; ++c) {
        double s = 0.0;
        for (std::size_t k = 0; k < kStates; ++k) s += a(r, k) * b(k, c);
        out(r, c) = s;
      }
    return out;
  }

  std::array<double, kStates> operator*(const std::array<double, kStates>& v) const {
    std::array<double, kStates> out{};
    for (std::size_t r = 0; r < kStates; ++r) {
      double s = 0.0;
      for (std::size_t c = 0; c < kStates; ++c) s += (*this)(r, c) * v[c];
      out[r] = s;
    }
    return out;
  }
};

}  // namespace plf::num
