#include "numerics/discrete_gamma.hpp"

#include <cmath>

#include "numerics/special.hpp"
#include "util/error.hpp"

namespace plf::num {

std::vector<double> discrete_gamma_rates(double alpha, std::size_t k,
                                         GammaDiscretization method) {
  PLF_CHECK(alpha > 0.0, "discrete_gamma_rates: alpha must be positive");
  PLF_CHECK(k >= 1, "discrete_gamma_rates: need at least one category");

  std::vector<double> rates(k);
  if (k == 1) {
    rates[0] = 1.0;
    return rates;
  }

  const double dk = static_cast<double>(k);

  if (method == GammaDiscretization::kMedian) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double p = (2.0 * static_cast<double>(i) + 1.0) / (2.0 * dk);
      rates[i] = gamma_quantile(p, alpha, 1.0 / alpha);
      sum += rates[i];
    }
    for (auto& r : rates) r *= dk / sum;  // renormalize to mean exactly 1
    return rates;
  }

  // Mean-of-slice discretization (Yang 1994 eq. 10):
  //   r_i = k * [ I(b_{i+1}; a+1) - I(b_i; a+1) ]
  // where b_i are the category boundaries (quantiles of Gamma(a, 1/a)) and
  // I(x; s) is the regularized incomplete gamma CDF with shape s, scale 1/a
  // evaluated at the boundary; the +1 in shape comes from integrating r*pdf.
  std::vector<double> cut(k + 1);
  cut[0] = 0.0;
  cut[k] = 0.0;  // sentinel, treated as +inf below
  for (std::size_t i = 1; i < k; ++i) {
    cut[i] = gamma_quantile(static_cast<double>(i) / dk, alpha, 1.0 / alpha);
  }

  // P(a+1, a*x) is the CDF of Gamma(a+1, 1/a) at x.
  auto upper_cdf = [&](double x) { return incomplete_gamma_p(alpha + 1.0, alpha * x); };

  double prev = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double next = (i + 1 == k) ? 1.0 : upper_cdf(cut[i + 1]);
    rates[i] = dk * (next - prev);
    prev = next;
  }
  return rates;
}

}  // namespace plf::num
