#include "numerics/special.hpp"

#include <cmath>
#include <limits>

#include "numerics/ulp.hpp"
#include "util/error.hpp"

namespace plf::num {

namespace {

// Series expansion of P(a, x), valid/fast for x < a + 1. The iteration count
// needed grows like sqrt(a) when x is near a (the regime chi-square quantile
// refinement probes), so the limit scales with the shape.
double gamma_p_series(double a, double x) {
  const int itmax = 500 + static_cast<int>(10.0 * std::sqrt(a));
  const double lga = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < itmax; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-16) {
      return sum * std::exp(-x + a * std::log(x) - lga);
    }
  }
  throw Error("incomplete_gamma_p: series failed to converge");
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid/fast for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  const double lga = std::lgamma(a);
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  const int itmax = 500 + static_cast<int>(10.0 * std::sqrt(a));
  for (int i = 1; i <= itmax; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16) {
      return std::exp(-x + a * std::log(x) - lga) * h;
    }
  }
  throw Error("incomplete_gamma_p: continued fraction failed to converge");
}

}  // namespace

double incomplete_gamma_p(double a, double x) {
  PLF_CHECK(a > 0.0, "incomplete_gamma_p: a must be positive");
  PLF_CHECK(x >= 0.0, "incomplete_gamma_p: x must be nonnegative");
  if (is_exactly_zero(x)) return 0.0;  // exact limit: P(a, 0) = 0
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double normal_quantile(double p) {
  PLF_CHECK(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0,1)");
  // Wichura's AS 241 (PPND16): relative error ~ 1e-16.
  const double q = p - 0.5;
  if (std::abs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q *
           (((((((2.5090809287301226727e3 * r + 3.3430575583588128105e4) * r +
                 6.7265770927008700853e4) * r + 4.5921953931549871457e4) * r +
               1.3731693765509461125e4) * r + 1.9715909503065514427e3) * r +
             1.3314166789178437745e2) * r + 3.3871328727963666080e0) /
           (((((((5.2264952788528545610e3 * r + 2.8729085735721942674e4) * r +
                 3.9307895800092710610e4) * r + 2.1213794301586595867e4) * r +
               5.3941960214247511077e3) * r + 6.8718700749205790830e2) * r +
             4.2313330701600911252e1) * r + 1.0);
  }
  double r = (q < 0.0) ? p : 1.0 - p;
  r = std::sqrt(-std::log(r));
  double val;
  if (r <= 5.0) {
    r -= 1.6;
    val = (((((((7.74545014278341407640e-4 * r + 2.27238449892691845833e-2) * r +
                2.41780725177450611770e-1) * r + 1.27045825245236838258e0) * r +
              3.64784832476320460504e0) * r + 5.76949722146069140550e0) * r +
            4.63033784615654529590e0) * r + 1.42343711074968357734e0) /
          (((((((1.05075007164441684324e-9 * r + 5.47593808499534494600e-4) * r +
                1.51986665636164571966e-2) * r + 1.48103976427480074590e-1) * r +
              6.89767334985100004550e-1) * r + 1.67638483018380384940e0) * r +
            2.05319162663775882187e0) * r + 1.0);
  } else {
    r -= 5.0;
    val = (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) * r +
                1.24266094738807843860e-3) * r + 2.65321895265761230930e-2) * r +
              2.96560571828504891230e-1) * r + 1.78482653991729133580e0) * r +
            5.46378491116411436990e0) * r + 6.65790464350110377720e0) /
          (((((((2.04426310338993978564e-15 * r + 1.42151175831644588870e-7) * r +
                1.84631831751005468180e-5) * r + 7.86869131145613259100e-4) * r +
              1.48753612908506148525e-2) * r + 1.36929880922735805310e-1) * r +
            5.99832206555887937690e-1) * r + 1.0);
  }
  return (q < 0.0) ? -val : val;
}

double chi_square_quantile(double p, double df) {
  PLF_CHECK(p > 0.0 && p < 1.0, "chi_square_quantile: p must be in (0,1)");
  PLF_CHECK(df > 0.0, "chi_square_quantile: df must be positive");

  // AS 91-style starting value.
  const double g = std::lgamma(df / 2.0);
  const double xx = df / 2.0;
  const double c = xx - 1.0;
  const double aa = std::log(2.0);
  double ch;
  if (df < -1.24 * std::log(p)) {
    ch = std::pow(p * xx * std::exp(g + xx * aa), 1.0 / xx);
  } else if (df > 0.32) {
    const double x = normal_quantile(p);
    const double p1 = 2.0 / (9.0 * df);
    ch = df * std::pow(x * std::sqrt(p1) + 1.0 - p1, 3.0);
    if (ch > 2.2 * df + 6.0) {
      ch = -2.0 * (std::log(1.0 - p) - c * std::log(0.5 * ch) + g);
    }
  } else {
    ch = 0.4;
    const double a = std::log(1.0 - p);
    for (int i = 0; i < 40; ++i) {
      const double q = ch;
      const double p1 = 1.0 + ch * (4.67 + ch);
      const double p2 = ch * (6.73 + ch * (6.66 + ch));
      const double t =
          -0.5 + (4.67 + 2.0 * ch) / p1 - (6.73 + ch * (13.32 + 3.0 * ch)) / p2;
      ch -= (1.0 - std::exp(a + g + 0.5 * ch + c * aa) * p2 / p1) / t;
      if (std::abs(q / ch - 1.0) < 1e-8) break;
    }
  }

  // Newton refinement against the regularized incomplete gamma.
  for (int i = 0; i < 64; ++i) {
    const double f = incomplete_gamma_p(xx, ch / 2.0) - p;
    // pdf of chi^2_df at ch
    const double pdf =
        std::exp((xx - 1.0) * std::log(ch / 2.0) - ch / 2.0 - g) / 2.0;
    if (pdf <= 0.0) break;
    const double step = f / pdf;
    ch -= step;
    if (ch <= 0.0) ch = std::numeric_limits<double>::min();
    if (std::abs(step) < 1e-12 * (1.0 + ch)) break;
  }
  return ch;
}

double gamma_quantile(double p, double shape, double scale) {
  PLF_CHECK(shape > 0.0 && scale > 0.0, "gamma_quantile: bad parameters");
  // Gamma(shape, scale) == (scale/2) * chi^2 with df = 2*shape.
  return chi_square_quantile(p, 2.0 * shape) * scale / 2.0;
}

}  // namespace plf::num
