// ULP-aware floating-point comparison helpers.
//
// Raw ==/!= on float/double is banned in src/core/ and src/numerics/ by
// plf_lint rule float-equality (docs/STATIC_ANALYSIS.md): most uses are
// accidental tolerance bugs. The legitimate exceptions — comparing against
// an exact sentinel value, or asking whether two variables hold bit-identical
// copies of the same computation — must go through this header, which both
// names the intent at the call site and is the one file the rule exempts.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

namespace plf::num {

/// Intentional exact comparison. Use when a value is an exact sentinel
/// (0.0 short-circuits, a default never written to) or a bit-identical copy
/// (Brent's bookkeeping points, double-buffered results). Compiles to the
/// plain comparison; exists so grep and plf_lint can tell intent from
/// accident.
template <typename T>
constexpr bool exactly_equal(T a, T b) {
  static_assert(std::is_floating_point_v<T>,
                "exactly_equal is for floating-point; use == directly");
  return a == b;
}

/// True when `x` is exactly zero (either sign). The most common legitimate
/// exact test: short-circuiting a function with an exact limit at 0.
template <typename T>
constexpr bool is_exactly_zero(T x) {
  return exactly_equal(x, T(0));
}

/// Distance in units-in-the-last-place between two finite doubles of the
/// same sign regime. Adjacent representable values are 1 apart; equal values
/// are 0. NaN/infinity yield the maximum distance.
inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  // Map the double ordering onto the integer ordering (sign-magnitude to
  // two's-complement-style bias), so distance is a simple subtraction.
  const auto to_ordered = [](double x) {
    std::int64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ia = to_ordered(a);
  const std::int64_t ib = to_ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                 : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

/// True when a and b are within `max_ulps` representable values of each
/// other. The 0-ULP diff-testing gates use ulp_distance directly; this form
/// reads better in scalar code.
inline bool nearly_equal(double a, double b, std::uint64_t max_ulps = 4) {
  return ulp_distance(a, b) <= max_ulps;
}

}  // namespace plf::num
