// Symmetric eigendecomposition (cyclic Jacobi) and the reversible-Markov
// matrix exponential built on top of it.
//
// For a time-reversible rate matrix Q with stationary distribution pi,
//   B = D^{1/2} Q D^{-1/2}   with  D = diag(pi)
// is symmetric. With B = U L U^T,
//   P(t) = e^{Qt} = D^{-1/2} U e^{Lt} U^T D^{1/2},
// which is how MrBayes/RAxML (and we) compute transition probabilities.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "numerics/matrix4.hpp"

namespace plf::num {

/// Result of a symmetric eigendecomposition: A = V * diag(values) * V^T,
/// eigenvalues ascending, eigenvectors in the columns of V.
struct SymmetricEigen {
  std::vector<double> values;        ///< n eigenvalues, ascending
  std::vector<double> vectors;       ///< n x n row-major; column j <-> values[j]
  std::size_t n = 0;

  double vec(std::size_t row, std::size_t col) const {
    return vectors[row * n + col];
  }
};

/// Cyclic Jacobi eigensolver for a symmetric matrix (row-major, n x n).
/// Off-diagonal asymmetry up to ~1e-12 is tolerated (the matrix is
/// symmetrized first). Throws plf::Error if it fails to converge.
SymmetricEigen jacobi_eigen(const std::vector<double>& a, std::size_t n);

/// Spectral decomposition of a reversible 4x4 rate matrix, precomputed so
/// that transition matrices for many branch lengths are cheap.
class ReversibleSpectral {
 public:
  /// `q` must be a valid reversible rate matrix for stationary `pi`
  /// (pi_i q_ij == pi_j q_ji, rows sum to 0, pi positive and summing to 1).
  ReversibleSpectral(const Matrix4& q, const std::array<double, 4>& pi);

  /// P(t) = exp(Q t). t >= 0.
  Matrix4 transition_matrix(double t) const;

  const std::array<double, 4>& eigenvalues() const { return lambda_; }

 private:
  std::array<double, 4> lambda_{};   // eigenvalues of B
  Matrix4 left_{};                   // D^{-1/2} U
  Matrix4 right_{};                  // U^T D^{1/2}
};

}  // namespace plf::num
