// MetricsRegistry: named counters, gauges, and OnlineStats timers with
// thread-local shards.
//
// The paper's whole argument is a measurement (gprof shows 85-95% of MrBayes
// inside three PLF kernels; Fig. 12 decomposes total time into parallel
// section, serial "Remaining", and PCIe transfer). This registry is the
// reproduction's equivalent instrument: every layer — kernels, thread pool,
// Cell/GPU simulators, MCMC chains — records into it, and obs/report.hpp
// reassembles the paper-shaped breakdown.
//
// Concurrency design: each thread writes to its own shard (created on first
// touch, owned by the registry), so the hot path never contends with other
// writers. A shard carries one mutex that is taken per record; it is
// uncontended except while a reader flushes, which makes the design
// race-free under TSan without atomics on the OnlineStats state. Gauges are
// registry-level (set on cold paths only). snapshot() holds the registry
// lock while merging each shard (registry mutex_ before Shard::m, never the
// reverse), so every shard registered before the flush is included — a
// first-record racing the flush either lands fully in this snapshot or
// fully in the next, never half-in.
//
// Metric names are interned once into small integer ids; hot paths hold ids
// (see PLF_PROF_SCOPE in obs/profile.hpp, which caches the id in a
// function-local static).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::obs {

/// Id of an interned metric name within one registry. Ids are dense and
/// stable for the registry's lifetime; reset() clears values, not names.
using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kTimer };

/// One completed PLF_PROF_SCOPE span, recorded only while tracing is
/// enabled. tid is the shard index (one per recording thread).
struct TraceEvent {
  MetricId name_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

/// Point-in-time merged view of a registry. Entries are sorted by name.
struct Snapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  struct Timer {
    std::string name;
    OnlineStats stats;       ///< per-sample durations, in seconds
    LatencyHistogram hist;   ///< log-bucketed sample distribution (p50/p95/p99)
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Timer> timers;

  /// Trace spans dropped at the buffer cap up to this snapshot (the report
  /// footer surfaces it so a truncated trace is never silent).
  std::uint64_t trace_events_dropped = 0;
  /// Histogram samples that could not be bucketed (negative/non-finite),
  /// summed over every timer.
  std::uint64_t hist_samples_dropped = 0;

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Timer* find_timer(std::string_view name) const;

  /// Sum of a timer's samples in seconds; 0 when absent or empty.
  double timer_total_s(std::string_view name) const;
  /// Counter value; 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;
  /// Gauge value; 0 when absent.
  double gauge_value(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- name interning (cold; takes the registry mutex) ---
  // Re-interning an existing name returns its id; asking for the same name
  // with a different kind is a contract violation (PLF_CHECK).
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId timer(std::string_view name);

  // --- hot-path recording (per-thread shard; uncontended lock) ---
  void add(MetricId id, std::uint64_t delta = 1);
  void record_seconds(MetricId id, double seconds);
  /// Record a completed span for the chrome://tracing export. No-op unless
  /// tracing_enabled(). Does not feed the timer statistics — callers pair it
  /// with record_seconds (ScopedTimer does both).
  void record_span(MetricId id, std::uint64_t start_ns, std::uint64_t end_ns);

  // --- gauges (cold paths: publish simulator/engine stats) ---
  void set_gauge(MetricId id, double value) PLF_EXCLUDES(mutex_);

  // --- tracing control ---
  void enable_tracing(bool on);
  bool tracing_enabled() const {
    return tracing_.load(std::memory_order_relaxed);
  }
  /// Spans recorded after the buffer cap are dropped (and counted); the cap
  /// keeps long MCMC runs from accumulating unbounded trace memory.
  std::uint64_t trace_events_dropped() const;

  // --- flush ---
  Snapshot snapshot() const PLF_EXCLUDES(mutex_);
  /// All recorded trace events, merged across shards, sorted by start time.
  std::vector<TraceEvent> trace_events() const PLF_EXCLUDES(mutex_);
  std::string metric_name(MetricId id) const PLF_EXCLUDES(mutex_);
  /// Zero every counter/gauge/timer and drop trace events. Interned names
  /// and ids survive (handles held by callers stay valid).
  void reset() PLF_EXCLUDES(mutex_);

  /// Process-wide registry the PLF_PROF_* macros record into.
  static MetricsRegistry& global();

 private:
  struct Shard;

  MetricId intern(std::string_view name, MetricKind kind) PLF_EXCLUDES(mutex_);
  Shard& shard_for_this_thread() PLF_EXCLUDES(mutex_);
  Shard& make_shard() PLF_EXCLUDES(mutex_);

  /// Serial number distinguishing registries that reuse an address (the
  /// thread-local shard cache is keyed on it).
  const std::uint64_t serial_;

  /// Registry lock: names, gauges, and the shard list. Lock order: mutex_
  /// is always taken BEFORE any Shard::m (snapshot/trace_events/reset hold
  /// it across the per-shard merges so no shard can register mid-flush);
  /// recording paths take only their own shard's lock, so the reverse order
  /// never occurs.
  mutable util::Mutex mutex_;
  struct NameEntry {
    std::string name;
    MetricKind kind;
  };
  std::vector<NameEntry> names_ PLF_GUARDED_BY(mutex_);
  /// Indexed by id (0.0 for non-gauges).
  std::vector<double> gauge_values_ PLF_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Shard>> shards_ PLF_GUARDED_BY(mutex_);

  std::atomic<bool> tracing_{false};
  mutable std::atomic<std::uint64_t> trace_count_{0};
  mutable std::atomic<std::uint64_t> trace_dropped_{0};
};

}  // namespace plf::obs
