// The paper-style time-breakdown report.
//
// Reassembles a metrics Snapshot into the shape of the paper's measurements:
// the gprof-style per-kernel profile ("85-95% of total execution time is
// spent in the three PLF kernels") and Fig. 12's decomposition of total time
// into parallel section (PLF), serial Remaining, and simulated transfer.
// Percentages of the three top-level sections sum to 100 by construction —
// the golden-format test in tests/obs_test.cpp enforces it to epsilon.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace plf::obs {

/// One kernel row of the per-kernel profile.
struct KernelShare {
  std::string name;        ///< e.g. "CondLikeDown"
  double seconds = 0.0;    ///< wall time inside the kernel dispatch
  std::uint64_t calls = 0; ///< timer sample count
  double pct_of_engine = 0.0;  ///< share of measured engine time
};

/// One timer row of the latency-percentile table (histogram-derived).
struct LatencyRow {
  std::string name;        ///< timer name, e.g. "plf.CondLikeDown"
  std::uint64_t count = 0; ///< histogram sample count
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Fig. 12-shaped decomposition of one run.
struct Breakdown {
  std::string backend;     ///< label printed in the header
  double total_s = 0.0;    ///< wall time the sections are normalized against

  std::vector<KernelShare> kernels;  ///< the three PLFs + root reduction
  double engine_serial_s = 0.0;      ///< TiProbs + scaler sum + repeat work

  // Top-level sections (percentages of total_s; sum to 100).
  double plf_s = 0.0;        ///< parallel section: sum of kernel rows
  double remaining_s = 0.0;  ///< total - plf (serial engine + application)
  double transfer_sim_s = 0.0;  ///< simulated PCIe/DMA seconds (reported
                                ///< separately; simulated time is not wall
                                ///< time and is excluded from the 100%)
  double plf_pct = 0.0;
  double remaining_pct = 0.0;

  /// Share of measured *engine* time (kernels + engine serial timers) spent
  /// inside the three PLF kernels + reduction — the gprof-profile number the
  /// paper leads with.
  double plf_pct_of_engine = 0.0;

  /// Per-call latency percentiles for every non-empty timer (kernels,
  /// plan.*, engine serial phases), from the log-bucketed histograms.
  std::vector<LatencyRow> latencies;

  // Observability self-diagnostics, surfaced in the report footer so a
  // truncated trace or unbucketable samples are never silent.
  std::uint64_t trace_events_dropped = 0;
  std::uint64_t hist_samples_dropped = 0;
};

/// Assemble the breakdown from a snapshot. `total_s` is the run's wall time
/// (measured by the caller around the whole analysis); `backend` is a label.
/// If total_s is smaller than the measured PLF time (clock jitter on very
/// short runs), it is raised to it so percentages stay in [0, 100].
Breakdown build_breakdown(const Snapshot& snapshot, double total_s,
                          std::string backend);

/// Render the breakdown as the human-readable report mrbayes_lite prints.
std::string format_breakdown(const Breakdown& b);

}  // namespace plf::obs
