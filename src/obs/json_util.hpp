// Tiny JSON-emission helpers shared by the obs writers (trace.cpp,
// flight.cpp). Emission only — parsing lives in util/json.hpp.
#pragma once

#include <cmath>
#include <ostream>
#include <string>
#include <string_view>

namespace plf::obs::detail {

/// Escape for a JSON string literal (metric names are plain identifiers,
/// but a writer must never emit a malformed document).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no Infinity/NaN literals; map them to null.
inline void write_json_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace plf::obs::detail
