// Live telemetry exporter (docs/OBSERVABILITY.md): every run tick it merges
// the caller's convergence diagnostics with a MetricsRegistry snapshot and
//   (1) appends one schema-versioned `plf-telemetry-v1` JSON object to a
//       JSONL history file (one line per record — tail -f/jq-friendly), and
//   (2) rewrites a single-object "latest status" JSON via tmp+rename, so a
//       monitor (tools/plf_status) always reads a complete document, never a
//       torn write.
//
// Records are generation-indexed. On `--resume`, prepare_resume(gen)
// truncates any JSONL tail the crashed run wrote past its last checkpoint
// (records with generation > gen), so the resumed run appends a
// bit-consistent continuation: the file ends up identical in its
// deterministic fields to the uninterrupted run's, with generations strictly
// monotone across the boundary.
//
// This layer is deliberately domain-blind — plf_obs cannot depend on
// plf_mcmc, so the MCMC coupler fills a TelemetryRecord (plain data) and the
// exporter owns only formatting, cadence, and file handling. All shared
// state sits behind an annotated util::Mutex: due() and export_record() may
// be called from any thread (the par_stress suite hammers exactly that).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::obs {

class MetricsRegistry;

/// Proposed/accepted tally for one named proposal type or swap pair.
struct TelemetryRate {
  std::string name;
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;

  double rate() const {
    return proposed == 0 ? 0.0
                         : static_cast<double>(accepted) /
                               static_cast<double>(proposed);
  }
};

/// One telemetry tick's worth of diagnostics, filled by the run layer
/// (mcmc::CoupledChains) and formatted by the exporter. Every field the
/// schema marks deterministic must depend only on generation-indexed chain
/// state — never on wall time — so resumed runs reproduce it exactly.
struct TelemetryRecord {
  std::uint64_t generation = 0;
  double wall_s = 0.0;  ///< nondeterministic: wall time since run start

  // Cold-chain convergence diagnostics (NaN renders as JSON null).
  std::uint64_t n_samples = 0;
  double ln_likelihood = 0.0;
  double mean_ln_likelihood = 0.0;
  double ess = 0.0;
  double ess_per_sec = 0.0;  ///< nondeterministic
  double rhat = 0.0;

  std::vector<TelemetryRate> acceptance;  ///< per proposal type, all chains
  TelemetryRate swaps;                    ///< totals; name unused
  std::vector<TelemetryRate> swap_pairs;  ///< per heat-rank pair "0-1", ...

  /// Extra named gauges (arena hit rate, ...), appended verbatim under
  /// "extra". Deterministic iff the producer says so.
  std::vector<std::pair<std::string, double>> extra;
};

struct TelemetryOptions {
  std::string jsonl_path;   ///< empty: no history file
  std::string status_path;  ///< empty: no latest-status file
  /// Export every N generations (0 disables the generation cadence).
  std::uint64_t every_generations = 100;
  /// Also export when this much wall time passed since the last record
  /// (0 disables — wall-triggered records are nondeterministic, so
  /// bit-consistency tests keep this off).
  double every_wall_s = 0.0;
  /// Embed the full metrics snapshot (obs::write_metrics_json shape) in
  /// each record under "metrics". Requires a registry at construction.
  bool include_metrics = true;
};

class TelemetryExporter {
 public:
  static constexpr const char* kSchema = "plf-telemetry-v1";

  /// `registry` may be null: records then carry no "metrics" section and no
  /// exporter self-metrics. The exporter never writes a file until the
  /// first export_record().
  explicit TelemetryExporter(TelemetryOptions options,
                             MetricsRegistry* registry = nullptr);

  const TelemetryOptions& options() const { return options_; }
  MetricsRegistry* registry() const { return registry_; }

  /// Truncate JSONL records with generation > `resume_generation` (the tail
  /// a crashed run wrote past its last checkpoint) and prime the cadence so
  /// the resumed run's first export lands exactly where the uninterrupted
  /// run's would. Call once, after restore and before run.
  void prepare_resume(std::uint64_t resume_generation) PLF_EXCLUDES(m_);

  /// True when a record for `generation` is due under either cadence and
  /// none was already written for it.
  bool due(std::uint64_t generation) const PLF_EXCLUDES(m_);

  /// Format and write one record (JSONL append + atomic status rewrite).
  /// Thread-safe; serialized internally.
  void export_record(const TelemetryRecord& record) PLF_EXCLUDES(m_);

  std::uint64_t records_written() const PLF_EXCLUDES(m_);
  /// Generation of the most recent record (0 when none yet).
  std::uint64_t last_generation() const PLF_EXCLUDES(m_);

 private:
  void write_record_json(std::ostream& os, const TelemetryRecord& record) const;

  const TelemetryOptions options_;
  MetricsRegistry* const registry_;

  mutable util::Mutex m_;
  std::uint64_t records_ PLF_GUARDED_BY(m_) = 0;
  std::uint64_t last_generation_ PLF_GUARDED_BY(m_) = 0;
  bool any_exported_ PLF_GUARDED_BY(m_) = false;
  /// plf::now_ns() at the last export (wall cadence); 0 until primed.
  std::uint64_t last_export_ns_ PLF_GUARDED_BY(m_) = 0;
};

}  // namespace plf::obs
