#include "obs/report.hpp"

#include <algorithm>
#include <sstream>

#include "obs/names.hpp"
#include "util/table.hpp"

namespace plf::obs {

namespace {

KernelShare kernel_share(const Snapshot& snap, const char* timer_name,
                         const char* short_name) {
  KernelShare ks;
  ks.name = short_name;
  if (const Snapshot::Timer* t = snap.find_timer(timer_name)) {
    ks.seconds = t->stats.total();
    ks.calls = t->stats.count();
  }
  return ks;
}

}  // namespace

Breakdown build_breakdown(const Snapshot& snapshot, double total_s,
                          std::string backend) {
  Breakdown b;
  b.backend = std::move(backend);

  b.kernels = {
      kernel_share(snapshot, kTimerCondLikeDown, "CondLikeDown"),
      kernel_share(snapshot, kTimerCondLikeRoot, "CondLikeRoot"),
      kernel_share(snapshot, kTimerCondLikeScaler, "CondLikeScaler"),
      kernel_share(snapshot, kTimerRootReduce, "RootReduce"),
      // Plan dispatch on a fused backend runs down/root + scale inside one
      // region per dependency level: the kernels are deliberately
      // indistinguishable there, so the level wall time is its own PLF row
      // (per-call dispatch and the default per-op plan executor keep filling
      // the per-kernel rows above instead).
      kernel_share(snapshot, kTimerPlanLevel, "PlanLevel(fused)"),
  };
  for (const KernelShare& k : b.kernels) b.plf_s += k.seconds;

  b.engine_serial_s = snapshot.timer_total_s(kTimerTiProbs) +
                      snapshot.timer_total_s(kTimerScalerSum) +
                      snapshot.timer_total_s(kTimerRepeatIdentify) +
                      snapshot.timer_total_s(kTimerRepeatScatter) +
                      snapshot.timer_total_s(kTimerPlanBuild);

  b.transfer_sim_s = snapshot.gauge_value(kGaugeTransferSimSeconds);

  // Clock jitter on very short runs can leave total_s below the summed
  // kernel time; clamp so Remaining is never negative and the two
  // wall-clock sections partition total exactly.
  b.total_s = std::max(total_s, b.plf_s);
  b.remaining_s = b.total_s - b.plf_s;

  if (b.total_s > 0.0) {
    b.plf_pct = 100.0 * b.plf_s / b.total_s;
    b.remaining_pct = 100.0 * b.remaining_s / b.total_s;
  } else {
    // Nothing measured at all: call it 100% Remaining so sections still
    // sum to 100 for downstream format/sum checks.
    b.remaining_pct = 100.0;
  }

  const double engine_s = b.plf_s + b.engine_serial_s;
  for (KernelShare& k : b.kernels) {
    k.pct_of_engine = engine_s > 0.0 ? 100.0 * k.seconds / engine_s : 0.0;
  }
  b.plf_pct_of_engine = engine_s > 0.0 ? 100.0 * b.plf_s / engine_s : 0.0;

  // Histogram-derived per-call percentiles, one row per non-empty timer
  // (snapshot timers are already name-sorted).
  for (const Snapshot::Timer& t : snapshot.timers) {
    if (t.hist.count() == 0) continue;
    LatencyRow row;
    row.name = t.name;
    row.count = t.hist.count();
    row.p50_us = t.hist.percentile_ns(0.50) * 1e-3;
    row.p95_us = t.hist.percentile_ns(0.95) * 1e-3;
    row.p99_us = t.hist.percentile_ns(0.99) * 1e-3;
    b.latencies.push_back(std::move(row));
  }
  b.trace_events_dropped = snapshot.trace_events_dropped;
  b.hist_samples_dropped = snapshot.hist_samples_dropped;

  return b;
}

std::string format_breakdown(const Breakdown& b) {
  std::ostringstream os;

  Table kernels("per-kernel profile (share of measured engine time)");
  kernels.header({"kernel", "calls", "seconds", "% of engine"});
  for (const KernelShare& k : b.kernels) {
    kernels.row({k.name, std::to_string(k.calls), Table::num(k.seconds, 4),
                 Table::num(k.pct_of_engine, 1)});
  }
  kernels.row({"(engine serial: TiProbs+scalers+repeats)", "-",
               Table::num(b.engine_serial_s, 4),
               Table::num(100.0 - b.plf_pct_of_engine, 1)});

  Table sections("time breakdown [" + b.backend + "] (paper Fig. 12 shape)");
  sections.header({"section", "seconds", "% of total"});
  sections.row({"PLF (parallel section)", Table::num(b.plf_s, 4),
                Table::num(b.plf_pct, 1)});
  sections.row({"Remaining (serial)", Table::num(b.remaining_s, 4),
                Table::num(b.remaining_pct, 1)});
  sections.row({"total", Table::num(b.total_s, 4),
                Table::num(b.plf_pct + b.remaining_pct, 1)});

  os << "== PLF time breakdown ==\n"
     << kernels << "\n"
     << "PLF kernels: " << Table::num(b.plf_pct_of_engine, 1)
     << "% of measured engine time (paper: 85-95% of MrBayes total)\n\n"
     << sections;
  if (b.transfer_sim_s > 0.0) {
    os << "simulated transfer (PCIe/DMA, virtual clock — not wall time): "
       << Table::num(b.transfer_sim_s, 4) << " s\n";
  }
  if (!b.latencies.empty()) {
    Table lat("per-call latency percentiles (log-bucketed histograms)");
    lat.header({"timer", "samples", "p50 us", "p95 us", "p99 us"});
    for (const LatencyRow& r : b.latencies) {
      lat.row({r.name, std::to_string(r.count), Table::num(r.p50_us, 2),
               Table::num(r.p95_us, 2), Table::num(r.p99_us, 2)});
    }
    os << "\n" << lat;
  }
  if (b.trace_events_dropped > 0) {
    os << "warning: trace buffer full — " << b.trace_events_dropped
       << " spans dropped (trace output is truncated)\n";
  }
  if (b.hist_samples_dropped > 0) {
    os << "warning: " << b.hist_samples_dropped
       << " histogram samples dropped (negative or non-finite durations)\n";
  }
  return os.str();
}

}  // namespace plf::obs
