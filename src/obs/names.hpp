// Canonical metric names shared by the instrumentation points and the
// breakdown report, so the report never chases a misspelled key.
//
// Naming scheme: "<layer>.<what>", with the three PLF kernels and the root
// reduction carrying the paper's own names (CondLikeDown / CondLikeRoot /
// CondLikeScaler; §2) under the "plf." prefix.
#pragma once

namespace plf::obs {

// The three PLF kernels + the root reduction (the paper's parallel section).
inline constexpr const char* kTimerCondLikeDown = "plf.CondLikeDown";
inline constexpr const char* kTimerCondLikeRoot = "plf.CondLikeRoot";
inline constexpr const char* kTimerCondLikeScaler = "plf.CondLikeScaler";
inline constexpr const char* kTimerRootReduce = "plf.RootReduce";

// Engine serial work (the "Remaining" contributors that are measurable
// per-phase; the rest of Remaining is application code outside the engine).
inline constexpr const char* kTimerTiProbs = "engine.TiProbs";
inline constexpr const char* kTimerScalerSum = "engine.ScalerSum";
inline constexpr const char* kTimerRepeatIdentify = "engine.RepeatIdentify";
inline constexpr const char* kTimerRepeatScatter = "engine.RepeatScatter";

// Plan dispatch (batched engine->backend interface, docs/EXECUTION_PLAN.md).
// plan.build/plan.execute bracket the engine's two phases; plan.level is the
// wall time of one dependency level's fused batch on a kFusedPlan backend
// (the report counts it toward the PLF section — when kernels are fused into
// one region per level, per-kernel attribution is by design unavailable).
inline constexpr const char* kTimerPlanBuild = "plan.build";
inline constexpr const char* kTimerPlanExecute = "plan.execute";
inline constexpr const char* kTimerPlanLevel = "plan.level";
inline constexpr const char* kCounterPlanLevels = "plan.levels";
inline constexpr const char* kCounterPlanOps = "plan.ops";
/// Parallel regions NOT opened relative to per-call dispatch (2 per op minus
/// 1 per level) — the reclaimed spawn/sync the Fig. 12 breakdown attributes.
inline constexpr const char* kCounterPlanRegionsSaved = "plan.regions_saved";

// Thread pool (multi-core backend, §3.2).
inline constexpr const char* kTimerParRegion = "par.region";
inline constexpr const char* kTimerParWorker = "par.worker";
inline constexpr const char* kCounterParRegions = "par.regions";

// MCMC application layer.
inline constexpr const char* kTimerMcmcGeneration = "mcmc.generation";
inline constexpr const char* kCounterMcmcGenerations = "mcmc.generations";

// Live convergence telemetry (docs/OBSERVABILITY.md). The per-proposal-type
// prefixes are completed with the proposal's registered name
// ("mcmc.accept_rate.nni", ...); the per-pair swap prefix with the
// heat-rank pair ("mc3.swap_rate.0-1", ...).
inline constexpr const char* kGaugeMcmcProposedPrefix = "mcmc.proposed.";
inline constexpr const char* kGaugeMcmcAcceptedPrefix = "mcmc.accepted.";
inline constexpr const char* kGaugeMcmcAcceptRatePrefix = "mcmc.accept_rate.";
inline constexpr const char* kGaugeMcmcColdLnL = "mcmc.cold_ln_likelihood";
inline constexpr const char* kGaugeMcmcColdEss = "mcmc.cold_ess";
inline constexpr const char* kGaugeMcmcColdRhat = "mcmc.cold_rhat";
inline constexpr const char* kGaugeMc3SwapRate = "mc3.swap_rate";
inline constexpr const char* kGaugeMc3SwapPairPrefix = "mc3.swap_rate.";
inline constexpr const char* kCounterTelemetryRecords = "telemetry.records";
inline constexpr const char* kTimerTelemetryExport = "telemetry.export";

// Simulated transfer time (the Fig. 12 "PCIe" column; the GPU backend
// publishes its accumulated PCIe seconds here, the Cell backend its DMA
// wait). Simulated seconds never mix into the wall-clock sections — the
// report keeps them in a separate, clearly-labeled row.
inline constexpr const char* kGaugeTransferSimSeconds = "backend.transfer_sim_s";

// Cell/BE simulator.
inline constexpr const char* kCounterCellMailboxMessages = "cell.mailbox_messages";
inline constexpr const char* kCounterCellPlfInvocations = "cell.plf_invocations";
inline constexpr const char* kGaugeCellSimPlfSeconds = "cell.sim_plf_s";
inline constexpr const char* kGaugeCellSpuDmaWaitSeconds = "cell.spu_dma_wait_s";
inline constexpr const char* kGaugeCellDmaBytes = "cell.dma_bytes";

// GPU simulator.
inline constexpr const char* kCounterGpuKernelLaunches = "gpu.kernel_launches";
inline constexpr const char* kGaugeGpuKernelSimSeconds = "gpu.sim_kernel_s";
inline constexpr const char* kGaugeGpuPcieSimSeconds = "gpu.sim_pcie_s";
inline constexpr const char* kGaugeGpuH2dBytes = "gpu.h2d_bytes";
inline constexpr const char* kGaugeGpuD2hBytes = "gpu.d2h_bytes";

// Engine statistics published as gauges (PlfEngine::publish_stats folds the
// PR 2 site-repeat counters into the registry through these).
inline constexpr const char* kGaugeEngineDownCalls = "engine.down_calls";
inline constexpr const char* kGaugeEngineRootCalls = "engine.root_calls";
inline constexpr const char* kGaugeEngineScaleCalls = "engine.scale_calls";
inline constexpr const char* kGaugeEngineReduceCalls = "engine.reduce_calls";
inline constexpr const char* kGaugeEngineTmBuilds = "engine.tm_builds";
inline constexpr const char* kGaugeEnginePatternIterations =
    "engine.pattern_iterations";
inline constexpr const char* kGaugeRepeatDownHitRate =
    "engine.repeat_down_hit_rate";
inline constexpr const char* kGaugeRepeatRootHitRate =
    "engine.repeat_root_hit_rate";
inline constexpr const char* kGaugeRepeatScaleHitRate =
    "engine.repeat_scale_hit_rate";
inline constexpr const char* kGaugeRepeatCompressionRatio =
    "engine.repeat_compression_ratio";
inline constexpr const char* kGaugeRepeatRebuildSeconds =
    "engine.repeat_rebuild_s";
inline constexpr const char* kGaugeEnginePlanBuilds = "engine.plan_builds";
inline constexpr const char* kGaugeEnginePlanOps = "engine.plan_ops";
inline constexpr const char* kGaugeEnginePlanLevels = "engine.plan_levels";
inline constexpr const char* kGaugeEngineScalerResums =
    "engine.scaler_resums";
inline constexpr const char* kGaugeEngineScalerDeltaUpdates =
    "engine.scaler_delta_updates";
// Tip-specialized plan ops (docs/KERNELS.md): cherry pair-table gathers,
// tip×inner matvec-free ops, and pair-table (re)builds this engine performed.
inline constexpr const char* kGaugeEngineTipTtOps = "engine.tip_tt_ops";
inline constexpr const char* kGaugeEngineTipTiOps = "engine.tip_ti_ops";
inline constexpr const char* kGaugeEngineTipTablesBuilt =
    "engine.tip_tables_built";

// GPU plan batching: PCIe bytes NOT transferred because a fused op kept its
// CLV block device-resident between the down/root and scale kernels.
inline constexpr const char* kGaugeGpuFusedOps = "gpu.plan_fused_ops";
inline constexpr const char* kGaugeGpuPcieBytesSaved = "gpu.pcie_bytes_saved";

// Budgeted CLV arena (docs/MEMORY.md). engine.clv_bytes is published at
// engine construction — before the first evaluation — so a --metrics-json
// snapshot taken at any point of a run sees it.
inline constexpr const char* kGaugeEngineClvBytes = "engine.clv_bytes";
inline constexpr const char* kGaugeArenaBudgetBytes = "arena.budget_bytes";
inline constexpr const char* kGaugeArenaEvictions = "arena.evictions";
inline constexpr const char* kGaugeArenaRecomputeOps = "arena.recompute_ops";
inline constexpr const char* kGaugeArenaHitRate = "arena.hit_rate";

}  // namespace plf::obs
