// RAII phase timers and the PLF_PROF_* instrumentation macros.
//
// Usage at an instrumentation point:
//
//   void PlfEngine::evaluate() {
//     ...
//     { PLF_PROF_SCOPE("plf.CondLikeDown"); backend_->run_down(...); }
//
// The macro interns the metric name once (function-local static), then
// records one OnlineStats timer sample per scope exit — and, when tracing is
// enabled on the global registry, one chrome://tracing span. With
// -DPLF_PROFILING=OFF the macros expand to nothing: kernels compile exactly
// as before, which is the "zero overhead when disabled" guarantee
// bench_kernels relies on.
#pragma once

#include <cstdint>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace plf::obs {

/// Times one lexical scope into a registry timer (and the trace buffer when
/// tracing is on). Duration source is plf::now_ns(), so tests with an
/// injected fake clock get exact durations.
///
/// When constructed with a non-null `name` (a string literal — the flight
/// ring stores the pointer) the completed span is also appended to this
/// thread's flight-recorder ring, so crash dumps show the last scopes the
/// thread ran. PLF_PROF_SCOPE always passes its name literal.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, MetricId id,
              const char* name = nullptr)
      : registry_(&registry), id_(id), name_(name), start_ns_(now_ns()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    std::uint64_t end_ns = now_ns();
    if (end_ns < start_ns_) end_ns = start_ns_;  // defensive vs fake clocks
    registry_->record_seconds(
        id_, static_cast<double>(end_ns - start_ns_) * 1e-9);
    if (registry_->tracing_enabled()) {
      registry_->record_span(id_, start_ns_, end_ns);
    }
    if (name_ != nullptr) {
      flight_record_span(name_, start_ns_, end_ns - start_ns_);
    }
  }

 private:
  MetricsRegistry* registry_;
  MetricId id_;
  const char* name_;
  std::uint64_t start_ns_;
};

}  // namespace plf::obs

// Two-level expansion so __LINE__ pastes into unique identifiers.
#define PLF_PROF_CONCAT_IMPL(a, b) a##b
#define PLF_PROF_CONCAT(a, b) PLF_PROF_CONCAT_IMPL(a, b)

#if defined(PLF_PROFILING_ENABLED)

/// Time the enclosing scope under `name` in the global registry.
#define PLF_PROF_SCOPE(name)                                                  \
  static const ::plf::obs::MetricId PLF_PROF_CONCAT(plf_prof_id_, __LINE__) = \
      ::plf::obs::MetricsRegistry::global().timer(name);                      \
  const ::plf::obs::ScopedTimer PLF_PROF_CONCAT(plf_prof_scope_, __LINE__)(   \
      ::plf::obs::MetricsRegistry::global(),                                  \
      PLF_PROF_CONCAT(plf_prof_id_, __LINE__), name)

/// Add `delta` to the counter `name` in the global registry.
#define PLF_PROF_COUNT(name, delta)                                           \
  do {                                                                        \
    static const ::plf::obs::MetricId plf_prof_count_id =                     \
        ::plf::obs::MetricsRegistry::global().counter(name);                  \
    ::plf::obs::MetricsRegistry::global().add(                                \
        plf_prof_count_id, static_cast<std::uint64_t>(delta));                \
    ::plf::obs::flight_record_count(name,                                     \
                                    static_cast<std::uint64_t>(delta));       \
  } while (false)

/// Publish `value` to the gauge `name` in the global registry (cold paths).
#define PLF_PROF_GAUGE(name, value)                                           \
  do {                                                                        \
    static const ::plf::obs::MetricId plf_prof_gauge_id =                     \
        ::plf::obs::MetricsRegistry::global().gauge(name);                    \
    ::plf::obs::MetricsRegistry::global().set_gauge(                          \
        plf_prof_gauge_id, static_cast<double>(value));                       \
  } while (false)

#else  // profiling compiled out: zero code, zero overhead

#define PLF_PROF_SCOPE(name) static_cast<void>(0)
#define PLF_PROF_COUNT(name, delta) static_cast<void>(0)
#define PLF_PROF_GAUGE(name, value) static_cast<void>(0)

#endif  // PLF_PROFILING_ENABLED
