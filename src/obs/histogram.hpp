// Log-bucketed latency histogram for the metrics registry's timers.
//
// Mean-only timers hide tail stalls: a scatter pass that usually takes 2 us
// but occasionally blocks for 2 ms contributes almost nothing to the mean,
// yet dominates p99 — exactly the effect the paper's serial-section analysis
// (Fig. 12 "Remaining") is sensitive to. This HDR-style histogram keeps a
// fixed 64-bucket power-of-two layout over nanoseconds, so recording is one
// bit-width computation plus an increment, merging is element-wise addition
// (the same shard-merge shape as OnlineStats), and percentiles are
// deterministic interpolations inside one bucket — good to within a factor
// of two, tight enough to separate "tail is 2x the median" from "tail is
// 1000x the median".
//
// Bucket layout (half-open, nanoseconds):
//   bucket 0        {0}
//   bucket b, 1..62 [2^(b-1), 2^b)
//   bucket 63       [2^62, +inf)
//
// Samples that cannot be bucketed (negative or non-finite seconds) are
// counted in dropped() instead of being silently discarded; the breakdown
// report surfaces the total.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace plf::obs {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for a nanosecond duration (see layout above).
  static constexpr int bucket_index(std::uint64_t ns) {
    if (ns == 0) return 0;
    const int b = std::bit_width(ns);  // in [1, 64]
    return b > kBuckets - 1 ? kBuckets - 1 : b;
  }

  /// Inclusive lower bound of bucket b in nanoseconds.
  static constexpr std::uint64_t bucket_lower_ns(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Exclusive upper bound of bucket b in nanoseconds (bucket 63, the
  /// overflow bucket, reports 2^63 so interpolation stays finite).
  static constexpr std::uint64_t bucket_upper_ns(int b) {
    if (b == 0) return 1;
    return std::uint64_t{1} << b;
  }

  void add_ns(std::uint64_t ns) { ++counts_[bucket_index(ns)]; }

  /// Record a duration in seconds. Negative or non-finite samples cannot be
  /// assigned a bucket and are counted as dropped.
  void add_seconds(double seconds) {
    if (!std::isfinite(seconds) || seconds < 0.0) {
      ++dropped_;
      return;
    }
    // 2^63 ns is ~292 years; anything at or beyond lands in the overflow
    // bucket rather than overflowing the uint64 conversion.
    constexpr double kMaxNs = 9.0e18;
    const double ns = seconds * 1e9;
    add_ns(ns >= kMaxNs ? std::numeric_limits<std::uint64_t>::max()
                        : static_cast<std::uint64_t>(ns));
  }

  /// Element-wise fold, exact (same shape as OnlineStats::merge).
  void merge(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    dropped_ += other.dropped_;
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : counts_) n += c;
    return n;
  }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t bucket_count(int b) const {
    return counts_[static_cast<std::size_t>(b)];
  }

  /// Quantile q in [0, 1], linearly interpolated inside the containing
  /// bucket (uniform-within-bucket assumption). Deterministic for a fixed
  /// sample multiset; NaN when empty.
  double percentile_ns(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return std::numeric_limits<double>::quiet_NaN();
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double need = q * static_cast<double>(total);
    double cum = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      const double next = cum + static_cast<double>(counts_[b]);
      if (next >= need) {
        const double lo = static_cast<double>(bucket_lower_ns(b));
        const double hi = static_cast<double>(bucket_upper_ns(b));
        const double pos = (need - cum) / static_cast<double>(counts_[b]);
        return lo + (hi - lo) * pos;
      }
      cum = next;
    }
    // Unreachable for consistent counts; keep the compiler satisfied.
    return static_cast<double>(bucket_upper_ns(kBuckets - 1));
  }

  double percentile_s(double q) const { return percentile_ns(q) * 1e-9; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t dropped_ = 0;
};

}  // namespace plf::obs
