// Flight recorder: a crash-durable trail of the last ~256 profiling events
// per thread.
//
// The trace buffer (obs/trace.hpp) answers "what did the whole run do" and is
// written out on clean exit. This module answers the opposite question: the
// process is dying *right now* — a PLF_DCHECK tripped, or an exception
// escaped to std::terminate — what was each thread doing just before? Every
// PLF_PROF_SCOPE exit and PLF_PROF_COUNT hit also appends one fixed-size
// record to a lock-free per-thread ring. The rings cost a handful of relaxed
// atomic stores per event, never allocate after thread start, and are read
// only on the death path, where the dump handler writes the merged rings as
// JSON to stderr and to `plf_flight_<pid>.json` (override the path with the
// PLF_FLIGHT_PATH environment variable).
//
// Two dump triggers exist:
//   - fatal contract violations (PLF_DCHECK / PLF_ASSUME in checked builds):
//     flight.cpp installs itself into plf::detail::set_contract_crash_hook
//     the first time any event is recorded, so no setup call is needed;
//   - std::terminate (uncaught PLF_CHECK throw, etc.): opt-in via
//     install_flight_handlers(), which chains the previous handler.
//
// Event names must be string literals (or otherwise immortal storage): the
// ring stores the pointer, not a copy — the PLF_PROF_* macros guarantee this.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace plf::obs {

/// Events retained per thread. Power of two; oldest events are overwritten.
inline constexpr std::uint32_t kFlightRingSize = 256;

/// Append a completed span to this thread's ring. `name` must be immortal
/// (string literal). Lock-free, allocation-free after the first call on a
/// thread, safe from any thread at any time.
void flight_record_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t dur_ns) noexcept;

/// Append a counter increment to this thread's ring. Same rules as spans.
void flight_record_count(const char* name, std::uint64_t delta) noexcept;

/// Install the std::terminate hook (and the contract crash hook, normally
/// auto-installed on first record). Idempotent; chains any previously
/// installed terminate handler after the dump.
void install_flight_handlers();

/// Write every thread's ring as one JSON document:
///   {"schema":"plf-flight-v1","reason":...,"pid":...,"threads":[
///     {"tid":0,"events":[{"kind":"span","name":...,"t_ns":...,...}, ...]}]}
/// Events within a thread are ordered oldest-first. Not async-signal-safe in
/// the strict sense (streams allocate), but safe for abort/terminate paths.
void write_flight_json(std::ostream& os, const char* reason);

/// Dump all rings to stderr and to the flight file (PLF_FLIGHT_PATH or
/// `plf_flight_<pid>.json` in the working directory). Never throws; used
/// directly as the crash/terminate handler body.
void dump_flight(const char* reason) noexcept;

/// Path dump_flight() will write to, honouring PLF_FLIGHT_PATH.
/// Exposed so tests and docs agree with the implementation.
void flight_dump_path(char* buf, std::uint32_t buf_size) noexcept;

/// Clear every ring's contents (names, timestamps, sequence numbers). For
/// tests that want a deterministic event set; rings themselves stay
/// registered so recording threads keep working.
void flight_reset_for_tests();

}  // namespace plf::obs
