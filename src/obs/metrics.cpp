#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace plf::obs {

namespace {

/// Trace buffer cap across all shards of one registry. A 200-generation
/// profiled mrbayes_lite run emits ~30k spans; the cap bounds pathological
/// runs at ~6 MB of events while counting what was dropped.
constexpr std::uint64_t kMaxTraceEvents = 1u << 18;

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Per-thread slot arrays. Written only by the owning thread; the mutex is
/// contended only when snapshot()/reset() visits, so hot-path locking is
/// uncontended (fast-path CAS) in the steady state. Lock order: a Shard::m
/// is only ever taken alone (recording) or under the registry's mutex_
/// (flush paths); never the reverse.
struct MetricsRegistry::Shard {
  mutable util::Mutex m;  // const flush paths lock shards they only read
  std::vector<std::uint64_t> counters PLF_GUARDED_BY(m);  // indexed by MetricId
  std::vector<OnlineStats> timers PLF_GUARDED_BY(m);      // indexed by MetricId
  std::vector<LatencyHistogram> hists PLF_GUARDED_BY(m);  // with timers
  std::vector<TraceEvent> events PLF_GUARDED_BY(m);
  std::uint32_t tid = 0;  // shard index (immutable once registered)
};

MetricsRegistry::MetricsRegistry() : serial_(next_registry_serial()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::make_shard() {
  util::MutexLock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->tid = static_cast<std::uint32_t>(shards_.size() - 1);
  return *shards_.back();
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() {
  // Thread-local shard cache: (registry serial -> shard). Entries for dead
  // registries are never dereferenced (lookup is by serial, which is never
  // reused), so stale entries are harmless; the vector stays tiny because
  // few registries exist at once.
  struct CacheEntry {
    std::uint64_t serial;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.serial == serial_) return *e.shard;
  }
  Shard& shard = make_shard();
  cache.push_back(CacheEntry{serial_, &shard});
  return shard;
}

MetricId MetricsRegistry::intern(std::string_view name, MetricKind kind) {
  util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].name == name) {
      PLF_CHECK(names_[i].kind == kind,
                "metric '" + std::string(name) +
                    "' already interned with a different kind");
      return static_cast<MetricId>(i);
    }
  }
  names_.push_back(NameEntry{std::string(name), kind});
  gauge_values_.push_back(0.0);
  return static_cast<MetricId>(names_.size() - 1);
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return intern(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::timer(std::string_view name) {
  return intern(name, MetricKind::kTimer);
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  Shard& s = shard_for_this_thread();
  util::MutexLock lock(s.m);
  if (s.counters.size() <= id) s.counters.resize(id + 1, 0);
  s.counters[id] += delta;
}

void MetricsRegistry::record_seconds(MetricId id, double seconds) {
  Shard& s = shard_for_this_thread();
  util::MutexLock lock(s.m);
  if (s.timers.size() <= id) {
    s.timers.resize(id + 1);
    s.hists.resize(id + 1);
  }
  s.timers[id].add(seconds);
  s.hists[id].add_seconds(seconds);
}

void MetricsRegistry::record_span(MetricId id, std::uint64_t start_ns,
                                  std::uint64_t end_ns) {
  if (!tracing_enabled()) return;
  if (trace_count_.fetch_add(1, std::memory_order_relaxed) >= kMaxTraceEvents) {
    trace_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& s = shard_for_this_thread();
  util::MutexLock lock(s.m);
  s.events.push_back(TraceEvent{
      id, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0, s.tid});
}

void MetricsRegistry::set_gauge(MetricId id, double value) {
  util::MutexLock lock(mutex_);
  PLF_CHECK(id < gauge_values_.size() && names_[id].kind == MetricKind::kGauge,
            "set_gauge: id is not a gauge");
  gauge_values_[id] = value;
}

void MetricsRegistry::enable_tracing(bool on) {
  tracing_.store(on, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::trace_events_dropped() const {
  return trace_dropped_.load(std::memory_order_relaxed);
}

Snapshot MetricsRegistry::snapshot() const {
  // TSA finding (docs/STATIC_ANALYSIS.md): this used to copy the shard
  // pointer list under mutex_, release it, then lock each shard — so a
  // thread whose FIRST record raced the flush could register its shard after
  // the list copy and have pre-snapshot samples silently excluded. Holding
  // mutex_ across the whole merge closes that window (make_shard blocks
  // until the flush finishes) and fixes the lock order as: registry mutex_,
  // then Shard::m. Steady-state recording only takes its own shard lock, so
  // the hot path is unaffected.
  util::MutexLock registry_lock(mutex_);
  const std::vector<NameEntry>& names = names_;

  std::vector<std::uint64_t> counter_totals(names.size(), 0);
  std::vector<OnlineStats> timer_totals(names.size());
  std::vector<LatencyHistogram> hist_totals(names.size());
  for (const auto& sp : shards_) {
    const Shard* s = sp.get();
    util::MutexLock lock(s->m);
    for (std::size_t i = 0; i < s->counters.size() && i < names.size(); ++i) {
      counter_totals[i] += s->counters[i];
    }
    for (std::size_t i = 0; i < s->timers.size() && i < names.size(); ++i) {
      timer_totals[i].merge(s->timers[i]);
      hist_totals[i].merge(s->hists[i]);
    }
  }
  const std::vector<double>& gauges = gauge_values_;

  Snapshot snap;
  for (std::size_t i = 0; i < names.size(); ++i) {
    switch (names[i].kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(Snapshot::Counter{names[i].name,
                                                  counter_totals[i]});
        break;
      case MetricKind::kGauge:
        snap.gauges.push_back(Snapshot::Gauge{names[i].name, gauges[i]});
        break;
      case MetricKind::kTimer:
        snap.timers.push_back(
            Snapshot::Timer{names[i].name, timer_totals[i], hist_totals[i]});
        snap.hist_samples_dropped += hist_totals[i].dropped();
        break;
    }
  }
  snap.trace_events_dropped = trace_dropped_.load(std::memory_order_relaxed);
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

std::vector<TraceEvent> MetricsRegistry::trace_events() const {
  // Same flush discipline as snapshot(): hold mutex_ across the merge so a
  // shard registered before the flush cannot be missed.
  util::MutexLock registry_lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& sp : shards_) {
    const Shard* s = sp.get();
    util::MutexLock lock(s->m);
    out.insert(out.end(), s->events.begin(), s->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::string MetricsRegistry::metric_name(MetricId id) const {
  util::MutexLock lock(mutex_);
  PLF_CHECK(id < names_.size(), "metric_name: unknown id");
  return names_[id].name;
}

void MetricsRegistry::reset() {
  // Hold mutex_ across the per-shard clears (flush lock order: mutex_ before
  // Shard::m) so no shard can register mid-reset and be half-cleared.
  util::MutexLock registry_lock(mutex_);
  std::fill(gauge_values_.begin(), gauge_values_.end(), 0.0);
  for (const auto& sp : shards_) {
    Shard* s = sp.get();
    util::MutexLock lock(s->m);
    std::fill(s->counters.begin(), s->counters.end(), 0);
    std::fill(s->timers.begin(), s->timers.end(), OnlineStats{});
    std::fill(s->hists.begin(), s->hists.end(), LatencyHistogram{});
    s->events.clear();
  }
  trace_count_.store(0, std::memory_order_relaxed);
  trace_dropped_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

const Snapshot::Counter* Snapshot::find_counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Snapshot::Gauge* Snapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const Snapshot::Timer* Snapshot::find_timer(std::string_view name) const {
  for (const auto& t : timers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

double Snapshot::timer_total_s(std::string_view name) const {
  const Timer* t = find_timer(name);
  return t == nullptr ? 0.0 : t->stats.total();
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value;
}

double Snapshot::gauge_value(std::string_view name) const {
  const Gauge* g = find_gauge(name);
  return g == nullptr ? 0.0 : g->value;
}

}  // namespace plf::obs
