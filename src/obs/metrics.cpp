#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace plf::obs {

namespace {

/// Trace buffer cap across all shards of one registry. A 200-generation
/// profiled mrbayes_lite run emits ~30k spans; the cap bounds pathological
/// runs at ~6 MB of events while counting what was dropped.
constexpr std::uint64_t kMaxTraceEvents = 1u << 18;

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// Per-thread slot arrays. Written only by the owning thread; the mutex is
/// contended only when snapshot()/reset() visits, so hot-path locking is
/// uncontended (fast-path CAS) in the steady state.
struct MetricsRegistry::Shard {
  mutable std::mutex m;  // const flush paths lock shards they only read
  std::vector<std::uint64_t> counters;  // indexed by MetricId
  std::vector<OnlineStats> timers;      // indexed by MetricId
  std::vector<LatencyHistogram> hists;  // indexed by MetricId, with timers
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;  // shard index, used as the trace thread id
};

MetricsRegistry::MetricsRegistry() : serial_(next_registry_serial()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::make_shard() {
  // Caller holds no locks.
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->tid = static_cast<std::uint32_t>(shards_.size() - 1);
  return *shards_.back();
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() {
  // Thread-local shard cache: (registry serial -> shard). Entries for dead
  // registries are never dereferenced (lookup is by serial, which is never
  // reused), so stale entries are harmless; the vector stays tiny because
  // few registries exist at once.
  struct CacheEntry {
    std::uint64_t serial;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.serial == serial_) return *e.shard;
  }
  Shard& shard = make_shard();
  cache.push_back(CacheEntry{serial_, &shard});
  return shard;
}

MetricId MetricsRegistry::intern(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].name == name) {
      PLF_CHECK(names_[i].kind == kind,
                "metric '" + std::string(name) +
                    "' already interned with a different kind");
      return static_cast<MetricId>(i);
    }
  }
  names_.push_back(NameEntry{std::string(name), kind});
  gauge_values_.push_back(0.0);
  return static_cast<MetricId>(names_.size() - 1);
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return intern(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::timer(std::string_view name) {
  return intern(name, MetricKind::kTimer);
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  Shard& s = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(s.m);
  if (s.counters.size() <= id) s.counters.resize(id + 1, 0);
  s.counters[id] += delta;
}

void MetricsRegistry::record_seconds(MetricId id, double seconds) {
  Shard& s = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(s.m);
  if (s.timers.size() <= id) {
    s.timers.resize(id + 1);
    s.hists.resize(id + 1);
  }
  s.timers[id].add(seconds);
  s.hists[id].add_seconds(seconds);
}

void MetricsRegistry::record_span(MetricId id, std::uint64_t start_ns,
                                  std::uint64_t end_ns) {
  if (!tracing_enabled()) return;
  if (trace_count_.fetch_add(1, std::memory_order_relaxed) >= kMaxTraceEvents) {
    trace_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& s = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(s.m);
  s.events.push_back(TraceEvent{
      id, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0, s.tid});
}

void MetricsRegistry::set_gauge(MetricId id, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  PLF_CHECK(id < gauge_values_.size() && names_[id].kind == MetricKind::kGauge,
            "set_gauge: id is not a gauge");
  gauge_values_[id] = value;
}

void MetricsRegistry::enable_tracing(bool on) {
  tracing_.store(on, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::trace_events_dropped() const {
  return trace_dropped_.load(std::memory_order_relaxed);
}

Snapshot MetricsRegistry::snapshot() const {
  // Copy the name table and gauge values, then merge each shard under its
  // own lock. Writers racing with the flush land in either the current or
  // the next snapshot — both are coherent.
  std::vector<NameEntry> names;
  std::vector<double> gauges;
  std::vector<const Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names = names_;
    gauges = gauge_values_;
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }

  std::vector<std::uint64_t> counter_totals(names.size(), 0);
  std::vector<OnlineStats> timer_totals(names.size());
  std::vector<LatencyHistogram> hist_totals(names.size());
  for (const Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->m);
    for (std::size_t i = 0; i < s->counters.size() && i < names.size(); ++i) {
      counter_totals[i] += s->counters[i];
    }
    for (std::size_t i = 0; i < s->timers.size() && i < names.size(); ++i) {
      timer_totals[i].merge(s->timers[i]);
      hist_totals[i].merge(s->hists[i]);
    }
  }

  Snapshot snap;
  for (std::size_t i = 0; i < names.size(); ++i) {
    switch (names[i].kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(Snapshot::Counter{names[i].name,
                                                  counter_totals[i]});
        break;
      case MetricKind::kGauge:
        snap.gauges.push_back(Snapshot::Gauge{names[i].name, gauges[i]});
        break;
      case MetricKind::kTimer:
        snap.timers.push_back(
            Snapshot::Timer{names[i].name, timer_totals[i], hist_totals[i]});
        snap.hist_samples_dropped += hist_totals[i].dropped();
        break;
    }
  }
  snap.trace_events_dropped = trace_dropped_.load(std::memory_order_relaxed);
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

std::vector<TraceEvent> MetricsRegistry::trace_events() const {
  std::vector<const Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  std::vector<TraceEvent> out;
  for (const Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->m);
    out.insert(out.end(), s->events.begin(), s->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::string MetricsRegistry::metric_name(MetricId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  PLF_CHECK(id < names_.size(), "metric_name: unknown id");
  return names_[id].name;
}

void MetricsRegistry::reset() {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(gauge_values_.begin(), gauge_values_.end(), 0.0);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> lock(s->m);
    std::fill(s->counters.begin(), s->counters.end(), 0);
    std::fill(s->timers.begin(), s->timers.end(), OnlineStats{});
    std::fill(s->hists.begin(), s->hists.end(), LatencyHistogram{});
    s->events.clear();
  }
  trace_count_.store(0, std::memory_order_relaxed);
  trace_dropped_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

const Snapshot::Counter* Snapshot::find_counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const Snapshot::Gauge* Snapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const Snapshot::Timer* Snapshot::find_timer(std::string_view name) const {
  for (const auto& t : timers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

double Snapshot::timer_total_s(std::string_view name) const {
  const Timer* t = find_timer(name);
  return t == nullptr ? 0.0 : t->stats.total();
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value;
}

double Snapshot::gauge_value(std::string_view name) const {
  const Gauge* g = find_gauge(name);
  return g == nullptr ? 0.0 : g->value;
}

}  // namespace plf::obs
