#include "obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "obs/json_util.hpp"
#include "util/contracts.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::obs {

namespace {

enum class EventKind : std::uint8_t { kEmpty = 0, kSpan = 1, kCount = 2 };

/// One ring slot. Every field is a relaxed atomic: a writer publishing a slot
/// and the crash-path reader scanning it never constitute a data race, and a
/// half-written slot is detected (and skipped) via the seq protocol below
/// rather than locked out.
///
/// TSA exemption (docs/STATIC_ANALYSIS.md): Slot and Ring implement a seqlock
/// — no capability is ever held, so there is nothing for Clang's thread
/// safety analysis to track. Correctness rests on the release store of `seq`
/// publishing the payload and the reader's acquire/re-read tear check in
/// snapshot_ring(); the recording path is exercised concurrently by
/// par_stress_test under the tsan preset, which is the right tool for
/// lock-free protocols TSA cannot model. Only the registration list below
/// (Rings) uses a lock, and that one IS annotated.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> t_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};   // spans: duration; counts: delta
  std::atomic<std::uint64_t> seq{0};      // 0 = never written
  std::atomic<std::uint8_t> kind{0};
};

/// Per-thread ring. head counts events ever written; slot i holds the event
/// with seq == i+1 once complete. The writer stores the payload first, then
/// seq with release order; the reader checks seq (acquire) before and after
/// reading the payload and drops the slot if they differ (overwritten
/// mid-read) or if seq doesn't match the expected value for that position.
struct Ring {
  std::atomic<std::uint64_t> head{0};
  Slot slots[kFlightRingSize];
  std::uint32_t tid = 0;
};

/// Registered rings, never deallocated: a crash dump may run during static
/// destruction or after the owning thread exited, so both the list and the
/// rings leak by design.
struct Rings {
  util::Mutex m;
  /// Registration order == tid order. Entries are append-only and never
  /// removed, so the dump paths may copy the list under m and then read the
  /// (immortal, lock-free) rings without holding it.
  std::vector<Ring*> list PLF_GUARDED_BY(m);
};

Rings& rings() {
  static Rings* r = new Rings;  // leaked: see above
  return *r;
}

void crash_hook() noexcept;  // forward

Ring& ring_for_this_thread() {
  thread_local Ring* cached = nullptr;
  if (cached != nullptr) return *cached;
  auto* ring = new Ring;  // leaked: dump may outlive the thread
  Rings& r = rings();
  {
    util::MutexLock lock(r.m);
    ring->tid = static_cast<std::uint32_t>(r.list.size());
    r.list.push_back(ring);
  }
  // First recording thread arms the contract crash hook, so a PLF_DCHECK
  // death dumps the rings without any explicit install call.
  static std::once_flag once;
  std::call_once(once, [] { plf::detail::set_contract_crash_hook(&crash_hook); });
  cached = ring;
  return *ring;
}

void record(EventKind kind, const char* name, std::uint64_t t_ns,
            std::uint64_t dur_ns) noexcept {
  Ring& ring = ring_for_this_thread();
  const std::uint64_t seq = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[seq % kFlightRingSize];
  slot.seq.store(0, std::memory_order_release);  // invalidate while rewriting
  slot.name.store(name, std::memory_order_relaxed);
  slot.t_ns.store(t_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
}

struct SnapshotEvent {
  const char* name;
  std::uint64_t t_ns;
  std::uint64_t dur_ns;
  std::uint64_t seq;
  EventKind kind;
};

/// Read one ring without stopping its writer. Torn slots (seq changed while
/// the payload was read, or still mid-rewrite) are dropped.
std::vector<SnapshotEvent> snapshot_ring(const Ring& ring) {
  std::vector<SnapshotEvent> out;
  out.reserve(kFlightRingSize);
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t lo = head > kFlightRingSize ? head - kFlightRingSize : 0;
  for (std::uint64_t s = lo; s < head; ++s) {
    const Slot& slot = ring.slots[s % kFlightRingSize];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != s + 1) continue;  // overwritten or incomplete
    SnapshotEvent ev;
    ev.name = slot.name.load(std::memory_order_relaxed);
    ev.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    ev.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    ev.seq = seq_before;
    const std::uint64_t seq_after = slot.seq.load(std::memory_order_acquire);
    if (seq_after != seq_before) continue;  // torn: rewritten mid-read
    if (ev.name == nullptr || ev.kind == EventKind::kEmpty) continue;
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEvent& a, const SnapshotEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::atomic<bool> g_dumped{false};
std::terminate_handler g_prev_terminate = nullptr;

void crash_hook() noexcept { dump_flight("contract-violation"); }

[[noreturn]] void terminate_hook() {
  dump_flight("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void flight_record_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t dur_ns) noexcept {
  if (name == nullptr) return;
  record(EventKind::kSpan, name, start_ns, dur_ns);
}

void flight_record_count(const char* name, std::uint64_t delta) noexcept {
  if (name == nullptr) return;
  record(EventKind::kCount, name, 0, delta);
}

void install_flight_handlers() {
  plf::detail::set_contract_crash_hook(&crash_hook);
  static std::once_flag once;
  std::call_once(once, [] {
    g_prev_terminate = std::set_terminate(&terminate_hook);
  });
}

void write_flight_json(std::ostream& os, const char* reason) {
  using detail::json_escape;
  // Copying the list under m (instead of holding m across the dump) is
  // deliberate here, unlike the metrics flush: entries are append-only and
  // rings are immortal, so a stale copy only misses threads whose FIRST
  // event post-dates the crash — and the dump path must touch as few locks
  // as possible while the process is dying.
  std::vector<Ring*> list;
  {
    Rings& r = rings();
    util::MutexLock lock(r.m);
    list = r.list;
  }
  os << "{\"schema\":\"plf-flight-v1\",\"reason\":\""
     << json_escape(reason != nullptr ? reason : "unknown") << "\",\"pid\":"
     << static_cast<std::uint64_t>(::getpid()) << ",\"threads\":[";
  bool first_thread = true;
  for (const Ring* ring : list) {
    const std::vector<SnapshotEvent> events = snapshot_ring(*ring);
    if (!first_thread) os << ",";
    first_thread = false;
    os << "{\"tid\":" << ring->tid << ",\"events\":[";
    bool first_ev = true;
    for (const SnapshotEvent& ev : events) {
      if (!first_ev) os << ",";
      first_ev = false;
      os << "{\"kind\":\""
         << (ev.kind == EventKind::kSpan ? "span" : "count") << "\",\"name\":\""
         << json_escape(ev.name) << "\",\"seq\":" << ev.seq;
      if (ev.kind == EventKind::kSpan) {
        os << ",\"t_ns\":" << ev.t_ns << ",\"dur_ns\":" << ev.dur_ns;
      } else {
        os << ",\"delta\":" << ev.dur_ns;
      }
      os << "}";
    }
    os << "]}";
  }
  os << "]}";
}

void flight_dump_path(char* buf, std::uint32_t buf_size) noexcept {
  if (buf == nullptr || buf_size == 0) return;
  // getenv is not thread-safe against setenv, but nothing in this process
  // mutates the environment after startup and this runs on the death path.
  const char* env = std::getenv("PLF_FLIGHT_PATH");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr && env[0] != '\0') {
    std::snprintf(buf, buf_size, "%s", env);
  } else {
    std::snprintf(buf, buf_size, "plf_flight_%llu.json",
                  static_cast<unsigned long long>(::getpid()));
  }
}

void dump_flight(const char* reason) noexcept {
  // Re-entrancy / double-dump guard: the contract hook and the terminate
  // hook can both fire on one death (abort after terminate), and a crash
  // inside the dump itself must not recurse.
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return;
  try {
    std::ostringstream os;
    write_flight_json(os, reason);
    const std::string json = os.str();
    std::fprintf(stderr, "plf: flight recorder dump (%s):\n%s\n",
                 reason != nullptr ? reason : "unknown", json.c_str());
    std::fflush(stderr);
    char path[512];
    flight_dump_path(path, sizeof(path));
    if (std::FILE* f = std::fopen(path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "plf: flight recorder written to %s\n", path);
      std::fflush(stderr);
    }
  } catch (...) {
    // Dying anyway; a failed dump must not mask the original fault.
  }
}

void flight_reset_for_tests() {
  std::vector<Ring*> list;
  {
    Rings& r = rings();
    util::MutexLock lock(r.m);
    list = r.list;
  }
  for (Ring* ring : list) {
    for (Slot& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
      slot.name.store(nullptr, std::memory_order_relaxed);
      slot.t_ns.store(0, std::memory_order_relaxed);
      slot.dur_ns.store(0, std::memory_order_relaxed);
      slot.kind.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
  g_dumped.store(false, std::memory_order_release);
}

}  // namespace plf::obs
