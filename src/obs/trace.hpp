// JSON exporters: chrome://tracing trace files and metrics snapshots.
//
// The trace writer emits the Trace Event Format's "X" (complete) events —
// one per recorded PLF_PROF_SCOPE span — which chrome://tracing and Perfetto
// load directly. Timestamps are microseconds relative to the earliest
// recorded event, thread ids are registry shard indices (one lane per
// recording thread), so a profiled mrbayes_lite run shows the MCMC
// generations on the caller lane and the ThreadPool worker spans fanning out
// below it — the paper's fine-grain parallel structure, visible.
//
// The metrics writer serializes a Snapshot as a single JSON object
// ({"counters": {...}, "gauges": {...}, "timers": {...}}); timer entries
// carry count/total/mean/min/max/stddev in seconds. Empty timers write min
// and max as null, never Infinity (which JSON cannot represent).
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"

namespace plf::obs {

/// Write every recorded trace event of `registry` as a chrome://tracing
/// JSON document.
void write_chrome_trace(std::ostream& os, const MetricsRegistry& registry);

/// Write a merged snapshot as a JSON object.
void write_metrics_json(std::ostream& os, const Snapshot& snapshot);

}  // namespace plf::obs
