#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/json_util.hpp"

namespace plf::obs {

using detail::json_escape;
using detail::write_json_double;

void write_chrome_trace(std::ostream& os, const MetricsRegistry& registry) {
  const std::vector<TraceEvent> events = registry.trace_events();

  // Name lookups are by interned id; cache them (the id space is tiny).
  std::unordered_map<MetricId, std::string> names;
  for (const TraceEvent& e : events) {
    if (names.find(e.name_id) == names.end()) {
      names.emplace(e.name_id, json_escape(registry.metric_name(e.name_id)));
    }
  }

  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (const TraceEvent& e : events) t0 = std::min(t0, e.start_ns);
  if (events.empty()) t0 = 0;

  const auto old_precision = os.precision(6);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << names[e.name_id]
       << "\",\"cat\":\"plf\",\"ph\":\"X\",\"ts\":"
       << static_cast<double>(e.start_ns - t0) * 1e-3
       << ",\"dur\":" << static_cast<double>(e.dur_ns) * 1e-3
       << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  if (registry.trace_events_dropped() > 0) {
    // Surface truncation inside the trace itself (an instant event at t0).
    if (!first) os << ",";
    os << "{\"name\":\"trace buffer full: "
       << registry.trace_events_dropped()
       << " spans dropped\",\"cat\":\"plf\",\"ph\":\"i\",\"ts\":0,"
          "\"pid\":1,\"tid\":0,\"s\":\"g\"}";
  }
  os << "]}";
  os.precision(old_precision);
}

void write_metrics_json(std::ostream& os, const Snapshot& snapshot) {
  const auto old_precision = os.precision(17);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(c.name) << "\":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(g.name) << "\":";
    write_json_double(os, g.value);
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& t : snapshot.timers) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(t.name) << "\":{\"count\":" << t.stats.count()
       << ",\"total_s\":";
    write_json_double(os, t.stats.total());
    os << ",\"mean_s\":";
    write_json_double(os, t.stats.count() == 0 ? 0.0 : t.stats.mean());
    os << ",\"min_s\":";
    write_json_double(os, t.stats.min());  // NaN when empty -> null
    os << ",\"max_s\":";
    write_json_double(os, t.stats.max());
    os << ",\"stddev_s\":";
    write_json_double(os, t.stats.stddev());
    os << ",\"p50_s\":";
    write_json_double(os, t.hist.percentile_s(0.50));  // NaN when empty -> null
    os << ",\"p95_s\":";
    write_json_double(os, t.hist.percentile_s(0.95));
    os << ",\"p99_s\":";
    write_json_double(os, t.hist.percentile_s(0.99));
    os << "}";
  }
  os << "},\"meta\":{\"trace_events_dropped\":" << snapshot.trace_events_dropped
     << ",\"hist_samples_dropped\":" << snapshot.hist_samples_dropped << "}}";
  os.precision(old_precision);
}

}  // namespace plf::obs
