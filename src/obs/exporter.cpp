#include "obs/exporter.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace plf::obs {

namespace {

using detail::json_escape;
using detail::write_json_double;

void write_rate_fields(std::ostream& os, const TelemetryRate& r) {
  os << "\"proposed\":" << r.proposed << ",\"accepted\":" << r.accepted
     << ",\"rate\":";
  write_json_double(os, r.rate());
}

void write_rate_map(std::ostream& os,
                    const std::vector<TelemetryRate>& rates) {
  os << "{";
  bool first = true;
  for (const TelemetryRate& r : rates) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(r.name) << "\":{";
    write_rate_fields(os, r);
    os << "}";
  }
  os << "}";
}

/// Write `text` to `path` atomically: tmp file in the same directory, then
/// rename over the destination (the same pattern checkpoints use — a reader
/// sees the old complete document or the new one, never a torn mix).
void atomic_write(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    PLF_CHECK(os.good(), "cannot open status file for writing: " + tmp);
    os << text;
    os.flush();
    PLF_CHECK(os.good(), "short write to status file: " + tmp);
  }
  PLF_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot move status file into place: " + path);
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryOptions options,
                                     MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {
  PLF_CHECK(!options_.include_metrics || registry_ != nullptr ||
                (options_.jsonl_path.empty() && options_.status_path.empty()),
            "telemetry: include_metrics requires a registry");
  util::MutexLock lock(m_);
  last_export_ns_ = now_ns();
}

void TelemetryExporter::prepare_resume(std::uint64_t resume_generation) {
  util::MutexLock lock(m_);
  PLF_CHECK(!any_exported_,
            "telemetry: prepare_resume must precede the first export");
  if (options_.jsonl_path.empty()) return;
  std::ifstream in(options_.jsonl_path, std::ios::binary);
  if (!in.good()) return;  // fresh file: nothing to truncate

  // Keep the prefix of records at or before the resume generation. A line
  // that fails to parse is a torn tail write from the crash — drop it and
  // everything after it (later records would break generation monotonicity
  // anyway).
  std::string kept;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double gen = -1.0;
    try {
      gen = json::parse(line).number_or("generation", -1.0);
    } catch (const Error&) {
      break;
    }
    if (gen < 0.0 ||
        static_cast<std::uint64_t>(gen) > resume_generation) {
      break;
    }
    kept += line;
    kept += '\n';
    last_generation_ = static_cast<std::uint64_t>(gen);
    ++records_;
    any_exported_ = true;
  }
  in.close();
  atomic_write(options_.jsonl_path, kept);
}

bool TelemetryExporter::due(std::uint64_t generation) const {
  util::MutexLock lock(m_);
  if (any_exported_ && generation <= last_generation_) return false;
  if (options_.every_generations != 0 &&
      generation % options_.every_generations == 0) {
    return true;
  }
  if (options_.every_wall_s > 0.0) {
    const double since_s =
        static_cast<double>(now_ns() - last_export_ns_) * 1e-9;
    if (since_s >= options_.every_wall_s) return true;
  }
  return false;
}

void TelemetryExporter::write_record_json(std::ostream& os,
                                          const TelemetryRecord& r) const {
  const auto old_precision = os.precision(17);
  os << "{\"schema\":\"" << kSchema << "\",\"generation\":" << r.generation
     << ",\"wall_s\":";
  write_json_double(os, r.wall_s);
  os << ",\"cold\":{\"n_samples\":" << r.n_samples << ",\"ln_likelihood\":";
  write_json_double(os, r.ln_likelihood);
  os << ",\"mean_ln_likelihood\":";
  write_json_double(os, r.mean_ln_likelihood);
  os << ",\"ess\":";
  write_json_double(os, r.ess);
  os << ",\"ess_per_sec\":";
  write_json_double(os, r.ess_per_sec);
  os << ",\"rhat\":";
  write_json_double(os, r.rhat);
  os << "},\"acceptance\":";
  write_rate_map(os, r.acceptance);
  os << ",\"swaps\":{";
  write_rate_fields(os, r.swaps);
  os << ",\"pairs\":";
  write_rate_map(os, r.swap_pairs);
  os << "},\"extra\":{";
  bool first = true;
  for (const auto& [name, value] : r.extra) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_json_double(os, value);
  }
  os << "}";
  if (options_.include_metrics && registry_ != nullptr) {
    os << ",\"metrics\":";
    write_metrics_json(os, registry_->snapshot());
  }
  os << "}";
  os.precision(old_precision);
}

void TelemetryExporter::export_record(const TelemetryRecord& record) {
  const Stopwatch timer;
  util::MutexLock lock(m_);
  std::ostringstream line;
  write_record_json(line, record);
  if (!options_.jsonl_path.empty()) {
    std::ofstream os(options_.jsonl_path, std::ios::binary | std::ios::app);
    PLF_CHECK(os.good(),
              "cannot open telemetry file for append: " + options_.jsonl_path);
    os << line.str() << '\n';
    os.flush();
    PLF_CHECK(os.good(), "short write to telemetry file: " + options_.jsonl_path);
  }
  if (!options_.status_path.empty()) {
    atomic_write(options_.status_path, line.str() + "\n");
  }
  ++records_;
  last_generation_ = record.generation;
  any_exported_ = true;
  last_export_ns_ = now_ns();
  if (registry_ != nullptr) {
    registry_->add(registry_->counter(kCounterTelemetryRecords));
    registry_->record_seconds(registry_->timer(kTimerTelemetryExport),
                              timer.seconds());
  }
}

std::uint64_t TelemetryExporter::records_written() const {
  util::MutexLock lock(m_);
  return records_;
}

std::uint64_t TelemetryExporter::last_generation() const {
  util::MutexLock lock(m_);
  return last_generation_;
}

}  // namespace plf::obs
