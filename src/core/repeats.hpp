// Site-repeat identification for the PLF kernels.
//
// In real alignments many sites induce the same pattern when restricted to a
// subtree: their conditional-likelihood entries at that subtree's root are
// byte-identical (CLVs depend on the tip states below the node and on the
// globally-shared branch lengths/model, not on the site index). BEAGLE and
// epa-ng exploit this by computing each distinct per-node pattern once and
// reusing it (Kobert, Stamatakis, Flouri 2017). This module performs the
// bottom-up identification:
//
//   tip t        class(site c) = state mask of t at c        (<= 16 classes)
//   internal v   class(c) = id of the pair (class_left(c), class_right(c))
//   root         additionally folds in the outgroup tip's mask, matching
//                CondLikeRoot's three-way product
//
// ids are assigned in first-occurrence order, so each class's representative
// site (its first member) is strictly increasing across classes — the kernels
// rely on that for the O(1) bound contract, and the engine's scatter relies
// on every representative preceding its duplicates.
//
// Classes are invariant under branch-length and model changes; only topology
// moves (NNI/SPR) change which sites repeat, and only for the nodes whose
// descendant set changed. The engine invalidates those paths and calls
// refresh() before the next evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phylo/patterns.hpp"
#include "phylo/tree.hpp"
#include "util/aligned.hpp"

namespace plf::core {

/// Runtime policy for the repeat-compacted kernel path
/// (--site-repeats=on|off|auto).
enum class SiteRepeatsMode {
  kOff,   ///< always the dense path
  kOn,    ///< compact whenever a node has any repeated site
  kAuto,  ///< compact only where the per-node compression clears a threshold
};

std::string to_string(SiteRepeatsMode m);

/// Parse an on|off|auto flag value; throws plf::Error on anything else.
SiteRepeatsMode site_repeats_mode_from_string(const std::string& s);

/// kAuto enables the compacted path for a node only when unique classes make
/// up at most this fraction of its sites: below that the skipped arithmetic
/// provably outweighs the scatter pass and index indirection (see
/// docs/SITE_REPEATS.md for the measurement).
inline constexpr double kSiteRepeatsAutoMaxUniqueFraction = 0.9;

/// One internal node's repeat classes over the engine's m patterns.
struct NodeRepeats {
  std::uint32_t n_classes = 0;
  /// site -> repeat-class id (size m; ids dense in [0, n_classes)).
  aligned_vector<std::uint32_t> class_of_site;
  /// class id -> representative (first-occurrence) site. Strictly increasing.
  aligned_vector<std::uint32_t> unique_sites;

  /// Sites per unique class (1.0 = no repeats).
  double compression() const {
    return n_classes == 0 ? 1.0
                          : static_cast<double>(class_of_site.size()) /
                                static_cast<double>(n_classes);
  }
};

/// Repeat classes for every internal node of one (data, tree) pair, with
/// path-wise invalidation for topology moves.
class SiteRepeats {
 public:
  SiteRepeats() = default;

  /// Lazily initialized: all nodes start stale; call refresh() before use.
  SiteRepeats(const phylo::PatternMatrix& data, const phylo::Tree& tree);

  bool initialized() const { return data_ != nullptr; }

  /// Mark `from_node` and every ancestor stale (the nodes whose descendant
  /// set an NNI across the branch above `from_node` can change).
  void invalidate_path(const phylo::Tree& tree, int from_node);

  /// Mark every internal node stale (SPR moves, or initial state).
  void invalidate_all();

  bool any_stale() const { return any_stale_; }

  /// Recompute every stale node's classes, children before parents. The tree
  /// must have the same node-id space as at construction.
  void refresh(const phylo::Tree& tree);

  /// Classes of internal node `id`. Must not be stale (refresh() first).
  const NodeRepeats& node(int id) const;

  std::size_t n_patterns() const { return m_; }

  /// Sites-per-class averaged over all internal nodes (diagnostic; the
  /// engine's stats report the per-call ratios actually realized).
  double mean_compression() const;

 private:
  void rebuild_node(const phylo::Tree& tree, int id);
  /// Child's per-site class ids: tip masks widened, or the child's table.
  const std::uint32_t* child_classes(const phylo::Tree& tree, int child,
                                     std::vector<std::uint32_t>& scratch) const;

  const phylo::PatternMatrix* data_ = nullptr;
  std::size_t m_ = 0;
  std::vector<NodeRepeats> nodes_;  ///< indexed by node id; internals only
  std::vector<char> stale_;
  bool any_stale_ = false;
};

}  // namespace plf::core
