// Batched operation-plan dispatch for the PLF (BEAGLE-style updatePartials).
//
// The per-call engine issues three synchronous backend calls per dirty node
// (down/root, then scale, each with its own spawn/sync barrier) — the
// overhead structure the paper blames for the Fig. 9 scaling loss. A
// `PlfPlan` replaces that with ONE dependency-ordered batch per evaluation:
// every dirty node becomes a `PlfOp` carrying the fused down/root + scale
// argument blocks, and ops are grouped into *dependency levels* such that
//
//   - all ops within a level are mutually independent (no op reads another
//     same-level op's output), and
//   - every op's children are scheduled in a strictly earlier level (or are
//     not in the plan at all, i.e. their CLVs are already valid).
//
// Each backend then executes the batch its own way: the base
// ExecutionBackend::run_plan loops ops through the per-call entries
// (bit-identical to per-call dispatch by construction), the threaded backend
// opens one parallel region per level with down+scale fused per site chunk
// (~3 barriers/node -> 1 barrier/level), and the GPU backend keeps each op's
// CLV block device-resident between the down and scale kernels, coalescing
// the PCIe round trip. See docs/EXECUTION_PLAN.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "core/repeats.hpp"
#include "phylo/tree.hpp"

namespace plf::core {

/// Engine dispatch strategy (--dispatch=percall|plan). Results are required
/// to be bit-identical; plan dispatch is the default and per-call dispatch is
/// kept as the A/B baseline for the fusion ablation.
enum class DispatchMode {
  kPerCall,  ///< three synchronous backend calls per dirty node
  kPlan,     ///< one dependency-leveled batch per evaluation
};

std::string to_string(DispatchMode m);

/// Parse a percall|plan flag value; throws plf::Error on anything else.
DispatchMode dispatch_mode_from_string(const std::string& s);

/// Which kernel entry recomputes an op fastest. The generic argument block
/// (PlfOp::args) is ALWAYS fully populated regardless of kind, so executors
/// without tip-specialized paths (the base per-call loop, Cell, GPU) simply
/// ignore the hint and stay bit-identical; specialization itself is exact
/// (docs/KERNELS.md).
enum class PlfOpKind : std::uint8_t {
  kGeneric,   ///< down/root with per-site child-kind dispatch
  kTipInner,  ///< left child tip, right internal (engine canonicalizes)
  kTipTip,    ///< cherry: both children tips, pair-table gather (PlfOp::tt)
};

/// One node recomputation: the fused down/root + scale invocation. The
/// argument blocks are fully resolved at plan-build time (child CLV pointers
/// already refer to the buffer the child's own op will write), so executing
/// an op never consults engine state.
struct PlfOp {
  int node = phylo::kNoNode;
  int left = phylo::kNoNode;   ///< child node ids (tip or internal)
  int right = phylo::kNoNode;
  bool is_root = false;        ///< CondLikeRoot (three-way) vs CondLikeDown
  /// args.down is always the kernel input; the outgroup members are set only
  /// when is_root.
  RootArgs args;
  /// Tip specialization hint; `tt` is populated (and contract-checked
  /// against args.down) only when kind == kTipTip.
  PlfOpKind kind = PlfOpKind::kGeneric;
  TipTipArgs tt;
  /// Fused rescale of the op's own output: scale.cl aliases args.down.out
  /// (contract-checked), so a backend may run it per site chunk immediately
  /// after the down/root kernel — rescaling is per-site.
  ScaleArgs scale;
  /// Sites the kernels iterate: the compacted class count when `repeats` is
  /// set, else the full pattern count.
  std::size_t run_m = 0;
  /// Non-null when the op computes repeat-class representatives only; the
  /// executor must scatter (scatter_op) after the op's kernels and before
  /// any later-level op reads this node's CLV.
  const NodeRepeats* repeats = nullptr;
};

/// A dependency-leveled batch of PlfOps. Build with add() (any level order),
/// then finalize() groups ops by level — stably, so within a level the
/// engine's postorder insertion order is preserved.
class PlfPlan {
 public:
  /// Start a new plan over `n_nodes` tree nodes and `m` dense patterns.
  void reset(std::size_t n_nodes, std::size_t m);

  void add(const PlfOp& op, std::size_t level);

  /// Group ops by level (counting sort; stable) and index nodes -> levels.
  void finalize();

  bool finalized() const { return finalized_; }
  bool empty() const { return ops_.empty(); }
  std::size_t n_ops() const { return ops_.size(); }
  std::size_t n_levels() const {
    return level_offsets_.empty() ? 0 : level_offsets_.size() - 1;
  }
  std::size_t m() const { return m_; }

  /// Ops sorted by level after finalize(); level l occupies
  /// [level_begin(l), level_end(l)).
  const std::vector<PlfOp>& ops() const { return ops_; }
  std::size_t level_begin(std::size_t level) const {
    return level_offsets_[level];
  }
  std::size_t level_end(std::size_t level) const {
    return level_offsets_[level + 1];
  }

  /// Level of the op recomputing `node`, or -1 when `node` has no op.
  int level_of_node(int node) const;

 private:
  std::vector<PlfOp> ops_;
  std::vector<std::size_t> op_level_;        ///< pre-finalize, parallel to ops_
  std::vector<std::size_t> level_offsets_;   ///< size n_levels()+1 once final
  std::vector<int> node_level_;              ///< node id -> level, -1 outside
  std::size_t m_ = 0;
  bool finalized_ = false;
};

/// Dependency levels for a recompute set: level[id] = -1 for nodes outside
/// the set, else 1 + max over in-set internal children (0 when all inputs
/// are already valid). `recompute` is indexed by node id over tree.n_nodes();
/// entries for leaves are ignored. This is the topological partition the
/// plan property tests verify directly.
std::vector<int> compute_levels(const phylo::Tree& tree,
                                const std::vector<char>& recompute);

/// Copy each repeat class's representative CLV block and scaler entry to the
/// class's duplicate sites (representatives are first occurrences, so every
/// source block is final before it is copied forward).
void scatter_repeats(const NodeRepeats& nr, std::size_t K, float* cl,
                     float* ln_scaler);

/// scatter_repeats for a finished op (no-op when the op ran dense).
void scatter_op(const PlfOp& op);

}  // namespace plf::core
