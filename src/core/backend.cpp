#include "core/backend.hpp"

#include <vector>

namespace plf::core {

void SerialBackend::run_down(const KernelSet& ks, const DownArgs& a,
                             std::size_t m) {
  ks.down(a, 0, m);
}
void SerialBackend::run_root(const KernelSet& ks, const RootArgs& a,
                             std::size_t m) {
  ks.root(a, 0, m);
}
void SerialBackend::run_scale(const KernelSet& ks, const ScaleArgs& a,
                              std::size_t m) {
  ks.scale(a, 0, m);
}
double SerialBackend::run_root_reduce(const KernelSet& ks,
                                      const RootReduceArgs& a, std::size_t m) {
  return ks.root_reduce(a, 0, m);
}

std::string ThreadedBackend::name() const {
  return "threads(" + std::to_string(pool_.size()) + ")";
}

void ThreadedBackend::run_down(const KernelSet& ks, const DownArgs& a,
                               std::size_t m) {
  pool_.parallel_for(0, m, [&](par::Range r, std::size_t) {
    ks.down(a, r.begin, r.end);
  });
}

void ThreadedBackend::run_root(const KernelSet& ks, const RootArgs& a,
                               std::size_t m) {
  pool_.parallel_for(0, m, [&](par::Range r, std::size_t) {
    ks.root(a, r.begin, r.end);
  });
}

void ThreadedBackend::run_scale(const KernelSet& ks, const ScaleArgs& a,
                                std::size_t m) {
  pool_.parallel_for(0, m, [&](par::Range r, std::size_t) {
    ks.scale(a, r.begin, r.end);
  });
}

double ThreadedBackend::run_root_reduce(const KernelSet& ks,
                                        const RootReduceArgs& a,
                                        std::size_t m) {
  // Deterministic for a fixed thread count: static partitioning with the
  // partial sums combined in thread order.
  std::vector<double> partial(pool_.size(), 0.0);
  pool_.parallel_for(
      0, m,
      [&](par::Range r, std::size_t tid) {
        partial[tid] = ks.root_reduce(a, r.begin, r.end);
      },
      par::Schedule::kStatic);
  double sum = 0.0;
  for (double p : partial) sum += p;
  return sum;
}

}  // namespace plf::core
