#include "core/backend.hpp"

#include <algorithm>
#include <vector>

#include "core/kernel_contracts.hpp"
#include "obs/names.hpp"
#include "obs/profile.hpp"

namespace plf::core {

namespace {

/// One plan op's fused down/root + rescale over [begin, end), dispatched by
/// the op's specialization kind. Every path is a per-site composition of the
/// unfused kernels (or an exact-precomputation gather), so regrouping
/// (op, chunk) work through this helper stays bit-identical to the per-call
/// loop — the invariant the backend_diff twins pin down.
inline void run_op_fused(const KernelSet& ks, const PlfOp& op,
                         std::size_t begin, std::size_t end) {
  if (op.is_root) {
    ks.root_scale(op.args, op.scale, begin, end);
    return;
  }
  switch (op.kind) {
    case PlfOpKind::kTipTip:
      ks.down_tt_scale(op.tt, op.scale, begin, end);
      break;
    case PlfOpKind::kTipInner:
      ks.down_ti_scale(op.args.down, op.scale, begin, end);
      break;
    case PlfOpKind::kGeneric:
      ks.down_scale(op.args.down, op.scale, begin, end);
      break;
  }
}

}  // namespace

void ExecutionBackend::run_plan(const KernelSet& ks, const PlfPlan& plan) {
  detail::check_plan(plan);
  // Reference executor: ops in plan (level) order through the per-call
  // entries. Level order subsumes the engine's postorder, so this is
  // bit-identical to per-call dispatch — and keeps the per-kernel plf.*
  // timer attribution, since each call still runs under its own scope on
  // the calling thread.
  for (const PlfOp& op : plan.ops()) {
    if (op.is_root) {
      PLF_PROF_SCOPE(obs::kTimerCondLikeRoot);
      run_root(ks, op.args, op.run_m);
    } else {
      PLF_PROF_SCOPE(obs::kTimerCondLikeDown);
      run_down(ks, op.args.down, op.run_m);
    }
    {
      PLF_PROF_SCOPE(obs::kTimerCondLikeScaler);
      run_scale(ks, op.scale, op.run_m);
    }
    if (op.repeats != nullptr) {
      PLF_PROF_SCOPE(obs::kTimerRepeatScatter);
      scatter_op(op);
    }
  }
}

void SerialBackend::run_down(const KernelSet& ks, const DownArgs& a,
                             std::size_t m) {
  ks.down(a, 0, m);
}
void SerialBackend::run_root(const KernelSet& ks, const RootArgs& a,
                             std::size_t m) {
  ks.root(a, 0, m);
}
void SerialBackend::run_scale(const KernelSet& ks, const ScaleArgs& a,
                              std::size_t m) {
  ks.scale(a, 0, m);
}
double SerialBackend::run_root_reduce(const KernelSet& ks,
                                      const RootReduceArgs& a, std::size_t m) {
  return ks.root_reduce(a, 0, m);
}

void SerialBackend::run_plan(const KernelSet& ks, const PlfPlan& plan) {
  detail::check_plan(plan);
  // Plan order through the fused entries: one CLV sweep per op (down/root +
  // rescale in the same pass) and the tip-specialized gathers where the
  // engine marked them. The rescale time lands in the down/root timer —
  // that is the point of fusion; there is no separate scaler pass left.
  for (const PlfOp& op : plan.ops()) {
    if (op.is_root) {
      PLF_PROF_SCOPE(obs::kTimerCondLikeRoot);
      run_op_fused(ks, op, 0, op.run_m);
    } else {
      PLF_PROF_SCOPE(obs::kTimerCondLikeDown);
      run_op_fused(ks, op, 0, op.run_m);
    }
    if (op.repeats != nullptr) {
      PLF_PROF_SCOPE(obs::kTimerRepeatScatter);
      scatter_op(op);
    }
  }
}

std::string ThreadedBackend::name() const {
  return "threads(" + std::to_string(pool_.size()) + ")";
}

void ThreadedBackend::run_down(const KernelSet& ks, const DownArgs& a,
                               std::size_t m) {
  pool_.parallel_for(0, m, [&](par::Range r, std::size_t) {
    ks.down(a, r.begin, r.end);
  });
}

void ThreadedBackend::run_root(const KernelSet& ks, const RootArgs& a,
                               std::size_t m) {
  pool_.parallel_for(0, m, [&](par::Range r, std::size_t) {
    ks.root(a, r.begin, r.end);
  });
}

void ThreadedBackend::run_scale(const KernelSet& ks, const ScaleArgs& a,
                                std::size_t m) {
  pool_.parallel_for(0, m, [&](par::Range r, std::size_t) {
    ks.scale(a, r.begin, r.end);
  });
}

double ThreadedBackend::run_root_reduce(const KernelSet& ks,
                                        const RootReduceArgs& a,
                                        std::size_t m) {
  // Deterministic for a fixed thread count: static partitioning with the
  // partial sums combined in thread order.
  std::vector<double> partial(pool_.size(), 0.0);
  pool_.parallel_for(
      0, m,
      [&](par::Range r, std::size_t tid) {
        partial[tid] = ks.root_reduce(a, r.begin, r.end);
      },
      par::Schedule::kStatic);
  double sum = 0.0;
  for (double p : partial) sum += p;
  return sum;
}

void ThreadedBackend::run_plan(const KernelSet& ks, const PlfPlan& plan) {
  detail::check_plan(plan);
  // Two fusion regimes, both exact because every kernel is per-site
  // elementwise: site c of an op's output depends only on site c of its
  // children (and rescaling is per-site), so for a FIXED chunk partition any
  // regrouping of (op, chunk) work onto workers computes bit-identical
  // results, in any order that keeps each chunk's ops in level order.
  //
  //  - Vertical: a maximal run of levels whose ops are all dense and
  //    full-width executes as ONE parallel region over [0, m): each worker
  //    runs the entire op chain — down/root + scale per op, in plan order —
  //    over its own site chunk. No worker ever reads a chunk another worker
  //    wrote, so no intra-run barrier is needed at all: a k-node dirty path
  //    costs 1 region instead of per-call's 2k, and a child's chunk is still
  //    cache-hot when the parent op consumes it.
  //  - Horizontal: a level containing repeat-compacted ops cannot cross the
  //    next level without a barrier (a duplicate site's representative may
  //    live in another worker's chunk, so the caller-thread scatter must
  //    wait for the end-of-region barrier). Such a level concatenates its
  //    ops into one iteration space (prefix sums over run_m) and fuses
  //    down+scale per segment — 1 region per level vs per-call's 2 per op.
  const std::vector<PlfOp>& ops = plan.ops();
  std::vector<std::size_t> offs;
  std::size_t level = 0;
  while (level < plan.n_levels()) {
    // Extend the vertical run [level, vend): dense full-width levels only.
    std::size_t vend = level;
    for (; vend < plan.n_levels(); ++vend) {
      bool dense = true;
      for (std::size_t i = plan.level_begin(vend); i < plan.level_end(vend);
           ++i) {
        if (ops[i].repeats != nullptr || ops[i].run_m != plan.m()) {
          dense = false;
          break;
        }
      }
      if (!dense) break;
    }

    if (vend > level) {
      const std::size_t ob = plan.level_begin(level);
      const std::size_t oe = plan.level_end(vend - 1);
      for (std::size_t l = level; l < vend; ++l) {
        PLF_PROF_COUNT(obs::kCounterPlanLevels, 1);
        PLF_PROF_COUNT(obs::kCounterPlanOps,
                       plan.level_end(l) - plan.level_begin(l));
      }
      PLF_PROF_COUNT(obs::kCounterPlanRegionsSaved, 2 * (oe - ob) - 1);
      {
        PLF_PROF_SCOPE(obs::kTimerPlanLevel);
        pool_.parallel_for(0, plan.m(), [&](par::Range r, std::size_t) {
          for (std::size_t i = ob; i < oe; ++i) {
            run_op_fused(ks, ops[i], r.begin, r.end);
          }
        });
      }
      level = vend;
      continue;
    }

    // Horizontal: this level holds compacted (or partial-width) ops.
    const std::size_t lb = plan.level_begin(level);
    const std::size_t n_ops = plan.level_end(level) - lb;
    offs.assign(n_ops + 1, 0);
    for (std::size_t i = 0; i < n_ops; ++i) {
      offs[i + 1] = offs[i] + ops[lb + i].run_m;
    }
    const std::size_t total = offs[n_ops];
    PLF_PROF_COUNT(obs::kCounterPlanLevels, 1);
    PLF_PROF_COUNT(obs::kCounterPlanOps, n_ops);
    PLF_PROF_COUNT(obs::kCounterPlanRegionsSaved, 2 * n_ops - 1);
    ++level;
    if (total == 0) continue;

    {
      PLF_PROF_SCOPE(obs::kTimerPlanLevel);
      pool_.parallel_for(0, total, [&](par::Range r, std::size_t) {
        // First op whose [offs[i], offs[i+1]) range contains r.begin.
        std::size_t i =
            static_cast<std::size_t>(
                std::upper_bound(offs.begin(), offs.end(), r.begin) -
                offs.begin()) -
            1;
        for (std::size_t pos = r.begin; pos < r.end; ++i) {
          const PlfOp& op = ops[lb + i];
          const std::size_t seg_end = std::min(r.end, offs[i + 1]);
          const std::size_t b = pos - offs[i];
          const std::size_t e = seg_end - offs[i];
          run_op_fused(ks, op, b, e);
          pos = seg_end;
        }
      });
    }

    for (std::size_t i = 0; i < n_ops; ++i) {
      const PlfOp& op = ops[lb + i];
      if (op.repeats != nullptr) {
        PLF_PROF_SCOPE(obs::kTimerRepeatScatter);
        scatter_op(op);
      }
    }
  }
}

}  // namespace plf::core
