// SIMD "approach (i)" from the paper (§3.3, §3.4): vectorize each inner
// product individually with row-wise matrix access. The original formulation
// ended every inner product in its own horizontal sum (4 shuffle+add chains
// per matrix-vector product) and then rebuilt a vector from the four scalar
// results — that scalar round trip is what made this variant slower than the
// plain scalar kernel (see docs/KERNELS.md for the before/after microbench).
// The reduction now computes all four inner products together: multiply the
// four matrix rows by the child vector, transpose the 4×4 block of partial
// products, and add the columns pairwise. The (a0+a1)+(a2+a3) association is
// exactly the association Vec4f::hsum used, so results are bit-identical to
// the old formulation — only the shuffle count changes (one 4×4 transpose vs
// four hsum chains plus a setr). Approach (i) remains the ablation baseline
// against approach (ii) (bench_ablation_cell_simd / bench_ablation_gpu_threads).
#include <cmath>

#include "core/kernel_contracts.hpp"
#include "core/kernels.hpp"
#include "simd/vec4f.hpp"

namespace plf::core {

namespace {

using simd::Vec4f;

/// Four row-wise inner products of one matrix-vector multiply, reduced
/// together via transpose. Bit-identical to four hsum() calls (same sum
/// association), without the per-product scalar extraction.
inline Vec4f matvec_rows(const float* p, const Vec4f& clv) {
  Vec4f r0 = Vec4f::load(p + 0) * clv;
  Vec4f r1 = Vec4f::load(p + 4) * clv;
  Vec4f r2 = Vec4f::load(p + 8) * clv;
  Vec4f r3 = Vec4f::load(p + 12) * clv;
  simd::transpose4(r0, r1, r2, r3);
  return (r0 + r1) + (r2 + r3);
}

/// One child's factor for (c, k) with row-wise matrix access.
inline Vec4f child_values(const ChildArgs& ch, std::size_t c, std::size_t k,
                          std::size_t K) {
  if (ch.is_tip()) {
    return Vec4f::load(ch.tp + static_cast<std::size_t>(ch.mask[c]) * K * 4 +
                       k * 4);
  }
  const float* cl = ch.cl + c * K * 4 + k * 4;
  return matvec_rows(ch.p + k * 16, Vec4f::load(cl));
}

inline void down_site(std::size_t c, const DownArgs& a) {
  float* out = a.out + c * a.K * 4;
  for (std::size_t k = 0; k < a.K; ++k) {
    const Vec4f l = child_values(a.left, c, k, a.K);
    const Vec4f r = child_values(a.right, c, k, a.K);
    (l * r).store(out + k * 4);
  }
}

/// down_site with the child kinds known statically (left tip, right inner).
inline void down_ti_site(std::size_t c, const DownArgs& a) {
  float* out = a.out + c * a.K * 4;
  const float* ltp =
      a.left.tp + static_cast<std::size_t>(a.left.mask[c]) * a.K * 4;
  const float* rcl = a.right.cl + c * a.K * 4;
  for (std::size_t k = 0; k < a.K; ++k) {
    const Vec4f l = Vec4f::load(ltp + k * 4);
    const Vec4f r = matvec_rows(a.right.p + k * 16, Vec4f::load(rcl + k * 4));
    (l * r).store(out + k * 4);
  }
}

inline void root_site(std::size_t c, const RootArgs& a) {
  const DownArgs& d = a.down;
  float* out = d.out + c * d.K * 4;
  const float* tp = a.out_tp + static_cast<std::size_t>(a.out_mask[c]) * d.K * 4;
  for (std::size_t k = 0; k < d.K; ++k) {
    const Vec4f l = child_values(d.left, c, k, d.K);
    const Vec4f r = child_values(d.right, c, k, d.K);
    const Vec4f o = Vec4f::load(tp + k * 4);
    (l * r * o).store(out + k * 4);
  }
}

inline void scale_site(std::size_t c, const ScaleArgs& a) {
  float* cl = a.cl + c * a.K * 4;
  Vec4f m = Vec4f::load(cl);
  for (std::size_t k = 1; k < a.K; ++k) {
    m = Vec4f::max(m, Vec4f::load(cl + k * 4));
  }
  const float mx = m.hmax();
  if (mx > 0.0f) {
    const Vec4f inv(1.0f / mx);
    for (std::size_t k = 0; k < a.K; ++k) {
      (Vec4f::load(cl + k * 4) * inv).store(cl + k * 4);
    }
    a.ln_scaler[c] = std::log(mx);
  } else {
    a.ln_scaler[c] = 0.0f;
  }
}

void down_row(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/false);
  detail::check_down_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site(c, a);
  }
}

void down_ti_row(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/false);
  detail::check_down_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site(c, a);
  }
}

void root_row(const RootArgs& a, std::size_t begin, std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/false);
  detail::check_root_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site(c, a);
  }
}

void scale_simd(const ScaleArgs& a, std::size_t begin, std::size_t end) {
  detail::check_scale(a, begin, end);
  PLF_DCHECK_ALIGNED(a.cl, detail::kKernelAlignBytes);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    scale_site(c, a);
  }
}

void down_scale_row(const DownArgs& a, const ScaleArgs& s, std::size_t begin,
                    std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/false);
  detail::check_down_aligned(a);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site(c, a);
    scale_site(c, s);
  }
}

void down_ti_scale_row(const DownArgs& a, const ScaleArgs& s,
                       std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/false);
  detail::check_down_aligned(a);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site(c, a);
    scale_site(c, s);
  }
}

void root_scale_row(const RootArgs& a, const ScaleArgs& s, std::size_t begin,
                    std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/false);
  detail::check_root_aligned(a);
  detail::check_fused_scale(s, a.down.out, a.down.K, a.down.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site(c, a);
    scale_site(c, s);
  }
}

double root_reduce_simd(const RootReduceArgs& a, std::size_t begin,
                        std::size_t end) {
  detail::check_root_reduce(a, begin, end);
  PLF_DCHECK_ALIGNED(a.cl, detail::kKernelAlignBytes);
  const Vec4f pi(a.pi[0], a.pi[1], a.pi[2], a.pi[3]);
  const double inv_k = 1.0 / static_cast<double>(a.K);
  double partial = 0.0;
  for (std::size_t c = begin; c < end; ++c) {
    const float* cl = a.cl + c * a.K * 4;
    Vec4f acc;
    for (std::size_t k = 0; k < a.K; ++k) {
      acc = Vec4f::fma(pi, Vec4f::load(cl + k * 4), acc);
    }
    const double site = static_cast<double>(acc.hsum());
    partial += static_cast<double>(a.weights[c]) *
               site_log_likelihood(site * inv_k, a.ln_scaler_total[c], a, c);
  }
  return partial;
}

}  // namespace

namespace detail {
extern const KernelSet kSimdRowKernels;
const KernelSet kSimdRowKernels{KernelVariant::kSimdRow,
                                down_row,
                                root_row,
                                scale_simd,
                                root_reduce_simd,
                                down_ti_row,
                                down_tip_tip,
                                down_scale_row,
                                down_ti_scale_row,
                                down_tip_tip_scale,
                                root_scale_row};
// Shared by the column-wise variants (the scale/reduce kernels do not differ
// between row- and column-wise matrix access).
extern const ScaleFn kSharedSimdScale;
const ScaleFn kSharedSimdScale = scale_simd;
extern const RootReduceFn kSharedSimdRootReduce;
const RootReduceFn kSharedSimdRootReduce = root_reduce_simd;
}  // namespace detail

}  // namespace plf::core
