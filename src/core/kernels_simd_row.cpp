// SIMD "approach (i)" from the paper (§3.3, §3.4): vectorize each inner
// product individually. Each of the four per-category inner products loads a
// row of the transition matrix, multiplies element-wise with the child's
// 4-float rate array and reduces horizontally. The horizontal reduction after
// every inner product is exactly the inefficiency that made the paper prefer
// approach (ii); we keep it as the ablation baseline
// (bench_ablation_cell_simd / bench_ablation_gpu_threads).
#include <cmath>

#include "core/kernel_contracts.hpp"
#include "core/kernels.hpp"
#include "simd/vec4f.hpp"

namespace plf::core {

namespace {

using simd::Vec4f;

/// One child's factor for (c, k) with per-inner-product reduction.
inline Vec4f child_values(const ChildArgs& ch, std::size_t c, std::size_t k,
                          std::size_t K) {
  if (ch.is_tip()) {
    return Vec4f::load(ch.tp + static_cast<std::size_t>(ch.mask[c]) * K * 4 +
                       k * 4);
  }
  const float* cl = ch.cl + c * K * 4 + k * 4;
  const float* p = ch.p + k * 16;
  const Vec4f clv = Vec4f::load(cl);
  // Four row-wise inner products, each ending in a horizontal sum.
  const float s0 = (Vec4f::load(p + 0) * clv).hsum();
  const float s1 = (Vec4f::load(p + 4) * clv).hsum();
  const float s2 = (Vec4f::load(p + 8) * clv).hsum();
  const float s3 = (Vec4f::load(p + 12) * clv).hsum();
  return Vec4f(s0, s1, s2, s3);
}

void down_row(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/false);
  detail::check_down_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    float* out = a.out + c * a.K * 4;
    for (std::size_t k = 0; k < a.K; ++k) {
      const Vec4f l = child_values(a.left, c, k, a.K);
      const Vec4f r = child_values(a.right, c, k, a.K);
      (l * r).store(out + k * 4);
    }
  }
}

void root_row(const RootArgs& a, std::size_t begin, std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/false);
  detail::check_root_aligned(a);
  const DownArgs& d = a.down;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = d.site_index != nullptr ? d.site_index[idx] : idx;
    float* out = d.out + c * d.K * 4;
    const float* tp =
        a.out_tp + static_cast<std::size_t>(a.out_mask[c]) * d.K * 4;
    for (std::size_t k = 0; k < d.K; ++k) {
      const Vec4f l = child_values(d.left, c, k, d.K);
      const Vec4f r = child_values(d.right, c, k, d.K);
      const Vec4f o = Vec4f::load(tp + k * 4);
      (l * r * o).store(out + k * 4);
    }
  }
}

void scale_simd(const ScaleArgs& a, std::size_t begin, std::size_t end) {
  detail::check_scale(a, begin, end);
  PLF_DCHECK_ALIGNED(a.cl, detail::kKernelAlignBytes);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    float* cl = a.cl + c * a.K * 4;
    Vec4f m = Vec4f::load(cl);
    for (std::size_t k = 1; k < a.K; ++k) {
      m = Vec4f::max(m, Vec4f::load(cl + k * 4));
    }
    const float mx = m.hmax();
    if (mx > 0.0f) {
      const Vec4f inv(1.0f / mx);
      for (std::size_t k = 0; k < a.K; ++k) {
        (Vec4f::load(cl + k * 4) * inv).store(cl + k * 4);
      }
      a.ln_scaler[c] = std::log(mx);
    } else {
      a.ln_scaler[c] = 0.0f;
    }
  }
}

double root_reduce_simd(const RootReduceArgs& a, std::size_t begin,
                        std::size_t end) {
  detail::check_root_reduce(a, begin, end);
  PLF_DCHECK_ALIGNED(a.cl, detail::kKernelAlignBytes);
  const Vec4f pi(a.pi[0], a.pi[1], a.pi[2], a.pi[3]);
  const double inv_k = 1.0 / static_cast<double>(a.K);
  double partial = 0.0;
  for (std::size_t c = begin; c < end; ++c) {
    const float* cl = a.cl + c * a.K * 4;
    Vec4f acc;
    for (std::size_t k = 0; k < a.K; ++k) {
      acc = Vec4f::fma(pi, Vec4f::load(cl + k * 4), acc);
    }
    const double site = static_cast<double>(acc.hsum());
    partial += static_cast<double>(a.weights[c]) *
               site_log_likelihood(site * inv_k, a.ln_scaler_total[c], a, c);
  }
  return partial;
}

}  // namespace

namespace detail {
extern const KernelSet kSimdRowKernels;
const KernelSet kSimdRowKernels{KernelVariant::kSimdRow, down_row, root_row,
                                scale_simd, root_reduce_simd};
// Shared by the column-wise variants (the scale/reduce kernels do not differ
// between row- and column-wise matrix access).
extern const ScaleFn kSharedSimdScale;
const ScaleFn kSharedSimdScale = scale_simd;
extern const RootReduceFn kSharedSimdRootReduce;
const RootReduceFn kSharedSimdRootReduce = root_reduce_simd;
}  // namespace detail

}  // namespace plf::core
