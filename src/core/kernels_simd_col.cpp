// SIMD "approach (ii)" from the paper (§3.3): vectorize ACROSS the four
// inner products of one matrix-vector multiply. The accumulator holds the
// four output states; each step broadcasts one element of the child's rate
// array and multiplies it with one COLUMN of the transition matrix (a row of
// the precomputed transpose), fused-multiply-accumulating. No horizontal
// reduction is needed until the very end of the likelihood computation.
// The paper measured this 2x faster at the PLF level on the SPU and adopted
// it; it maps 1:1 onto SSE here.
//
// kSimdCol8 widens the same scheme to 8 lanes (two rate categories per
// register), a modern-host extension the 2009 hardware did not have.
#include <cmath>

#include "core/kernel_contracts.hpp"
#include "core/kernels.hpp"
#include "simd/vec4f.hpp"
#include "simd/vec8f.hpp"

namespace plf::core {

namespace detail {
extern const ScaleFn kSharedSimdScale;
extern const RootReduceFn kSharedSimdRootReduce;
}  // namespace detail

namespace {

using simd::Vec4f;
using simd::Vec8f;

/// Column-wise matrix-vector multiply: broadcast cl[j], FMA with transposed
/// row j.
inline Vec4f matvec_cols(const float* pt, const float* cl) {
  Vec4f acc = Vec4f(cl[0]) * Vec4f::load(pt + 0);
  acc = Vec4f::fma(Vec4f(cl[1]), Vec4f::load(pt + 4), acc);
  acc = Vec4f::fma(Vec4f(cl[2]), Vec4f::load(pt + 8), acc);
  acc = Vec4f::fma(Vec4f(cl[3]), Vec4f::load(pt + 12), acc);
  return acc;
}

/// One child's factor for (c, k): column-wise accumulation over j.
inline Vec4f child_values(const ChildArgs& ch, std::size_t c, std::size_t k,
                          std::size_t K) {
  if (ch.is_tip()) {
    return Vec4f::load(ch.tp + static_cast<std::size_t>(ch.mask[c]) * K * 4 +
                       k * 4);
  }
  return matvec_cols(ch.pt + k * 16, ch.cl + c * K * 4 + k * 4);
}

/// Per-site SIMD rescale body. Same float ops as the shared scale kernel in
/// kernels_simd_row.cpp (max is order-invariant; identical 1/max multiply),
/// duplicated here so the fused entries can inline it.
inline void scale_site(std::size_t c, const ScaleArgs& a) {
  float* cl = a.cl + c * a.K * 4;
  Vec4f m = Vec4f::load(cl);
  for (std::size_t k = 1; k < a.K; ++k) {
    m = Vec4f::max(m, Vec4f::load(cl + k * 4));
  }
  const float mx = m.hmax();
  if (mx > 0.0f) {
    const Vec4f inv(1.0f / mx);
    for (std::size_t k = 0; k < a.K; ++k) {
      (Vec4f::load(cl + k * 4) * inv).store(cl + k * 4);
    }
    a.ln_scaler[c] = std::log(mx);
  } else {
    a.ln_scaler[c] = 0.0f;
  }
}

inline void down_site(std::size_t c, const DownArgs& a) {
  float* out = a.out + c * a.K * 4;
  for (std::size_t k = 0; k < a.K; ++k) {
    const Vec4f l = child_values(a.left, c, k, a.K);
    const Vec4f r = child_values(a.right, c, k, a.K);
    (l * r).store(out + k * 4);
  }
}

/// down_site with the child kinds known statically (left tip, right inner).
inline void down_ti_site(std::size_t c, const DownArgs& a) {
  float* out = a.out + c * a.K * 4;
  const float* ltp =
      a.left.tp + static_cast<std::size_t>(a.left.mask[c]) * a.K * 4;
  const float* rcl = a.right.cl + c * a.K * 4;
  for (std::size_t k = 0; k < a.K; ++k) {
    const Vec4f l = Vec4f::load(ltp + k * 4);
    const Vec4f r = matvec_cols(a.right.pt + k * 16, rcl + k * 4);
    (l * r).store(out + k * 4);
  }
}

inline void root_site(std::size_t c, const RootArgs& a) {
  const DownArgs& d = a.down;
  float* out = d.out + c * d.K * 4;
  const float* tp = a.out_tp + static_cast<std::size_t>(a.out_mask[c]) * d.K * 4;
  for (std::size_t k = 0; k < d.K; ++k) {
    const Vec4f l = child_values(d.left, c, k, d.K);
    const Vec4f r = child_values(d.right, c, k, d.K);
    const Vec4f o = Vec4f::load(tp + k * 4);
    (l * r * o).store(out + k * 4);
  }
}

void down_col(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site(c, a);
  }
}

void down_ti_col(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site(c, a);
  }
}

void root_col(const RootArgs& a, std::size_t begin, std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/true);
  detail::check_root_aligned(a);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site(c, a);
  }
}

void down_scale_col(const DownArgs& a, const ScaleArgs& s, std::size_t begin,
                    std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site(c, a);
    scale_site(c, s);
  }
}

void down_ti_scale_col(const DownArgs& a, const ScaleArgs& s,
                       std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site(c, a);
    scale_site(c, s);
  }
}

void root_scale_col(const RootArgs& a, const ScaleArgs& s, std::size_t begin,
                    std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/true);
  detail::check_root_aligned(a);
  detail::check_fused_scale(s, a.down.out, a.down.K, a.down.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site(c, a);
    scale_site(c, s);
  }
}

/// Two categories (k, k+1) at once in one 8-wide register.
inline Vec8f child_values8(const ChildArgs& ch, std::size_t c, std::size_t k,
                           std::size_t K) {
  if (ch.is_tip()) {
    return Vec8f::loadu(ch.tp + static_cast<std::size_t>(ch.mask[c]) * K * 4 +
                       k * 4);
  }
  const float* cl = ch.cl + c * K * 4 + k * 4;  // 8 contiguous floats: k, k+1
  const float* pt0 = ch.pt + k * 16;
  const float* pt1 = ch.pt + (k + 1) * 16;
  Vec8f acc = Vec8f::combine(Vec4f(cl[0]), Vec4f(cl[4])) *
              Vec8f::combine(Vec4f::load(pt0 + 0), Vec4f::load(pt1 + 0));
  acc = Vec8f::fma(Vec8f::combine(Vec4f(cl[1]), Vec4f(cl[5])),
                   Vec8f::combine(Vec4f::load(pt0 + 4), Vec4f::load(pt1 + 4)),
                   acc);
  acc = Vec8f::fma(Vec8f::combine(Vec4f(cl[2]), Vec4f(cl[6])),
                   Vec8f::combine(Vec4f::load(pt0 + 8), Vec4f::load(pt1 + 8)),
                   acc);
  acc = Vec8f::fma(Vec8f::combine(Vec4f(cl[3]), Vec4f(cl[7])),
                   Vec8f::combine(Vec4f::load(pt0 + 12), Vec4f::load(pt1 + 12)),
                   acc);
  return acc;
}

/// child_values8 with the tip table row known present (left tip child).
inline Vec8f tip_values8(const float* tp, std::size_t mask, std::size_t k,
                         std::size_t K) {
  return Vec8f::loadu(tp + mask * K * 4 + k * 4);
}

inline void down_site8(std::size_t c, const DownArgs& a, std::size_t k_pairs) {
  float* out = a.out + c * a.K * 4;
  std::size_t k = 0;
  for (; k < k_pairs; k += 2) {
    const Vec8f l = child_values8(a.left, c, k, a.K);
    const Vec8f r = child_values8(a.right, c, k, a.K);
    (l * r).storeu(out + k * 4);
  }
  for (; k < a.K; ++k) {
    const Vec4f l = child_values(a.left, c, k, a.K);
    const Vec4f r = child_values(a.right, c, k, a.K);
    (l * r).store(out + k * 4);
  }
}

inline void down_ti_site8(std::size_t c, const DownArgs& a,
                          std::size_t k_pairs) {
  float* out = a.out + c * a.K * 4;
  const std::size_t lm = static_cast<std::size_t>(a.left.mask[c]);
  const float* rcl = a.right.cl + c * a.K * 4;
  std::size_t k = 0;
  for (; k < k_pairs; k += 2) {
    const Vec8f l = tip_values8(a.left.tp, lm, k, a.K);
    const float* pt0 = a.right.pt + k * 16;
    const float* pt1 = a.right.pt + (k + 1) * 16;
    const float* cl = rcl + k * 4;
    Vec8f r = Vec8f::combine(Vec4f(cl[0]), Vec4f(cl[4])) *
              Vec8f::combine(Vec4f::load(pt0 + 0), Vec4f::load(pt1 + 0));
    r = Vec8f::fma(Vec8f::combine(Vec4f(cl[1]), Vec4f(cl[5])),
                   Vec8f::combine(Vec4f::load(pt0 + 4), Vec4f::load(pt1 + 4)),
                   r);
    r = Vec8f::fma(Vec8f::combine(Vec4f(cl[2]), Vec4f(cl[6])),
                   Vec8f::combine(Vec4f::load(pt0 + 8), Vec4f::load(pt1 + 8)),
                   r);
    r = Vec8f::fma(Vec8f::combine(Vec4f(cl[3]), Vec4f(cl[7])),
                   Vec8f::combine(Vec4f::load(pt0 + 12), Vec4f::load(pt1 + 12)),
                   r);
    (l * r).storeu(out + k * 4);
  }
  for (; k < a.K; ++k) {
    const Vec4f l = Vec4f::load(a.left.tp + lm * a.K * 4 + k * 4);
    const Vec4f r = matvec_cols(a.right.pt + k * 16, rcl + k * 4);
    (l * r).store(out + k * 4);
  }
}

inline void root_site8(std::size_t c, const RootArgs& a, std::size_t k_pairs) {
  const DownArgs& d = a.down;
  float* out = d.out + c * d.K * 4;
  const float* tp = a.out_tp + static_cast<std::size_t>(a.out_mask[c]) * d.K * 4;
  std::size_t k = 0;
  for (; k < k_pairs; k += 2) {
    const Vec8f l = child_values8(d.left, c, k, d.K);
    const Vec8f r = child_values8(d.right, c, k, d.K);
    const Vec8f o = Vec8f::loadu(tp + k * 4);
    (l * r * o).storeu(out + k * 4);
  }
  for (; k < d.K; ++k) {
    const Vec4f l = child_values(d.left, c, k, d.K);
    const Vec4f r = child_values(d.right, c, k, d.K);
    const Vec4f o = Vec4f::load(tp + k * 4);
    (l * r * o).store(out + k * 4);
  }
}

void down_col8(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  const std::size_t k_pairs = a.K / 2 * 2;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site8(c, a, k_pairs);
  }
}

void down_ti_col8(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  const std::size_t k_pairs = a.K / 2 * 2;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site8(c, a, k_pairs);
  }
}

void root_col8(const RootArgs& a, std::size_t begin, std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/true);
  detail::check_root_aligned(a);
  const std::size_t k_pairs = a.down.K / 2 * 2;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site8(c, a, k_pairs);
  }
}

void down_scale_col8(const DownArgs& a, const ScaleArgs& s, std::size_t begin,
                     std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  const std::size_t k_pairs = a.K / 2 * 2;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site8(c, a, k_pairs);
    scale_site(c, s);
  }
}

void down_ti_scale_col8(const DownArgs& a, const ScaleArgs& s,
                        std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/true);
  detail::check_down_aligned(a);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  const std::size_t k_pairs = a.K / 2 * 2;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site8(c, a, k_pairs);
    scale_site(c, s);
  }
}

void root_scale_col8(const RootArgs& a, const ScaleArgs& s, std::size_t begin,
                     std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/true);
  detail::check_root_aligned(a);
  detail::check_fused_scale(s, a.down.out, a.down.K, a.down.site_index);
  const std::size_t k_pairs = a.down.K / 2 * 2;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site8(c, a, k_pairs);
    scale_site(c, s);
  }
}

}  // namespace

namespace detail {
extern const KernelSet kSimdColKernels;
const KernelSet kSimdColKernels{KernelVariant::kSimdCol,
                                down_col,
                                root_col,
                                kSharedSimdScale,
                                kSharedSimdRootReduce,
                                down_ti_col,
                                down_tip_tip,
                                down_scale_col,
                                down_ti_scale_col,
                                down_tip_tip_scale,
                                root_scale_col};
extern const KernelSet kSimdCol8Kernels;
const KernelSet kSimdCol8Kernels{KernelVariant::kSimdCol8,
                                 down_col8,
                                 root_col8,
                                 kSharedSimdScale,
                                 kSharedSimdRootReduce,
                                 down_ti_col8,
                                 down_tip_tip,
                                 down_scale_col8,
                                 down_ti_scale_col8,
                                 down_tip_tip_scale,
                                 root_scale_col8};
}  // namespace detail

}  // namespace plf::core
