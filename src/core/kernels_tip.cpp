// Tip×tip (cherry) specialization of cond_like_down: both children are tips,
// so the output row is a pure gather from the per-pair table the engine
// precomputed (core/tip_partial.hpp TipPairTable). There is no arithmetic
// left to vectorize — the same two entry points serve every KernelSet.
//
// Bit-identity: the table rows were computed with exactly the per-site float
// ops of the generic path (elementwise tip-partial product; prescaled rows
// apply the scale-kernel body once per pair), so the gather reproduces the
// generic down / down+scale results to the last ULP.
#include <cstring>

#include "core/kernel_contracts.hpp"
#include "core/kernels.hpp"

namespace plf::core::detail {

void down_tip_tip(const TipTipArgs& a, std::size_t begin, std::size_t end) {
  check_down_tt(a, begin, end);
  const std::size_t row = a.K * 4;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    const std::size_t pair =
        static_cast<std::size_t>(a.left_mask[c]) * phylo::kNumMasks +
        static_cast<std::size_t>(a.right_mask[c]);
    std::memcpy(a.out + c * row, a.pair + pair * row, row * sizeof(float));
  }
}

void down_tip_tip_scale(const TipTipArgs& a, const ScaleArgs& s,
                        std::size_t begin, std::size_t end) {
  check_down_tt(a, begin, end);
  check_fused_scale(s, a.out, a.K, a.site_index);
  PLF_DCHECK(a.pair_scaled != nullptr && a.pair_ln != nullptr,
             "tip-tip fused scale: prescaled table required");
  const std::size_t row = a.K * 4;
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    const std::size_t pair =
        static_cast<std::size_t>(a.left_mask[c]) * phylo::kNumMasks +
        static_cast<std::size_t>(a.right_mask[c]);
    std::memcpy(a.out + c * row, a.pair_scaled + pair * row,
                row * sizeof(float));
    s.ln_scaler[c] = a.pair_ln[pair];
  }
}

}  // namespace plf::core::detail
