#include "core/tip_partial.hpp"

#include <cmath>

#include "phylo/dna.hpp"
#include "util/contracts.hpp"

namespace plf::core {

TipPartial::TipPartial(const phylo::TransitionMatrices& tm)
    : table_(phylo::kNumMasks * tm.n_categories() * 4, 0.0f),
      k_(tm.n_categories()) {
  const float* p = tm.row_major();
  for (std::size_t mask = 0; mask < phylo::kNumMasks; ++mask) {
    for (std::size_t k = 0; k < k_; ++k) {
      for (std::size_t i = 0; i < 4; ++i) {
        float s = 0.0f;
        for (std::size_t j = 0; j < 4; ++j) {
          if ((mask >> j) & 1u) s += p[k * 16 + i * 4 + j];
        }
        table_[mask * k_ * 4 + k * 4 + i] = s;
      }
    }
  }
}

TipPairTable::TipPairTable(const TipPartial& left, const TipPartial& right)
    : raw_(phylo::kNumMasks * phylo::kNumMasks * left.n_categories() * 4),
      scaled_(raw_.size()),
      ln_(phylo::kNumMasks * phylo::kNumMasks, 0.0f),
      k_(left.n_categories()) {
  PLF_CHECK(left.n_categories() == right.n_categories() && k_ >= 1,
            "TipPairTable: child tables disagree on rate categories");
  const std::size_t row = k_ * 4;
  for (std::size_t lm = 0; lm < phylo::kNumMasks; ++lm) {
    for (std::size_t rm = 0; rm < phylo::kNumMasks; ++rm) {
      const std::size_t pair = lm * phylo::kNumMasks + rm;
      const float* l = left.data() + lm * row;
      const float* r = right.data() + rm * row;
      float* raw = raw_.data() + pair * row;
      float* scaled = scaled_.data() + pair * row;
      for (std::size_t v = 0; v < row; ++v) raw[v] = l[v] * r[v];
      // Prescale: the scale-kernel body applied once per pair instead of once
      // per site. max is order-invariant and the rescale uses the identical
      // 1/max multiply, so gathering these rows is bit-identical to running
      // cond_like_scaler over the gathered raw rows.
      float m = raw[0];
      for (std::size_t v = 1; v < row; ++v) {
        if (raw[v] > m) m = raw[v];
      }
      if (m > 0.0f) {
        const float inv = 1.0f / m;
        for (std::size_t v = 0; v < row; ++v) scaled[v] = raw[v] * inv;
        ln_[pair] = std::log(m);
      } else {
        for (std::size_t v = 0; v < row; ++v) scaled[v] = raw[v];
        ln_[pair] = 0.0f;
      }
    }
  }
}

}  // namespace plf::core
