#include "core/tip_partial.hpp"

#include "phylo/dna.hpp"

namespace plf::core {

TipPartial::TipPartial(const phylo::TransitionMatrices& tm)
    : table_(phylo::kNumMasks * tm.n_categories() * 4, 0.0f),
      k_(tm.n_categories()) {
  const float* p = tm.row_major();
  for (std::size_t mask = 0; mask < phylo::kNumMasks; ++mask) {
    for (std::size_t k = 0; k < k_; ++k) {
      for (std::size_t i = 0; i < 4; ++i) {
        float s = 0.0f;
        for (std::size_t j = 0; j < 4; ++j) {
          if ((mask >> j) & 1u) s += p[k * 16 + i * 4 + j];
        }
        table_[mask * k_ * 4 + k * 4 + i] = s;
      }
    }
  }
}

}  // namespace plf::core
