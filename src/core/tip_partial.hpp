// Per-branch tip-partial tables.
//
// For a tip child the inner products of Fig. 5 collapse to a lookup: the
// tip's conditional likelihood is a 0/1 vector determined by its (possibly
// ambiguous) observed state, so sum_j P_k[i][j] * tip[j] takes only 16
// possible values per (k, i). MrBayes precomputes exactly this per branch;
// so do we. Table layout: tp[mask * K * 4 + k * 4 + i].
#pragma once

#include <cstddef>

#include "phylo/model.hpp"
#include "util/aligned.hpp"

namespace plf::core {

class TipPartial {
 public:
  TipPartial() = default;

  /// Build from a branch's transition matrices (row-major layout inside).
  explicit TipPartial(const phylo::TransitionMatrices& tm);

  const float* data() const { return table_.data(); }
  std::size_t n_categories() const { return k_; }

 private:
  aligned_vector<float> table_;
  std::size_t k_ = 0;
};

/// Per-edge-pair tip×tip table for cherry nodes (docs/KERNELS.md): when both
/// children of a node are tips, cond_like_down's output row is l_tp[lm] *
/// r_tp[rm] elementwise — a function of the (left_mask, right_mask) pair
/// alone, of which there are only kNumMasks² = 256. Precomputing all pairs
/// turns the kernel into a gather (TipTipArgs). Alongside the raw rows, a
/// prescaled copy and the per-pair log scale factor are stored so the fused
/// down+scale entry needs no arithmetic at all; the prescale applies exactly
/// the scale-kernel body once per pair, so gathering it is bit-identical to
/// rescaling the gathered raw row per site.
///
/// Memory: 2 × kNumMasks² × K × 4 floats + kNumMasks² factors per cherry
/// (16.25 KiB at K=4) — independent of the pattern count.
class TipPairTable {
 public:
  TipPairTable() = default;

  /// Build from the two child branches' tip-partial tables (equal K).
  TipPairTable(const TipPartial& left, const TipPartial& right);

  /// Raw product rows, pair-major: raw()[pair * K * 4 + k * 4 + i] with
  /// pair = left_mask * kNumMasks + right_mask.
  const float* raw() const { return raw_.data(); }
  /// Prescaled rows, same layout as raw().
  const float* scaled() const { return scaled_.data(); }
  /// Per-pair log scale factor, indexed by pair.
  const float* ln_factors() const { return ln_.data(); }
  std::size_t n_categories() const { return k_; }

 private:
  aligned_vector<float> raw_;
  aligned_vector<float> scaled_;
  aligned_vector<float> ln_;
  std::size_t k_ = 0;
};

}  // namespace plf::core
