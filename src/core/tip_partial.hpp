// Per-branch tip-partial tables.
//
// For a tip child the inner products of Fig. 5 collapse to a lookup: the
// tip's conditional likelihood is a 0/1 vector determined by its (possibly
// ambiguous) observed state, so sum_j P_k[i][j] * tip[j] takes only 16
// possible values per (k, i). MrBayes precomputes exactly this per branch;
// so do we. Table layout: tp[mask * K * 4 + k * 4 + i].
#pragma once

#include <cstddef>

#include "phylo/model.hpp"
#include "util/aligned.hpp"

namespace plf::core {

class TipPartial {
 public:
  TipPartial() = default;

  /// Build from a branch's transition matrices (row-major layout inside).
  explicit TipPartial(const phylo::TransitionMatrices& tm);

  const float* data() const { return table_.data(); }
  std::size_t n_categories() const { return k_; }

 private:
  aligned_vector<float> table_;
  std::size_t k_ = 0;
};

}  // namespace plf::core
