// Maximum-likelihood branch-length optimization.
//
// The scoring function MrBayes uses "is also adopted in other phylogenetic
// inference programs" (§1, citing PHYML and RAxML) — those programs optimize
// branch lengths rather than sampling them. This module provides that ML
// counterpart on top of the same PLF engine: Brent search over one branch
// (each trial evaluation only recomputes the dirtied root path, so the
// fine-grain PLF parallelism is exercised exactly as in the paper's hot
// loop), plus a round-robin full-tree pass.
#pragma once

#include "core/engine.hpp"

namespace plf::core {

struct OptimizeOptions {
  double min_length = 1e-7;
  double max_length = 10.0;
  double tolerance = 1e-7;   ///< absolute tolerance on log(branch length)
  int max_iterations = 100;  ///< per branch
};

struct OptimizeResult {
  double ln_likelihood = 0.0;
  double length = 0.0;   ///< optimize_branch: the optimized length
  int evaluations = 0;   ///< likelihood evaluations performed
};

/// Optimize the branch above `node` (must carry a branch) to its ML length.
/// The engine is left at the optimum; the return carries the new lnL.
OptimizeResult optimize_branch(PlfEngine& engine, int node,
                               const OptimizeOptions& options = {});

/// Round-robin Brent over every branch, `rounds` times (or until a full
/// round improves lnL by less than `round_tolerance`).
OptimizeResult optimize_all_branches(PlfEngine& engine, int rounds = 5,
                                     double round_tolerance = 1e-4,
                                     const OptimizeOptions& options = {});

}  // namespace plf::core
