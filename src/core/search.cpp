#include "core/search.hpp"

#include <limits>

#include "util/error.hpp"

namespace plf::core {

namespace {

/// Apply one NNI inside an open proposal and locally re-fit the five
/// branches around the rearranged edge. Returns the resulting lnL.
double try_nni(PlfEngine& engine, int v, bool left,
               const OptimizeOptions& branch_options,
               std::uint64_t* evaluations) {
  engine.apply_nni(v, left);
  double ln = engine.log_likelihood();
  ++*evaluations;
  const int u = engine.tree().node(v).parent;
  for (int b : {v, engine.tree().node(v).left, engine.tree().node(v).right,
                engine.tree().node(u).left, engine.tree().node(u).right}) {
    if (b == phylo::kNoNode ||
        engine.tree().node(b).parent == phylo::kNoNode) {
      continue;
    }
    const auto r = optimize_branch(engine, b, branch_options);
    ln = r.ln_likelihood;
    *evaluations += static_cast<std::uint64_t>(r.evaluations);
  }
  return ln;
}

}  // namespace

SearchResult hill_climb(PlfEngine& engine, const SearchOptions& options) {
  PLF_CHECK(!engine.in_proposal(), "hill_climb: close the open proposal first");

  SearchResult result;
  auto opt = optimize_all_branches(engine, options.branch_rounds_per_sweep,
                                   1e-4, options.branch_options);
  result.ln_likelihood = opt.ln_likelihood;
  result.evaluations += static_cast<std::uint64_t>(opt.evaluations);

  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;

    // Best-improvement: score the full NNI neighborhood of the current
    // tree, then apply the single best move (greedy first-improvement is
    // markedly more prone to local optima here).
    double best_ln = -std::numeric_limits<double>::infinity();
    int best_v = phylo::kNoNode;
    bool best_left = false;
    for (int v : engine.tree().internal_edge_nodes()) {
      for (bool left : {true, false}) {
        engine.begin_proposal();
        const double ln =
            try_nni(engine, v, left, options.branch_options,
                    &result.evaluations);
        engine.reject();
        if (ln > best_ln) {
          best_ln = ln;
          best_v = v;
          best_left = left;
        }
      }
    }

    if (best_v == phylo::kNoNode ||
        best_ln <= result.ln_likelihood + options.improvement_epsilon) {
      break;  // local optimum of the NNI neighborhood
    }

    engine.begin_proposal();
    try_nni(engine, best_v, best_left, options.branch_options,
            &result.evaluations);
    engine.accept();
    ++result.accepted_moves;

    opt = optimize_all_branches(engine, options.branch_rounds_per_sweep, 1e-4,
                                options.branch_options);
    result.ln_likelihood = opt.ln_likelihood;
    result.evaluations += static_cast<std::uint64_t>(opt.evaluations);
  }
  return result;
}

}  // namespace plf::core
