#include "core/repeats.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace plf::core {

std::string to_string(SiteRepeatsMode m) {
  switch (m) {
    case SiteRepeatsMode::kOff: return "off";
    case SiteRepeatsMode::kOn: return "on";
    case SiteRepeatsMode::kAuto: return "auto";
  }
  return "?";
}

SiteRepeatsMode site_repeats_mode_from_string(const std::string& s) {
  if (s == "off") return SiteRepeatsMode::kOff;
  if (s == "on") return SiteRepeatsMode::kOn;
  if (s == "auto") return SiteRepeatsMode::kAuto;
  throw Error("--site-repeats: expected on|off|auto, got '" + s + "'");
}

SiteRepeats::SiteRepeats(const phylo::PatternMatrix& data,
                         const phylo::Tree& tree)
    : data_(&data), m_(data.n_patterns()) {
  PLF_CHECK(data.n_taxa() == tree.n_taxa(),
            "SiteRepeats: pattern matrix and tree disagree on taxon count");
  nodes_.resize(tree.n_nodes());
  stale_.assign(tree.n_nodes(), 0);
  invalidate_all();
}

void SiteRepeats::invalidate_path(const phylo::Tree& tree, int from_node) {
  for (int id = from_node; id != phylo::kNoNode; id = tree.node(id).parent) {
    if (!tree.node(id).is_leaf()) {
      stale_[static_cast<std::size_t>(id)] = 1;
      any_stale_ = true;
    }
  }
}

void SiteRepeats::invalidate_all() {
  for (auto& s : stale_) s = 1;
  any_stale_ = true;
}

const std::uint32_t* SiteRepeats::child_classes(
    const phylo::Tree& tree, int child,
    std::vector<std::uint32_t>& scratch) const {
  if (tree.node(child).is_leaf()) {
    const phylo::StateMask* row =
        data_->row(static_cast<std::size_t>(tree.node(child).taxon));
    scratch.resize(m_);
    for (std::size_t c = 0; c < m_; ++c) scratch[c] = row[c];
    return scratch.data();
  }
  const NodeRepeats& nr = nodes_[static_cast<std::size_t>(child)];
  PLF_CHECK(nr.class_of_site.size() == m_,
            "SiteRepeats: child classes missing (postorder violated)");
  return nr.class_of_site.data();
}

void SiteRepeats::rebuild_node(const phylo::Tree& tree, int id) {
  const phylo::TreeNode& n = tree.node(id);
  std::vector<std::uint32_t> scratch_l, scratch_r;
  const std::uint32_t* lc = child_classes(tree, n.left, scratch_l);
  const std::uint32_t* rc = child_classes(tree, n.right, scratch_r);
  const phylo::StateMask* out_row = nullptr;
  if (id == tree.root()) {
    const int og = tree.outgroup();
    out_row = data_->row(static_cast<std::size_t>(tree.node(og).taxon));
  }

  NodeRepeats& nr = nodes_[static_cast<std::size_t>(id)];
  nr.class_of_site.resize(m_);
  nr.unique_sites.clear();

  using KeyMap =
      std::unordered_map<std::uint64_t, std::uint32_t, phylo::SubtreePatternHash>;
  KeyMap ids;
  ids.reserve(m_);
  KeyMap pair_ids;  // root only: ranks the (left, right) pairs before the
                    // outgroup mask is folded in, keeping the packing dense
  if (out_row != nullptr) pair_ids.reserve(m_);
  for (std::size_t c = 0; c < m_; ++c) {
    std::uint64_t key = phylo::subtree_pattern_key(lc[c], rc[c]);
    if (out_row != nullptr) {
      const auto [pit, pair_inserted] =
          pair_ids.try_emplace(key, static_cast<std::uint32_t>(pair_ids.size()));
      (void)pair_inserted;
      key = phylo::subtree_pattern_key_with_mask(pit->second, out_row[c]);
    }
    const auto [it, inserted] =
        ids.try_emplace(key, static_cast<std::uint32_t>(nr.unique_sites.size()));
    if (inserted) {
      nr.unique_sites.push_back(static_cast<std::uint32_t>(c));
    }
    nr.class_of_site[c] = it->second;
  }
  nr.n_classes = static_cast<std::uint32_t>(nr.unique_sites.size());
  PLF_CHECK(nr.n_classes >= 1 || m_ == 0,
            "SiteRepeats: no classes for a nonempty pattern set");
}

void SiteRepeats::refresh(const phylo::Tree& tree) {
  PLF_CHECK(initialized(), "SiteRepeats: refresh before construction");
  if (!any_stale_) return;
  for (int id : tree.postorder_internals()) {
    if (stale_[static_cast<std::size_t>(id)] != 0) {
      rebuild_node(tree, id);
      stale_[static_cast<std::size_t>(id)] = 0;
    }
  }
  any_stale_ = false;
}

const NodeRepeats& SiteRepeats::node(int id) const {
  const auto& nr = nodes_[static_cast<std::size_t>(id)];
  PLF_CHECK(stale_[static_cast<std::size_t>(id)] == 0 &&
                nr.class_of_site.size() == m_,
            "SiteRepeats: node classes are stale (refresh() first)");
  return nr;
}

double SiteRepeats::mean_compression() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].class_of_site.size() == m_ && m_ > 0) {
      sum += nodes_[id].compression();
      ++n;
    }
  }
  return n == 0 ? 1.0 : sum / static_cast<double>(n);
}

}  // namespace plf::core
