// The Phylogenetic Likelihood Function kernels (paper §3.1, Fig. 5).
//
// Three kernels account for >85% of MrBayes' runtime and are what every
// architecture in the paper accelerates:
//
//   cond_like_down   clP[c][k][i] = (sum_j PL_k[i][j] clL[c][k][j])
//                                 * (sum_j PR_k[i][j] clR[c][k][j])
//   cond_like_root   same, times the third (outgroup) neighbor's factor
//   cond_like_scaler per-site rescaling by the maximum entry (underflow guard)
//
// plus the final root-likelihood reduction. All kernels operate on a
// half-open pattern range so every backend (threads, simulated SPEs,
// simulated CUDA blocks) can partition the outermost loop, which is exactly
// the fine-grain decomposition the paper studies.
//
// Layouts (single precision, as in MrBayes):
//   conditional likelihoods  cl[c*K*4 + k*4 + j]    (Fig. 3: K rate arrays of 4)
//   transition matrices      p[k*16 + i*4 + j]      row-major
//                            pt[k*16 + j*4 + i]     transposed (column-wise)
//   tip partials             tp[mask*K*4 + k*4 + i] per-branch lookup for the
//                            16 ambiguity masks (what MrBayes precomputes for
//                            tip children)
//
// Variants:
//   kScalar   reference implementation, plain loops
//   kSimdRow  paper §3.3/§3.4 "approach (i)": SIMD across each inner
//             product (row-wise matrix access, horizontal reduction)
//   kSimdCol  "approach (ii)": SIMD across the four inner products of one
//             matrix-vector multiply (column-wise access via the transposed
//             matrix, no horizontal reduction) — the layout the paper found
//             2x faster on the SPU and adopted
//   kSimdCol8 modern extension: approach (ii) widened to 8 lanes (two rate
//             categories per register, AVX2 when available)
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "phylo/dna.hpp"

namespace plf::core {

using phylo::StateMask;

/// One child of a node, plus the per-branch matrices used to absorb it.
/// Exactly one of `cl` (internal child) or `mask` (tip child) is non-null.
struct ChildArgs {
  const float* cl = nullptr;        ///< internal child conditional likelihoods
  const StateMask* mask = nullptr;  ///< tip child pattern masks
  const float* tp = nullptr;        ///< tip-partial table (tip children)
  const float* p = nullptr;         ///< row-major transition matrices (K*16)
  const float* pt = nullptr;        ///< transposed transition matrices (K*16)

  bool is_tip() const { return mask != nullptr; }
};

/// Arguments for cond_like_down.
struct DownArgs {
  ChildArgs left;
  ChildArgs right;
  float* out = nullptr;  ///< clP, same layout as inputs
  std::size_t K = 4;     ///< number of discrete rate categories
  /// Site-repeat compaction (optional). When non-null, iteration index idx in
  /// [begin, end) addresses pattern site_index[idx] instead of idx — every
  /// load and the store go through the mapped site, so the kernel computes
  /// only repeat-class representative sites; the engine scatters the results
  /// to duplicate sites afterwards. Entries are strictly increasing and
  /// bounded by n_sites (the contract layer verifies both). Backends that
  /// cannot honor the indirection must refuse it (Capabilities::kSiteRepeats).
  const std::uint32_t* site_index = nullptr;
  std::size_t n_sites = 0;  ///< exclusive bound on site_index entries
};

/// Arguments for cond_like_root: down plus the third (outgroup) neighbor,
/// which in the leaf-rooted representation is always a tip.
struct RootArgs {
  DownArgs down;
  const StateMask* out_mask = nullptr;  ///< outgroup tip masks
  const float* out_tp = nullptr;        ///< outgroup tip-partial table
};

/// Arguments for the tip×tip (cherry) specialization of cond_like_down.
/// When BOTH children are tips, the per-site work collapses entirely: the
/// output row depends only on the (left_mask, right_mask) pair, which takes
/// at most 16×16 values. The engine precomputes a per-edge-pair table
/// (core/tip_partial.hpp TipPairTable) holding each pair's K*4 output row —
/// raw, plus a prescaled copy with its log scale factor so the fused
/// down+scale entry is a pure gather. Table layout:
///   pair = left_mask * kNumMasks + right_mask
///   pair_tables[pair * K * 4 + k * 4 + i]
struct TipTipArgs {
  const StateMask* left_mask = nullptr;   ///< left tip pattern masks
  const StateMask* right_mask = nullptr;  ///< right tip pattern masks
  const float* pair = nullptr;         ///< raw product rows (down output)
  const float* pair_scaled = nullptr;  ///< prescaled rows (fused down+scale)
  const float* pair_ln = nullptr;      ///< per-pair log scale factor
  float* out = nullptr;                ///< clP, standard CLV layout
  std::size_t K = 4;
  /// Rate-category count the tables were built for; contract-checked == K so
  /// a stale or foreign table cannot be gathered at the wrong row stride.
  std::size_t table_categories = 0;
  const std::uint32_t* site_index = nullptr;  ///< see DownArgs::site_index
  std::size_t n_sites = 0;
};

/// Arguments for cond_like_scaler.
struct ScaleArgs {
  float* cl = nullptr;         ///< scaled in place
  float* ln_scaler = nullptr;  ///< per-pattern log scale factor (overwritten)
  std::size_t K = 4;
  const std::uint32_t* site_index = nullptr;  ///< see DownArgs::site_index
  std::size_t n_sites = 0;
};

/// Arguments for the root log-likelihood reduction.
struct RootReduceArgs {
  const float* cl = nullptr;              ///< root conditional likelihoods
  const double* ln_scaler_total = nullptr;///< per-pattern summed log scalers
  const std::uint32_t* weights = nullptr; ///< per-pattern multiplicities
  float pi[4] = {0.25f, 0.25f, 0.25f, 0.25f};
  std::size_t K = 4;
  /// +I mixture (GTR+I+Γ): per-pattern invariant-site likelihood
  /// (sum of pi over the states shared by every taxon; 0 when the pattern
  /// is variable). nullptr or p_invariant == 0 disables the mixture.
  const float* const_lik = nullptr;
  float p_invariant = 0.0f;
};

/// Per-site log likelihood under the optional +I mixture. `site_mean` is the
/// Γ-averaged (already /K) scaled site likelihood, `scaler` its summed log
/// scale factor. Stable in log space: the invariant term is unscaled, so the
/// two components are combined with log-sum-exp.
inline double site_log_likelihood(double site_mean, double scaler,
                                  const RootReduceArgs& a, std::size_t c) {
  if (a.const_lik == nullptr || a.p_invariant <= 0.0f) {
    return std::log(site_mean) + scaler;
  }
  const double pinv = static_cast<double>(a.p_invariant);
  const double var_part = std::log((1.0 - pinv) * site_mean) + scaler;
  const double cl = static_cast<double>(a.const_lik[c]);
  if (cl <= 0.0) return var_part;
  const double inv_part = std::log(pinv * cl);
  const double mx = var_part > inv_part ? var_part : inv_part;
  const double mn = var_part > inv_part ? inv_part : var_part;
  return mx + std::log1p(std::exp(mn - mx));
}

using DownFn = void (*)(const DownArgs&, std::size_t begin, std::size_t end);
using RootFn = void (*)(const RootArgs&, std::size_t begin, std::size_t end);
using ScaleFn = void (*)(const ScaleArgs&, std::size_t begin, std::size_t end);
/// Returns the partial lnL contribution of [begin, end).
using RootReduceFn = double (*)(const RootReduceArgs&, std::size_t begin,
                                std::size_t end);
using DownTipTipFn = void (*)(const TipTipArgs&, std::size_t begin,
                              std::size_t end);
/// Fused down/root + per-site rescale in one pass. The scale block must alias
/// the down output (ScaleArgs::cl == out; contract-checked), exactly the
/// PlfPlan invariant, so the rescale happens while the freshly computed row
/// is still in registers — one CLV sweep instead of two. Fused entries are
/// per-site compositions of the unfused bodies and therefore bit-identical
/// to calling down then scale over the same range.
using DownScaleFn = void (*)(const DownArgs&, const ScaleArgs&,
                             std::size_t begin, std::size_t end);
using RootScaleFn = void (*)(const RootArgs&, const ScaleArgs&,
                             std::size_t begin, std::size_t end);
using DownTipTipScaleFn = void (*)(const TipTipArgs&, const ScaleArgs&,
                                   std::size_t begin, std::size_t end);

enum class KernelVariant { kScalar, kSimdRow, kSimdCol, kSimdCol8 };

std::string to_string(KernelVariant v);

/// The kernels for one variant: the four generic entries plus the
/// tip-specialized and fused forms plan-capable backends dispatch to
/// (docs/KERNELS.md). down_tt/down_tt_scale are variant-independent gathers
/// shared by every set.
struct KernelSet {
  KernelVariant variant;
  DownFn down;
  RootFn root;
  ScaleFn scale;
  RootReduceFn root_reduce;
  DownFn down_ti;                  ///< left child tip, right child internal
  DownTipTipFn down_tt;            ///< both children tips: pair-table gather
  DownScaleFn down_scale;          ///< fused generic down + rescale
  DownScaleFn down_ti_scale;       ///< fused tip×inner down + rescale
  DownTipTipScaleFn down_tt_scale; ///< fused tip×tip gather (prescaled table)
  RootScaleFn root_scale;          ///< fused root + rescale
};

/// Fetch the kernel set for a variant (all variants are always available;
/// SIMD variants fall back to portable emulation when the ISA is absent).
const KernelSet& kernels(KernelVariant v);

namespace detail {
/// Shared tip×tip gather kernels (kernels_tip.cpp). The gathered row depends
/// only on the 8-bit mask pair — there is no arithmetic left for a SIMD
/// variant to vectorize — so every KernelSet points at these.
void down_tip_tip(const TipTipArgs& a, std::size_t begin, std::size_t end);
void down_tip_tip_scale(const TipTipArgs& a, const ScaleArgs& s,
                        std::size_t begin, std::size_t end);
}  // namespace detail

/// Approximate floating-point operation count of cond_like_down per pattern
/// (used by the architecture timing models): per rate category, two 4x4
/// matrix-vector products (2*4*7 flops) plus 4 multiplies.
constexpr double down_flops_per_pattern(std::size_t K) {
  return static_cast<double>(K) * (2 * 4 * 7 + 4);
}

}  // namespace plf::core
