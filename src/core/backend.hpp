// Execution backends: how one PLF invocation's outermost pattern loop is
// distributed over parallel resources.
//
// "The basic task consists in scheduling and distributing the required
// likelihood vector data structures and loop iterations to the several
// processing elements" (§3.1). A backend receives one kernel invocation over
// m patterns and decides the partitioning: serially, over a thread pool
// (the general-purpose multi-core scheme, §3.2), over simulated SPEs
// (plf::cell) or over a simulated CUDA grid (plf::gpu).
//
// Backends receive work at two grains:
//
//   run_down/run_root/run_scale/run_root_reduce — one kernel invocation,
//       one synchronization per call (the paper's per-call structure whose
//       spawn/sync overhead drives Fig. 9);
//   run_plan — a whole evaluation's dependency-leveled batch of PlfOps
//       (core/plan.hpp). The default implementation loops ops through the
//       per-call entries, so every backend is plan-capable and bit-identical
//       to per-call dispatch from day one; backends advertising kFusedPlan
//       override it to amortize synchronization across a level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/kernels.hpp"
#include "core/plan.hpp"
#include "par/thread_pool.hpp"

namespace plf::core {

/// What a backend can faithfully execute beyond the baseline per-call
/// contract. The engine consults this instead of per-feature virtuals.
enum class Capabilities : std::uint32_t {
  kNone = 0,
  /// Forwards compacted (site-indexed) kernel invocations faithfully — see
  /// DownArgs::site_index. Backends that stage data through simulated
  /// hardware paths (Cell DMA chunking, GPU global memory) run the dense
  /// path only; the engine falls back automatically and their run_* entries
  /// reject indexed arguments outright.
  kSiteRepeats = 1u << 0,
  /// run_plan is a real batched implementation (fused kernels and/or one
  /// synchronization per dependency level), not the default per-op loop.
  kFusedPlan = 1u << 1,
  /// run_plan coalesces host<->device transfers across a batch instead of
  /// paying a full round trip per kernel invocation.
  kBatchedTransfers = 1u << 2,
  /// run_plan dispatches tip-specialized ops (PlfOpKind::kTipTip/kTipInner)
  /// to the lookup-table kernels instead of the generic entries. The engine
  /// only builds pair tables and sets op kinds for backends advertising this
  /// (docs/KERNELS.md); everyone else executes the always-valid generic
  /// argument block, bit-identically.
  kTipKernels = 1u << 3,
};

constexpr Capabilities operator|(Capabilities a, Capabilities b) {
  return static_cast<Capabilities>(static_cast<std::uint32_t>(a) |
                                   static_cast<std::uint32_t>(b));
}

constexpr Capabilities operator&(Capabilities a, Capabilities b) {
  return static_cast<Capabilities>(static_cast<std::uint32_t>(a) &
                                   static_cast<std::uint32_t>(b));
}

constexpr bool has_capability(Capabilities set, Capabilities cap) {
  return (set & cap) != Capabilities::kNone;
}

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual std::string name() const = 0;

  virtual Capabilities capabilities() const { return Capabilities::kNone; }

  virtual void run_down(const KernelSet& ks, const DownArgs& args,
                        std::size_t m) = 0;
  virtual void run_root(const KernelSet& ks, const RootArgs& args,
                        std::size_t m) = 0;
  virtual void run_scale(const KernelSet& ks, const ScaleArgs& args,
                         std::size_t m) = 0;
  /// Full root reduction (must be deterministic for a fixed configuration).
  virtual double run_root_reduce(const KernelSet& ks,
                                 const RootReduceArgs& args, std::size_t m) = 0;

  /// Execute a finalized dependency-leveled batch (see core/plan.hpp):
  /// every op's fused down/root + scale kernels, plus the repeat scatter for
  /// compacted ops, respecting level order. The default walks ops in plan
  /// order through the per-call entries above — bit-identical to per-call
  /// dispatch. Overrides must preserve that bit-identity (per-site math is
  /// partition-invariant; level order keeps the data dependencies).
  virtual void run_plan(const KernelSet& ks, const PlfPlan& plan);
};

/// Everything on the calling thread (the paper's Baseline system).
class SerialBackend final : public ExecutionBackend {
 public:
  std::string name() const override { return "serial"; }
  Capabilities capabilities() const override {
    return Capabilities::kSiteRepeats | Capabilities::kFusedPlan |
           Capabilities::kTipKernels;
  }
  void run_down(const KernelSet& ks, const DownArgs& a, std::size_t m) override;
  void run_root(const KernelSet& ks, const RootArgs& a, std::size_t m) override;
  void run_scale(const KernelSet& ks, const ScaleArgs& a, std::size_t m) override;
  double run_root_reduce(const KernelSet& ks, const RootReduceArgs& a,
                         std::size_t m) override;
  /// Ops in plan order through the fused + tip-specialized kernel entries
  /// (one CLV sweep per op instead of two).
  void run_plan(const KernelSet& ks, const PlfPlan& plan) override;
};

/// OpenMP-style parallel-for over the outermost pattern loop (§3.2): one
/// parallel region per PLF invocation with an implicit barrier at the end —
/// the spawn/sync structure whose overhead drives Fig. 9. run_plan lifts
/// that structure to one region per dependency level: all of a level's ops
/// are concatenated into a single iteration space and each worker fuses
/// down/root + scale on its chunk, so a node costs ~1/(2·level width) of the
/// former spawn/sync overhead (docs/EXECUTION_PLAN.md has the arithmetic).
class ThreadedBackend final : public ExecutionBackend {
 public:
  explicit ThreadedBackend(par::ThreadPool& pool) : pool_(pool) {}

  std::string name() const override;
  Capabilities capabilities() const override {
    return Capabilities::kSiteRepeats | Capabilities::kFusedPlan |
           Capabilities::kTipKernels;
  }
  void run_down(const KernelSet& ks, const DownArgs& a, std::size_t m) override;
  void run_root(const KernelSet& ks, const RootArgs& a, std::size_t m) override;
  void run_scale(const KernelSet& ks, const ScaleArgs& a, std::size_t m) override;
  double run_root_reduce(const KernelSet& ks, const RootReduceArgs& a,
                         std::size_t m) override;
  void run_plan(const KernelSet& ks, const PlfPlan& plan) override;

  par::ThreadPool& pool() { return pool_; }

 private:
  par::ThreadPool& pool_;
};

}  // namespace plf::core
