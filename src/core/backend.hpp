// Execution backends: how one PLF invocation's outermost pattern loop is
// distributed over parallel resources.
//
// "The basic task consists in scheduling and distributing the required
// likelihood vector data structures and loop iterations to the several
// processing elements" (§3.1). A backend receives one kernel invocation over
// m patterns and decides the partitioning: serially, over a thread pool
// (the general-purpose multi-core scheme, §3.2), over simulated SPEs
// (plf::cell) or over a simulated CUDA grid (plf::gpu).
#pragma once

#include <cstddef>
#include <string>

#include "core/kernels.hpp"
#include "par/thread_pool.hpp"

namespace plf::core {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual std::string name() const = 0;

  /// Whether this backend forwards compacted (site-indexed) kernel
  /// invocations faithfully — see DownArgs::site_index. Backends that stage
  /// data through simulated hardware paths (Cell DMA chunking, GPU global
  /// memory) run the dense path only; the engine falls back automatically
  /// and their run_* entries reject indexed arguments outright.
  virtual bool supports_site_repeats() const { return false; }

  virtual void run_down(const KernelSet& ks, const DownArgs& args,
                        std::size_t m) = 0;
  virtual void run_root(const KernelSet& ks, const RootArgs& args,
                        std::size_t m) = 0;
  virtual void run_scale(const KernelSet& ks, const ScaleArgs& args,
                         std::size_t m) = 0;
  /// Full root reduction (must be deterministic for a fixed configuration).
  virtual double run_root_reduce(const KernelSet& ks,
                                 const RootReduceArgs& args, std::size_t m) = 0;
};

/// Everything on the calling thread (the paper's Baseline system).
class SerialBackend final : public ExecutionBackend {
 public:
  std::string name() const override { return "serial"; }
  bool supports_site_repeats() const override { return true; }
  void run_down(const KernelSet& ks, const DownArgs& a, std::size_t m) override;
  void run_root(const KernelSet& ks, const RootArgs& a, std::size_t m) override;
  void run_scale(const KernelSet& ks, const ScaleArgs& a, std::size_t m) override;
  double run_root_reduce(const KernelSet& ks, const RootReduceArgs& a,
                         std::size_t m) override;
};

/// OpenMP-style parallel-for over the outermost pattern loop (§3.2): one
/// parallel region per PLF invocation with an implicit barrier at the end —
/// the spawn/sync structure whose overhead drives Fig. 9.
class ThreadedBackend final : public ExecutionBackend {
 public:
  explicit ThreadedBackend(par::ThreadPool& pool) : pool_(pool) {}

  std::string name() const override;
  bool supports_site_repeats() const override { return true; }
  void run_down(const KernelSet& ks, const DownArgs& a, std::size_t m) override;
  void run_root(const KernelSet& ks, const RootArgs& a, std::size_t m) override;
  void run_scale(const KernelSet& ks, const ScaleArgs& a, std::size_t m) override;
  double run_root_reduce(const KernelSet& ks, const RootReduceArgs& a,
                         std::size_t m) override;

  par::ThreadPool& pool() { return pool_; }

 private:
  par::ThreadPool& pool_;
};

}  // namespace plf::core
