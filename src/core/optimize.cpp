#include "core/optimize.hpp"

#include <cmath>

#include "numerics/ulp.hpp"
#include "util/error.hpp"

namespace plf::core {

namespace {

/// Golden-section + parabolic (Brent) maximization of lnL over
/// x = log(branch length) in [lo, hi].
struct BrentMaximizer {
  PlfEngine& engine;
  int node;
  int evaluations = 0;

  double eval(double x) {
    ++evaluations;
    engine.set_branch_length(node, std::exp(x));
    return engine.log_likelihood();
  }
};

}  // namespace

OptimizeResult optimize_branch(PlfEngine& engine, int node,
                               const OptimizeOptions& options) {
  PLF_CHECK(engine.tree().node(node).parent != phylo::kNoNode,
            "optimize_branch: the root carries no branch");
  PLF_CHECK(options.min_length > 0.0 &&
                options.min_length < options.max_length,
            "optimize_branch: bad length bounds");

  const double lo = std::log(options.min_length);
  const double hi = std::log(options.max_length);
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2

  BrentMaximizer f{engine, node};

  // Standard Brent (Numerical Recipes shape), maximizing by negating.
  double a = lo, b = hi;
  // Start exactly at the current length (clamped into bounds) so the result
  // can never be worse than the starting likelihood.
  double x = std::min(
      std::max(std::log(std::max(engine.tree().branch_length(node),
                                 options.min_length)),
               lo),
      hi);
  double w = x, v = x;
  double fx = f.eval(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = options.tolerance * std::abs(x) + 1e-12;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) break;

    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic fit through (x, fx), (w, fw), (v, fv).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (xm - x >= 0.0) ? tol1 : -tol1;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = kGolden * e;
    }

    const double u = (std::abs(d) >= tol1) ? x + d
                                           : x + ((d >= 0.0) ? tol1 : -tol1);
    const double fu = f.eval(u);
    if (fu >= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      // Brent's bookkeeping compares bit-identical copies (w/v start as x and
      // are only ever assigned from it), so exact equality is the intent.
      if (fu >= fw || num::exactly_equal(w, x)) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu >= fv || num::exactly_equal(v, x) ||
                 num::exactly_equal(v, w)) {
        v = u;
        fv = fu;
      }
    }
  }

  // Leave the engine at the optimum.
  engine.set_branch_length(node, std::exp(x));
  OptimizeResult result;
  result.ln_likelihood = engine.log_likelihood();
  result.length = std::exp(x);
  result.evaluations = f.evaluations + 1;
  return result;
}

OptimizeResult optimize_all_branches(PlfEngine& engine, int rounds,
                                     double round_tolerance,
                                     const OptimizeOptions& options) {
  OptimizeResult total;
  double prev = engine.log_likelihood();
  total.ln_likelihood = prev;
  for (int round = 0; round < rounds; ++round) {
    for (int node : engine.tree().branch_nodes()) {
      const OptimizeResult r = optimize_branch(engine, node, options);
      total.evaluations += r.evaluations;
      total.ln_likelihood = r.ln_likelihood;
    }
    if (total.ln_likelihood - prev < round_tolerance) break;
    prev = total.ln_likelihood;
  }
  return total;
}

}  // namespace plf::core
