// Entry-point contracts for the PLF kernels.
//
// Every kernel variant (scalar, simd-row, simd-col, simd-col8) receives raw
// pointers plus a half-open pattern range from whichever backend partitioned
// the outermost loop (threads, simulated SPEs, simulated CUDA blocks). These
// helpers spell out the trust boundary once so all variants check identical
// preconditions:
//
//   - the range is well-formed (begin <= end),
//   - K >= 1 rate categories,
//   - exactly one of {cl, mask} per child, with the matching matrix table
//     (p/pt for internal children, tp for tips),
//   - for the SIMD variants, 16-byte alignment of every array the kernels
//     access with aligned vector loads/stores (util/aligned.hpp allocates at
//     128 bytes, so a violation means a caller sliced a buffer mid-register).
//
// All checks are PLF_DCHECK-level: active in Debug / sanitizer / contract
// builds, compiled out of release kernels (these functions sit on the hot
// path — they run once per (node, chunk), not per site, but the PLF is called
// millions of times per MCMC run).
#pragma once

#include "core/clv_arena.hpp"
#include "core/kernels.hpp"
#include "core/plan.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace plf::core::detail {

/// SIMD register width the aligned kernel loads/stores assume, in bytes.
inline constexpr std::size_t kKernelAlignBytes = 16;

inline void check_child(const ChildArgs& ch, bool needs_transpose) {
  PLF_DCHECK((ch.cl != nullptr) != (ch.mask != nullptr),
             "child must be exactly one of internal (cl) or tip (mask)");
  if (ch.mask != nullptr) {
    PLF_DCHECK(ch.tp != nullptr, "tip child needs its tip-partial table");
  } else if (needs_transpose) {
    PLF_DCHECK(ch.pt != nullptr,
               "internal child needs the transposed transition matrices");
  } else {
    PLF_DCHECK(ch.p != nullptr,
               "internal child needs the row-major transition matrices");
  }
}

inline void check_child_aligned(const ChildArgs& ch) {
  if (ch.mask != nullptr) {
    PLF_DCHECK_ALIGNED(ch.tp, kKernelAlignBytes);
  } else {
    PLF_DCHECK_ALIGNED(ch.cl, kKernelAlignBytes);
    if (ch.p != nullptr) PLF_DCHECK_ALIGNED(ch.p, kKernelAlignBytes);
    if (ch.pt != nullptr) PLF_DCHECK_ALIGNED(ch.pt, kKernelAlignBytes);
  }
}

/// Trust boundary of the site-repeat index vector: the engine hands kernels a
/// compacted site list built by core/repeats. The representative sites are
/// strictly increasing by construction, so the last entry bounds the whole
/// range — checked always (O(1), it guards every subsequent indexed store);
/// the monotonicity itself is re-verified per chunk in checked builds.
inline void check_site_index(const std::uint32_t* site_index, std::size_t begin,
                             std::size_t end, std::size_t n_sites) {
  if (site_index == nullptr || begin >= end) return;
  PLF_CHECK(site_index[end - 1] < n_sites,
            "site_index: repeat index out of range");
#if PLF_CONTRACTS_LEVEL
  for (std::size_t i = begin + 1; i < end; ++i) {
    PLF_DCHECK(site_index[i - 1] < site_index[i],
               "site_index: representative sites must be strictly increasing");
  }
#endif
}

inline void check_down(const DownArgs& a, std::size_t begin, std::size_t end,
                       bool needs_transpose) {
  PLF_DCHECK(begin <= end, "cond_like_down: reversed pattern range");
  PLF_DCHECK(a.K >= 1, "cond_like_down: needs at least one rate category");
  PLF_DCHECK(a.out != nullptr, "cond_like_down: null output array");
  check_site_index(a.site_index, begin, end, a.n_sites);
  check_child(a.left, needs_transpose);
  check_child(a.right, needs_transpose);
}

inline void check_down_aligned(const DownArgs& a) {
  PLF_DCHECK_ALIGNED(a.out, kKernelAlignBytes);
  check_child_aligned(a.left);
  check_child_aligned(a.right);
}

/// Tip×inner specialization: the caller promises left is a tip and right is
/// internal (the engine canonicalizes by swapping — multiplication of the two
/// child factors commutes bit-exactly), so the kernel may skip the per-site
/// child-kind branch.
inline void check_down_ti(const DownArgs& a, std::size_t begin, std::size_t end,
                          bool needs_transpose) {
  check_down(a, begin, end, needs_transpose);
  PLF_DCHECK(a.left.mask != nullptr,
             "tip-inner down: left child must be a tip");
  PLF_DCHECK(a.right.cl != nullptr,
             "tip-inner down: right child must be internal");
}

/// Tip×tip specialization: both children are tips and the output row is a
/// pure gather from the per-pair table. The category count the table was
/// built for must match K — a mismatch would stride the gather wrong, so it
/// is rejected always (O(1)). Checked builds additionally validate every
/// 4-bit tip-state code in the range: the gather indexes the table with
/// mask * kNumMasks + mask, so an out-of-range code reads foreign memory.
inline void check_down_tt(const TipTipArgs& a, std::size_t begin,
                          std::size_t end) {
  PLF_DCHECK(begin <= end, "tip-tip down: reversed pattern range");
  PLF_DCHECK(a.K >= 1, "tip-tip down: needs at least one rate category");
  PLF_DCHECK(a.out != nullptr, "tip-tip down: null output array");
  PLF_DCHECK(a.left_mask != nullptr && a.right_mask != nullptr,
             "tip-tip down: both children must provide tip masks");
  PLF_DCHECK(a.pair != nullptr, "tip-tip down: null pair table");
  PLF_CHECK(a.table_categories == a.K,
            "tip-tip down: pair table/CLV rate-category mismatch");
  check_site_index(a.site_index, begin, end, a.n_sites);
#if PLF_CONTRACTS_LEVEL
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    PLF_DCHECK(a.left_mask[c] < phylo::kNumMasks &&
                   a.right_mask[c] < phylo::kNumMasks,
               "tip-tip down: tip-state code out of range");
  }
#endif
}

/// Fused down/root + scale trust boundary: the scale block must alias the
/// down output and describe the same iteration space, otherwise the single
/// pass would rescale rows the down stage never wrote.
inline void check_fused_scale(const ScaleArgs& s, const float* down_out,
                              std::size_t K, const std::uint32_t* site_index) {
  PLF_DCHECK(s.cl == down_out,
             "fused scale: scale block must alias the down output");
  PLF_DCHECK(s.K == K, "fused scale: rate-category mismatch");
  PLF_DCHECK(s.site_index == site_index,
             "fused scale: site-index mismatch with the down stage");
  PLF_DCHECK(s.ln_scaler != nullptr, "fused scale: null scaler row");
}

inline void check_root(const RootArgs& a, std::size_t begin, std::size_t end,
                       bool needs_transpose) {
  check_down(a.down, begin, end, needs_transpose);
  PLF_DCHECK(a.out_mask != nullptr && a.out_tp != nullptr,
             "cond_like_root: outgroup tip masks/table required");
}

inline void check_root_aligned(const RootArgs& a) {
  check_down_aligned(a.down);
  PLF_DCHECK_ALIGNED(a.out_tp, kKernelAlignBytes);
}

inline void check_scale(const ScaleArgs& a, std::size_t begin,
                        std::size_t end) {
  PLF_DCHECK(begin <= end, "cond_like_scaler: reversed pattern range");
  PLF_DCHECK(a.K >= 1, "cond_like_scaler: needs at least one rate category");
  PLF_DCHECK(a.cl != nullptr && a.ln_scaler != nullptr,
             "cond_like_scaler: null array");
  check_site_index(a.site_index, begin, end, a.n_sites);
}

inline void check_root_reduce(const RootReduceArgs& a, std::size_t begin,
                              std::size_t end) {
  PLF_DCHECK(begin <= end, "root_reduce: reversed pattern range");
  PLF_DCHECK(a.K >= 1, "root_reduce: needs at least one rate category");
  PLF_DCHECK(a.cl != nullptr && a.ln_scaler_total != nullptr &&
                 a.weights != nullptr,
             "root_reduce: null array");
}

/// Trust boundary of batched dispatch: every run_plan implementation calls
/// this once per plan before touching any op. Checked-build body verifies
/// the properties the executors rely on for correctness under fusion and
/// per-level parallelism (O(ops + children) — once per evaluation, not per
/// site):
///
///   - the plan is finalized and its level ranges tile ops() exactly, with
///     no empty level (levels are dense by construction);
///   - each op sits in the level the plan indexes it under, and every child
///     with an op of its own sits in a STRICTLY earlier level (ops outside
///     the plan report level -1), so intra-level execution order is free;
///   - the fused scale stage aliases the op's own down/root output
///     (scale.cl == args.down.out) with a real scaler row to fill, so a
///     backend may rescale each site chunk immediately after computing it;
///   - run_m never exceeds the plan's pattern count, and a compacted op's
///     run_m/site_index agree with its repeat classes.
inline void check_plan(const PlfPlan& plan) {
  PLF_DCHECK(plan.finalized(), "run_plan: plan must be finalized");
#if PLF_CONTRACTS_LEVEL
  std::size_t tiled = 0;
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    PLF_DCHECK(plan.level_begin(l) == tiled,
               "run_plan: level ranges must tile the op list");
    PLF_DCHECK(plan.level_begin(l) < plan.level_end(l),
               "run_plan: empty dependency level");
    tiled = plan.level_end(l);
    for (std::size_t i = plan.level_begin(l); i < plan.level_end(l); ++i) {
      const PlfOp& op = plan.ops()[i];
      PLF_DCHECK(plan.level_of_node(op.node) == static_cast<int>(l),
                 "run_plan: op scheduled outside its indexed level");
      for (int child : {op.left, op.right}) {
        PLF_DCHECK(plan.level_of_node(child) < static_cast<int>(l),
                   "run_plan: child op must be in a strictly earlier level");
      }
      PLF_DCHECK(op.scale.cl == op.args.down.out,
                 "run_plan: fused scale must alias the op's down output");
      PLF_DCHECK(op.scale.ln_scaler != nullptr,
                 "run_plan: fused scale needs a scaler row");
      PLF_DCHECK(op.run_m <= plan.m(), "run_plan: op exceeds pattern count");
      if (op.kind != PlfOpKind::kGeneric) {
        PLF_DCHECK(!op.is_root,
                   "run_plan: root ops must use the generic three-way kernel");
      }
      if (op.kind == PlfOpKind::kTipTip) {
        PLF_DCHECK(op.tt.out == op.args.down.out,
                   "run_plan: tip-tip op must write the op's down output");
        PLF_DCHECK(op.tt.table_categories == op.args.down.K,
                   "run_plan: tip-tip pair table built for a different K");
        PLF_DCHECK(op.tt.site_index == op.args.down.site_index,
                   "run_plan: tip-tip op must share the op's site index");
      } else if (op.kind == PlfOpKind::kTipInner) {
        PLF_DCHECK(op.args.down.left.mask != nullptr &&
                       op.args.down.right.cl != nullptr,
                   "run_plan: tip-inner op must be canonicalized tip-left");
      }
      if (op.repeats != nullptr) {
        PLF_DCHECK(op.run_m == op.repeats->n_classes,
                   "run_plan: compacted op must iterate its class count");
        PLF_DCHECK(op.args.down.site_index == op.repeats->unique_sites.data(),
                   "run_plan: compacted op must index its representatives");
      }
    }
  }
  PLF_DCHECK(tiled == plan.n_ops(),
             "run_plan: levels must partition the op list exactly");
#endif
}

/// Trust boundary of the budgeted CLV arena: every mutating arena entry
/// point calls this (enforced by plf_lint's arena-contract rule). Always-on
/// O(1) body keeps the hard budget hard — the resident total may never
/// exceed it, not even transiently mid-eviction; the checked-build body runs
/// the full structural validation (LRU list integrity, pin/resident flag
/// consistency, exact byte accounting).
inline void check_arena(const ClvArena& arena) {
  PLF_CHECK(arena.resident_bytes() <= arena.budget_bytes(),
            "clv arena: resident CLV bytes exceed the hard budget");
#if PLF_CONTRACTS_LEVEL
  arena.validate();
#endif
}

/// Arena x plan handoff: no kernel may ever receive an evicted or unmapped
/// CLV pointer. The engine calls this after build_plan and before run_plan;
/// checked builds scan every op and require each internal-child CLV input
/// and each op output to be the storage of a currently *resident* arena
/// slot (tip children use masks, not CLVs, and are engine-owned). An evicted
/// slot frees its storage, so a stale pointer cannot match any resident
/// slot and the scan aborts before a kernel dereferences it.
inline void check_arena(const ClvArena& arena, const PlfPlan& plan) {
  check_arena(arena);
#if PLF_CONTRACTS_LEVEL
  for (const PlfOp& op : plan.ops()) {
    PLF_DCHECK(arena.owns_resident(op.args.down.out),
               "clv arena: plan op writes a non-resident CLV slot");
    for (const ChildArgs* ch : {&op.args.down.left, &op.args.down.right}) {
      if (ch->cl == nullptr) continue;  // tip child: mask, engine-owned
      PLF_DCHECK(arena.owns_resident(ch->cl),
                 "clv arena: kernel would read an evicted CLV pointer");
    }
  }
#endif
}

}  // namespace plf::core::detail
